// fips140.hpp — the FIPS 140-2 statistical battery (monobit, poker, runs,
// long-run) over a 20000-bit sample.
//
// Complements SP 800-22: these are the fast accept/reject gates hardware
// RNGs self-test with, and the thresholds are specified as hard count
// bounds rather than P-values — a useful smoke battery for CI.
#pragma once

#include <string>
#include <vector>

#include "bitslice/bitbuf.hpp"

namespace bsrng::nist {

inline constexpr std::size_t kFips140SampleBits = 20000;

struct Fips140Result {
  bool monobit = false;
  bool poker = false;
  bool runs = false;
  bool long_run = false;

  bool all_passed() const { return monobit && poker && runs && long_run; }
  std::string summary() const;
};

// `bits` must hold exactly 20000 bits.
Fips140Result fips140_2(const bitslice::BitBuf& bits);

}  // namespace bsrng::nist
