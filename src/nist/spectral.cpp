// SP 800-22 §2.6 Discrete Fourier Transform (Spectral).
#include <cmath>

#include "nist/suite.hpp"
#include "stats/fft.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult spectral_test(const BitBuf& bits) {
  const std::size_t n = bits.size();
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = bits.get(i) ? 1.0 : -1.0;
  const std::vector<double> mags = stats::half_spectrum_magnitudes(x);

  // 95% peak threshold T = sqrt(n ln(1/0.05)).
  const double T =
      std::sqrt(static_cast<double>(n) * std::log(1.0 / 0.05));
  const double n0 = 0.95 * static_cast<double>(n) / 2.0;
  double n1 = 0.0;
  for (const double m : mags) n1 += m < T;
  const double d = (n1 - n0) /
                   std::sqrt(static_cast<double>(n) * 0.95 * 0.05 / 4.0);
  return {"FFT", {stats::erfc(std::abs(d) / std::sqrt(2.0))}};
}

}  // namespace bsrng::nist
