// SP 800-22 §2.9 Maurer's "Universal Statistical" test.
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult universal_test(const BitBuf& bits) {
  const std::size_t n = bits.size();
  // Choose L from the SP 800-22 §2.9.7 table (n >= 387840 gives L >= 6).
  static constexpr struct {
    std::size_t min_n;
    std::size_t L;
  } kTable[] = {{1059061760, 16}, {496435200, 15}, {231669760, 14},
                {107560960, 13},  {49643520, 12},  {22753280, 11},
                {10342400, 10},   {4654080, 9},    {2068480, 8},
                {904960, 7},      {387840, 6}};
  std::size_t L = 0;
  for (const auto& e : kTable)
    if (n >= e.min_n) {
      L = e.L;
      break;
    }
  if (L == 0) return {"Universal", {}, /*applicable=*/false};

  // Expected value / variance of the per-block statistic (§2.9.8 table).
  static constexpr double kExpected[] = {0, 0,         0,         0,
                                         0, 0,         5.2177052, 6.1962507,
                                         7.1836656,    8.1764248, 9.1723243,
                                         10.170032,    11.168765, 12.168070,
                                         13.167693,    14.167488, 15.167379};
  static constexpr double kVariance[] = {0, 0,     0,     0,     0,     0,
                                         2.954, 3.125, 3.238, 3.311, 3.356,
                                         3.384, 3.401, 3.410, 3.416, 3.419,
                                         3.421};

  const std::size_t Q = 10 * (std::size_t{1} << L);  // init segment blocks
  const std::size_t K = n / L - Q;                   // test segment blocks
  if (K == 0) return {"Universal", {}, /*applicable=*/false};

  std::vector<std::size_t> last(std::size_t{1} << L, 0);
  const auto block_at = [&](std::size_t i) {
    std::size_t v = 0;
    for (std::size_t j = 0; j < L; ++j)
      v = (v << 1) | bits.get(i * L + j);
    return v;
  };
  for (std::size_t i = 1; i <= Q; ++i) last[block_at(i - 1)] = i;
  double sum = 0.0;
  for (std::size_t i = Q + 1; i <= Q + K; ++i) {
    const std::size_t b = block_at(i - 1);
    sum += std::log2(static_cast<double>(i - last[b]));
    last[b] = i;
  }
  const double fn = sum / static_cast<double>(K);

  const double c = 0.7 - 0.8 / static_cast<double>(L) +
                   (4.0 + 32.0 / static_cast<double>(L)) *
                       std::pow(static_cast<double>(K),
                                -3.0 / static_cast<double>(L)) /
                       15.0;
  const double sigma =
      c * std::sqrt(kVariance[L] / static_cast<double>(K));
  const double p =
      stats::erfc(std::abs(fn - kExpected[L]) / (std::sqrt(2.0) * sigma));
  return {"Universal", {p}};
}

}  // namespace bsrng::nist
