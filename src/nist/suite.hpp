// suite.hpp — NIST SP 800-22 rev. 1a statistical test suite (paper §5.5,
// Table 3).
//
// From-scratch implementation of the fifteen tests.  Each test consumes a
// packed bit stream (bitslice::BitBuf) and returns one or more P-values; the
// SuiteRunner reproduces the paper's Table 3 protocol: many streams, per-test
// pass proportion at significance alpha = 0.01, plus the P-value-of-P-values
// uniformity check NIST performs across streams.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bitslice/bitbuf.hpp"

namespace bsrng::nist {

using bitslice::BitBuf;

// Result of one test applied to one stream.  Tests that compute several
// statistics (Serial, CUSUM, excursions, templates) return several P-values;
// NIST counts each against the significance level.
struct TestResult {
  std::string name;
  std::vector<double> p_values;
  bool applicable = true;  // e.g. Random Excursions needs enough cycles

  // True iff every P-value clears alpha.
  bool passed(double alpha = 0.01) const {
    if (!applicable) return true;
    for (double p : p_values)
      if (p < alpha) return false;
    return !p_values.empty();
  }
};

// --- the fifteen tests (SP 800-22 section numbers in comments) -------------

TestResult frequency_test(const BitBuf& bits);                        // 2.1
TestResult block_frequency_test(const BitBuf& bits, std::size_t M = 128);  // 2.2
TestResult runs_test(const BitBuf& bits);                             // 2.3
TestResult longest_run_test(const BitBuf& bits);                      // 2.4
TestResult rank_test(const BitBuf& bits);                             // 2.5
TestResult spectral_test(const BitBuf& bits);                         // 2.6
TestResult non_overlapping_template_test(const BitBuf& bits,
                                         std::size_t m = 9);          // 2.7
TestResult overlapping_template_test(const BitBuf& bits,
                                     std::size_t m = 9);              // 2.8
TestResult universal_test(const BitBuf& bits);                        // 2.9
TestResult linear_complexity_test(const BitBuf& bits,
                                  std::size_t M = 500);               // 2.10
TestResult serial_test(const BitBuf& bits, std::size_t m = 16);       // 2.11
TestResult approximate_entropy_test(const BitBuf& bits,
                                    std::size_t m = 10);              // 2.12
TestResult cusum_test(const BitBuf& bits);                            // 2.13
TestResult random_excursions_test(const BitBuf& bits);                // 2.14
TestResult random_excursions_variant_test(const BitBuf& bits);        // 2.15

// All aperiodic templates of length m (the non-overlapping test's template
// set; SP 800-22 ships 148 of them for m = 9).
std::vector<std::uint32_t> aperiodic_templates(std::size_t m);

// --- suite driver -----------------------------------------------------------

struct SuiteRow {
  std::string name;
  double mean_p = 0.0;        // average P-value across streams (Table 3 col 2)
  double uniformity_p = 0.0;  // P-value of the chi^2 over the P-value histogram
  double proportion = 0.0;    // fraction of streams passing (Table 3 col 3)
  bool success = false;       // proportion above the NIST acceptance bound
  std::size_t streams = 0;    // streams on which the test was applicable
};

struct SuiteConfig {
  std::size_t stream_bits = 1u << 20;  // paper: 1 Mbit per stream
  std::size_t num_streams = 100;       // paper: 1000 (configurable for time)
  double alpha = 0.01;
  bool run_slow_tests = true;  // spectral/complexity/universal are O(n log n)+
};

// A generator callback fills `out` with the next bytes of one stream.
using StreamSource = std::function<void(std::span<std::uint8_t> out)>;

std::vector<SuiteRow> run_suite(const StreamSource& source,
                                const SuiteConfig& cfg);

// The NIST minimum pass proportion for the given stream count and alpha:
// p_hat - 3 sqrt(p_hat (1 - p_hat) / n) with p_hat = 1 - alpha.
double min_pass_proportion(std::size_t num_streams, double alpha = 0.01);

// Render rows in the paper's Table 3 layout.
std::string format_table3(const std::vector<SuiteRow>& rows);

}  // namespace bsrng::nist
