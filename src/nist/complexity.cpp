// SP 800-22 §2.10 Linear Complexity.
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "stats/berlekamp_massey.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult linear_complexity_test(const BitBuf& bits, std::size_t M) {
  constexpr std::size_t K = 6;
  static constexpr double kPi[K + 1] = {0.010417, 0.03125, 0.125,   0.5,
                                        0.25,     0.0625,  0.020833};
  const std::size_t N = bits.size() / M;
  if (N == 0) return {"LinearComplexity", {}, /*applicable=*/false};

  const double Md = static_cast<double>(M);
  const double sign_m = (M % 2 == 0) ? 1.0 : -1.0;          // (-1)^M
  const double mu = Md / 2.0 + (9.0 - sign_m) / 36.0 -
                    (Md / 3.0 + 2.0 / 9.0) / std::exp2(Md);

  std::vector<double> v(K + 1, 0.0);
  std::vector<std::uint8_t> block(M);
  for (std::size_t b = 0; b < N; ++b) {
    for (std::size_t i = 0; i < M; ++i) block[i] = bits.get(b * M + i);
    const double L = static_cast<double>(stats::berlekamp_massey(block));
    const double t = sign_m * (L - mu) + 2.0 / 9.0;
    std::size_t cat;
    if (t <= -2.5)
      cat = 0;
    else if (t <= -1.5)
      cat = 1;
    else if (t <= -0.5)
      cat = 2;
    else if (t <= 0.5)
      cat = 3;
    else if (t <= 1.5)
      cat = 4;
    else if (t <= 2.5)
      cat = 5;
    else
      cat = 6;
    v[cat] += 1.0;
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i <= K; ++i) {
    const double expect = static_cast<double>(N) * kPi[i];
    chi2 += (v[i] - expect) * (v[i] - expect) / expect;
  }
  return {"LinearComplexity",
          {stats::igamc(static_cast<double>(K) / 2.0, chi2 / 2.0)}};
}

}  // namespace bsrng::nist
