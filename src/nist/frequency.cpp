// SP 800-22 §2.1 Frequency (monobit), §2.2 Block Frequency, §2.13 Cumulative
// Sums.
#include <cmath>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult frequency_test(const BitBuf& bits) {
  const auto n = static_cast<double>(bits.size());
  // S_n = sum of (2 eps_i - 1) = 2 * ones - n.
  const double s =
      2.0 * static_cast<double>(bits.count()) - n;
  const double s_obs = std::abs(s) / std::sqrt(n);
  return {"Frequency", {stats::erfc(s_obs / std::sqrt(2.0))}};
}

TestResult block_frequency_test(const BitBuf& bits, std::size_t M) {
  const std::size_t N = bits.size() / M;  // discard the tail
  double chi2 = 0.0;
  for (std::size_t i = 0; i < N; ++i) {
    std::size_t ones = 0;
    for (std::size_t j = 0; j < M; ++j) ones += bits.get(i * M + j);
    const double pi = static_cast<double>(ones) / static_cast<double>(M);
    chi2 += (pi - 0.5) * (pi - 0.5);
  }
  chi2 *= 4.0 * static_cast<double>(M);
  return {"BlockFrequency",
          {stats::igamc(static_cast<double>(N) / 2.0, chi2 / 2.0)}};
}

namespace {
double cusum_p_value(std::size_t n_sz, long z_max) {
  const double n = static_cast<double>(n_sz);
  const double z = static_cast<double>(z_max);
  const double sqrt_n = std::sqrt(n);
  double sum1 = 0.0;
  for (long k = static_cast<long>((-n / z + 1) / 4);
       k <= static_cast<long>((n / z - 1) / 4); ++k) {
    sum1 += stats::normal_cdf((4.0 * static_cast<double>(k) + 1.0) * z / sqrt_n) -
            stats::normal_cdf((4.0 * static_cast<double>(k) - 1.0) * z / sqrt_n);
  }
  double sum2 = 0.0;
  for (long k = static_cast<long>((-n / z - 3) / 4);
       k <= static_cast<long>((n / z - 1) / 4); ++k) {
    sum2 += stats::normal_cdf((4.0 * static_cast<double>(k) + 3.0) * z / sqrt_n) -
            stats::normal_cdf((4.0 * static_cast<double>(k) + 1.0) * z / sqrt_n);
  }
  return 1.0 - sum1 + sum2;
}
}  // namespace

TestResult cusum_test(const BitBuf& bits) {
  const std::size_t n = bits.size();
  // Forward and backward maximum partial sums of the +/-1 walk.
  long s = 0, max_fwd = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += bits.get(i) ? 1 : -1;
    max_fwd = std::max(max_fwd, std::labs(s));
  }
  s = 0;
  long max_bwd = 0;
  for (std::size_t i = n; i-- > 0;) {
    s += bits.get(i) ? 1 : -1;
    max_bwd = std::max(max_bwd, std::labs(s));
  }
  TestResult r{"CumulativeSums", {}};
  r.p_values.push_back(cusum_p_value(n, std::max(max_fwd, 1l)));
  r.p_values.push_back(cusum_p_value(n, std::max(max_bwd, 1l)));
  return r;
}

}  // namespace bsrng::nist
