// SP 800-22 §2.11 Serial, §2.12 Approximate Entropy.
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

namespace {

// psi^2_m statistic: counts of all overlapping m-bit patterns with
// wraparound (§2.11.4 / §2.12.4).
double psi_squared(const BitBuf& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
  std::uint32_t pattern = 0;
  const std::uint32_t mask = static_cast<std::uint32_t>((1u << m) - 1);
  // Prime the first m-1 bits.
  for (std::size_t i = 0; i < m - 1; ++i)
    pattern = ((pattern << 1) | bits.get(i)) & mask;
  for (std::size_t i = m - 1; i < n + m - 1; ++i) {
    pattern = ((pattern << 1) | bits.get(i % n)) & mask;
    ++counts[pattern];
  }
  double sum = 0.0;
  for (const auto c : counts)
    sum += static_cast<double>(c) * static_cast<double>(c);
  return sum * std::exp2(static_cast<double>(m)) / static_cast<double>(n) -
         static_cast<double>(n);
}

// phi_m for the approximate-entropy statistic (§2.12.4 step 4).
double phi(const BitBuf& bits, std::size_t m) {
  if (m == 0) return 0.0;
  const std::size_t n = bits.size();
  std::vector<std::uint32_t> counts(std::size_t{1} << m, 0);
  std::uint32_t pattern = 0;
  const std::uint32_t mask = static_cast<std::uint32_t>((1u << m) - 1);
  for (std::size_t i = 0; i < m - 1; ++i)
    pattern = ((pattern << 1) | bits.get(i)) & mask;
  for (std::size_t i = m - 1; i < n + m - 1; ++i) {
    pattern = ((pattern << 1) | bits.get(i % n)) & mask;
    ++counts[pattern];
  }
  double sum = 0.0;
  for (const auto c : counts) {
    if (c == 0) continue;
    const double pi = static_cast<double>(c) / static_cast<double>(n);
    sum += pi * std::log(pi);
  }
  return sum;
}

}  // namespace

TestResult serial_test(const BitBuf& bits, std::size_t m) {
  const double psi_m = psi_squared(bits, m);
  const double psi_m1 = psi_squared(bits, m - 1);
  const double psi_m2 = psi_squared(bits, m - 2);
  const double d1 = psi_m - psi_m1;
  const double d2 = psi_m - 2.0 * psi_m1 + psi_m2;
  TestResult r{"Serial", {}};
  r.p_values.push_back(
      stats::igamc(std::exp2(static_cast<double>(m) - 2.0), d1 / 2.0));
  r.p_values.push_back(
      stats::igamc(std::exp2(static_cast<double>(m) - 3.0), d2 / 2.0));
  return r;
}

TestResult approximate_entropy_test(const BitBuf& bits, std::size_t m) {
  const std::size_t n = bits.size();
  const double ap_en = phi(bits, m) - phi(bits, m + 1);
  const double chi2 =
      2.0 * static_cast<double>(n) * (std::log(2.0) - ap_en);
  return {"ApproximateEntropy",
          {stats::igamc(std::exp2(static_cast<double>(m) - 1.0), chi2 / 2.0)}};
}

}  // namespace bsrng::nist
