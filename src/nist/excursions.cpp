// SP 800-22 §2.14 Random Excursions, §2.15 Random Excursions Variant.
#include <array>
#include <cmath>
#include <vector>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

namespace {

// Split the +/-1 partial-sum walk into zero-to-zero cycles; returns the walk
// values and the indices where cycles end.
struct Walk {
  std::vector<long> s;                 // partial sums S_1..S_n
  std::vector<std::size_t> zero_pos;   // positions with S_k = 0
};

Walk build_walk(const BitBuf& bits) {
  Walk w;
  w.s.resize(bits.size());
  long sum = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    sum += bits.get(i) ? 1 : -1;
    w.s[i] = sum;
    if (sum == 0) w.zero_pos.push_back(i);
  }
  return w;
}

// pi_k(x): probability a cycle visits state x exactly k times (§2.14.4).
double pi_visits(std::size_t k, long x) {
  const double ax = std::abs(static_cast<double>(x));
  if (k == 0) return 1.0 - 1.0 / (2.0 * ax);
  if (k >= 5) {
    const double b = 1.0 - 1.0 / (2.0 * ax);
    return (1.0 / (2.0 * ax)) * std::pow(b, 4.0);
  }
  const double b = 1.0 - 1.0 / (2.0 * ax);
  return (1.0 / (4.0 * ax * ax)) * std::pow(b, static_cast<double>(k) - 1.0);
}

}  // namespace

TestResult random_excursions_test(const BitBuf& bits) {
  const Walk w = build_walk(bits);
  // Number of cycles J: each return to zero closes one; the tail after the
  // last zero (if any) closes the final cycle.
  std::size_t J = w.zero_pos.size();
  if (w.zero_pos.empty() || w.zero_pos.back() != bits.size() - 1) ++J;
  // Applicability: NIST requires J >= max(0.005 sqrt(n), 500).
  const double min_j =
      std::max(0.005 * std::sqrt(static_cast<double>(bits.size())), 500.0);
  if (static_cast<double>(J) < min_j)
    return {"RandomExcursions", {}, /*applicable=*/false};

  static constexpr std::array<long, 8> kStates = {-4, -3, -2, -1, 1, 2, 3, 4};
  // visits[state][k] = number of cycles visiting `state` exactly k (cap 5).
  std::array<std::array<double, 6>, 8> v{};
  std::array<std::size_t, 8> in_cycle{};
  std::size_t cycle_start = 0;
  const auto close_cycle = [&] {
    for (std::size_t si = 0; si < 8; ++si) {
      v[si][std::min<std::size_t>(in_cycle[si], 5)] += 1.0;
      in_cycle[si] = 0;
    }
  };
  for (std::size_t i = 0; i < w.s.size(); ++i) {
    for (std::size_t si = 0; si < 8; ++si)
      if (w.s[i] == kStates[si]) ++in_cycle[si];
    if (w.s[i] == 0) {
      close_cycle();
      cycle_start = i + 1;
    }
  }
  if (cycle_start < w.s.size()) close_cycle();  // trailing open cycle

  TestResult r{"RandomExcursions", {}};
  for (std::size_t si = 0; si < 8; ++si) {
    double chi2 = 0.0;
    for (std::size_t k = 0; k <= 5; ++k) {
      const double expect =
          static_cast<double>(J) * pi_visits(k, kStates[si]);
      chi2 += (v[si][k] - expect) * (v[si][k] - expect) / expect;
    }
    r.p_values.push_back(stats::igamc(5.0 / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult random_excursions_variant_test(const BitBuf& bits) {
  const Walk w = build_walk(bits);
  std::size_t J = w.zero_pos.size();
  if (w.zero_pos.empty() || w.zero_pos.back() != bits.size() - 1) ++J;
  const double min_j =
      std::max(0.005 * std::sqrt(static_cast<double>(bits.size())), 500.0);
  if (static_cast<double>(J) < min_j)
    return {"RandomExcursionsVariant", {}, /*applicable=*/false};

  TestResult r{"RandomExcursionsVariant", {}};
  for (long x = -9; x <= 9; ++x) {
    if (x == 0) continue;
    double xi = 0.0;
    for (const long s : w.s) xi += s == x;
    const double jd = static_cast<double>(J);
    const double p = stats::erfc(
        std::abs(xi - jd) /
        std::sqrt(2.0 * jd * (4.0 * std::abs(static_cast<double>(x)) - 2.0)));
    r.p_values.push_back(p);
  }
  return r;
}

}  // namespace bsrng::nist
