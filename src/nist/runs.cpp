// SP 800-22 §2.3 Runs, §2.4 Longest Run of Ones in a Block.
#include <array>
#include <cmath>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult runs_test(const BitBuf& bits) {
  const std::size_t n = bits.size();
  const double pi =
      static_cast<double>(bits.count()) / static_cast<double>(n);
  // Prerequisite frequency check (§2.3.4 step 2).
  if (std::abs(pi - 0.5) >= 2.0 / std::sqrt(static_cast<double>(n)))
    return {"Runs", {0.0}};
  std::size_t v = 1;
  for (std::size_t i = 1; i < n; ++i) v += bits.get(i) != bits.get(i - 1);
  const double nn = static_cast<double>(n);
  const double num = std::abs(static_cast<double>(v) - 2.0 * nn * pi * (1.0 - pi));
  const double den = 2.0 * std::sqrt(2.0 * nn) * pi * (1.0 - pi);
  return {"Runs", {stats::erfc(num / den)}};
}

TestResult longest_run_test(const BitBuf& bits) {
  const std::size_t n = bits.size();
  // Parameterization per §2.4.2 / §2.4.4.
  std::size_t M, K;
  std::vector<double> pi;
  std::size_t vmin;
  if (n < 6272) {
    M = 8;
    K = 3;
    vmin = 1;
    pi = {0.2148, 0.3672, 0.2305, 0.1875};
  } else if (n < 750000) {
    M = 128;
    K = 5;
    vmin = 4;
    pi = {0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124};
  } else {
    M = 10000;
    K = 6;
    vmin = 10;
    pi = {0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727};
  }
  const std::size_t N = n / M;
  std::vector<double> v(K + 1, 0.0);
  for (std::size_t b = 0; b < N; ++b) {
    std::size_t longest = 0, run = 0;
    for (std::size_t j = 0; j < M; ++j) {
      run = bits.get(b * M + j) ? run + 1 : 0;
      longest = std::max(longest, run);
    }
    const std::size_t cat =
        longest <= vmin ? 0 : std::min(longest - vmin, K);
    v[cat] += 1.0;
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i <= K; ++i) {
    const double expect = static_cast<double>(N) * pi[i];
    chi2 += (v[i] - expect) * (v[i] - expect) / expect;
  }
  return {"LongestRun",
          {stats::igamc(static_cast<double>(K) / 2.0, chi2 / 2.0)}};
}

}  // namespace bsrng::nist
