// Suite driver: the paper's Table 3 protocol (many streams, mean P-value,
// pass proportion at alpha = 0.01, NIST uniformity check).
#include "nist/suite.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "stats/special.hpp"

namespace bsrng::nist {

double min_pass_proportion(std::size_t num_streams, double alpha) {
  const double p = 1.0 - alpha;
  return p - 3.0 * std::sqrt(p * (1.0 - p) / static_cast<double>(num_streams));
}

namespace {

struct Accum {
  double p_sum = 0.0;
  std::size_t p_count = 0;
  std::size_t trials_passed = 0;
  std::size_t streams_applicable = 0;
  std::array<std::size_t, 10> hist{};  // P-value decile histogram

  void add(const TestResult& r, double alpha) {
    if (!r.applicable) return;
    ++streams_applicable;
    // NIST counts every statistic separately (e.g. each of the 148
    // non-overlapping templates is its own trial), so the pass proportion is
    // over P-values, not over whole streams.
    for (const double p : r.p_values) {
      p_sum += p;
      ++p_count;
      trials_passed += p >= alpha;
      const auto bin = std::min<std::size_t>(
          static_cast<std::size_t>(p * 10.0), 9);
      ++hist[bin];
    }
  }

  SuiteRow row(const std::string& name, std::size_t num_streams,
               double alpha) const {
    SuiteRow r;
    r.name = name;
    if (p_count == 0) {
      // Test was inapplicable on every stream (e.g. Random Excursions on
      // short streams): nothing failed, report a vacuous pass.
      r.success = true;
      r.proportion = 1.0;
      return r;
    }
    r.streams = streams_applicable;
    r.mean_p = p_sum / static_cast<double>(p_count);
    // NIST §4.2.2 uniformity: chi^2 over 10 bins of the P-value histogram.
    const double expect = static_cast<double>(p_count) / 10.0;
    double chi2 = 0.0;
    for (const auto h : hist)
      chi2 += (static_cast<double>(h) - expect) *
              (static_cast<double>(h) - expect) / expect;
    r.uniformity_p = stats::igamc(4.5, chi2 / 2.0);
    r.proportion =
        static_cast<double>(trials_passed) / static_cast<double>(p_count);
    // Acceptance bound uses the trial count (streams x statistics).
    r.success =
        r.proportion >= min_pass_proportion(std::max<std::size_t>(p_count, num_streams), alpha);
    return r;
  }
};

}  // namespace

std::vector<SuiteRow> run_suite(const StreamSource& source,
                                const SuiteConfig& cfg) {
  struct Entry {
    std::string name;
    std::function<TestResult(const BitBuf&)> fn;
    bool slow;
  };
  const std::vector<Entry> tests = {
      {"Frequency", [](const BitBuf& b) { return frequency_test(b); }, false},
      {"BlockFrequency",
       [](const BitBuf& b) { return block_frequency_test(b); }, false},
      {"CumulativeSums", [](const BitBuf& b) { return cusum_test(b); }, false},
      {"Runs", [](const BitBuf& b) { return runs_test(b); }, false},
      {"LongestRun", [](const BitBuf& b) { return longest_run_test(b); },
       false},
      {"Rank", [](const BitBuf& b) { return rank_test(b); }, false},
      {"FFT", [](const BitBuf& b) { return spectral_test(b); }, true},
      {"NonOverlappingTemplate",
       [](const BitBuf& b) { return non_overlapping_template_test(b); }, true},
      {"OverlappingTemplate",
       [](const BitBuf& b) { return overlapping_template_test(b); }, false},
      {"Universal", [](const BitBuf& b) { return universal_test(b); }, false},
      // SP 800-22 input-size guidance: ApEn needs m < log2(n) - 5 and Serial
      // m < log2(n) - 2; clamp the defaults so short calibration streams stay
      // within the tests' validity region.
      {"ApproximateEntropy",
       [](const BitBuf& b) {
         const auto lg = static_cast<std::size_t>(std::log2(
             static_cast<double>(std::max<std::size_t>(b.size(), 64))));
         return approximate_entropy_test(b, std::min<std::size_t>(10, lg - 6));
       },
       false},
      {"Serial",
       [](const BitBuf& b) {
         const auto lg = static_cast<std::size_t>(std::log2(
             static_cast<double>(std::max<std::size_t>(b.size(), 64))));
         return serial_test(b, std::min<std::size_t>(16, lg - 3));
       },
       false},
      {"LinearComplexity",
       [](const BitBuf& b) { return linear_complexity_test(b); }, true},
      {"RandomExcursions",
       [](const BitBuf& b) { return random_excursions_test(b); }, false},
      {"RandomExcursionsVariant",
       [](const BitBuf& b) { return random_excursions_variant_test(b); },
       false},
  };

  std::vector<Accum> acc(tests.size());
  std::vector<std::uint8_t> bytes(cfg.stream_bits / 8);
  for (std::size_t s = 0; s < cfg.num_streams; ++s) {
    source(bytes);
    BitBuf bits;
    bits.reserve(cfg.stream_bits);
    bits.append_bytes(bytes);
    for (std::size_t t = 0; t < tests.size(); ++t) {
      if (tests[t].slow && !cfg.run_slow_tests) continue;
      acc[t].add(tests[t].fn(bits), cfg.alpha);
    }
  }

  std::vector<SuiteRow> rows;
  for (std::size_t t = 0; t < tests.size(); ++t) {
    if (tests[t].slow && !cfg.run_slow_tests) continue;
    rows.push_back(acc[t].row(tests[t].name, cfg.num_streams, cfg.alpha));
  }
  return rows;
}

std::string format_table3(const std::vector<SuiteRow>& rows) {
  std::ostringstream os;
  os << "Test                        P-value    Uniformity  Proportion  Result\n";
  os << "---------------------------------------------------------------------\n";
  for (const auto& r : rows) {
    os.setf(std::ios::fixed);
    os.precision(6);
    os.width(0);
    std::string name = r.name;
    name.resize(27, ' ');
    if (r.streams == 0) {
      os << name << " (not applicable at this stream length)\n";
      continue;
    }
    os << name << " " << r.mean_p << "   " << r.uniformity_p << "    "
       << r.proportion << "    " << (r.success ? "Success" : "FAILURE")
       << "\n";
  }
  return os.str();
}

}  // namespace bsrng::nist
