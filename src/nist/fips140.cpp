#include "nist/fips140.hpp"

#include <array>
#include <stdexcept>

namespace bsrng::nist {

std::string Fips140Result::summary() const {
  std::string s;
  s += monobit ? "monobit:PASS " : "monobit:FAIL ";
  s += poker ? "poker:PASS " : "poker:FAIL ";
  s += runs ? "runs:PASS " : "runs:FAIL ";
  s += long_run ? "longrun:PASS" : "longrun:FAIL";
  return s;
}

Fips140Result fips140_2(const bitslice::BitBuf& bits) {
  if (bits.size() != kFips140SampleBits)
    throw std::invalid_argument("fips140_2: sample must be 20000 bits");
  Fips140Result r;

  // 1. Monobit: 9725 < ones < 10275.
  const std::size_t ones = bits.count();
  r.monobit = ones > 9725 && ones < 10275;

  // 2. Poker: 5000 consecutive 4-bit values; X = (16/5000) sum f_i^2 - 5000;
  //    2.16 < X < 46.17.
  std::array<std::uint32_t, 16> f{};
  for (std::size_t i = 0; i < kFips140SampleBits; i += 4) {
    unsigned v = 0;
    for (std::size_t k = 0; k < 4; ++k) v = (v << 1) | bits.get(i + k);
    ++f[v];
  }
  double sum_sq = 0;
  for (const auto c : f) sum_sq += static_cast<double>(c) * c;
  const double x = 16.0 / 5000.0 * sum_sq - 5000.0;
  r.poker = x > 2.16 && x < 46.17;

  // 3. Runs: counts of runs of each length (1..5, 6+) for zeros and ones
  //    must lie in the specified intervals.
  struct Bounds {
    std::uint32_t lo, hi;
  };
  static constexpr std::array<Bounds, 6> kBounds = {{{2315, 2685},
                                                     {1114, 1386},
                                                     {527, 723},
                                                     {240, 384},
                                                     {103, 209},
                                                     {103, 209}}};
  std::array<std::array<std::uint32_t, 6>, 2> run_counts{};  // [bit][len-1]
  std::size_t longest = 0;
  std::size_t run_len = 1;
  for (std::size_t i = 1; i <= kFips140SampleBits; ++i) {
    if (i < kFips140SampleBits && bits.get(i) == bits.get(i - 1)) {
      ++run_len;
    } else {
      const std::size_t bit = bits.get(i - 1);
      ++run_counts[bit][std::min<std::size_t>(run_len, 6) - 1];
      longest = std::max(longest, run_len);
      run_len = 1;
    }
  }
  r.runs = true;
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t l = 0; l < 6; ++l)
      r.runs &= run_counts[b][l] >= kBounds[l].lo &&
                run_counts[b][l] <= kBounds[l].hi;

  // 4. Long run: no run of 26 or more identical bits.
  r.long_run = longest < 26;
  return r;
}

}  // namespace bsrng::nist
