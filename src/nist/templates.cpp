// SP 800-22 §2.7 Non-overlapping Template Matching, §2.8 Overlapping
// Template Matching.
#include <cmath>

#include "nist/suite.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

std::vector<std::uint32_t> aperiodic_templates(std::size_t m) {
  // Template B (bit i = B_i) is aperiodic iff no proper shift of B matches
  // its own prefix: for all 1 <= k < m, B[k..m-1] != B[0..m-1-k].
  std::vector<std::uint32_t> out;
  for (std::uint32_t b = 0; b < (1u << m); ++b) {
    bool aperiodic = true;
    for (std::size_t k = 1; k < m && aperiodic; ++k) {
      bool overlap = true;
      for (std::size_t i = 0; i + k < m; ++i)
        if (((b >> (i + k)) & 1u) != ((b >> i) & 1u)) {
          overlap = false;
          break;
        }
      if (overlap) aperiodic = false;
    }
    if (aperiodic) out.push_back(b);
  }
  return out;
}

TestResult non_overlapping_template_test(const BitBuf& bits, std::size_t m) {
  constexpr std::size_t N = 8;  // SP 800-22 fixed block count
  const std::size_t M = bits.size() / N;
  const double mm = static_cast<double>(m);
  const double mu =
      (static_cast<double>(M) - mm + 1.0) / std::exp2(mm);
  const double sigma2 =
      static_cast<double>(M) *
      (1.0 / std::exp2(mm) - (2.0 * mm - 1.0) / std::exp2(2.0 * mm));

  TestResult r{"NonOverlappingTemplate", {}};
  for (const std::uint32_t tmpl : aperiodic_templates(m)) {
    double chi2 = 0.0;
    for (std::size_t blk = 0; blk < N; ++blk) {
      std::size_t w = 0;
      std::size_t i = 0;
      while (i + m <= M) {
        bool match = true;
        for (std::size_t j = 0; j < m; ++j)
          if (bits.get(blk * M + i + j) != (((tmpl >> j) & 1u) != 0)) {
            match = false;
            break;
          }
        if (match) {
          ++w;
          i += m;  // non-overlapping: skip past the match
        } else {
          ++i;
        }
      }
      chi2 += (static_cast<double>(w) - mu) * (static_cast<double>(w) - mu) /
              sigma2;
    }
    r.p_values.push_back(
        stats::igamc(static_cast<double>(N) / 2.0, chi2 / 2.0));
  }
  return r;
}

TestResult overlapping_template_test(const BitBuf& bits, std::size_t m) {
  constexpr std::size_t M = 1032;  // SP 800-22 recommended block length
  constexpr std::size_t K = 5;
  // Reference distribution for m = 9, M = 1032 (sts-2.1.2 constants).
  static constexpr double kPi[K + 1] = {0.364091, 0.185659, 0.139381,
                                        0.100571, 0.070432, 0.139865};
  const std::size_t N = bits.size() / M;
  if (N == 0) return {"OverlappingTemplate", {}, /*applicable=*/false};

  std::vector<double> v(K + 1, 0.0);
  for (std::size_t blk = 0; blk < N; ++blk) {
    std::size_t w = 0;
    for (std::size_t i = 0; i + m <= M; ++i) {
      bool match = true;
      for (std::size_t j = 0; j < m; ++j)
        if (!bits.get(blk * M + i + j)) {  // template is all-ones
          match = false;
          break;
        }
      w += match;
    }
    v[std::min(w, K)] += 1.0;
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i <= K; ++i) {
    const double expect = static_cast<double>(N) * kPi[i];
    chi2 += (v[i] - expect) * (v[i] - expect) / expect;
  }
  return {"OverlappingTemplate",
          {stats::igamc(static_cast<double>(K) / 2.0, chi2 / 2.0)}};
}

}  // namespace bsrng::nist
