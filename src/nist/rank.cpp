// SP 800-22 §2.5 Binary Matrix Rank.
#include <cmath>

#include "nist/suite.hpp"
#include "stats/gf2matrix.hpp"
#include "stats/special.hpp"

namespace bsrng::nist {

TestResult rank_test(const BitBuf& bits) {
  constexpr std::size_t M = 32, Q = 32;
  const std::size_t N = bits.size() / (M * Q);
  if (N == 0) return {"Rank", {}, /*applicable=*/false};

  const double p32 = stats::gf2_rank_probability(M, Q, 32);
  const double p31 = stats::gf2_rank_probability(M, Q, 31);
  const double prest = 1.0 - p32 - p31;

  double f32 = 0, f31 = 0;
  for (std::size_t k = 0; k < N; ++k) {
    stats::Gf2Matrix m(M, Q);
    for (std::size_t r = 0; r < M; ++r)
      for (std::size_t c = 0; c < Q; ++c)
        m.set(r, c, bits.get(k * M * Q + r * Q + c));
    const std::size_t rank = m.rank();
    f32 += rank == 32;
    f31 += rank == 31;
  }
  const double nN = static_cast<double>(N);
  const double frest = nN - f32 - f31;
  const double chi2 = (f32 - p32 * nN) * (f32 - p32 * nN) / (p32 * nN) +
                      (f31 - p31 * nN) * (f31 - p31 * nN) / (p31 * nN) +
                      (frest - prest * nN) * (frest - prest * nN) / (prest * nN);
  return {"Rank", {std::exp(-chi2 / 2.0)}};  // igamc(1, x/2) = e^{-x/2}
}

}  // namespace bsrng::nist
