#include "lfsr/bitsliced_lfsr.hpp"

#include "bitslice/gatecount.hpp"

#include <stdexcept>

namespace bsrng::lfsr {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t degree_mask(unsigned degree) {
  return degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1;
}
}  // namespace

template <typename W>
BitslicedLfsr<W>::BitslicedLfsr(const Gf2Poly& poly,
                                std::span<const std::uint64_t> seeds)
    : poly_(poly),
      degree_(poly.degree),
      taps_(poly.tap_positions()),
      state_(poly.degree, bitslice::SliceTraits<W>::zero()) {
  if (poly.degree == 0 || poly.degree > 64)
    throw std::invalid_argument("BitslicedLfsr: degree must be in [1,64]");
  if ((poly.taps & 1u) == 0)
    throw std::invalid_argument("BitslicedLfsr: polynomial needs a_0 = 1");
  if (seeds.size() != lanes)
    throw std::invalid_argument("BitslicedLfsr: need one seed per lane");
  const std::uint64_t mask = degree_mask(poly.degree);
  for (std::size_t j = 0; j < lanes; ++j) {
    const std::uint64_t s = seeds[j] & mask;
    if (s == 0)
      throw std::invalid_argument("BitslicedLfsr: lane seed must be nonzero");
    for (std::size_t i = 0; i < degree_; ++i)
      bitslice::SliceTraits<W>::set_lane(state_[i], j, (s >> i) & 1u);
  }
}

template <typename W>
BitslicedLfsr<W>::BitslicedLfsr(const Gf2Poly& poly, std::uint64_t master_seed)
    : BitslicedLfsr(poly, [&] {
        std::vector<std::uint64_t> seeds(lanes);
        const std::uint64_t mask = degree_mask(poly.degree);
        std::uint64_t x = master_seed;
        for (auto& s : seeds)
          do s = splitmix64(x) & mask;
          while (s == 0);
        return seeds;
      }()) {}

template class BitslicedLfsr<bitslice::SliceU32>;
template class BitslicedLfsr<bitslice::SliceU64>;
template class BitslicedLfsr<bitslice::SliceV128>;
template class BitslicedLfsr<bitslice::SliceV256>;
template class BitslicedLfsr<bitslice::SliceV512>;
template class BitslicedLfsr<bitslice::CountingSlice>;

}  // namespace bsrng::lfsr
