// polynomial.hpp — GF(2) feedback polynomials for LFSRs (§2.2).
//
// A degree-n feedback polynomial p(x) = x^n + a_{n-1}x^{n-1} + ... + a_1 x + 1
// is stored as the tap mask of its low n coefficients (bit i = a_i); the
// leading x^n term is implicit.  a_0 = 1 is required for an invertible LFSR.
//
// Primitivity (period 2^n - 1, §2.2 "maximize the LFSR period") is decided
// exactly for n <= 64: p is primitive iff p is irreducible and
// x^((2^n-1)/q) != 1 (mod p) for every prime factor q of 2^n - 1.  The prime
// factors are found at runtime with Pollard's rho, so no factor table is
// trusted from memory.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace bsrng::lfsr {

// 128-bit exponent type for gf2_powmod (GCC/Clang extension).
__extension__ typedef unsigned __int128 uint128_t;

struct Gf2Poly {
  std::uint64_t taps = 0;  // coefficients a_0 .. a_{n-1}
  unsigned degree = 0;     // n (1 <= n <= 64)

  friend constexpr bool operator==(const Gf2Poly&, const Gf2Poly&) = default;

  // Positions i with a_i = 1 (the feedback tap indices of Fig. 1).
  std::vector<unsigned> tap_positions() const;
  // Number of feedback taps k = |A| (Eq. 2 of the paper).
  unsigned tap_count() const;
};

// Polynomial arithmetic mod p (operands/results are degree < n bit masks).
std::uint64_t gf2_mulmod(std::uint64_t a, std::uint64_t b, const Gf2Poly& p);
std::uint64_t gf2_powmod(std::uint64_t a, uint128_t e, const Gf2Poly& p);

// True iff p is irreducible over GF(2).
bool is_irreducible(const Gf2Poly& p);

// True iff p is primitive (irreducible with x a generator of GF(2^n)^*).
bool is_primitive(const Gf2Poly& p);

// Prime factorization of m (Pollard rho + trial division); factors sorted,
// with multiplicity collapsed (each prime appears once).
std::vector<std::uint64_t> prime_factors(std::uint64_t m);

// A known primitive polynomial of the requested degree (3 <= n <= 64), e.g.
// the degree-20 entry is the paper's "simple 20-bit LFSR" example.  Every
// entry is verified primitive by the test suite using is_primitive().
Gf2Poly primitive_polynomial(unsigned degree);

}  // namespace bsrng::lfsr
