#include "lfsr/scalar_lfsr.hpp"

#include <bit>
#include <stdexcept>

namespace bsrng::lfsr {

namespace {
std::uint64_t degree_mask(unsigned degree) {
  return degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1;
}

void check(const Gf2Poly& poly, std::uint64_t seed, std::uint64_t mask) {
  if (poly.degree == 0 || poly.degree > 64)
    throw std::invalid_argument("LFSR degree must be in [1,64]");
  if ((poly.taps & 1u) == 0)
    throw std::invalid_argument("LFSR polynomial needs a_0 = 1");
  if ((seed & mask) == 0)
    throw std::invalid_argument("LFSR seed must be nonzero");
}
}  // namespace

FibonacciLfsr::FibonacciLfsr(const Gf2Poly& poly, std::uint64_t seed)
    : poly_(poly), state_(seed), mask_(degree_mask(poly.degree)) {
  check(poly_, seed, mask_);
  state_ &= mask_;
}

void FibonacciLfsr::set_state(std::uint64_t s) {
  check(poly_, s, mask_);
  state_ = s & mask_;
}

bool FibonacciLfsr::step() noexcept {
  const bool out = state_ & 1u;
  // Feedback = parity of the tapped stages: this is the "32 x k bit-level
  // XOR" cost the paper ascribes to the naive form (here k taps, plus the
  // shift+mask the bitsliced version eliminates).
  const std::uint64_t fb =
      static_cast<std::uint64_t>(std::popcount(state_ & poly_.taps) & 1);
  state_ = (state_ >> 1) | (fb << (poly_.degree - 1));
  return out;
}

std::uint64_t FibonacciLfsr::step64() noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 64; ++i)
    out |= static_cast<std::uint64_t>(step()) << i;
  return out;
}

GaloisLfsr::GaloisLfsr(const Gf2Poly& poly, std::uint64_t seed)
    : poly_(poly), state_(seed), mask_(degree_mask(poly.degree)) {
  check(poly_, seed, mask_);
  state_ &= mask_;
}

bool GaloisLfsr::step() noexcept {
  const bool out = state_ & 1u;
  state_ >>= 1;
  if (out) state_ ^= (poly_.taps >> 1) | (std::uint64_t{1} << (poly_.degree - 1));
  return out;
}

std::uint64_t GaloisLfsr::step64() noexcept {
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 64; ++i)
    out |= static_cast<std::uint64_t>(step()) << i;
  return out;
}

std::uint64_t cycle_length(const Gf2Poly& poly, std::uint64_t seed) {
  FibonacciLfsr l(poly, seed);
  const std::uint64_t start = l.state();
  std::uint64_t n = 0;
  do {
    l.step();
    ++n;
  } while (l.state() != start);
  return n;
}

}  // namespace bsrng::lfsr
