#include "lfsr/polynomial.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <mutex>
#include <numeric>
#include <stdexcept>

namespace bsrng::lfsr {

namespace {

using u128 = uint128_t;

// Full polynomial value including the implicit leading x^n term.
u128 full_poly(const Gf2Poly& p) {
  return (u128{1} << p.degree) | p.taps;
}

unsigned deg128(u128 v) {
  unsigned d = 0;
  while (v >> (d + 1)) ++d;
  return d;
}

u128 gf2_gcd(u128 a, u128 b) {
  while (b != 0) {
    // Reduce a mod b (polynomial division by repeated aligned XOR), then swap.
    while (a != 0 && deg128(a) >= deg128(b))
      a ^= b << (deg128(a) - deg128(b));
    std::swap(a, b);
  }
  return a;
}

// ---- integer primality / factoring (for 2^n - 1) --------------------------

std::uint64_t mulmod_u64(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(u128{a} * b % m);
}

std::uint64_t powmod_u64(std::uint64_t a, std::uint64_t e, std::uint64_t m) {
  std::uint64_t r = 1 % m;
  a %= m;
  while (e) {
    if (e & 1) r = mulmod_u64(r, a, m);
    a = mulmod_u64(a, a, m);
    e >>= 1;
  }
  return r;
}

bool is_prime_u64(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 19u, 23u, 29u, 31u, 37u}) {
    if (n % p == 0) return n == p;
  }
  std::uint64_t d = n - 1;
  unsigned r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // Deterministic Miller-Rabin bases for all n < 2^64.
  for (std::uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                          23ull, 29ull, 31ull, 37ull}) {
    std::uint64_t x = powmod_u64(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (unsigned i = 1; i < r; ++i) {
      x = mulmod_u64(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t pollard_rho(std::uint64_t n) {
  if (n % 2 == 0) return 2;
  // Brent's cycle-finding variant; deterministic seed sweep keeps the
  // function reproducible.
  for (std::uint64_t c = 1;; ++c) {
    std::uint64_t x = 2, y = 2, d = 1;
    auto f = [&](std::uint64_t v) { return (mulmod_u64(v, v, n) + c) % n; };
    while (d == 1) {
      x = f(x);
      y = f(f(y));
      const std::uint64_t diff = x > y ? x - y : y - x;
      if (diff == 0) break;  // cycle without factor: retry with next c
      d = std::gcd(diff, n);
    }
    if (d != 1 && d != n) return d;
  }
}

void factor_rec(std::uint64_t n, std::vector<std::uint64_t>& out) {
  if (n == 1) return;
  if (is_prime_u64(n)) {
    out.push_back(n);
    return;
  }
  const std::uint64_t d = pollard_rho(n);
  factor_rec(d, out);
  factor_rec(n / d, out);
}

}  // namespace

std::vector<unsigned> Gf2Poly::tap_positions() const {
  std::vector<unsigned> pos;
  for (unsigned i = 0; i < degree; ++i)
    if ((taps >> i) & 1u) pos.push_back(i);
  return pos;
}

unsigned Gf2Poly::tap_count() const {
  return static_cast<unsigned>(std::popcount(taps & (degree == 64
                                                         ? ~std::uint64_t{0}
                                                         : (std::uint64_t{1} << degree) - 1)));
}

std::uint64_t gf2_mulmod(std::uint64_t a, std::uint64_t b, const Gf2Poly& p) {
  // Carry-less multiply (result degree <= 2n-2), then reduce by p.
  u128 prod = 0;
  for (unsigned i = 0; i < p.degree; ++i)
    if ((b >> i) & 1u) prod ^= u128{a} << i;
  const u128 fp = full_poly(p);
  for (int i = 2 * static_cast<int>(p.degree) - 2; i >= static_cast<int>(p.degree); --i)
    if ((prod >> i) & 1u) prod ^= fp << (static_cast<unsigned>(i) - p.degree);
  return static_cast<std::uint64_t>(prod);
}

std::uint64_t gf2_powmod(std::uint64_t a, uint128_t e, const Gf2Poly& p) {
  std::uint64_t r = 1;
  while (e) {
    if (e & 1) r = gf2_mulmod(r, a, p);
    a = gf2_mulmod(a, a, p);
    e >>= 1;
  }
  return r;
}

bool is_irreducible(const Gf2Poly& p) {
  if (p.degree == 0 || (p.taps & 1u) == 0) return false;  // x | p(x)
  if (p.degree == 1) return true;
  // x^(2^n) == x (mod p) ...
  std::uint64_t t = 2;  // the polynomial "x"
  for (unsigned i = 0; i < p.degree; ++i) t = gf2_mulmod(t, t, p);
  if (t != 2) return false;
  // ... and gcd(x^(2^(n/q)) - x, p) = 1 for every prime q | n.
  for (std::uint64_t q : prime_factors(p.degree)) {
    std::uint64_t s = 2;
    for (unsigned i = 0; i < p.degree / q; ++i) s = gf2_mulmod(s, s, p);
    if (gf2_gcd(u128{s} ^ 2u, full_poly(p)) != 1) return false;
  }
  return true;
}

bool is_primitive(const Gf2Poly& p) {
  if (!is_irreducible(p)) return false;
  const std::uint64_t order =
      p.degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << p.degree) - 1;
  for (std::uint64_t q : prime_factors(order))
    if (gf2_powmod(2 /* x */, order / q, p) == 1) return false;
  return true;
}

std::vector<std::uint64_t> prime_factors(std::uint64_t m) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t d : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull}) {
    if (m % d == 0) {
      out.push_back(d);
      while (m % d == 0) m /= d;
    }
  }
  factor_rec(m, out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Gf2Poly primitive_polynomial(unsigned degree) {
  if (degree < 3 || degree > 64)
    throw std::invalid_argument("primitive_polynomial: degree must be in [3,64]");
  static std::array<Gf2Poly, 65> cache{};
  static std::mutex mu;
  std::scoped_lock lock(mu);
  if (cache[degree].degree != 0) return cache[degree];
  // Search tap masks in increasing value order.  a_0 must be 1, and p(1) != 0
  // requires an odd total term count, i.e. an even tap-mask popcount
  // (e.g. the classic x^20 + x^17 + 1 has taps {17, 0}).
  for (std::uint64_t taps = 1;; taps += 2) {
    if (std::popcount(taps) % 2 != 0) continue;
    const Gf2Poly cand{taps, degree};
    if (is_primitive(cand)) {
      cache[degree] = cand;
      return cand;
    }
  }
}

}  // namespace bsrng::lfsr
