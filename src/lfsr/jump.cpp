#include "lfsr/jump.hpp"

#include <bit>
#include <vector>

namespace bsrng::lfsr {

TransitionMatrix TransitionMatrix::identity(unsigned degree) {
  TransitionMatrix m;
  m.degree_ = degree;
  for (unsigned i = 0; i < degree; ++i) m.rows_[i] = std::uint64_t{1} << i;
  return m;
}

TransitionMatrix TransitionMatrix::companion(const Gf2Poly& poly) {
  // One Fibonacci clock: new stage i = stage i+1 (i < n-1); new stage n-1 =
  // parity(state & taps).
  TransitionMatrix m;
  m.degree_ = poly.degree;
  for (unsigned i = 0; i + 1 < poly.degree; ++i)
    m.rows_[i] = std::uint64_t{1} << (i + 1);
  m.rows_[poly.degree - 1] = poly.taps;
  return m;
}

TransitionMatrix TransitionMatrix::multiply(const TransitionMatrix& other) const {
  // (this * other): row i of the product = XOR of other's rows selected by
  // row i of this (row-vector convention: state' = M * state with
  // state'_i = parity(rows_[i] & state)).
  TransitionMatrix out;
  out.degree_ = degree_;
  for (std::size_t i = 0; i < degree_; ++i) {
    std::uint64_t acc = 0;
    std::uint64_t sel = rows_[i];
    while (sel) {
      const int j = std::countr_zero(sel);
      sel &= sel - 1;
      acc ^= other.rows_[static_cast<std::size_t>(j)];
    }
    out.rows_[i] = acc;
  }
  return out;
}

TransitionMatrix::TransitionMatrix(const Gf2Poly& poly, std::uint64_t steps) {
  TransitionMatrix result = identity(poly.degree);
  TransitionMatrix base = companion(poly);
  while (steps) {
    if (steps & 1) result = result.multiply(base);
    base = base.multiply(base);
    steps >>= 1;
  }
  *this = result;
}

std::uint64_t TransitionMatrix::apply(std::uint64_t state) const noexcept {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < degree_; ++i)
    out |= static_cast<std::uint64_t>(std::popcount(rows_[i] & state) & 1)
           << i;
  return out;
}

void jump(FibonacciLfsr& lfsr, std::uint64_t steps) {
  const TransitionMatrix m(lfsr.poly(), steps);
  lfsr.set_state(m.apply(lfsr.state()));
}

template <typename W>
void jump(BitslicedLfsr<W>& lfsr, std::uint64_t steps) {
  const TransitionMatrix m(lfsr.poly(), steps);
  const unsigned n = lfsr.poly().degree;
  std::vector<W> in(n), out(n);
  lfsr.copy_stages(in);
  m.apply_slices(in.data(), out.data());
  lfsr.set_stages(out);
}

template void jump<bitslice::SliceU32>(BitslicedLfsr<bitslice::SliceU32>&,
                                       std::uint64_t);
template void jump<bitslice::SliceU64>(BitslicedLfsr<bitslice::SliceU64>&,
                                       std::uint64_t);
template void jump<bitslice::SliceV128>(BitslicedLfsr<bitslice::SliceV128>&,
                                        std::uint64_t);
template void jump<bitslice::SliceV256>(BitslicedLfsr<bitslice::SliceV256>&,
                                        std::uint64_t);
template void jump<bitslice::SliceV512>(BitslicedLfsr<bitslice::SliceV512>&,
                                        std::uint64_t);

}  // namespace bsrng::lfsr
