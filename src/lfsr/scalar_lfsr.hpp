// scalar_lfsr.hpp — conventional row-major LFSRs (the paper's baseline).
//
// These are the "naive implementation" of §4.3/Fig. 7: one register word per
// LFSR instance, costly shift+mask every clock.  They serve three roles:
//   1. the ablation baseline for bench_lfsr_ablation (E6),
//   2. the per-lane oracle the bitsliced LFSR is equivalence-tested against,
//   3. period/property-test subjects (period 2^n - 1 for primitive p).
#pragma once

#include <cstdint>

#include "lfsr/polynomial.hpp"

namespace bsrng::lfsr {

// Fibonacci (many-to-one) configuration of Fig. 1: the output bit is taken
// from stage 0; the linear combination of the tap stages re-enters at stage
// n-1 as the register shifts down.
class FibonacciLfsr {
 public:
  FibonacciLfsr(const Gf2Poly& poly, std::uint64_t seed);

  // Advance one clock; returns the output bit (stage 0 before the shift).
  bool step() noexcept;

  // Advance 64 clocks, packing outputs LSB-first.
  std::uint64_t step64() noexcept;

  std::uint64_t state() const noexcept { return state_; }
  // Overwrite the register (used by jump-ahead); must be nonzero.
  void set_state(std::uint64_t s);
  const Gf2Poly& poly() const noexcept { return poly_; }

 private:
  Gf2Poly poly_;
  std::uint64_t state_;  // bit i = stage i
  std::uint64_t mask_;   // low `degree` bits
};

// Galois (one-to-many) configuration: the output bit is XORed into the tap
// stages as it leaves.  Produces the same sequence as the Fibonacci form for
// the same polynomial when seeded compatibly; kept as an independent
// implementation for cross-checks and because hardware specs (e.g. the
// MICKEY R register) are written in Galois form.
class GaloisLfsr {
 public:
  GaloisLfsr(const Gf2Poly& poly, std::uint64_t seed);

  bool step() noexcept;
  std::uint64_t step64() noexcept;

  std::uint64_t state() const noexcept { return state_; }

 private:
  Gf2Poly poly_;
  std::uint64_t state_;
  std::uint64_t mask_;
};

// Multiplicative order of the state cycle containing `seed` (counts clocks
// until the state first recurs).  Intended for n small enough to enumerate.
std::uint64_t cycle_length(const Gf2Poly& poly, std::uint64_t seed);

}  // namespace bsrng::lfsr
