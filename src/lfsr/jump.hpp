// jump.hpp — O(n^3 log N) jump-ahead for LFSRs.
//
// §2.2 lists "high-performance counters" among LFSR applications, and the
// multi-device scheme of §5.4 needs disjoint substreams.  For linear
// generators both reduce to computing M^N over GF(2), where M is the
// recurrence's companion matrix: jumping a 64-bit LFSR by 2^40 steps costs
// ~40 bit-matrix squarings instead of 2^40 clocks.
//
// The same matrix power advances the *bitsliced* LFSR: because every lane
// shares the polynomial, row i of M^N turns into an XOR of whole slices —
// one more place the column-major representation pays off.
#pragma once

#include <array>
#include <cstdint>

#include "lfsr/bitsliced_lfsr.hpp"
#include "lfsr/polynomial.hpp"
#include "lfsr/scalar_lfsr.hpp"

namespace bsrng::lfsr {

// Dense n x n bit matrix, row-major, n <= 64; row i bit j = M[i][j].
class TransitionMatrix {
 public:
  TransitionMatrix(const Gf2Poly& poly, std::uint64_t steps);

  unsigned degree() const noexcept { return degree_; }
  std::uint64_t row(std::size_t i) const noexcept { return rows_[i]; }

  // Apply to a packed scalar state (bit i = stage i).
  std::uint64_t apply(std::uint64_t state) const noexcept;

  // Apply to a bank of slices in stage order (slices[i] = stage i): the
  // bitsliced jump.  `out` and `in` must not alias.
  template <typename W>
  void apply_slices(const W* in, W* out) const noexcept {
    for (std::size_t i = 0; i < degree_; ++i) {
      W acc = bitslice::SliceTraits<W>::zero();
      const std::uint64_t r = rows_[i];
      for (std::size_t j = 0; j < degree_; ++j)
        if ((r >> j) & 1u) acc ^= in[j];
      out[i] = acc;
    }
  }

 private:
  static TransitionMatrix identity(unsigned degree);
  static TransitionMatrix companion(const Gf2Poly& poly);
  TransitionMatrix() = default;
  TransitionMatrix multiply(const TransitionMatrix& other) const;

  unsigned degree_ = 0;
  std::array<std::uint64_t, 64> rows_{};
};

// Advance a scalar LFSR by `steps` clocks in O(log steps) matrix work.
void jump(FibonacciLfsr& lfsr, std::uint64_t steps);

// Advance every lane of a bitsliced LFSR by `steps` clocks.
template <typename W>
void jump(BitslicedLfsr<W>& lfsr, std::uint64_t steps);

extern template void jump<bitslice::SliceU32>(BitslicedLfsr<bitslice::SliceU32>&,
                                              std::uint64_t);
extern template void jump<bitslice::SliceU64>(BitslicedLfsr<bitslice::SliceU64>&,
                                              std::uint64_t);
extern template void jump<bitslice::SliceV128>(
    BitslicedLfsr<bitslice::SliceV128>&, std::uint64_t);
extern template void jump<bitslice::SliceV256>(
    BitslicedLfsr<bitslice::SliceV256>&, std::uint64_t);
extern template void jump<bitslice::SliceV512>(
    BitslicedLfsr<bitslice::SliceV512>&, std::uint64_t);

}  // namespace bsrng::lfsr
