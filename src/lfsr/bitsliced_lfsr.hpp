// bitsliced_lfsr.hpp — the paper's core construction (§4.3, Fig. 8).
//
// State is held column-major: slice i carries stage i of W independent LFSRs
// with identical feedback polynomial but uncorrelated seeds.  One clock of
// all W instances costs
//     k        full-width XORs (k = tap count)      [vs 32 x k bit-XORs]
//     0        shift/mask operations                 [vs W shift+masks]
// because "shifting" is a circular renaming of slice indices — exactly the
// register reference swapping of Fig. 8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "lfsr/polynomial.hpp"

namespace bsrng::lfsr {

template <typename W>
class BitslicedLfsr {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;

  // Seeds one LFSR per lane; seeds[j] must be nonzero in the low n bits.
  BitslicedLfsr(const Gf2Poly& poly, std::span<const std::uint64_t> seeds);

  // Convenience: expand a single master seed into `lanes` distinct nonzero
  // lane seeds (splitmix64 stream, §4.3's "carefully initialized to
  // eliminate statistical correlation").
  BitslicedLfsr(const Gf2Poly& poly, std::uint64_t master_seed);

  // One clock of all W instances; returns the output slice (stage 0 of every
  // lane, i.e. W output bits — "each thread generates 32 random bits").
  W step() noexcept {
    const std::size_t n = degree_;
    const W out = state_[head_];
    W fb = bitslice::SliceTraits<W>::zero();
    for (const unsigned t : taps_) {
      std::size_t idx = head_ + t;
      if (idx >= n) idx -= n;
      fb ^= state_[idx];
    }
    state_[head_] = fb;  // the vacated stage-0 slot becomes stage n-1
    ++head_;
    if (head_ == n) head_ = 0;
    return out;
  }

  // Generate `out.size()` output slices.
  void generate(std::span<W> out) noexcept {
    for (auto& s : out) s = step();
  }

  // Stage s of lane j (test/introspection; not on the hot path).
  bool stage_bit(std::size_t stage, std::size_t lane) const {
    std::size_t idx = head_ + stage;
    if (idx >= degree_) idx -= degree_;
    return bitslice::SliceTraits<W>::get_lane(state_[idx], lane);
  }

  std::uint64_t lane_state(std::size_t lane) const {
    std::uint64_t s = 0;
    for (std::size_t i = 0; i < degree_; ++i)
      s |= std::uint64_t{stage_bit(i, lane)} << i;
    return s;
  }

  const Gf2Poly& poly() const noexcept { return poly_; }

  // Stage-ordered state access for jump-ahead: element i = stage i slice.
  void copy_stages(std::span<W> out) const {
    for (std::size_t i = 0; i < degree_; ++i) {
      std::size_t idx = head_ + i;
      if (idx >= degree_) idx -= degree_;
      out[i] = state_[idx];
    }
  }
  void set_stages(std::span<const W> in) {
    for (std::size_t i = 0; i < degree_; ++i) state_[i] = in[i];
    head_ = 0;
  }

 private:
  Gf2Poly poly_;
  std::size_t degree_;
  std::vector<unsigned> taps_;
  std::vector<W> state_;  // circular: stage i lives at (head_ + i) mod degree_
  std::size_t head_ = 0;
};

// splitmix64 — the seed-expansion stream used for lane initialization.
std::uint64_t splitmix64(std::uint64_t& x) noexcept;

extern template class BitslicedLfsr<bitslice::SliceU32>;
extern template class BitslicedLfsr<bitslice::SliceU64>;
extern template class BitslicedLfsr<bitslice::SliceV128>;
extern template class BitslicedLfsr<bitslice::SliceV256>;
extern template class BitslicedLfsr<bitslice::SliceV512>;
extern template class BitslicedLfsr<bitslice::CountingSlice>;

}  // namespace bsrng::lfsr
