#include "stream/checkpoint.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsrng::stream {

namespace {

constexpr std::uint8_t kMagic[4] = {'B', 'S', 'C', 'K'};

// FNV-1a 64 over the digest preimage.  Same constants as the fault
// registry's name hash; duplicated here so src/stream stays a leaf module
// (lfsr only) instead of pulling in src/fault.
std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

// Everything up to (not including) the digest field.
std::vector<std::uint8_t> prefix_bytes(const StreamCheckpoint& ck) {
  if (ck.algorithm.empty() || ck.algorithm.size() > 255)
    throw std::invalid_argument(
        "checkpoint: algorithm name must be 1..255 bytes");
  std::vector<std::uint8_t> out;
  out.reserve(kCheckpointFixedBytes + ck.algorithm.size());
  out.insert(out.end(), kMagic, kMagic + 4);
  append_u32le(out, kCheckpointVersion);
  out.push_back(static_cast<std::uint8_t>(ck.algorithm.size()));
  out.insert(out.end(), ck.algorithm.begin(), ck.algorithm.end());
  append_u64le(out, ck.seed);
  append_u64le(out, ck.ref.tenant);
  append_u64le(out, ck.ref.stream);
  append_u64le(out, ck.ref.shard);
  append_u64le(out, ck.offset);
  return out;
}

}  // namespace

std::uint64_t checkpoint_digest(const StreamCheckpoint& ck) {
  std::vector<std::uint8_t> pre = prefix_bytes(ck);
  // Appending the derived seed makes the digest pin the derivation schedule
  // (kSplitmixGamma, the level tags, the finalizer), not just the fields.
  append_u64le(pre, ck.ref.derive_seed(ck.seed));
  std::uint64_t x = fnv1a64(pre.data(), pre.size()) ^
                    core::keyschedule::kSplitmixGamma;
  return lfsr::splitmix64(x);
}

std::vector<std::uint8_t> serialize_checkpoint(const StreamCheckpoint& ck) {
  std::vector<std::uint8_t> out = prefix_bytes(ck);
  append_u64le(out, checkpoint_digest(ck));
  return out;
}

std::optional<StreamCheckpoint> parse_checkpoint(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kCheckpointFixedBytes) return std::nullopt;
  if (!std::equal(kMagic, kMagic + 4, bytes.data())) return std::nullopt;
  if (read_u32le(bytes.data() + 4) != kCheckpointVersion) return std::nullopt;
  const std::size_t alen = bytes[8];
  if (alen == 0) return std::nullopt;
  // Exact-size match: trailing garbage means the blob is not one of ours.
  if (bytes.size() != kCheckpointFixedBytes + alen) return std::nullopt;
  StreamCheckpoint ck;
  ck.algorithm.assign(reinterpret_cast<const char*>(bytes.data() + 9), alen);
  const std::uint8_t* p = bytes.data() + 9 + alen;
  ck.seed = read_u64le(p);
  ck.ref.tenant = read_u64le(p + 8);
  ck.ref.stream = read_u64le(p + 16);
  ck.ref.shard = read_u64le(p + 24);
  ck.offset = read_u64le(p + 32);
  if (read_u64le(p + 40) != checkpoint_digest(ck)) return std::nullopt;
  return ck;
}

}  // namespace bsrng::stream
