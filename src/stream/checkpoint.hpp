// checkpoint.hpp — serializable O(1) stream positions.
//
// A StreamCheckpoint names a byte position in one substream: the algorithm,
// the root seed, the StreamRef path, and the byte offset.  It is everything
// a consumer needs to resume byte-exactly — across process restarts, across
// machines, across server worker counts — because the stream itself is a
// pure function of those fields (the restart-determinism invariant).
//
// Wire format (little-endian, exact size, no trailing bytes tolerated):
//
//   "BSCK"                     4  magic
//   u32  version               4  kCheckpointVersion
//   u8   alen | algo bytes     1 + alen (alen >= 1)
//   u64  seed                  8  root seed
//   u64  tenant|stream|shard  24  the StreamRef path
//   u64  offset                8  first byte of the resumed span
//   u64  digest                8  schedule digest (see below)
//
// The digest is a pure function of every preceding byte PLUS the derived
// (post-StreamRef) seed, folded through the pinned splitmix64 finalizer.
// Including the *derived* seed makes the digest a fingerprint of the key
// schedule itself: if the derivation constants ever changed, every
// checkpoint minted under the old schedule would fail parse instead of
// silently resuming a different stream.  parse_checkpoint is strict —
// wrong magic, unknown version, truncation, trailing garbage, or a digest
// mismatch all yield nullopt, so "it parsed" means "it is safe to resume".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stream/stream_ref.hpp"

namespace bsrng::stream {

inline constexpr std::uint32_t kCheckpointVersion = 1;
// Fixed bytes around the algorithm name: magic(4) + version(4) + alen(1) +
// seed(8) + ref(24) + offset(8) + digest(8).
inline constexpr std::size_t kCheckpointFixedBytes = 57;

struct StreamCheckpoint {
  std::string algorithm;
  std::uint64_t seed = 0;   // root seed (pre-derivation)
  StreamRef ref{};          // substream path under that root
  std::uint64_t offset = 0; // next byte of the canonical derived stream

  friend bool operator==(const StreamCheckpoint&,
                         const StreamCheckpoint&) = default;
};

// The schedule digest serialize_checkpoint embeds; exposed so tests can pin
// it and tools can fingerprint a checkpoint without re-serializing.
std::uint64_t checkpoint_digest(const StreamCheckpoint& ck);

// Serialize to the versioned binary format above.  Throws
// std::invalid_argument for an empty algorithm name or one longer than 255
// bytes — such a checkpoint could never round-trip.
std::vector<std::uint8_t> serialize_checkpoint(const StreamCheckpoint& ck);

// Strict parse; nullopt on any structural or digest mismatch.
std::optional<StreamCheckpoint> parse_checkpoint(
    std::span<const std::uint8_t> bytes);

}  // namespace bsrng::stream
