// stream_ref.hpp — the substream tree: tenant → stream → shard addressing.
//
// The flat (algorithm, seed) identity that bsrngd shipped with forces every
// consumer to do ad-hoc seed arithmetic when it wants more than one stream.
// Shoverand (PAPERS.md) argues the right shape is a first-class hierarchical
// stream-distribution API; the paper's §5.4 reconstruction argument needs
// every node of that hierarchy to be O(1)-addressable.  A StreamRef is a
// path in a three-level tree rooted at a user seed:
//
//   root seed ── tenant t ── stream s ── shard h   →   derived seed
//
// Each edge is one application of derive_child below, built on the SAME
// pinned splitmix64 schedule as core/keyschedule.hpp (kSplitmixGamma,
// lfsr::splitmix64) — so the whole tree inherits the schedule's pinning:
// tests/stream/stream_fabric_test.cpp freezes exact derived values, and any
// change to the derivation is a deliberate, visible break.
//
// Laws (all tested):
//   identity    derive_child(p, tag, 0) == p, so StreamRef{0,0,0} is the
//               root: v1 clients and pre-fabric callers (who never mention
//               a ref) keep their historical streams byte-for-byte.
//   injectivity for a fixed parent and level, index ↦ child is injective:
//               child(i) is draw #i of the splitmix64 stream seeded at
//               parent ^ tag, i.e. mix64(parent ^ tag + i·Γ).  Γ is odd, so
//               i ↦ parent ^ tag + i·Γ is a bijection of Z/2^64, and the
//               splitmix64 finalizer is a bijection (invertible xor-shift
//               and odd-multiply steps) — distinct indices give distinct
//               children, with no collision *by construction* inside one
//               level.  Cross-level and cross-parent disjointness is the
//               generic-function argument (distinct level tags decorrelate
//               the trees) and is pinned by a collision property test over
//               a large tree sample.
//   O(1)        a derived seed costs three finalizer applications; no node
//               depends on its siblings, so any shard is rebuilt in
//               isolation (§5.4: reconstruct any slice of any stream).
//
// Leaf header: depends only on the keyschedule header (itself a leaf over
// lfsr/bitsliced_lfsr.hpp).
#pragma once

#include <cstdint>

#include "core/keyschedule.hpp"

namespace bsrng::stream {

// Level tags: arbitrary pinned odd constants, one per tree level, xor-mixed
// into the parent before indexing so the three levels draw from unrelated
// splitmix64 streams.  Changing any of these re-keys every non-root stream
// — they are part of the wire/checkpoint contract, like kSplitmixGamma.
inline constexpr std::uint64_t kTenantTag = 0xB5D15EEDC0FFEE01ull;
inline constexpr std::uint64_t kStreamTag = 0x517CC1B727220A95ull;
inline constexpr std::uint64_t kShardTag = 0x2545F4914F6CDD1Dull;

// Child `index` of `parent` at the tree level named by `tag`.  Index 0 is
// the identity (the parent itself), so an all-zero path degrades to the
// root seed; index i > 0 is draw #i of the splitmix64 stream seeded at
// parent ^ tag.
inline std::uint64_t derive_child(std::uint64_t parent, std::uint64_t tag,
                                  std::uint64_t index) noexcept {
  if (index == 0) return parent;
  std::uint64_t x =
      (parent ^ tag) + (index - 1) * core::keyschedule::kSplitmixGamma;
  return lfsr::splitmix64(x);
}

// A path in the substream tree.  {0,0,0} is the root: derive_seed is the
// identity and the stream is the historical (algorithm, seed) stream.
struct StreamRef {
  std::uint64_t tenant = 0;
  std::uint64_t stream = 0;
  std::uint64_t shard = 0;

  bool is_root() const noexcept {
    return tenant == 0 && stream == 0 && shard == 0;
  }

  // Walk root → tenant → stream → shard; three O(1) edges.
  std::uint64_t derive_seed(std::uint64_t root_seed) const noexcept {
    std::uint64_t s = derive_child(root_seed, kTenantTag, tenant);
    s = derive_child(s, kStreamTag, stream);
    return derive_child(s, kShardTag, shard);
  }

  friend bool operator==(const StreamRef&, const StreamRef&) = default;
};

}  // namespace bsrng::stream
