// grain_bs.hpp — bitsliced Grain v1 (§2.3.3, Fig. 4).
//
// Two circular banks of 80 slices (LFSR + NFSR).  Both registers shift every
// clock, so the Fig. 8 register-renaming trick applies directly: advancing
// the shared head index replaces 2 x 80 bit shifts with zero data movement,
// and f/g/h evaluate as full-width gates over all W lanes at once.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/grain_ref.hpp"

namespace bsrng::ciphers {

template <typename W>
class GrainBs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  static constexpr std::size_t kRegBits = GrainRef::kRegBits;
  using KeyBytes = std::array<std::uint8_t, GrainRef::kKeyBytes>;
  using IvBytes = std::array<std::uint8_t, GrainRef::kIvBytes>;

  GrainBs(std::span<const KeyBytes> keys, std::span<const IvBytes> ivs);
  explicit GrainBs(std::uint64_t master_seed);

  // One keystream slice (bit j = lane j's next keystream bit).
  W step() noexcept {
    const W z = output_slice();
    shift(lfsr_feedback(), nfsr_feedback());
    return z;
  }

  void generate(std::span<W> out) noexcept {
    for (auto& o : out) o = step();
  }

  bool lfsr_lane_bit(std::size_t i, std::size_t lane) const {
    return bitslice::SliceTraits<W>::get_lane(s(i), lane);
  }
  bool nfsr_lane_bit(std::size_t i, std::size_t lane) const {
    return bitslice::SliceTraits<W>::get_lane(b(i), lane);
  }

 private:
  const W& s(std::size_t i) const noexcept { return s_[pos(i)]; }
  const W& b(std::size_t i) const noexcept { return b_[pos(i)]; }
  std::size_t pos(std::size_t i) const noexcept {
    std::size_t p = head_ + i;
    if (p >= kRegBits) p -= kRegBits;
    return p;
  }

  W output_slice() const noexcept;
  W lfsr_feedback() const noexcept;
  W nfsr_feedback() const noexcept;

  void shift(const W& s_in, const W& b_in) noexcept {
    // Renaming shift: stage 0 slot becomes the new stage 79 slot.
    s_[head_] = s_in;
    b_[head_] = b_in;
    ++head_;
    if (head_ == kRegBits) head_ = 0;
  }

  std::array<W, kRegBits> s_{};
  std::array<W, kRegBits> b_{};
  std::size_t head_ = 0;
};

// Per-lane (key, IV) derivation of the master-seed constructor (lane j: 10
// key bytes then 8 IV bytes off the core/keyschedule.hpp splitmix64 stream,
// in lane order), exposed for the registry's lane-range PartitionSpec shards
// and the gpusim kernels.  `first_lane` seeks the schedule to lanes
// [first_lane, first_lane + keys.size()) of the master derivation.
void derive_grain_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, GrainRef::kKeyBytes>> keys,
    std::span<std::array<std::uint8_t, GrainRef::kIvBytes>> ivs,
    std::size_t first_lane = 0);

extern template class GrainBs<bitslice::SliceU32>;
extern template class GrainBs<bitslice::SliceU64>;
extern template class GrainBs<bitslice::SliceV128>;
extern template class GrainBs<bitslice::SliceV256>;
extern template class GrainBs<bitslice::SliceV512>;
extern template class GrainBs<bitslice::CountingSlice>;

}  // namespace bsrng::ciphers
