// a51_bs.hpp — bitsliced A5/1: majority stop/go clocking as lane-wise muxes.
//
// Each lane runs an independent (key, frame) instance.  The three registers
// are slice banks; per clock, the majority slice is three AND/XOR gates, and
// each register's conditional shift is a mux cascade:
//   new stage i = clk ? stage i-1 : stage i
// evaluated top-down in place — the same pattern as MickeyBs::clock_r,
// demonstrating that the paper's technique covers the whole
// irregularly-clocked LFSR family.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/a51_ref.hpp"

namespace bsrng::ciphers {

template <typename W>
class A51Bs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  using KeyBytes = std::array<std::uint8_t, A51Ref::kKeyBytes>;

  A51Bs(std::span<const KeyBytes> keys, std::span<const std::uint32_t> frames);
  explicit A51Bs(std::uint64_t master_seed);

  W step() noexcept {
    clock_majority();
    return r1_[18] ^ r2_[21] ^ r3_[22];
  }

  void generate(std::span<W> out) noexcept {
    for (auto& o : out) o = step();
  }

  bool r1_lane_bit(std::size_t i, std::size_t lane) const {
    return bitslice::SliceTraits<W>::get_lane(r1_[i], lane);
  }

 private:
  template <std::size_t N>
  static void clock_cond(std::array<W, N>& r, const W& clk, const W& fb) noexcept {
    // Conditional shift-up: stage i := clk ? stage i-1 : stage i.
    for (std::size_t i = N; i-- > 1;) r[i] = bitslice::mux(clk, r[i - 1], r[i]);
    r[0] = bitslice::mux(clk, fb, r[0]);
  }

  template <std::size_t N>
  static void clock_uncond(std::array<W, N>& r, const W& in) noexcept {
    for (std::size_t i = N; i-- > 1;) r[i] = r[i - 1];
    r[0] = in;
  }

  void clock_all(const W& in) noexcept;
  void clock_majority() noexcept;

  std::array<W, A51Ref::kR1Bits> r1_{};
  std::array<W, A51Ref::kR2Bits> r2_{};
  std::array<W, A51Ref::kR3Bits> r3_{};
};

// Per-lane (key, frame) derivation of the master-seed constructor (lane j:
// one splitmix64 word as the 8-byte key, one masked to kFrameBits as the
// frame number, both off the core/keyschedule.hpp stream), exposed for the
// registry's lane-range PartitionSpec shards and the gpusim kernels.
// `first_lane` seeks the schedule to lanes
// [first_lane, first_lane + keys.size()).
void derive_a51_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, A51Ref::kKeyBytes>> keys,
    std::span<std::uint32_t> frames, std::size_t first_lane = 0);

extern template class A51Bs<bitslice::SliceU32>;
extern template class A51Bs<bitslice::SliceU64>;
extern template class A51Bs<bitslice::SliceV128>;
extern template class A51Bs<bitslice::SliceV256>;
extern template class A51Bs<bitslice::SliceV512>;
extern template class A51Bs<bitslice::CountingSlice>;

}  // namespace bsrng::ciphers
