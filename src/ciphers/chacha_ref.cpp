#include "ciphers/chacha_ref.hpp"

#include <bit>
#include <stdexcept>

namespace bsrng::ciphers {

namespace {
constexpr std::array<std::uint32_t, 4> kSigma = {
    0x61707865u, 0x3320646Eu, 0x79622D32u, 0x6B206574u};  // "expand 32-byte k"

std::uint32_t load_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void ChaCha20Ref::quarter_round(std::uint32_t& a, std::uint32_t& b,
                                std::uint32_t& c, std::uint32_t& d) noexcept {
  a += b; d ^= a; d = std::rotl(d, 16);
  c += d; b ^= c; b = std::rotl(b, 12);
  a += b; d ^= a; d = std::rotl(d, 8);
  c += d; b ^= c; b = std::rotl(b, 7);
}

void ChaCha20Ref::block(const std::array<std::uint32_t, 8>& key_words,
                        const std::array<std::uint32_t, 3>& nonce_words,
                        std::uint32_t counter, std::uint8_t out[64]) noexcept {
  std::array<std::uint32_t, 16> st;
  for (int i = 0; i < 4; ++i) st[static_cast<std::size_t>(i)] = kSigma[static_cast<std::size_t>(i)];
  for (int i = 0; i < 8; ++i) st[static_cast<std::size_t>(4 + i)] = key_words[static_cast<std::size_t>(i)];
  st[12] = counter;
  for (int i = 0; i < 3; ++i) st[static_cast<std::size_t>(13 + i)] = nonce_words[static_cast<std::size_t>(i)];

  std::array<std::uint32_t, 16> w = st;
  for (unsigned r = 0; r < kRounds; r += 2) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + st[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

ChaCha20Ref::ChaCha20Ref(std::span<const std::uint8_t> key,
                         std::span<const std::uint8_t> nonce,
                         std::uint32_t counter0)
    : counter_(counter0) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("ChaCha20 key must be 32 bytes");
  if (nonce.size() != kNonceBytes)
    throw std::invalid_argument("ChaCha20 nonce must be 12 bytes");
  for (std::size_t i = 0; i < 8; ++i) key_words_[i] = load_le(key.data() + 4 * i);
  for (std::size_t i = 0; i < 3; ++i)
    nonce_words_[i] = load_le(nonce.data() + 4 * i);
}

void ChaCha20Ref::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    if (buf_pos_ == kBlockBytes) {
      block(key_words_, nonce_words_, counter_++, buf_.data());
      buf_pos_ = 0;
    }
    while (buf_pos_ < kBlockBytes && i < out.size())
      out[i++] = buf_[buf_pos_++];
  }
}

}  // namespace bsrng::ciphers
