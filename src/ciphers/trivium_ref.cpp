#include "ciphers/trivium_ref.hpp"

#include <stdexcept>

namespace bsrng::ciphers {

TriviumRef::TriviumRef(std::span<const std::uint8_t> key,
                       std::span<const std::uint8_t> iv) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("Trivium key must be 80 bits");
  if (iv.size() != kIvBytes)
    throw std::invalid_argument("Trivium IV must be 80 bits");
  // (s1..s93)    <- (K1..K80, 0...0)
  // (s94..s177)  <- (IV1..IV80, 0...0)
  // (s178..s288) <- (0...0, 1, 1, 1)
  for (std::size_t i = 0; i < 80; ++i) {
    s_[i] = (key[i / 8] >> (i % 8)) & 1u;
    s_[93 + i] = (iv[i / 8] >> (i % 8)) & 1u;
  }
  s_[285] = s_[286] = s_[287] = true;
  for (std::size_t t = 0; t < kInitRounds; ++t) clock(false, nullptr);
}

void TriviumRef::clock(bool produce, bool* z) noexcept {
  // Spec indices are 1-based; s_[i] here is s_{i+1}.
  bool t1 = static_cast<bool>(s_[65] ^ s_[92]);
  bool t2 = static_cast<bool>(s_[161] ^ s_[176]);
  bool t3 = static_cast<bool>(s_[242] ^ s_[287]);
  if (produce) *z = static_cast<bool>(t1 ^ t2 ^ t3);
  t1 = static_cast<bool>(t1 ^ (s_[90] && s_[91]) ^ s_[170]);
  t2 = static_cast<bool>(t2 ^ (s_[174] && s_[175]) ^ s_[263]);
  t3 = static_cast<bool>(t3 ^ (s_[285] && s_[286]) ^ s_[68]);
  // (s1..s93) <- (t3, s1..s92), etc.: shift each register up by one.
  for (std::size_t i = 92; i >= 1; --i) s_[i] = s_[i - 1];
  s_[0] = t3;
  for (std::size_t i = 176; i >= 94; --i) s_[i] = s_[i - 1];
  s_[93] = t1;
  for (std::size_t i = 287; i >= 178; --i) s_[i] = s_[i - 1];
  s_[177] = t2;
}

bool TriviumRef::step() noexcept {
  bool z = false;
  clock(true, &z);
  return z;
}

std::uint32_t TriviumRef::step32() noexcept {
  std::uint32_t w = 0;
  for (unsigned i = 0; i < 32; ++i)
    w |= static_cast<std::uint32_t>(step()) << i;
  return w;
}

}  // namespace bsrng::ciphers
