// mickey_tables.hpp — MICKEY 2.0 constant tables (Babbage & Dodd, eSTREAM).
//
// The four 100-bit sequences below are the cipher's defining constants,
// stored exactly as in the eSTREAM reference implementation: packed in 32-bit
// words, bit i of word w = sequence element 32*w + i.
//
//   R_MASK  — RTAPS, the Galois feedback tap set of register R
//   COMP0/1 — the S-register "component" sequences (CLOCK_S intermediate)
//   FB0/1   — the S-register feedback masks selected by the control bit
//
// Provenance note (see DESIGN.md §2): the official spec PDF was not available
// offline; these words are the constants of the eSTREAM mickey-v2 reference
// source.  R_MASK has been independently cross-checked against the RTAPS list
// in the spec text; all tables are exercised by reference<->bitsliced
// equivalence and NIST statistical tests.
#pragma once

#include <array>
#include <cstdint>

namespace bsrng::ciphers::mickey {

inline constexpr std::size_t kStateBits = 100;
inline constexpr std::size_t kKeyBits = 80;
inline constexpr std::size_t kMaxIvBits = 80;
inline constexpr std::size_t kPreclocks = 100;

inline constexpr std::array<std::uint32_t, 4> kRMask = {
    0x1279327Bu, 0xB5546660u, 0xDF87818Fu, 0x00000003u};
inline constexpr std::array<std::uint32_t, 4> kComp0 = {
    0x6AA97A30u, 0x7942A809u, 0x057EBFEAu, 0x00000006u};
inline constexpr std::array<std::uint32_t, 4> kComp1 = {
    0xDD629E9Au, 0xE3A21D63u, 0x91C23DD7u, 0x00000001u};
inline constexpr std::array<std::uint32_t, 4> kFb0 = {
    0x9FFA7FAFu, 0xAF4A9381u, 0x9CEC5802u, 0x00000001u};
inline constexpr std::array<std::uint32_t, 4> kFb1 = {
    0x4C8CB877u, 0x4911B063u, 0x40FBC52Bu, 0x00000008u};

constexpr bool table_bit(const std::array<std::uint32_t, 4>& t, std::size_t i) {
  return (t[i / 32] >> (i % 32)) & 1u;
}

// Control/tap positions from the spec (Fig. 2 of the paper).
inline constexpr std::size_t kCtrlR_S = 34;  // CONTROL_BIT_R = s34 ^ r67
inline constexpr std::size_t kCtrlR_R = 67;
inline constexpr std::size_t kCtrlS_S = 67;  // CONTROL_BIT_S = s67 ^ r33
inline constexpr std::size_t kCtrlS_R = 33;
inline constexpr std::size_t kMixTap = 50;   // INPUT_BIT_R mixes in s50

}  // namespace bsrng::ciphers::mickey
