// chacha_ref.hpp — scalar ChaCha20 reference (RFC 8439).
//
// Included as the modern ARX (add-rotate-xor) stream cipher counterpoint:
// §4.1 argues bitslicing wins by reducing work to "hardware-friendly basic
// bit-level operations"; ChaCha's 32-bit additions are exactly the operation
// that does NOT reduce — the bitsliced variant (chacha_bs) needs a
// ripple-carry adder circuit per add, quantifying why the paper's approach
// targets LFSR-based ciphers.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::ciphers {

class ChaCha20Ref {
 public:
  static constexpr std::size_t kKeyBytes = 32;
  static constexpr std::size_t kNonceBytes = 12;
  static constexpr std::size_t kBlockBytes = 64;
  static constexpr unsigned kRounds = 20;

  ChaCha20Ref(std::span<const std::uint8_t> key,
              std::span<const std::uint8_t> nonce,
              std::uint32_t counter0 = 0);

  // The pure block function: 64 keystream bytes for block counter `counter`.
  static void block(const std::array<std::uint32_t, 8>& key_words,
                    const std::array<std::uint32_t, 3>& nonce_words,
                    std::uint32_t counter, std::uint8_t out[64]) noexcept;

  // Streaming interface (counter auto-increments; residue buffered).
  void fill(std::span<std::uint8_t> out);

  static void quarter_round(std::uint32_t& a, std::uint32_t& b,
                            std::uint32_t& c, std::uint32_t& d) noexcept;

 private:
  std::array<std::uint32_t, 8> key_words_{};
  std::array<std::uint32_t, 3> nonce_words_{};
  std::uint32_t counter_;
  std::array<std::uint8_t, kBlockBytes> buf_{};
  std::size_t buf_pos_ = kBlockBytes;  // empty
};

}  // namespace bsrng::ciphers
