#include "ciphers/grain_ref.hpp"

#include <stdexcept>

namespace bsrng::ciphers {

GrainRef::GrainRef(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> iv) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("Grain v1 key must be 80 bits");
  if (iv.size() != kIvBytes)
    throw std::invalid_argument("Grain v1 IV must be 64 bits");
  for (std::size_t i = 0; i < kRegBits; ++i)
    b_[i] = (key[i / 8] >> (i % 8)) & 1u;
  for (std::size_t i = 0; i < 64; ++i)
    s_[i] = (iv[i / 8] >> (i % 8)) & 1u;
  for (std::size_t i = 64; i < kRegBits; ++i) s_[i] = true;
  // 160 initialization clocks with the output bit fed back into both
  // registers (spec §2.1: "the cipher is clocked 160 times without
  // producing keystream").
  for (std::size_t t = 0; t < kInitClocks; ++t) {
    const bool z = output_bit();
    shift(lfsr_feedback() != z, nfsr_feedback() != z);
  }
}

bool GrainRef::lfsr_feedback() const noexcept {
  // f(x) = 1 + x^18 + x^29 + x^42 + x^57 + x^67 + x^80:
  // s_{i+80} = s_{i+62} + s_{i+51} + s_{i+38} + s_{i+23} + s_{i+13} + s_i.
  return static_cast<bool>(s_[62] ^ s_[51] ^ s_[38] ^ s_[23] ^ s_[13] ^ s_[0]);
}

bool GrainRef::nfsr_feedback() const noexcept {
  const auto& b = b_;
  bool g = static_cast<bool>(b[62] ^ b[60] ^ b[52] ^ b[45] ^ b[37] ^ b[33] ^
                            b[28] ^ b[21] ^ b[14] ^ b[9] ^ b[0]);
  g = g != (b[63] && b[60]);
  g = g != (b[37] && b[33]);
  g = g != (b[15] && b[9]);
  g = g != (b[60] && b[52] && b[45]);
  g = g != (b[33] && b[28] && b[21]);
  g = g != (b[63] && b[45] && b[28] && b[9]);
  g = g != (b[60] && b[52] && b[37] && b[33]);
  g = g != (b[63] && b[60] && b[21] && b[15]);
  g = g != (b[63] && b[60] && b[52] && b[45] && b[37]);
  g = g != (b[33] && b[28] && b[21] && b[15] && b[9]);
  g = g != (b[52] && b[45] && b[37] && b[33] && b[28] && b[21]);
  // b_{i+80} = s_i + g(...).
  return g != s_[0];
}

bool GrainRef::output_bit() const noexcept {
  const bool x0 = s_[3], x1 = s_[25], x2 = s_[46], x3 = s_[64], x4 = b_[63];
  bool h = x1 != x4;
  h = h != (x0 && x3);
  h = h != (x2 && x3);
  h = h != (x3 && x4);
  h = h != (x0 && x1 && x2);
  h = h != (x0 && x2 && x3);
  h = h != (x0 && x2 && x4);
  h = h != (x1 && x2 && x4);
  h = h != (x2 && x3 && x4);
  // z = sum_{k in A} b_{i+k} + h,  A = {1, 2, 4, 10, 31, 43, 56}.
  bool z = h;
  for (const std::size_t k : {1u, 2u, 4u, 10u, 31u, 43u, 56u}) z = z != b_[k];
  return z;
}

void GrainRef::shift(bool s_in, bool b_in) noexcept {
  for (std::size_t i = 0; i + 1 < kRegBits; ++i) {
    s_[i] = s_[i + 1];
    b_[i] = b_[i + 1];
  }
  s_[kRegBits - 1] = s_in;
  b_[kRegBits - 1] = b_in;
}

bool GrainRef::step() noexcept {
  const bool z = output_bit();
  shift(lfsr_feedback(), nfsr_feedback());
  return z;
}

std::uint32_t GrainRef::step32() noexcept {
  std::uint32_t w = 0;
  for (unsigned i = 0; i < 32; ++i)
    w |= static_cast<std::uint32_t>(step()) << i;
  return w;
}

}  // namespace bsrng::ciphers
