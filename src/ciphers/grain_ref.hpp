// grain_ref.hpp — scalar Grain v1 reference (Hell, Johansson & Meier; §2.3.3).
//
// 80-bit key, 64-bit IV, one keystream bit per clock after 160 blank rounds.
// Bit-at-a-time oracle for the bitsliced engine; bytes are consumed
// LSB-first (bit 0 of byte 0 is k_0 / iv_0).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::ciphers {

class GrainRef {
 public:
  static constexpr std::size_t kRegBits = 80;
  static constexpr std::size_t kKeyBytes = 10;
  static constexpr std::size_t kIvBytes = 8;
  static constexpr std::size_t kInitClocks = 160;

  GrainRef(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv);

  // Next keystream bit.
  bool step() noexcept;

  std::uint32_t step32() noexcept;

  bool lfsr_bit(std::size_t i) const noexcept { return s_[i]; }
  bool nfsr_bit(std::size_t i) const noexcept { return b_[i]; }

 private:
  bool output_bit() const noexcept;
  bool lfsr_feedback() const noexcept;
  bool nfsr_feedback() const noexcept;
  void shift(bool s_in, bool b_in) noexcept;

  std::array<bool, kRegBits> s_{};  // LFSR
  std::array<bool, kRegBits> b_{};  // NFSR
};

}  // namespace bsrng::ciphers
