#include "bitslice/gatecount.hpp"
#include "ciphers/mickey_bs.hpp"

#include <stdexcept>

#include "core/keyschedule.hpp"

namespace bsrng::ciphers {

using namespace mickey;
namespace bs = bsrng::bitslice;

template <typename W>
MickeyBs<W>::MickeyBs(std::span<const KeyBytes> keys,
                      std::span<const IvBytes> ivs, std::size_t iv_bits) {
  if (keys.size() != lanes || ivs.size() != lanes)
    throw std::invalid_argument("MickeyBs: need one key and IV per lane");
  if (iv_bits > kMaxIvBits || iv_bits % 8 != 0)
    throw std::invalid_argument("MickeyBs: iv_bits must be a multiple of 8, <= 80");
  for (auto& x : r_) x = bs::SliceTraits<W>::zero();
  for (auto& x : s_) x = bs::SliceTraits<W>::zero();

  const auto load = [&](auto bit_of_lane, std::size_t nbits) {
    for (std::size_t i = 0; i < nbits; ++i) {
      W in = bs::SliceTraits<W>::zero();
      for (std::size_t j = 0; j < lanes; ++j)
        bs::SliceTraits<W>::set_lane(in, j, bit_of_lane(j, i));
      clock_kg(/*mixing=*/true, in);
    }
  };
  load([&](std::size_t j, std::size_t i) {
    return (ivs[j][i / 8] >> (i % 8)) & 1u;
  }, iv_bits);
  load([&](std::size_t j, std::size_t i) {
    return (keys[j][i / 8] >> (i % 8)) & 1u;
  }, kKeyBits);
  for (std::size_t i = 0; i < kPreclocks; ++i)
    clock_kg(/*mixing=*/true, bs::SliceTraits<W>::zero());
}

void derive_mickey_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, kKeyBits / 8>> keys,
    std::span<std::array<std::uint8_t, kMaxIvBits / 8>> ivs,
    std::size_t first_lane) {
  namespace ks = bsrng::core::keyschedule;
  constexpr std::uint64_t kWordsPerLane =
      ks::words_for_bytes(kKeyBits / 8) + ks::words_for_bytes(kMaxIvBits / 8);
  ks::SeedStream s(master_seed);
  s.skip_words(first_lane * kWordsPerLane);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    s.fill(keys[j]);
    s.fill(ivs[j]);
  }
}

template <typename W>
MickeyBs<W>::MickeyBs(std::uint64_t master_seed) {
  std::vector<KeyBytes> keys(lanes);
  std::vector<IvBytes> ivs(lanes);
  derive_mickey_lane_params(master_seed, keys, ivs);
  *this = MickeyBs(keys, ivs, kMaxIvBits);
}

template <typename W>
void MickeyBs<W>::clock_r(const W& input, const W& control) noexcept {
  const W fb = r_[99] ^ input;
  // In-place downward sweep: new r_i = r_{i-1} ^ (RTAPS_i ? fb : 0)
  //                                  ^ (control & old r_i).
  // Downward order keeps r_[i-1] unmodified when read — the bitsliced
  // equivalent of Fig. 8's register renaming, with the Galois taps and the
  // irregular-clock term folded into the same full-width XORs.
  for (std::size_t i = kStateBits - 1; i >= 1; --i) {
    W next = r_[i - 1] ^ (control & r_[i]);
    if (table_bit(kRMask, i)) next ^= fb;
    r_[i] = next;
  }
  W next0 = control & r_[0];
  if (table_bit(kRMask, 0)) next0 ^= fb;
  r_[0] = next0;
}

template <typename W>
void MickeyBs<W>::clock_s(const W& input, const W& control) noexcept {
  const W fb = s_[99] ^ input;
  // Per-lane FB mask selection: control chooses FB1 over FB0 lane-wise.
  const W fb_ctrl = fb & control;             // applied where only FB1 taps
  const W fb_nctrl = bs::andnot(fb, control);  // applied where only FB0 taps
  const auto contrib = [&](std::size_t i) {
    const bool f0 = table_bit(kFb0, i), f1 = table_bit(kFb1, i);
    if (f0 && f1) return fb;
    if (f0) return fb_nctrl;
    if (f1) return fb_ctrl;
    return bs::SliceTraits<W>::zero();
  };
  // Two passes: hat into a temporary bank, then the FB contribution.  (A
  // one-pass rolling update was tried and measured ~2.5x slower at W = 512:
  // the loop-carried `prev` value defeats GCC's vectorizer.)
  std::array<W, kStateBits> hat;
  hat[0] = bs::SliceTraits<W>::zero();
  for (std::size_t i = 1; i <= 98; ++i) {
    const W a = table_bit(kComp0, i) ? ~s_[i] : s_[i];
    const W b = table_bit(kComp1, i) ? ~s_[i + 1] : s_[i + 1];
    hat[i] = s_[i - 1] ^ (a & b);
  }
  hat[99] = s_[98];
  for (std::size_t i = 0; i < kStateBits; ++i) s_[i] = hat[i] ^ contrib(i);
}

template <typename W>
void MickeyBs<W>::clock_kg(bool mixing, const W& input) noexcept {
  const W control_r = s_[kCtrlR_S] ^ r_[kCtrlR_R];
  const W control_s = s_[kCtrlS_S] ^ r_[kCtrlS_R];
  const W input_r = mixing ? input ^ s_[kMixTap] : input;
  clock_r(input_r, control_r);
  clock_s(input, control_s);
}

template class MickeyBs<bs::SliceU32>;
template class MickeyBs<bs::SliceU64>;
template class MickeyBs<bs::SliceV128>;
template class MickeyBs<bs::SliceV256>;
template class MickeyBs<bs::SliceV512>;
template class MickeyBs<bs::CountingSlice>;

}  // namespace bsrng::ciphers
