// trivium_ref.hpp — scalar Trivium reference (De Cannière & Preneel).
//
// eSTREAM Profile 2 hardware portfolio member, added beyond the paper's
// three ciphers as the scalability extension (§6 future work: "other
// crypto-systems").  288-bit state in three shift registers, 80-bit key,
// 80-bit IV, 1152 initialization rounds.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::ciphers {

class TriviumRef {
 public:
  static constexpr std::size_t kStateBits = 288;
  static constexpr std::size_t kKeyBytes = 10;
  static constexpr std::size_t kIvBytes = 10;
  static constexpr std::size_t kInitRounds = 4 * kStateBits;

  TriviumRef(std::span<const std::uint8_t> key,
             std::span<const std::uint8_t> iv);

  bool step() noexcept;
  std::uint32_t step32() noexcept;

  // 1-based state access as in the spec (s1..s288), for tests.
  bool state_bit(std::size_t i) const noexcept { return s_[i - 1]; }

 private:
  void clock(bool produce, bool* z) noexcept;

  std::array<bool, kStateBits> s_{};
};

}  // namespace bsrng::ciphers
