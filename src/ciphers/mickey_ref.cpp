#include "ciphers/mickey_ref.hpp"

#include <stdexcept>

namespace bsrng::ciphers {

using namespace mickey;

MickeyRef::MickeyRef(std::span<const std::uint8_t> key,
                     std::span<const std::uint8_t> iv) {
  if (key.size() != kKeyBits / 8)
    throw std::invalid_argument("MICKEY 2.0 key must be 80 bits");
  if (iv.size() * 8 > kMaxIvBits)
    throw std::invalid_argument("MICKEY 2.0 IV must be at most 80 bits");
  // Load IV, then key, with mixing; then 100 mixing pre-clocks (spec order).
  for (std::size_t i = 0; i < iv.size() * 8; ++i)
    clock_kg(/*mixing=*/true, (iv[i / 8] >> (i % 8)) & 1u);
  for (std::size_t i = 0; i < kKeyBits; ++i)
    clock_kg(/*mixing=*/true, (key[i / 8] >> (i % 8)) & 1u);
  for (std::size_t i = 0; i < kPreclocks; ++i) clock_kg(/*mixing=*/true, false);
}

void MickeyRef::clock_r(bool input_bit, bool control_bit) noexcept {
  const bool feedback = r_[99] != input_bit;
  std::array<bool, kStateBits> next{};
  for (std::size_t i = kStateBits - 1; i >= 1; --i) next[i] = r_[i - 1];
  next[0] = false;
  for (std::size_t i = 0; i < kStateBits; ++i) {
    if (table_bit(kRMask, i) && feedback) next[i] = !next[i];
    if (control_bit) next[i] = next[i] != r_[i];
  }
  r_ = next;
}

void MickeyRef::clock_s(bool input_bit, bool control_bit) noexcept {
  const bool feedback = s_[99] != input_bit;
  std::array<bool, kStateBits> hat{};
  hat[0] = false;
  for (std::size_t i = 1; i <= 98; ++i)
    hat[i] = s_[i - 1] !=
             ((s_[i] != table_bit(kComp0, i)) && (s_[i + 1] != table_bit(kComp1, i)));
  hat[99] = s_[98];
  const auto& fb = control_bit ? kFb1 : kFb0;
  for (std::size_t i = 0; i < kStateBits; ++i)
    s_[i] = hat[i] != (table_bit(fb, i) && feedback);
}

void MickeyRef::clock_kg(bool mixing, bool input_bit) noexcept {
  const bool control_bit_r = s_[kCtrlR_S] != r_[kCtrlR_R];
  const bool control_bit_s = s_[kCtrlS_S] != r_[kCtrlS_R];
  const bool input_bit_r = mixing ? (input_bit != s_[kMixTap]) : input_bit;
  const bool input_bit_s = input_bit;
  clock_r(input_bit_r, control_bit_r);
  clock_s(input_bit_s, control_bit_s);
}

bool MickeyRef::step() noexcept {
  const bool z = r_[0] != s_[0];
  clock_kg(/*mixing=*/false, false);
  return z;
}

std::uint32_t MickeyRef::step32() noexcept {
  std::uint32_t w = 0;
  for (unsigned i = 0; i < 32; ++i)
    w |= static_cast<std::uint32_t>(step()) << i;
  return w;
}

}  // namespace bsrng::ciphers
