// chacha_bs.hpp — bitsliced ChaCha20: the ARX counter-example.
//
// Lane j computes block counter0 + j of the same (key, nonce) stream, so W
// lanes fill 64*W keystream bytes per block evaluation — structurally the
// same CTR parallelism as AesCtrBs.  But ChaCha's additions must be built
// from gates: a 32-bit add costs a 158-gate ripple-carry circuit where the
// scalar CPU pays one instruction.  bench_sbox_ablation/EXPERIMENTS E9/E10
// use the CountingSlice audit of this engine to quantify the paper's
// implicit claim that bitslicing suits XOR/AND/shift ciphers, not ARX.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/chacha_ref.hpp"

namespace bsrng::ciphers {

template <typename W>
class ChaCha20Bs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  using Word = std::array<W, 32>;  // one bitsliced 32-bit word

  ChaCha20Bs(std::span<const std::uint8_t> key,
             std::span<const std::uint8_t> nonce, std::uint32_t counter0 = 0);

  // Byte-identical to ChaCha20Ref::fill for the same key/nonce/counter.
  void fill(std::span<std::uint8_t> out);

  // --- bitsliced ARX primitives (exposed for unit tests / gate audits) ---
  static void add32(Word& a, const Word& b) noexcept;     // a += b (mod 2^32)
  static void xor32(Word& a, const Word& b) noexcept;     // a ^= b
  static void rotl32(Word& a, unsigned n) noexcept;       // a = rotl(a, n)
  static void quarter_round(Word& a, Word& b, Word& c, Word& d) noexcept;

 private:
  void generate_batch();

  std::array<std::uint32_t, 8> key_words_{};
  std::array<std::uint32_t, 3> nonce_words_{};
  std::uint32_t next_counter_;
  std::vector<std::uint8_t> buf_;
  std::size_t buf_pos_ = 0;
};

extern template class ChaCha20Bs<bitslice::SliceU32>;
extern template class ChaCha20Bs<bitslice::SliceU64>;
extern template class ChaCha20Bs<bitslice::SliceV128>;
extern template class ChaCha20Bs<bitslice::SliceV256>;
extern template class ChaCha20Bs<bitslice::SliceV512>;
extern template class ChaCha20Bs<bitslice::CountingSlice>;

}  // namespace bsrng::ciphers
