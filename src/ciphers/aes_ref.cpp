#include "ciphers/aes_ref.hpp"

#include <cstring>
#include <stdexcept>

namespace bsrng::ciphers {

using aes::gf_mul;
using aes::kSbox;

Aes128::Aes128(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("AES key must be 128, 192 or 256 bits");
  rounds_ = aes::rounds_for_key(key.size());
  // FIPS-197 §5.2 key expansion over 4-byte words w[0 .. 4(Nr+1)-1].
  const unsigned nk = static_cast<unsigned>(key.size() / 4);
  const unsigned total_words = 4 * (rounds_ + 1);
  std::memcpy(round_keys_.data(), key.data(), key.size());
  std::uint8_t rcon = 0x01;
  for (unsigned i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(kSbox[temp[1]] ^ rcon);
      temp[1] = kSbox[temp[2]];
      temp[2] = kSbox[temp[3]];
      temp[3] = kSbox[t0];
      rcon = gf_mul(rcon, 0x02);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& b : temp) b = kSbox[b];
    }
    for (unsigned b = 0; b < 4; ++b)
      round_keys_[4 * i + b] =
          static_cast<std::uint8_t>(round_keys_[4 * (i - nk) + b] ^ temp[b]);
  }
}

namespace {

void sub_bytes(std::uint8_t s[16]) noexcept {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

// State byte i = s[r][c] with i = 4c + r (FIPS-197 layout).
void shift_rows(std::uint8_t s[16]) noexcept {
  std::uint8_t t[16];
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) t[4 * c + r] = s[4 * ((c + r) % 4) + r];
  std::memcpy(s, t, 16);
}

void mix_columns(std::uint8_t s[16]) noexcept {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* col = s + 4 * c;
    const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    col[1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    col[3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void add_round_key(std::uint8_t s[16], const std::uint8_t* rk) noexcept {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

void Aes128::encrypt_block(const std::uint8_t in[16],
                           std::uint8_t out[16]) const noexcept {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  add_round_key(s, round_keys_.data());
  for (unsigned r = 1; r < rounds_; ++r) {
    sub_bytes(s);
    shift_rows(s);
    mix_columns(s);
    add_round_key(s, round_keys_.data() + 16 * r);
  }
  sub_bytes(s);
  shift_rows(s);
  add_round_key(s, round_keys_.data() + 16 * rounds_);
  std::memcpy(out, s, 16);
}

void aes_ctr_fill(const Aes128& cipher, std::span<const std::uint8_t> nonce12,
                  std::uint32_t counter0, std::span<std::uint8_t> out) {
  if (nonce12.size() != 12)
    throw std::invalid_argument("aes_ctr_fill: nonce must be 12 bytes");
  std::uint8_t block[16], ks[16];
  std::memcpy(block, nonce12.data(), 12);
  std::size_t produced = 0;
  std::uint32_t ctr = counter0;
  while (produced < out.size()) {
    block[12] = static_cast<std::uint8_t>(ctr >> 24);
    block[13] = static_cast<std::uint8_t>(ctr >> 16);
    block[14] = static_cast<std::uint8_t>(ctr >> 8);
    block[15] = static_cast<std::uint8_t>(ctr);
    cipher.encrypt_block(block, ks);
    const std::size_t n = std::min<std::size_t>(16, out.size() - produced);
    std::memcpy(out.data() + produced, ks, n);
    produced += n;
    ++ctr;
  }
}

}  // namespace bsrng::ciphers
