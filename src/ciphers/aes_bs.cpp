#include "bitslice/gatecount.hpp"
#include "ciphers/aes_bs.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsrng::ciphers {

namespace bs = bsrng::bitslice;

namespace {

// x^(2i) mod 0x11B for i = 0..7: the linear squaring map's column bytes.
constexpr std::array<std::uint8_t, 8> make_sq_table() {
  std::array<std::uint8_t, 8> t{};
  for (int i = 0; i < 8; ++i) {
    std::uint8_t v = 1;
    for (int k = 0; k < 2 * i; ++k) v = aes::gf_mul(v, 0x02);
    t[static_cast<std::size_t>(i)] = v;
  }
  return t;
}
inline constexpr auto kSqTable = make_sq_table();

// x^k mod 0x11B for k = 8..14: the schoolbook-product reduction rows.
constexpr std::array<std::uint8_t, 7> make_red_table() {
  std::array<std::uint8_t, 7> t{};
  std::uint8_t v = 1;
  for (int k = 0; k < 8; ++k) v = aes::gf_mul(v, 0x02);  // v = x^8
  for (int k = 0; k < 7; ++k) {
    t[static_cast<std::size_t>(k)] = v;
    v = aes::gf_mul(v, 0x02);
  }
  return t;
}
inline constexpr auto kRedTable = make_red_table();

}  // namespace

template <typename W>
void AesBs<W>::gf_mul8(const W a[8], const W b[8], W out[8]) noexcept {
  W t[15];
  for (auto& x : t) x = bs::SliceTraits<W>::zero();
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j) t[i + j] ^= a[i] & b[j];
  for (int k = 14; k >= 8; --k) {
    const std::uint8_t red = kRedTable[static_cast<std::size_t>(k - 8)];
    for (int j = 0; j < 8; ++j)
      if ((red >> j) & 1u) t[j] ^= t[k];
  }
  for (int j = 0; j < 8; ++j) out[j] = t[j];
}

template <typename W>
void AesBs<W>::gf_sq8(const W a[8], W out[8]) noexcept {
  W r[8];
  for (auto& x : r) x = bs::SliceTraits<W>::zero();
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t col = kSqTable[static_cast<std::size_t>(i)];
    for (int j = 0; j < 8; ++j)
      if ((col >> j) & 1u) r[j] ^= a[i];
  }
  for (int j = 0; j < 8; ++j) out[j] = r[j];
}

template <typename W>
void AesBs<W>::gf_inv8(const W a[8], W out[8]) noexcept {
  // a^254 via the addition chain 2,3,6,12,15,30,60,120,240,252,254:
  // 4 multiplications, 8 squarings.
  W x2[8], x3[8], x6[8], x12[8], x15[8], x240[8], x252[8];
  gf_sq8(a, x2);
  gf_mul8(x2, a, x3);
  gf_sq8(x3, x6);
  gf_sq8(x6, x12);
  gf_mul8(x12, x3, x15);
  gf_sq8(x15, x240);   // x30 (reusing buffers down the doubling ladder)
  gf_sq8(x240, x252);  // x60
  gf_sq8(x252, x240);  // x120
  gf_sq8(x240, x252);  // x240
  gf_mul8(x252, x12, x240);  // x252
  gf_mul8(x240, x2, out);    // x254
}

template <typename W>
void AesBs<W>::sbox8(W s[8]) noexcept {
  W inv[8];
  gf_inv8(s, inv);
  // Affine map: out_j = inv_j ^ inv_{j+4} ^ inv_{j+5} ^ inv_{j+6} ^ inv_{j+7}
  // (indices mod 8) ^ 0x63_j.
  for (int j = 0; j < 8; ++j) {
    W v = inv[j] ^ inv[(j + 4) % 8] ^ inv[(j + 5) % 8] ^ inv[(j + 6) % 8] ^
          inv[(j + 7) % 8];
    if ((0x63 >> j) & 1u) v = ~v;
    s[j] = v;
  }
}

template <typename W>
AesBs<W>::AesBs(std::span<const std::uint8_t> key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32)
    throw std::invalid_argument("AesBs: key must be 128/192/256 bits");
  // One schedule, broadcast to all lanes.
  const Aes128 sched(key);
  rounds_ = sched.rounds();
  rks_.assign(128 * (rounds_ + 1), bs::SliceTraits<W>::zero());
  for (unsigned r = 0; r <= rounds_; ++r) {
    const auto rk = sched.round_key(r);
    for (std::size_t i = 0; i < 16; ++i)
      for (std::size_t bit = 0; bit < 8; ++bit)
        rks_[128 * r + 8 * i + bit] = bs::splat<W>((rk[i] >> bit) & 1u);
  }
}

template <typename W>
AesBs<W>::AesBs(std::span<const Block> lane_keys) {
  if (lane_keys.size() != lanes)
    throw std::invalid_argument("AesBs: need one key per lane");
  rounds_ = aes::kRounds;  // Block keys are 128-bit
  rks_.assign(128 * (rounds_ + 1), bs::SliceTraits<W>::zero());
  for (std::size_t j = 0; j < lanes; ++j) {
    const Aes128 sched(lane_keys[j]);
    for (unsigned r = 0; r <= rounds_; ++r) {
      const auto rk = sched.round_key(r);
      for (std::size_t i = 0; i < 16; ++i)
        for (std::size_t bit = 0; bit < 8; ++bit)
          bs::SliceTraits<W>::set_lane(rks_[128 * r + 8 * i + bit], j,
                                       (rk[i] >> bit) & 1u);
    }
  }
}

template <typename W>
void AesBs<W>::add_round_key(State& st, unsigned r) const noexcept {
  const W* rk = rks_.data() + 128 * r;
  for (int i = 0; i < 128; ++i) st[static_cast<std::size_t>(i)] ^= rk[i];
}

template <typename W>
void AesBs<W>::sub_bytes(State& st) noexcept {
  for (int byte = 0; byte < 16; ++byte) sbox8(st.data() + 8 * byte);
}

template <typename W>
void AesBs<W>::shift_rows(State& st) noexcept {
  State t;
  // new s[r][c] = old s[r][(c + r) % 4]; byte index = 4c + r.
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 4; ++r) {
      const int src = 4 * ((c + r) % 4) + r, dst = 4 * c + r;
      for (int bit = 0; bit < 8; ++bit)
        t[static_cast<std::size_t>(8 * dst + bit)] =
            st[static_cast<std::size_t>(8 * src + bit)];
    }
  st = t;
}

namespace {
// xtime on 8 slices: multiply the bitsliced byte by x (wiring + cond. XOR).
template <typename W>
void xtime8(const W a[8], W out[8]) noexcept {
  const W hi = a[7];
  out[0] = hi;
  out[1] = a[0] ^ hi;
  out[2] = a[1];
  out[3] = a[2] ^ hi;
  out[4] = a[3] ^ hi;
  out[5] = a[4];
  out[6] = a[5];
  out[7] = a[6];
}
}  // namespace

template <typename W>
void AesBs<W>::mix_columns(State& st) noexcept {
  for (int c = 0; c < 4; ++c) {
    W* a0 = st.data() + 8 * (4 * c + 0);
    W* a1 = st.data() + 8 * (4 * c + 1);
    W* a2 = st.data() + 8 * (4 * c + 2);
    W* a3 = st.data() + 8 * (4 * c + 3);
    W x0[8], x1[8], x2[8], x3[8];
    xtime8<W>(a0, x0);
    xtime8<W>(a1, x1);
    xtime8<W>(a2, x2);
    xtime8<W>(a3, x3);
    for (int j = 0; j < 8; ++j) {
      const W b0 = x0[j] ^ x1[j] ^ a1[j] ^ a2[j] ^ a3[j];
      const W b1 = a0[j] ^ x1[j] ^ x2[j] ^ a2[j] ^ a3[j];
      const W b2 = a0[j] ^ a1[j] ^ x2[j] ^ x3[j] ^ a3[j];
      const W b3 = x0[j] ^ a0[j] ^ a1[j] ^ a2[j] ^ x3[j];
      a0[j] = b0;
      a1[j] = b1;
      a2[j] = b2;
      a3[j] = b3;
    }
  }
}

template <typename W>
void AesBs<W>::encrypt_slices(State& st) const noexcept {
  add_round_key(st, 0);
  for (unsigned r = 1; r < rounds_; ++r) {
    sub_bytes(st);
    shift_rows(st);
    mix_columns(st);
    add_round_key(st, r);
  }
  sub_bytes(st);
  shift_rows(st);
  add_round_key(st, rounds_);
}

template <typename W>
void AesBs<W>::encrypt_blocks(std::span<const Block> in,
                              std::span<Block> out) const {
  if (in.size() != lanes || out.size() != lanes)
    throw std::invalid_argument("AesBs: need exactly one block per lane");
  State st;
  for (int i = 0; i < 128; ++i) {
    W s = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < lanes; ++j)
      bs::SliceTraits<W>::set_lane(
          s, j, (in[j][static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u);
    st[static_cast<std::size_t>(i)] = s;
  }
  encrypt_slices(st);
  for (std::size_t j = 0; j < lanes; ++j)
    for (std::size_t byte = 0; byte < 16; ++byte) {
      std::uint8_t v = 0;
      for (std::size_t bit = 0; bit < 8; ++bit)
        v |= static_cast<std::uint8_t>(
            bs::SliceTraits<W>::get_lane(st[8 * byte + bit], j) << bit);
      out[j][byte] = v;
    }
}

// ---------------------------------------------------------------------------

template <typename W>
AesCtrBs<W>::AesCtrBs(std::span<const std::uint8_t> key16,
                      std::span<const std::uint8_t> nonce12,
                      std::uint32_t counter0)
    : cipher_(key16), next_counter_(counter0) {
  if (nonce12.size() != 12)
    throw std::invalid_argument("AesCtrBs: nonce must be 12 bytes");
  std::copy(nonce12.begin(), nonce12.end(), nonce_.begin());
}

template <typename W>
void AesCtrBs<W>::fill(std::span<std::uint8_t> out) {
  std::size_t produced = 0;
  const auto drain = [&] {
    const std::size_t n =
        std::min(buf_.size() - buf_pos_, out.size() - produced);
    std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(buf_pos_), n,
                out.begin() + static_cast<std::ptrdiff_t>(produced));
    buf_pos_ += n;
    produced += n;
  };
  drain();  // residue from the previous batch first
  typename AesBs<W>::State st;
  while (produced < out.size()) {
    // Build one batch: lane j encrypts counter next_counter_ + j.
    for (int i = 0; i < 96; ++i)
      st[static_cast<std::size_t>(i)] = bs::splat<W>(
          (nonce_[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u);
    for (int i = 96; i < 128; ++i) {
      W s = bs::SliceTraits<W>::zero();
      const int byte = i / 8, bit = i % 8;
      for (std::size_t j = 0; j < lanes; ++j) {
        const std::uint32_t ctr = next_counter_ + static_cast<std::uint32_t>(j);
        const std::uint8_t cb =
            static_cast<std::uint8_t>(ctr >> (8 * (15 - byte)));
        bs::SliceTraits<W>::set_lane(s, j, (cb >> bit) & 1u);
      }
      st[static_cast<std::size_t>(i)] = s;
    }
    cipher_.encrypt_slices(st);
    next_counter_ += static_cast<std::uint32_t>(lanes);
    // Serialize the whole batch (block order = counter order), then drain.
    buf_.resize(16 * lanes);
    buf_pos_ = 0;
    for (std::size_t j = 0; j < lanes; ++j)
      for (std::size_t byte = 0; byte < 16; ++byte) {
        std::uint8_t v = 0;
        for (std::size_t bit = 0; bit < 8; ++bit)
          v |= static_cast<std::uint8_t>(
              bs::SliceTraits<W>::get_lane(st[8 * byte + bit], j) << bit);
        buf_[16 * j + byte] = v;
      }
    drain();
  }
}

template class AesBs<bs::SliceU32>;
template class AesBs<bs::SliceU64>;
template class AesBs<bs::SliceV128>;
template class AesBs<bs::SliceV256>;
template class AesBs<bs::SliceV512>;
template class AesBs<bs::CountingSlice>;
template class AesCtrBs<bs::SliceU32>;
template class AesCtrBs<bs::SliceU64>;
template class AesCtrBs<bs::SliceV128>;
template class AesCtrBs<bs::SliceV256>;
template class AesCtrBs<bs::SliceV512>;

}  // namespace bsrng::ciphers
