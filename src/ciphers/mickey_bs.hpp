// mickey_bs.hpp — bitsliced MICKEY 2.0 (§4.4, Fig. 9).
//
// Column-major state: 2 x 100 slices (the paper's "200 registers, each
// containing 32 bits" for W = 32), lane j running an independent key/IV.
// The spec's irregular clocking — the part the designers call "not so
// straightforward" to parallelize — becomes branch-free lane-wise boolean
// algebra: the control bits are slices, and every conditional of CLOCK_R /
// CLOCK_S turns into AND/XOR gates applied to all W instances at once.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/mickey_tables.hpp"

namespace bsrng::ciphers {

template <typename W>
class MickeyBs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  using KeyBytes = std::array<std::uint8_t, mickey::kKeyBits / 8>;
  using IvBytes = std::array<std::uint8_t, mickey::kMaxIvBits / 8>;

  // One independent (key, IV) per lane; iv_bits of each IV are used
  // (multiple of 8, at most 80).
  MickeyBs(std::span<const KeyBytes> keys, std::span<const IvBytes> ivs,
           std::size_t iv_bits);

  // Convenience: derive `lanes` distinct key/IV pairs from a master seed
  // (the paper's "non-linear function to expand a carefully selected
  // pre-stored random number set", §4.4 — here a splitmix64 expansion).
  explicit MickeyBs(std::uint64_t master_seed);

  // One keystream slice: bit j = next keystream bit of lane j
  // ("each thread at each clock cycle generates 32 random bits").
  W step() noexcept {
    const W z = r_[0] ^ s_[0];
    clock_kg(/*mixing=*/false, bitslice::SliceTraits<W>::zero());
    return z;
  }

  void generate(std::span<W> out) noexcept {
    for (auto& o : out) o = step();
  }

  bool r_lane_bit(std::size_t i, std::size_t lane) const {
    return bitslice::SliceTraits<W>::get_lane(r_[i], lane);
  }
  bool s_lane_bit(std::size_t i, std::size_t lane) const {
    return bitslice::SliceTraits<W>::get_lane(s_[i], lane);
  }

 private:
  void clock_r(const W& input, const W& control) noexcept;
  void clock_s(const W& input, const W& control) noexcept;
  void clock_kg(bool mixing, const W& input) noexcept;

  std::array<W, mickey::kStateBits> r_{};
  std::array<W, mickey::kStateBits> s_{};
};

// Per-lane (key, IV) derivation used by the master-seed constructor: lane j
// draws 10 key bytes then 10 IV bytes from the splitmix64 stream
// (core/keyschedule.hpp), in lane order.  Exposed so the registry's
// PartitionSpec and the gpusim kernels can rebuild any lane range's
// parameters and shard the stream bit-identically (§5.4).  `first_lane`
// seeks the schedule: the call fills keys/ivs for lanes
// [first_lane, first_lane + keys.size()) of the master derivation.
void derive_mickey_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, mickey::kKeyBits / 8>> keys,
    std::span<std::array<std::uint8_t, mickey::kMaxIvBits / 8>> ivs,
    std::size_t first_lane = 0);

extern template class MickeyBs<bitslice::SliceU32>;
extern template class MickeyBs<bitslice::SliceU64>;
extern template class MickeyBs<bitslice::SliceV128>;
extern template class MickeyBs<bitslice::SliceV256>;
extern template class MickeyBs<bitslice::SliceV512>;
extern template class MickeyBs<bitslice::CountingSlice>;

}  // namespace bsrng::ciphers
