#include "ciphers/a51_bs.hpp"

#include <stdexcept>

#include "core/keyschedule.hpp"

namespace bsrng::ciphers {

namespace bs = bsrng::bitslice;

namespace {
// Feedback = XOR of tap stages (shift-up form: taps are the high stages).
template <typename W, std::size_t N>
W feedback(const std::array<W, N>& r, std::initializer_list<std::size_t> taps) {
  W fb = bs::SliceTraits<W>::zero();
  for (const std::size_t t : taps) fb ^= r[t];
  return fb;
}
}  // namespace

template <typename W>
A51Bs<W>::A51Bs(std::span<const KeyBytes> keys,
                std::span<const std::uint32_t> frames) {
  if (keys.size() != lanes || frames.size() != lanes)
    throw std::invalid_argument("A51Bs: need one key and frame per lane");
  for (const auto f : frames)
    if (f >> A51Ref::kFrameBits)
      throw std::invalid_argument("A51Bs: frame number must fit in 22 bits");
  for (std::size_t i = 0; i < 64; ++i) {
    W in = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < lanes; ++j)
      bs::SliceTraits<W>::set_lane(in, j, (keys[j][i / 8] >> (i % 8)) & 1u);
    clock_all(in);
  }
  for (std::size_t i = 0; i < A51Ref::kFrameBits; ++i) {
    W in = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < lanes; ++j)
      bs::SliceTraits<W>::set_lane(in, j, (frames[j] >> i) & 1u);
    clock_all(in);
  }
  for (std::size_t i = 0; i < A51Ref::kMixClocks; ++i) clock_majority();
}

void derive_a51_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, A51Ref::kKeyBytes>> keys,
    std::span<std::uint32_t> frames, std::size_t first_lane) {
  namespace ks = bsrng::core::keyschedule;
  // One word for the 8-byte key, one for the frame number.
  constexpr std::uint64_t kWordsPerLane =
      ks::words_for_bytes(A51Ref::kKeyBytes) + 1;
  ks::SeedStream s(master_seed);
  s.skip_words(first_lane * kWordsPerLane);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    s.fill(keys[j]);
    frames[j] = static_cast<std::uint32_t>(s.next_word()) &
                ((1u << A51Ref::kFrameBits) - 1);
  }
}

template <typename W>
A51Bs<W>::A51Bs(std::uint64_t master_seed) {
  std::vector<KeyBytes> keys(lanes);
  std::vector<std::uint32_t> frames(lanes);
  derive_a51_lane_params(master_seed, keys, frames);
  *this = A51Bs(keys, frames);
}

template <typename W>
void A51Bs<W>::clock_all(const W& in) noexcept {
  clock_uncond(r1_, in ^ feedback(r1_, {18, 17, 16, 13}));
  clock_uncond(r2_, in ^ feedback(r2_, {21, 20}));
  clock_uncond(r3_, in ^ feedback(r3_, {22, 21, 20, 7}));
}

template <typename W>
void A51Bs<W>::clock_majority() noexcept {
  const W b1 = r1_[8], b2 = r2_[10], b3 = r3_[10];
  const W maj = (b1 & b2) ^ (b1 & b3) ^ (b2 & b3);
  // Register clocks iff its clock bit equals the majority.
  const W c1 = ~(b1 ^ maj);
  const W c2 = ~(b2 ^ maj);
  const W c3 = ~(b3 ^ maj);
  clock_cond(r1_, c1, feedback(r1_, {18, 17, 16, 13}));
  clock_cond(r2_, c2, feedback(r2_, {21, 20}));
  clock_cond(r3_, c3, feedback(r3_, {22, 21, 20, 7}));
}

template class A51Bs<bs::SliceU32>;
template class A51Bs<bs::SliceU64>;
template class A51Bs<bs::SliceV128>;
template class A51Bs<bs::SliceV256>;
template class A51Bs<bs::SliceV512>;
template class A51Bs<bs::CountingSlice>;

}  // namespace bsrng::ciphers
