// aes_bs.hpp — fully bitsliced AES-128 and the CTR-mode PRNG on top of it
// (§2.3.2, §4.4: "we have implemented the bitsliced version of ... AES").
//
// State layout: 128 slices, slice 8*i + k = bit k of state byte i (FIPS-197
// byte order), lane j = block j.  All four round operations become gate
// networks over slices:
//   SubBytes   — GF(2^8) inversion circuit (x^254 addition chain: 4 bitsliced
//                multiplications + 8 linear squarings) + affine map.  We use
//                the derivable inversion circuit instead of a transcribed
//                Boyar-Peralta network; it costs more gates, which is exactly
//                the "complex bitsliced S-box" effect the paper reports for
//                AES (§5.2) and which bench_sbox_ablation quantifies.
//   ShiftRows  — pure slice renaming (a byte-index permutation).
//   MixColumns — xtime is a wiring permutation plus one conditional XOR, so
//                each column costs a fixed XOR network.
//   AddRoundKey— XOR with precomputed round-key slices (splat when all lanes
//                share a key).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/aes_ref.hpp"

namespace bsrng::ciphers {

template <typename W>
class AesBs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  using Block = std::array<std::uint8_t, 16>;
  using State = std::array<W, 128>;

  // All lanes share one key (the CTR PRNG configuration of Fig. 3);
  // 16/24/32 bytes select AES-128/192/256.
  explicit AesBs(std::span<const std::uint8_t> key);
  // Independent 128-bit key per lane.
  explicit AesBs(std::span<const Block> lane_keys);

  unsigned rounds() const noexcept { return rounds_; }

  // Encrypt W blocks held column-major.
  void encrypt_slices(State& st) const noexcept;

  // Encrypt W byte-blocks (lane j = blocks[j]); handles (de)interleave.
  void encrypt_blocks(std::span<const Block> in, std::span<Block> out) const;

  // --- bitsliced GF(2^8) building blocks (exposed for unit tests) ---
  static void gf_mul8(const W a[8], const W b[8], W out[8]) noexcept;
  static void gf_sq8(const W a[8], W out[8]) noexcept;
  static void gf_inv8(const W a[8], W out[8]) noexcept;
  static void sbox8(W s[8]) noexcept;

 private:
  void add_round_key(State& st, unsigned r) const noexcept;
  static void sub_bytes(State& st) noexcept;
  static void shift_rows(State& st) noexcept;
  static void mix_columns(State& st) noexcept;

  // rounds()+1 round keys x 128 slices.
  unsigned rounds_ = aes::kRounds;
  std::vector<W> rks_;
};

// CTR-mode bulk generator producing the byte-identical stream of the scalar
// aes_ctr_fill oracle: global block m is encrypted in lane m % W of batch
// m / W, and the output is re-serialized in block order.
template <typename W>
class AesCtrBs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;

  AesCtrBs(std::span<const std::uint8_t> key16,
           std::span<const std::uint8_t> nonce12, std::uint32_t counter0 = 0);

  void fill(std::span<std::uint8_t> out);

 private:
  AesBs<W> cipher_;
  std::array<std::uint8_t, 12> nonce_{};
  std::uint32_t next_counter_;
  std::vector<std::uint8_t> buf_;  // serialized batch awaiting consumption
  std::size_t buf_pos_ = 0;
};

extern template class AesBs<bitslice::SliceU32>;
extern template class AesBs<bitslice::SliceU64>;
extern template class AesBs<bitslice::SliceV128>;
extern template class AesBs<bitslice::SliceV256>;
extern template class AesBs<bitslice::SliceV512>;
extern template class AesBs<bitslice::CountingSlice>;
extern template class AesCtrBs<bitslice::SliceU32>;
extern template class AesCtrBs<bitslice::SliceU64>;
extern template class AesCtrBs<bitslice::SliceV128>;
extern template class AesCtrBs<bitslice::SliceV256>;
extern template class AesCtrBs<bitslice::SliceV512>;

}  // namespace bsrng::ciphers
