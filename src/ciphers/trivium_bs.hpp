// trivium_bs.hpp — bitsliced Trivium: three circular slice banks.
//
// Each of the three registers (93/84/111 stages) gets its own renaming head,
// so one clock of W instances costs the spec's 9 XOR + 3 AND as full-width
// slice operations and zero shifts.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/trivium_ref.hpp"

namespace bsrng::ciphers {

template <typename W>
class TriviumBs {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;
  using KeyBytes = std::array<std::uint8_t, TriviumRef::kKeyBytes>;
  using IvBytes = std::array<std::uint8_t, TriviumRef::kIvBytes>;

  TriviumBs(std::span<const KeyBytes> keys, std::span<const IvBytes> ivs);
  explicit TriviumBs(std::uint64_t master_seed);

  // Spec taps in register-local coordinates (A = s1..s93, B = s94..s177,
  // C = s178..s288; local stage i = global s_{base+i+1}):
  //   t1 = s66^s93   = A65^A92     t1' = t1 ^ s91·s92 ^ s171   = A90·A91 ^ B77
  //   t2 = s162^s177 = B68^B83     t2' = t2 ^ s175·s176 ^ s264 = B81·B82 ^ C86
  //   t3 = s243^s288 = C65^C110    t3' = t3 ^ s286·s287 ^ s69  = C108·C109 ^ A68
  W step() noexcept {
    const W t1 = a(65) ^ a(92);
    const W t2 = b(68) ^ b(83);
    const W t3 = c(65) ^ c(110);
    const W z = t1 ^ t2 ^ t3;
    const W n_b = t1 ^ (a(90) & a(91)) ^ b(77);   // becomes new s94 (B stage 0)
    const W n_c = t2 ^ (b(81) & b(82)) ^ c(86);   // becomes new s178 (C stage 0)
    const W n_a = t3 ^ (c(108) & c(109)) ^ a(68); // becomes new s1 (A stage 0)
    push(n_b, n_c, n_a);
    return z;
  }

  void generate(std::span<W> out) noexcept {
    for (auto& o : out) o = step();
  }

  // Spec-style 1-based full-state bit access for tests.
  bool state_lane_bit(std::size_t i, std::size_t lane) const;

 private:
  // Register A = s1..s93, B = s94..s177, C = s178..s288 (0-based stages).
  const W& a(std::size_t i) const noexcept { return a_[pos(head_a_, i, 93)]; }
  const W& b(std::size_t i) const noexcept { return b_[pos(head_b_, i, 84)]; }
  const W& c(std::size_t i) const noexcept { return c_[pos(head_c_, i, 111)]; }

  static std::size_t pos(std::size_t head, std::size_t i, std::size_t n) noexcept {
    std::size_t p = head + i;
    if (p >= n) p -= n;
    return p;
  }

  void push(const W& into_b, const W& into_c, const W& into_a) noexcept;

  std::array<W, 93> a_{};
  std::array<W, 84> b_{};
  std::array<W, 111> c_{};
  std::size_t head_a_ = 0, head_b_ = 0, head_c_ = 0;
};

// Per-lane (key, IV) derivation of the master-seed constructor (lane j: 10
// key bytes then 10 IV bytes off the core/keyschedule.hpp splitmix64
// stream, in lane order), exposed for the registry's lane-range
// PartitionSpec shards and the gpusim kernels.  `first_lane` seeks the
// schedule to lanes [first_lane, first_lane + keys.size()).
void derive_trivium_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, TriviumRef::kKeyBytes>> keys,
    std::span<std::array<std::uint8_t, TriviumRef::kIvBytes>> ivs,
    std::size_t first_lane = 0);

extern template class TriviumBs<bitslice::SliceU32>;
extern template class TriviumBs<bitslice::SliceU64>;
extern template class TriviumBs<bitslice::SliceV128>;
extern template class TriviumBs<bitslice::SliceV256>;
extern template class TriviumBs<bitslice::SliceV512>;
extern template class TriviumBs<bitslice::CountingSlice>;

}  // namespace bsrng::ciphers
