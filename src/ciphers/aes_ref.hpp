// aes_ref.hpp — scalar AES-128/192/256 reference (FIPS-197) and CTR-mode
// PRNG (§2.3.2, Fig. 3: "NIST's AES specification introduces three versions
// of Rijndael cipher with 10, 12, and 14 rounds of ciphering with 128, 192,
// and 256 bits of keys").
//
// The S-box is computed from its algebraic definition (inversion in GF(2^8)
// mod x^8+x^4+x^3+x+1 followed by the affine map) rather than transcribed,
// and all three key sizes are validated against the FIPS-197 Appendix C
// vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::ciphers {

namespace aes {

inline constexpr std::size_t kBlockBytes = 16;
// Round count for a key of `key_bytes` length (16/24/32 -> 10/12/14).
constexpr unsigned rounds_for_key(std::size_t key_bytes) {
  return static_cast<unsigned>(key_bytes / 4 + 6);
}
inline constexpr unsigned kRounds = 10;       // AES-128 (compat alias)
inline constexpr std::size_t kKeyBytes = 16;  // AES-128 (compat alias)
inline constexpr unsigned kMaxRounds = 14;

// Multiply in GF(2^8) mod x^8 + x^4 + x^3 + x + 1 (0x11B).
constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1u) r ^= a;
    const bool hi = a & 0x80u;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1Bu;
    b >>= 1;
  }
  return r;
}

constexpr std::uint8_t gf_inv(std::uint8_t a) {
  if (a == 0) return 0;
  // a^254 = a^-1 in GF(2^8).
  std::uint8_t r = 1;
  for (int e = 0; e < 254; ++e) r = gf_mul(r, a);
  return r;
}

constexpr std::uint8_t affine(std::uint8_t b) {
  std::uint8_t out = 0;
  for (int j = 0; j < 8; ++j) {
    const int bit = ((b >> j) ^ (b >> ((j + 4) % 8)) ^ (b >> ((j + 5) % 8)) ^
                     (b >> ((j + 6) % 8)) ^ (b >> ((j + 7) % 8)) ^
                     (0x63 >> j)) &
                    1;
    out |= static_cast<std::uint8_t>(bit << j);
  }
  return out;
}

constexpr std::array<std::uint8_t, 256> make_sbox() {
  std::array<std::uint8_t, 256> s{};
  for (unsigned v = 0; v < 256; ++v)
    s[v] = affine(gf_inv(static_cast<std::uint8_t>(v)));
  return s;
}

inline constexpr std::array<std::uint8_t, 256> kSbox = make_sbox();

}  // namespace aes

// AES block encryption with precomputed key schedule; 128-, 192- or 256-bit
// keys (10/12/14 rounds).
class Aes128 {
 public:
  explicit Aes128(std::span<const std::uint8_t> key);

  unsigned rounds() const noexcept { return rounds_; }

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const noexcept;

  // Round key r (0..rounds()), 16 bytes each, for the bitsliced engine.
  std::span<const std::uint8_t> round_key(unsigned r) const noexcept {
    return {round_keys_.data() + 16 * r, 16};
  }

 private:
  unsigned rounds_;
  std::array<std::uint8_t, 16 * (aes::kMaxRounds + 1)> round_keys_{};
};

// CTR-mode keystream: block m is E_K(nonce96 || big-endian32(counter0 + m)).
// Fills `out` with consecutive keystream bytes (Fig. 3's PRNG construction).
void aes_ctr_fill(const Aes128& cipher, std::span<const std::uint8_t> nonce12,
                  std::uint32_t counter0, std::span<std::uint8_t> out);

}  // namespace bsrng::ciphers
