#include "bitslice/gatecount.hpp"
#include "ciphers/trivium_bs.hpp"

#include <stdexcept>

#include "core/keyschedule.hpp"

namespace bsrng::ciphers {

namespace bs = bsrng::bitslice;

template <typename W>
TriviumBs<W>::TriviumBs(std::span<const KeyBytes> keys,
                        std::span<const IvBytes> ivs) {
  if (keys.size() != lanes || ivs.size() != lanes)
    throw std::invalid_argument("TriviumBs: need one key and IV per lane");
  for (auto& x : a_) x = bs::SliceTraits<W>::zero();
  for (auto& x : b_) x = bs::SliceTraits<W>::zero();
  for (auto& x : c_) x = bs::SliceTraits<W>::zero();
  for (std::size_t i = 0; i < 80; ++i) {
    W kv = bs::SliceTraits<W>::zero(), iv = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < lanes; ++j) {
      bs::SliceTraits<W>::set_lane(kv, j, (keys[j][i / 8] >> (i % 8)) & 1u);
      bs::SliceTraits<W>::set_lane(iv, j, (ivs[j][i / 8] >> (i % 8)) & 1u);
    }
    a_[i] = kv;  // s1..s80
    b_[i] = iv;  // s94..s173
  }
  c_[108] = c_[109] = c_[110] = bs::SliceTraits<W>::ones();  // s286..s288
  for (std::size_t t = 0; t < TriviumRef::kInitRounds; ++t) step();
}

void derive_trivium_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, TriviumRef::kKeyBytes>> keys,
    std::span<std::array<std::uint8_t, TriviumRef::kIvBytes>> ivs,
    std::size_t first_lane) {
  namespace ks = bsrng::core::keyschedule;
  constexpr std::uint64_t kWordsPerLane =
      ks::words_for_bytes(TriviumRef::kKeyBytes) +
      ks::words_for_bytes(TriviumRef::kIvBytes);
  ks::SeedStream s(master_seed);
  s.skip_words(first_lane * kWordsPerLane);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    s.fill(keys[j]);
    s.fill(ivs[j]);
  }
}

template <typename W>
TriviumBs<W>::TriviumBs(std::uint64_t master_seed) {
  std::vector<KeyBytes> keys(lanes);
  std::vector<IvBytes> ivs(lanes);
  derive_trivium_lane_params(master_seed, keys, ivs);
  *this = TriviumBs(keys, ivs);
}

template <typename W>
void TriviumBs<W>::push(const W& into_b, const W& into_c,
                        const W& into_a) noexcept {
  head_a_ = head_a_ == 0 ? 93 - 1 : head_a_ - 1;
  head_b_ = head_b_ == 0 ? 84 - 1 : head_b_ - 1;
  head_c_ = head_c_ == 0 ? 111 - 1 : head_c_ - 1;
  a_[head_a_] = into_a;
  b_[head_b_] = into_b;
  c_[head_c_] = into_c;
}

template <typename W>
bool TriviumBs<W>::state_lane_bit(std::size_t i, std::size_t lane) const {
  // i is the spec's 1-based global index.
  const W* slice;
  if (i <= 93)
    slice = &a(i - 1);
  else if (i <= 177)
    slice = &b(i - 94);
  else
    slice = &c(i - 178);
  return bs::SliceTraits<W>::get_lane(*slice, lane);
}

template class TriviumBs<bs::SliceU32>;
template class TriviumBs<bs::SliceU64>;
template class TriviumBs<bs::SliceV128>;
template class TriviumBs<bs::SliceV256>;
template class TriviumBs<bs::SliceV512>;
template class TriviumBs<bs::CountingSlice>;

}  // namespace bsrng::ciphers
