#include "bitslice/gatecount.hpp"
#include "ciphers/grain_bs.hpp"

#include <stdexcept>

#include "core/keyschedule.hpp"

// GCC 12's value-range analysis loses the head_ < kRegBits invariant when
// the rotating idx() helper is inlined into the wide-slice feedback taps and
// reports impossible (wrapped-negative) subscripts into s_/b_.  Known
// false positive; confined to this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif

namespace bsrng::ciphers {

namespace bs = bsrng::bitslice;

template <typename W>
GrainBs<W>::GrainBs(std::span<const KeyBytes> keys,
                    std::span<const IvBytes> ivs) {
  if (keys.size() != lanes || ivs.size() != lanes)
    throw std::invalid_argument("GrainBs: need one key and IV per lane");
  for (std::size_t i = 0; i < kRegBits; ++i) {
    W bv = bs::SliceTraits<W>::zero();
    W sv = i < 64 ? bs::SliceTraits<W>::zero() : bs::SliceTraits<W>::ones();
    for (std::size_t j = 0; j < lanes; ++j) {
      bs::SliceTraits<W>::set_lane(bv, j, (keys[j][i / 8] >> (i % 8)) & 1u);
      if (i < 64)
        bs::SliceTraits<W>::set_lane(sv, j, (ivs[j][i / 8] >> (i % 8)) & 1u);
    }
    b_[i] = bv;
    s_[i] = sv;
  }
  for (std::size_t t = 0; t < GrainRef::kInitClocks; ++t) {
    const W z = output_slice();
    shift(lfsr_feedback() ^ z, nfsr_feedback() ^ z);
  }
}

void derive_grain_lane_params(
    std::uint64_t master_seed,
    std::span<std::array<std::uint8_t, GrainRef::kKeyBytes>> keys,
    std::span<std::array<std::uint8_t, GrainRef::kIvBytes>> ivs,
    std::size_t first_lane) {
  namespace ks = bsrng::core::keyschedule;
  constexpr std::uint64_t kWordsPerLane =
      ks::words_for_bytes(GrainRef::kKeyBytes) +
      ks::words_for_bytes(GrainRef::kIvBytes);
  ks::SeedStream s(master_seed);
  s.skip_words(first_lane * kWordsPerLane);
  for (std::size_t j = 0; j < keys.size(); ++j) {
    s.fill(keys[j]);
    s.fill(ivs[j]);
  }
}

template <typename W>
GrainBs<W>::GrainBs(std::uint64_t master_seed) {
  std::vector<KeyBytes> keys(lanes);
  std::vector<IvBytes> ivs(lanes);
  derive_grain_lane_params(master_seed, keys, ivs);
  *this = GrainBs(keys, ivs);
}

template <typename W>
W GrainBs<W>::lfsr_feedback() const noexcept {
  return s(62) ^ s(51) ^ s(38) ^ s(23) ^ s(13) ^ s(0);
}

template <typename W>
W GrainBs<W>::nfsr_feedback() const noexcept {
  const W lin = b(62) ^ b(60) ^ b(52) ^ b(45) ^ b(37) ^ b(33) ^ b(28) ^
                b(21) ^ b(14) ^ b(9) ^ b(0);
  W g = lin;
  g ^= b(63) & b(60);
  g ^= b(37) & b(33);
  g ^= b(15) & b(9);
  g ^= b(60) & b(52) & b(45);
  g ^= b(33) & b(28) & b(21);
  g ^= b(63) & b(45) & b(28) & b(9);
  g ^= b(60) & b(52) & b(37) & b(33);
  g ^= b(63) & b(60) & b(21) & b(15);
  g ^= b(63) & b(60) & b(52) & b(45) & b(37);
  g ^= b(33) & b(28) & b(21) & b(15) & b(9);
  g ^= b(52) & b(45) & b(37) & b(33) & b(28) & b(21);
  return g ^ s(0);
}

template <typename W>
W GrainBs<W>::output_slice() const noexcept {
  const W x0 = s(3), x1 = s(25), x2 = s(46), x3 = s(64), x4 = b(63);
  W h = x1 ^ x4;
  h ^= x0 & x3;
  h ^= x2 & x3;
  h ^= x3 & x4;
  h ^= x0 & x1 & x2;
  h ^= x0 & x2 & x3;
  h ^= x0 & x2 & x4;
  h ^= x1 & x2 & x4;
  h ^= x2 & x3 & x4;
  return h ^ b(1) ^ b(2) ^ b(4) ^ b(10) ^ b(31) ^ b(43) ^ b(56);
}

template class GrainBs<bs::SliceU32>;
template class GrainBs<bs::SliceU64>;
template class GrainBs<bs::SliceV128>;
template class GrainBs<bs::SliceV256>;
template class GrainBs<bs::SliceV512>;
template class GrainBs<bs::CountingSlice>;

}  // namespace bsrng::ciphers
