#include "ciphers/a51_ref.hpp"

#include <bit>
#include <stdexcept>

namespace bsrng::ciphers {

namespace {
constexpr std::uint32_t kR1Mask = (1u << 19) - 1;
constexpr std::uint32_t kR2Mask = (1u << 22) - 1;
constexpr std::uint32_t kR3Mask = (1u << 23) - 1;
constexpr std::uint32_t kR1Taps = (1u << 18) | (1u << 17) | (1u << 16) | (1u << 13);
constexpr std::uint32_t kR2Taps = (1u << 21) | (1u << 20);
constexpr std::uint32_t kR3Taps = (1u << 22) | (1u << 21) | (1u << 20) | (1u << 7);
constexpr std::uint32_t kR1Clk = 1u << 8;
constexpr std::uint32_t kR2Clk = 1u << 10;
constexpr std::uint32_t kR3Clk = 1u << 10;

std::uint32_t clock_reg(std::uint32_t r, std::uint32_t mask,
                        std::uint32_t taps, bool in) {
  const bool fb =
      (std::popcount(r & taps) & 1) != static_cast<int>(in);
  return ((r << 1) | static_cast<std::uint32_t>(fb)) & mask;
}
}  // namespace

bool A51Ref::parity(std::uint32_t v) noexcept {
  return std::popcount(v) & 1;
}

A51Ref::A51Ref(std::span<const std::uint8_t> key, std::uint32_t frame) {
  if (key.size() != kKeyBytes)
    throw std::invalid_argument("A5/1 key must be 64 bits");
  if (frame >> kFrameBits)
    throw std::invalid_argument("A5/1 frame number must fit in 22 bits");
  // 64 key clocks then 22 frame clocks, all registers running.
  for (std::size_t i = 0; i < 64; ++i)
    clock_all((key[i / 8] >> (i % 8)) & 1u);
  for (std::size_t i = 0; i < kFrameBits; ++i)
    clock_all((frame >> i) & 1u);
  // 100 mix clocks under majority rule, output discarded.
  for (std::size_t i = 0; i < kMixClocks; ++i) clock_majority();
}

void A51Ref::clock_all(bool in) noexcept {
  r1_ = clock_reg(r1_, kR1Mask, kR1Taps, in);
  r2_ = clock_reg(r2_, kR2Mask, kR2Taps, in);
  r3_ = clock_reg(r3_, kR3Mask, kR3Taps, in);
}

void A51Ref::clock_majority() noexcept {
  const bool b1 = r1_ & kR1Clk, b2 = r2_ & kR2Clk, b3 = r3_ & kR3Clk;
  const bool maj = (b1 && b2) || (b1 && b3) || (b2 && b3);
  if (b1 == maj) r1_ = clock_reg(r1_, kR1Mask, kR1Taps, false);
  if (b2 == maj) r2_ = clock_reg(r2_, kR2Mask, kR2Taps, false);
  if (b3 == maj) r3_ = clock_reg(r3_, kR3Mask, kR3Taps, false);
}

bool A51Ref::step() noexcept {
  clock_majority();
  return ((r1_ >> 18) ^ (r2_ >> 21) ^ (r3_ >> 22)) & 1u;
}

std::uint32_t A51Ref::step32() noexcept {
  std::uint32_t w = 0;
  for (unsigned i = 0; i < 32; ++i)
    w |= static_cast<std::uint32_t>(step()) << i;
  return w;
}

}  // namespace bsrng::ciphers
