// a51_ref.hpp — scalar A5/1 reference (the GSM stream cipher).
//
// Extension cipher beyond the paper's three (§6 invites "other
// crypto-systems"): three LFSRs (19/22/23 bits) with majority-rule stop/go
// clocking — the same irregular-clocking structure that makes MICKEY "not so
// straightforward" to parallelize, and therefore a second demonstration of
// the bitsliced mux technique.  A5/1 is cryptographically broken; it is
// included as a substrate/demo cipher, not as a recommended CSPRNG.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::ciphers {

class A51Ref {
 public:
  static constexpr std::size_t kR1Bits = 19, kR2Bits = 22, kR3Bits = 23;
  static constexpr std::size_t kKeyBytes = 8;   // 64-bit key
  static constexpr std::uint32_t kFrameBits = 22;
  static constexpr std::size_t kMixClocks = 100;

  // Registers shift "up": bit 0 is the feedback input, the top bit is the
  // output tap.  Taps/clock bits per the published reference implementation:
  //   R1: feedback {18,17,16,13}, clock bit 8
  //   R2: feedback {21,20},       clock bit 10
  //   R3: feedback {22,21,20,7},  clock bit 10
  A51Ref(std::span<const std::uint8_t> key, std::uint32_t frame);

  bool step() noexcept;
  std::uint32_t step32() noexcept;

  // White-box access for tests.
  std::uint32_t r1() const noexcept { return r1_; }
  std::uint32_t r2() const noexcept { return r2_; }
  std::uint32_t r3() const noexcept { return r3_; }

 private:
  static bool parity(std::uint32_t v) noexcept;
  void clock_all(bool in) noexcept;  // key/frame load: no stuttering
  void clock_majority() noexcept;

  std::uint32_t r1_ = 0, r2_ = 0, r3_ = 0;
};

}  // namespace bsrng::ciphers
