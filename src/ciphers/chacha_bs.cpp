#include "ciphers/chacha_bs.hpp"

#include <algorithm>
#include <stdexcept>

namespace bsrng::ciphers {

namespace bs = bsrng::bitslice;

namespace {
constexpr std::array<std::uint32_t, 4> kSigma = {
    0x61707865u, 0x3320646Eu, 0x79622D32u, 0x6B206574u};

std::uint32_t load_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Broadcast a scalar 32-bit word into a bitsliced word.
template <typename W>
void splat_word(std::uint32_t v, std::array<W, 32>& out) {
  for (int i = 0; i < 32; ++i)
    out[static_cast<std::size_t>(i)] = bs::splat<W>((v >> i) & 1u);
}
}  // namespace

template <typename W>
void ChaCha20Bs<W>::add32(Word& a, const Word& b) noexcept {
  // Ripple-carry adder over slices; the final carry out is discarded
  // (mod 2^32).  5 gates per bit stage.
  W carry = bs::SliceTraits<W>::zero();
  for (std::size_t i = 0; i < 32; ++i) {
    const W t = a[i] ^ b[i];
    const W s = t ^ carry;
    if (i + 1 < 32) carry = (a[i] & b[i]) | (carry & t);
    a[i] = s;
  }
}

template <typename W>
void ChaCha20Bs<W>::xor32(Word& a, const Word& b) noexcept {
  for (std::size_t i = 0; i < 32; ++i) a[i] ^= b[i];
}

template <typename W>
void ChaCha20Bs<W>::rotl32(Word& a, unsigned n) noexcept {
  // Pure renaming: no gates (the bitsliced free lunch the paper's §4.3
  // describes for shifts applies to rotations too).
  std::rotate(a.begin(), a.begin() + (32 - n), a.end());
}

template <typename W>
void ChaCha20Bs<W>::quarter_round(Word& a, Word& b, Word& c, Word& d) noexcept {
  add32(a, b); xor32(d, a); rotl32(d, 16);
  add32(c, d); xor32(b, c); rotl32(b, 12);
  add32(a, b); xor32(d, a); rotl32(d, 8);
  add32(c, d); xor32(b, c); rotl32(b, 7);
}

template <typename W>
ChaCha20Bs<W>::ChaCha20Bs(std::span<const std::uint8_t> key,
                          std::span<const std::uint8_t> nonce,
                          std::uint32_t counter0)
    : next_counter_(counter0) {
  if (key.size() != ChaCha20Ref::kKeyBytes)
    throw std::invalid_argument("ChaCha20Bs: key must be 32 bytes");
  if (nonce.size() != ChaCha20Ref::kNonceBytes)
    throw std::invalid_argument("ChaCha20Bs: nonce must be 12 bytes");
  for (std::size_t i = 0; i < 8; ++i) key_words_[i] = load_le(key.data() + 4 * i);
  for (std::size_t i = 0; i < 3; ++i)
    nonce_words_[i] = load_le(nonce.data() + 4 * i);
}

template <typename W>
void ChaCha20Bs<W>::generate_batch() {
  // Build the 16-word state: all words identical across lanes except the
  // block counter (word 12), which is counter0 + lane.
  std::array<Word, 16> st;
  for (std::size_t i = 0; i < 4; ++i) splat_word(kSigma[i], st[i]);
  for (std::size_t i = 0; i < 8; ++i) splat_word(key_words_[i], st[4 + i]);
  for (int bit = 0; bit < 32; ++bit) {
    W s = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < lanes; ++j)
      bs::SliceTraits<W>::set_lane(
          s, j,
          ((next_counter_ + static_cast<std::uint32_t>(j)) >> bit) & 1u);
    st[12][static_cast<std::size_t>(bit)] = s;
  }
  for (std::size_t i = 0; i < 3; ++i) splat_word(nonce_words_[i], st[13 + i]);

  std::array<Word, 16> w = st;
  for (unsigned r = 0; r < ChaCha20Ref::kRounds; r += 2) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (std::size_t i = 0; i < 16; ++i) add32(w[i], st[i]);

  // Serialize in block (= counter) order: lane j's 64 bytes are bytes
  // [64*j, 64*j+64) of the batch.
  buf_.resize(64 * lanes);
  buf_pos_ = 0;
  for (std::size_t j = 0; j < lanes; ++j)
    for (std::size_t i = 0; i < 16; ++i) {
      std::uint32_t v = 0;
      for (int bit = 0; bit < 32; ++bit)
        v |= static_cast<std::uint32_t>(
                 bs::SliceTraits<W>::get_lane(w[i][static_cast<std::size_t>(bit)], j))
             << bit;
      buf_[64 * j + 4 * i] = static_cast<std::uint8_t>(v);
      buf_[64 * j + 4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
      buf_[64 * j + 4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
      buf_[64 * j + 4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
    }
  next_counter_ += static_cast<std::uint32_t>(lanes);
}

template <typename W>
void ChaCha20Bs<W>::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    if (buf_pos_ == buf_.size()) generate_batch();
    const std::size_t n = std::min(buf_.size() - buf_pos_, out.size() - i);
    std::copy_n(buf_.begin() + static_cast<std::ptrdiff_t>(buf_pos_), n,
                out.begin() + static_cast<std::ptrdiff_t>(i));
    buf_pos_ += n;
    i += n;
  }
}

template class ChaCha20Bs<bs::SliceU32>;
template class ChaCha20Bs<bs::SliceU64>;
template class ChaCha20Bs<bs::SliceV128>;
template class ChaCha20Bs<bs::SliceV256>;
template class ChaCha20Bs<bs::SliceV512>;
template class ChaCha20Bs<bs::CountingSlice>;

}  // namespace bsrng::ciphers
