// mickey_ref.hpp — scalar (row-major) MICKEY 2.0 reference (§2.3.1).
//
// Bit-at-a-time implementation following the spec's CLOCK_R / CLOCK_S /
// CLOCK_KG decomposition.  Deliberately naive: this is the oracle the
// bitsliced engine is equivalence-tested against and the single-instance
// baseline for the throughput ablations.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "ciphers/mickey_tables.hpp"

namespace bsrng::ciphers {

class MickeyRef {
 public:
  // key: 80 bits (10 bytes, bit 0 of byte 0 = key bit 0).
  // iv:  0..80 bits, multiples of 8 here (iv.size() bytes).
  MickeyRef(std::span<const std::uint8_t> key, std::span<const std::uint8_t> iv);

  // Next keystream bit z = r0 ^ s0.
  bool step() noexcept;

  // Next 32 keystream bits packed LSB-first.
  std::uint32_t step32() noexcept;

  // Register introspection for equivalence tests.
  bool r_bit(std::size_t i) const noexcept { return r_[i]; }
  bool s_bit(std::size_t i) const noexcept { return s_[i]; }

 private:
  void clock_r(bool input_bit, bool control_bit) noexcept;
  void clock_s(bool input_bit, bool control_bit) noexcept;
  void clock_kg(bool mixing, bool input_bit) noexcept;

  std::array<bool, mickey::kStateBits> r_{};
  std::array<bool, mickey::kStateBits> s_{};
};

}  // namespace bsrng::ciphers
