// session.hpp — one tenant's resumable stream position inside bsrngd.
//
// A session is the pair (algorithm, seed); its byte stream is the canonical
// make_generator(algorithm, seed) stream, so "what bytes does tenant T get"
// never depends on the server: not on its worker count, not on connection
// interleaving, not on how many times the process restarted.  A client that
// remembers how many bytes it has consumed can reconnect anywhere and
// continue byte-exactly — the restart-determinism invariant of tests/net.
//
// Seek cost is the algorithm's PartitionSpec seek:
//   kCounter     every serve goes through StreamEngine::generate_at, which
//                seeks in O(1) via make_at_block (offsets past 2^40 work).
//   kLaneSlice / kSequential
//                the session holds the live canonical generator and a
//                cursor.  Sequential traffic (offset == cursor, the common
//                case) streams straight from it; a forward jump clocks it
//                past the gap; a backward jump rebuilds it from the spec and
//                clocks from zero.  O(offset) worst case, O(stream length)
//                amortized over a session's life.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace bsrng::net {

class Session {
 public:
  // Throws std::invalid_argument for unknown algorithm names (the server
  // probes algorithm_exists first and answers kUnknownAlgorithm instead).
  Session(std::string algorithm, std::uint64_t seed);

  const std::string& algorithm() const noexcept { return algorithm_; }
  std::uint64_t seed() const noexcept { return seed_; }
  core::PartitionKind kind() const noexcept { return spec_.kind; }
  // The next sequential byte offset (end of the last span served).
  std::uint64_t cursor() const noexcept { return cursor_; }

  // Bytes the session would have to clock through (discard, not serve) to
  // reach `offset`: always 0 for kCounter (O(1) seek); otherwise the
  // forward gap from the live generator's position, or the full offset when
  // the jump is backward (rebuild from the spec, clock from zero).  The
  // server bounds this with ServerConfig::max_seek_bytes before serving so
  // one hostile offset cannot pin the event loop in an unbounded discard.
  std::uint64_t seek_cost(std::uint64_t offset) const noexcept;

  // Fill `out` with bytes [offset, offset + out.size()) of the tenant's
  // canonical stream.  If generation throws partway (bad_alloc, engine
  // rejection), the live generator is dropped so the next serve rebuilds
  // from the spec — a desynced generator would silently corrupt the next
  // sequential span instead of erroring.
  void serve(core::StreamEngine& engine, std::uint64_t offset,
             std::span<std::uint8_t> out);

 private:
  std::string algorithm_;
  std::uint64_t seed_;
  core::PartitionSpec spec_;
  // kLaneSlice / kSequential live stream state: gen_ has produced exactly
  // gen_pos_ bytes of the canonical stream.
  std::unique_ptr<core::Generator> gen_;
  std::uint64_t gen_pos_ = 0;
  std::uint64_t cursor_ = 0;
};

}  // namespace bsrng::net
