// resilient_client.hpp — the self-healing bsrngd client.
//
// A Client wrapper that turns the protocol's idempotent spans into an
// at-most-once-visible, retry-forever-safe fetch: every kGenerate names an
// absolute (algorithm, seed, offset) span, so after ANY failure — connect
// refused, request deadline, mid-frame reset, server kill/restart, an
// injected fault — the client reconnects and re-asks for the exact byte
// offset it was owed, and the splice is byte-exact by the engine law
// (generate_at is positional; DESIGN.md §13 has the proof sketch).
//
// Failure handling per attempt:
//   * connect: non-blocking with connect_timeout_ms (Client's deadline).
//   * request: read_response with request_timeout_ms; a timeout closes the
//     connection (the response may still be in flight — reading it later
//     would desync the pipeline) and retries.
//   * kRetryLater: the server shed the request; sleep max(server hint,
//     backoff) and retry.  The connection stays up.
//   * kServerError / connection loss / EOF: retry, reconnecting as needed.
//   * kBadFrame, kUnknownAlgorithm, kTooLarge, kSeekTooFar, kBadVersion,
//     kBadCheckpoint: permanent — retrying cannot help; throws
//     std::runtime_error.
//
// Backoff between attempts is capped exponential with deterministic jitter
// drawn from the pinned splitmix64 schedule (SeedStream over jitter_seed) —
// never wall-clock or rand(), so a chaos run's sleep pattern is a pure
// function of its seed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/keyschedule.hpp"
#include "net/client.hpp"

namespace bsrng::net {

struct ResilientClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connect_timeout_ms = 5000;
  int request_timeout_ms = 15000;
  // Attempts per span (first try included).  Exhaustion throws.
  std::size_t max_attempts = 10;
  int backoff_base_ms = 5;
  int backoff_cap_ms = 500;
  std::uint64_t jitter_seed = 1;  // seeds the deterministic jitter stream
  // fetch() slices requests to at most this (and kMaxGenerateBytes).
  std::size_t span_bytes = 256u * 1024;
};

struct ResilientClientStats {
  std::uint64_t requests = 0;     // spans asked of the server (tries)
  std::uint64_t retries = 0;      // non-first attempts
  std::uint64_t reconnects = 0;   // connections established after the first
  std::uint64_t timeouts = 0;     // request deadlines that fired
  std::uint64_t retry_later = 0;  // kRetryLater responses honored
  std::uint64_t bytes = 0;        // payload bytes delivered
};

class ResilientClient {
 public:
  explicit ResilientClient(ResilientClientConfig config);

  // Fill `out` with bytes [offset, offset + out.size()) of the tenant
  // stream, slicing into spans and retrying each until delivered.  Throws
  // std::runtime_error on a permanent status or attempt exhaustion.
  void fetch(const std::string& algorithm, std::uint64_t seed,
             std::uint64_t offset, std::span<std::uint8_t> out);
  // Substream-addressed fetch: the same retry-forever-safe contract on the
  // stream named by `ref`.  A root ref goes out as a v1 kGenerate frame
  // (old servers keep working); any other ref uses kGenerate2 — spans stay
  // positional and idempotent either way, so the splice law is unchanged.
  void fetch(const std::string& algorithm, std::uint64_t seed,
             stream::StreamRef ref, std::uint64_t offset,
             std::span<std::uint8_t> out);

  std::vector<std::uint8_t> generate(const std::string& algorithm,
                                     std::uint64_t seed, std::uint64_t offset,
                                     std::size_t nbytes);
  std::vector<std::uint8_t> generate(const std::string& algorithm,
                                     std::uint64_t seed, stream::StreamRef ref,
                                     std::uint64_t offset, std::size_t nbytes);

  const ResilientClientStats& stats() const noexcept { return stats_; }
  bool connected() const noexcept { return client_.has_value(); }
  void close() { client_.reset(); }

 private:
  bool ensure_connected();
  // Sleep before retry `attempt` (0-based): capped exponential plus
  // deterministic jitter plus the server's retry-after hint, if any.
  void backoff(std::size_t attempt, std::uint32_t server_hint_ms);
  void fetch_span(const std::string& algorithm, std::uint64_t seed,
                  stream::StreamRef ref, std::uint64_t offset,
                  std::span<std::uint8_t> out);

  ResilientClientConfig config_;
  std::optional<Client> client_;
  core::keyschedule::SeedStream jitter_;
  bool ever_connected_ = false;
  ResilientClientStats stats_;
};

}  // namespace bsrng::net
