// client.hpp — a small blocking bsrngd client.
//
// Used by bsrng_loadgen's per-connection state machines (in non-blocking
// mode), the tests/net suites, and as the reference implementation of the
// protocol for third-party clients.  One Client is one TCP connection; it
// supports both the call-response convenience API (generate / metrics_json
// / ping) and explicit pipelining (send_* then read_response in order),
// which is what exercises the server's span batching.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/protocol.hpp"

namespace bsrng::net {

class Client {
 public:
  // Connect to a bsrngd instance; throws std::system_error on failure.
  // The connect itself is non-blocking with a deadline (EINTR retried
  // against the remaining budget) — an unresponsive host yields
  // std::errc::timed_out after `connect_timeout_ms` instead of hanging
  // forever, which used to be the one unbounded blocking call on the
  // client side.  <= 0 restores the old unbounded behavior.
  Client(const std::string& host, std::uint16_t port,
         int connect_timeout_ms = 10000);
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  int fd() const noexcept { return fd_; }
  bool connected() const noexcept { return fd_ >= 0; }
  void close();

  // --- call-response convenience -----------------------------------------

  // Bytes [offset, offset + nbytes) of the tenant stream (algorithm, seed).
  // Throws std::runtime_error carrying the server diagnostic on any non-OK
  // status or connection loss.
  std::vector<std::uint8_t> generate(const std::string& algorithm,
                                     std::uint64_t seed, std::uint64_t offset,
                                     std::uint32_t nbytes);
  // v2: the same span on the substream named by `ref` (kGenerate2).  A
  // root ref {0,0,0} is byte-identical to the v1 overload above.
  std::vector<std::uint8_t> generate(const std::string& algorithm,
                                     std::uint64_t seed, stream::StreamRef ref,
                                     std::uint64_t offset,
                                     std::uint32_t nbytes);
  // v2 handshake: returns the server's protocol version.  Throws on
  // kBadVersion (the server rejected `version`) or connection loss.
  std::uint32_t hello(std::uint32_t version = kProtocolVersion);
  // v2: mint a serialized StreamCheckpoint for a stream position — the
  // exact blob resume() (and a future process, after a restart) accepts.
  std::vector<std::uint8_t> checkpoint(const std::string& algorithm,
                                       std::uint64_t seed,
                                       stream::StreamRef ref,
                                       std::uint64_t offset);
  // v2: the next nbytes bytes from a checkpointed position (kResume).
  std::vector<std::uint8_t> resume(
      std::span<const std::uint8_t> checkpoint_blob, std::uint32_t nbytes);
  std::string metrics_json();
  void ping();

  // --- pipelining ---------------------------------------------------------

  void send_generate(const std::string& algorithm, std::uint64_t seed,
                     std::uint64_t offset, std::uint32_t nbytes);
  void send_generate(const std::string& algorithm, std::uint64_t seed,
                     stream::StreamRef ref, std::uint64_t offset,
                     std::uint32_t nbytes);
  void send_hello(std::uint32_t version);
  void send_checkpoint(const std::string& algorithm, std::uint64_t seed,
                       stream::StreamRef ref, std::uint64_t offset);
  void send_resume(std::span<const std::uint8_t> checkpoint_blob,
                   std::uint32_t nbytes);
  void send_metrics();
  void send_ping();
  // Raw bytes on the wire — the protocol-robustness tests forge malformed
  // frames with this.
  void send_raw(std::span<const std::uint8_t> bytes);

  // Next response frame, in request order.  nullopt = connection closed by
  // the server before a full frame arrived.
  std::optional<Response> read_response();

  // Deadline variant: kTimeout when no full frame arrived within
  // `timeout_ms` (buffered partial bytes are kept — a later call resumes
  // the same frame), kClosed on EOF/reset/poisoned framing.  timeout_ms < 0
  // blocks like read_response().
  enum class ReadResult { kFrame, kClosed, kTimeout };
  ReadResult read_response(Response& out, int timeout_ms);

 private:
  void send_all(std::span<const std::uint8_t> bytes);

  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
};

}  // namespace bsrng::net
