// server.hpp — bsrngd's TCP server: RNG-as-a-service over StreamEngine.
//
// One poll(2) event loop owns every connection; generation runs inline on
// the loop thread but fans out across the StreamEngine's worker pool, so a
// single request is parallel while the protocol state machine stays
// single-threaded (no locks on any connection structure).  Design rules:
//
//   batching       all complete frames buffered on a connection are decoded
//                  together, and consecutive kGenerate requests that
//                  continue the same tenant stream (same algorithm+seed,
//                  next offset) are merged into ONE StreamEngine span, then
//                  sliced back into per-request response frames in order.
//   backpressure   responses queue per connection, bounded by
//                  max_write_queue: a connection above the high watermark
//                  stops being *read* (its socket, its requests, its
//                  sessions stall) until the peer drains it below
//                  resume_write_queue.  A slow reader therefore stalls only
//                  itself; the pool and every other connection keep going.
//   half-close     a peer that shutdown(SHUT_WR)s after a pipelined burst
//                  still gets every answer: EOF marks the connection
//                  draining, buffered frames are decoded and served, and
//                  the socket closes only once the write queue empties.
//   sessions       per-connection map (algorithm, seed) -> net::Session.
//                  v2 substream requests (kGenerate2 / kResume) fold their
//                  StreamRef into the derived seed at admission, so one
//                  session/quota/batching machinery serves both protocol
//                  generations.  Sessions die with their connection;
//                  nothing about the stream's identity lives in the server
//                  (restart-safe by construction,
//                  tests/net/restart_determinism_test.cpp).
//   metrics        a kMetrics frame — or a plain HTTP "GET /metrics" on the
//                  same port — answers with telemetry::metrics().to_json().
//
// The loop's only clock is steady_clock-free poll timeouts; the one wall
// clock read (the start-time gauge exported for scrape dashboards) is
// annotated for the determinism lint, and src/net is deliberately outside
// the lint's default generation-tree roots (tests/net/net_lint_test.cpp
// pins both facts).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

namespace bsrng::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;       // 0 = ephemeral; read back via port()
  std::size_t workers = 0;      // StreamEngine pool width; 0 = hardware
  std::size_t engine_chunk_bytes = 1u << 18;
  // NUMA placement for the engine pool: 0 = detect (BSRNG_NUMA_NODES env
  // override, then sysfs, then single node); N > 0 forces N emulated
  // nodes.  Placement never changes served bytes.
  std::size_t numa_nodes = 0;
  std::size_t max_connections = 4096;
  // Per-connection response-queue watermarks (bytes pending write).
  std::size_t max_write_queue = 8u << 20;
  std::size_t resume_write_queue = 1u << 20;
  // Longest forward seek (bytes clocked through, not served) one kGenerate
  // may ask of a lane-slice/sequential session.  Beyond it the request is
  // answered kSeekTooFar — generation runs inline on the loop thread, so an
  // unbounded discard would starve every connection and wedge stop().
  // Counter-partition seeks are O(1) and not subject to this bound.
  std::size_t max_seek_bytes = 64u << 20;
  int poll_timeout_ms = 200;

  // --- robustness (all steady-clock; 0 disables the mechanism) -----------
  // Close a connection with no socket progress (bytes read or written) for
  // this long.
  int idle_timeout_ms = 60000;
  // Close a connection that has held an incomplete frame (or HTTP header)
  // this long — the slow-loris guard: a peer trickling a frame byte-by-byte
  // occupies a connection slot only for this bound.
  int partial_frame_timeout_ms = 30000;
  // Overload shedding: when the total bytes queued for write across ALL
  // connections exceed this, further kGenerate requests answer kRetryLater
  // (carrying retry_after_ms) instead of generating.  The already-queued
  // backlog still drains; a retry at the same offset is byte-exact.
  std::size_t shed_queue_bytes = 0;
  std::uint32_t retry_after_ms = 50;  // hint carried by kRetryLater
  // Per-tenant quotas; tenant identity is (algorithm, seed), across
  // connections.  max_pending bounds decoded-but-unanswered kGenerate
  // requests; bytes_per_sec is a token bucket (burst = one second's worth)
  // charged as spans are served.  Both answer kRetryLater when exceeded.
  std::size_t tenant_max_pending = 0;
  std::size_t tenant_bytes_per_sec = 0;
};

// Weakly-consistent counters mirrored into telemetry (net.* metrics); the
// leak checks in tests/net assert connections/sessions return to zero.
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t requests = 0;        // decoded requests of any type
  std::uint64_t bytes_served = 0;    // kGenerate payload bytes queued
  std::uint64_t bad_frames = 0;      // malformed/oversized frames seen
  std::uint64_t backpressure_stalls = 0;  // read-pause transitions
  std::uint64_t batched_spans = 0;   // engine spans that merged >1 request
  std::uint64_t sheds = 0;           // kRetryLater answers (overload/quota)
  std::uint64_t idle_closed = 0;     // idle / slow-loris timeout closes
  std::uint64_t drains = 0;          // graceful drains initiated
  std::size_t connections = 0;       // currently open
  std::size_t sessions = 0;          // currently live tenant sessions
};

class Server {
 public:
  explicit Server(ServerConfig config = {});
  ~Server();  // stops the loop if still running

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind + listen + spawn the event-loop thread.  Throws std::system_error
  // when the socket cannot be created or bound.
  void start();
  // Stop accepting, close every connection, join the loop thread.
  // Idempotent.  Live tenants are forgotten — by design, clients resume by
  // offset against any future server (kill/restart determinism).
  void stop();
  // Graceful drain (the SIGTERM path): stop accepting new connections,
  // keep serving each connection's pending requests, close connections as
  // they go quiet, and stop() once every connection closed or
  // `deadline_ms` elapsed — whichever is first.  Stragglers are cut off at
  // the deadline; their clients resume by offset (same invariant as stop).
  void drain(int deadline_ms);

  bool running() const noexcept;
  std::uint16_t port() const noexcept;
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bsrng::net
