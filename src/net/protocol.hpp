// protocol.hpp — bsrngd's length-prefixed wire protocol.
//
// Every message is one frame: a 4-byte little-endian body length followed
// by the body.  Request bodies start with a one-byte type tag:
//
//   kGenerate  u8 type | u8 algo_len | algo bytes | u64le seed |
//              u64le offset | u32le nbytes
//              -> bytes [offset, offset + nbytes) of the canonical stream
//                 of make_generator(algo, seed), the same bytes for every
//                 server worker count and across server restarts (the
//                 restart-determinism invariant tests/net pins).
//   kMetrics   u8 type
//              -> the process telemetry::metrics() snapshot as JSON (the
//                 same document a "GET /metrics" HTTP probe receives).
//   kPing      u8 type
//              -> empty OK (liveness / protocol handshake probe).
//   kHello     u8 type | u32le version                            (v2)
//              -> kOk with a u32le server-version payload when the client
//                 version is within [kProtocolVersionMin, kProtocolVersion];
//                 kBadVersion (same payload) otherwise.  Advisory: requests
//                 are self-describing, so a v1 client that never says hello
//                 keeps working untouched.
//   kGenerate2 u8 type | u8 algo_len | algo bytes | u64le seed |
//              u64le tenant | u64le stream | u64le shard |
//              u64le offset | u32le nbytes                        (v2)
//              -> the kGenerate contract on the SUBSTREAM named by the
//                 StreamRef path: the served bytes are exactly the v1 bytes
//                 of the derived seed StreamRef::derive_seed(seed), so
//                 {0,0,0} is byte-identical to kGenerate (tests pin this).
//   kCheckpoint u8 type | u8 algo_len | algo bytes | u64le seed |
//              u64le tenant | u64le stream | u64le shard |
//              u64le offset                                       (v2)
//              -> kOk whose payload is a serialized stream::StreamCheckpoint
//                 for that position (the blob kResume accepts).
//   kResume    u8 type | u32le nbytes | u16le ck_len | ck blob    (v2)
//              -> the next nbytes bytes from the checkpointed position.  A
//                 blob that fails the strict checkpoint parse (magic,
//                 version, structure, schedule digest) answers
//                 kBadCheckpoint; the connection stays usable.
//
// Response bodies are u8 status followed by the payload: the generated
// bytes (kOk answer to kGenerate), the JSON text (kOk answer to kMetrics),
// or an ASCII diagnostic for any non-kOk status.  A kBadFrame response is
// terminal: the server sends it and closes, because after a malformed
// frame the byte stream has no trustworthy frame boundary.  Every other
// error leaves the connection usable.
//
// Limits are part of the protocol: request bodies above kMaxRequestBody
// are rejected before buffering (the length prefix alone condemns them),
// and kGenerate.nbytes above kMaxGenerateBytes gets kTooLarge — clients
// split big reads into spans, which is what the server batches anyway.
// Lane-slice/sequential sessions reach an offset by clocking the live
// generator through the gap; a gap beyond the server's configured
// max_seek_bytes answers kSeekTooFar instead of stalling the event loop
// on an unbounded discard (counter seeks are O(1) and unlimited).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"

namespace bsrng::net {

inline constexpr std::uint8_t kGenerate = 1;
inline constexpr std::uint8_t kMetrics = 2;
inline constexpr std::uint8_t kPing = 3;
inline constexpr std::uint8_t kHello = 4;
inline constexpr std::uint8_t kGenerate2 = 5;
inline constexpr std::uint8_t kCheckpoint = 6;
inline constexpr std::uint8_t kResume = 7;

// Wire protocol versions this build speaks.  v1 is the original
// kGenerate/kMetrics/kPing surface; v2 adds StreamRef addressing and
// checkpoints.  Every v1 frame stays valid under v2 (a kGenerate is a
// kGenerate2 on the root ref), so the handshake is advisory.
inline constexpr std::uint32_t kProtocolVersionMin = 1;
inline constexpr std::uint32_t kProtocolVersion = 2;

enum class Status : std::uint8_t {
  kOk = 0,
  kBadFrame = 1,      // unparseable body; the connection is closed after
  kUnknownAlgorithm = 2,
  kTooLarge = 3,      // nbytes beyond kMaxGenerateBytes, or offset + nbytes
                      // past the end of the 2^64-byte stream address space
  kServerError = 4,
  kSeekTooFar = 5,    // forward seek beyond the server's max_seek_bytes
  kRetryLater = 6,    // shed under overload / quota / drain; the payload
                      // starts with a u32le retry-after hint (milliseconds)
                      // — see encode_retry_after.  The connection stays
                      // usable; the request was NOT served and a retry at
                      // the same offset is byte-exact.
  kBadVersion = 7,    // kHello with a version outside the supported range;
                      // payload is the u32le server version.  The
                      // connection stays usable (requests self-describe).
  kBadCheckpoint = 8, // kResume blob failed the strict checkpoint parse
                      // (magic/version/structure/schedule digest).  The
                      // connection stays usable.
};

// Longest legal request body.  1 MiB leaves room for any algorithm name
// while bounding what a hostile length prefix can make the server buffer.
inline constexpr std::size_t kMaxRequestBody = 1u << 20;
// Longest single kGenerate answer; bigger reads are client-side spans.
inline constexpr std::size_t kMaxGenerateBytes = 4u << 20;

struct GenerateRequest {
  std::string algorithm;
  std::uint64_t seed = 0;    // root seed of the tenant tree
  std::uint64_t offset = 0;  // first stream byte requested
  std::uint32_t nbytes = 0;
  // Substream path; {0,0,0} on v1 frames.  Deliberately the LAST field so
  // the long-standing positional {algo, seed, offset, nbytes} aggregate
  // init keeps meaning exactly what it always did.
  stream::StreamRef ref{};

  // The seed the substream runs on — the server folds this at admission,
  // so sessions, quotas, and batching key on the actual stream identity
  // and a v2 request is indistinguishable from the equivalent v1 one.
  std::uint64_t effective_seed() const noexcept {
    return ref.derive_seed(seed);
  }
};

struct Request {
  std::uint8_t type = 0;
  // Stream coordinates; valid for kGenerate/kGenerate2/kCheckpoint, and for
  // kResume when checkpoint_ok (filled from the parsed blob).
  GenerateRequest generate;
  std::uint32_t hello_version = 0;  // valid when type == kHello
  bool checkpoint_ok = false;       // kResume: blob parsed and digest-valid
};

// Does this decoded request consume generation quota / produce stream
// bytes?  (A kResume whose blob was rejected never will.)
inline bool is_stream_request(const Request& r) noexcept {
  return r.type == kGenerate || r.type == kGenerate2 ||
         (r.type == kResume && r.checkpoint_ok);
}

struct Response {
  Status status = Status::kOk;
  std::vector<std::uint8_t> payload;  // bytes, JSON text, or diagnostic
};

// --- encoding -------------------------------------------------------------

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint32_t read_u32le(const std::uint8_t* p);
std::uint64_t read_u64le(const std::uint8_t* p);

// Full frames (length prefix included), ready to write to a socket.
// encode_generate is the v1 frame (req.ref must be root — callers with a
// non-root ref use encode_generate2); encode_checkpoint_request ignores
// req.nbytes (a checkpoint is a position, not a span).
std::vector<std::uint8_t> encode_generate(const GenerateRequest& req);
std::vector<std::uint8_t> encode_generate2(const GenerateRequest& req);
std::vector<std::uint8_t> encode_hello(std::uint32_t version);
std::vector<std::uint8_t> encode_checkpoint_request(const GenerateRequest& req);
std::vector<std::uint8_t> encode_resume(
    std::span<const std::uint8_t> checkpoint_blob, std::uint32_t nbytes);
std::vector<std::uint8_t> encode_simple_request(std::uint8_t type);
std::vector<std::uint8_t> encode_response(Status status,
                                          std::span<const std::uint8_t> payload);

// --- decoding -------------------------------------------------------------

// Parse one request *body* (the bytes after the length prefix).  nullopt
// means malformed: unknown type, truncated fields, trailing garbage, or an
// algorithm name whose declared length disagrees with the body size.
std::optional<Request> decode_request(std::span<const std::uint8_t> body);

// Parse one response body.  nullopt for an empty body or a status byte
// outside the enum.
std::optional<Response> decode_response(std::span<const std::uint8_t> body);

// kRetryLater payload helpers: a u32le retry-after hint in milliseconds.
// decode returns nullopt when the payload is too short to carry one (old
// or foreign server) — callers fall back to their own backoff.
std::vector<std::uint8_t> encode_retry_after(std::uint32_t ms);
std::optional<std::uint32_t> decode_retry_after(
    std::span<const std::uint8_t> payload);

// Incremental frame extraction over a connection read buffer: when `buf`
// holds a complete frame at the front, copy its body into `body`, erase it
// from `buf`, and return true.  Returns false when more bytes are needed.
// Throws std::runtime_error when the length prefix exceeds `max_body` —
// the caller must treat the stream as poisoned (kBadFrame + close).
bool extract_frame(std::vector<std::uint8_t>& buf,
                   std::vector<std::uint8_t>& body, std::size_t max_body);

}  // namespace bsrng::net
