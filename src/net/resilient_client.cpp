#include "net/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "telemetry/metrics.hpp"

namespace bsrng::net {

namespace {

struct ResilientMetrics {
  telemetry::Counter& retries;
  telemetry::Counter& reconnects;
  telemetry::Counter& timeouts;
  telemetry::Counter& retry_later;

  static ResilientMetrics& get() {
    static ResilientMetrics m{
        telemetry::metrics().counter("net.client.retries"),
        telemetry::metrics().counter("net.client.reconnects"),
        telemetry::metrics().counter("net.client.timeouts"),
        telemetry::metrics().counter("net.client.retry_later"),
    };
    return m;
  }
};

bool permanent_status(Status s) {
  return s == Status::kBadFrame || s == Status::kUnknownAlgorithm ||
         s == Status::kTooLarge || s == Status::kSeekTooFar ||
         s == Status::kBadVersion || s == Status::kBadCheckpoint;
}

}  // namespace

ResilientClient::ResilientClient(ResilientClientConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed) {
  config_.max_attempts = std::max<std::size_t>(1, config_.max_attempts);
  config_.span_bytes =
      std::min(std::max<std::size_t>(1, config_.span_bytes),
               static_cast<std::size_t>(kMaxGenerateBytes));
}

bool ResilientClient::ensure_connected() {
  if (client_) return true;
  try {
    client_.emplace(config_.host, config_.port, config_.connect_timeout_ms);
  } catch (const std::exception&) {
    return false;
  }
  if (ever_connected_) {
    ++stats_.reconnects;
    ResilientMetrics::get().reconnects.add();
  }
  ever_connected_ = true;
  return true;
}

void ResilientClient::backoff(std::size_t attempt,
                              std::uint32_t server_hint_ms) {
  // delay = min(cap, base * 2^attempt), halved and topped back up with a
  // deterministic jitter draw so synchronized clients desynchronize — the
  // classic "equal jitter" scheme, off the pinned splitmix64 stream.
  const std::uint64_t base = std::max(1, config_.backoff_base_ms);
  const std::uint64_t cap = std::max<std::uint64_t>(
      base, static_cast<std::uint64_t>(std::max(1, config_.backoff_cap_ms)));
  const std::uint64_t exp =
      attempt >= 20 ? cap : std::min(cap, base << attempt);
  const std::uint64_t half = exp / 2;
  const std::uint64_t jit = half == 0 ? 0 : jitter_.next_word() % (half + 1);
  const std::uint64_t delay =
      std::max<std::uint64_t>(half + jit, server_hint_ms);
  if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

void ResilientClient::fetch_span(const std::string& algorithm,
                                 std::uint64_t seed, stream::StreamRef ref,
                                 std::uint64_t offset,
                                 std::span<std::uint8_t> out) {
  std::string last_error = "unreachable";
  for (std::size_t attempt = 0; attempt < config_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      ResilientMetrics::get().retries.add();
    }
    if (!ensure_connected()) {
      last_error = "connect failed";
      backoff(attempt, 0);
      continue;
    }
    std::uint32_t hint = 0;
    try {
      ++stats_.requests;
      // Root refs stay on the v1 frame so old servers keep working.
      if (ref.is_root())
        client_->send_generate(algorithm, seed, offset,
                               static_cast<std::uint32_t>(out.size()));
      else
        client_->send_generate(algorithm, seed, ref, offset,
                               static_cast<std::uint32_t>(out.size()));
      Response resp;
      const Client::ReadResult r =
          client_->read_response(resp, config_.request_timeout_ms);
      if (r == Client::ReadResult::kFrame) {
        if (resp.status == Status::kOk) {
          if (resp.payload.size() == out.size()) {
            std::copy(resp.payload.begin(), resp.payload.end(), out.begin());
            stats_.bytes += out.size();
            return;
          }
          // A wrong-sized kOk payload means the pipeline desynced; the
          // connection cannot be trusted for frame boundaries anymore.
          last_error = "short payload";
          client_.reset();
        } else if (resp.status == Status::kRetryLater) {
          ++stats_.retry_later;
          ResilientMetrics::get().retry_later.add();
          hint = decode_retry_after(resp.payload).value_or(0);
          last_error = "shed (retry later)";
        } else if (permanent_status(resp.status)) {
          throw std::runtime_error(
              "ResilientClient: permanent server status " +
              std::to_string(static_cast<int>(resp.status)) + ": " +
              std::string(resp.payload.begin(), resp.payload.end()));
        } else {
          // kServerError: transient, the connection stays usable.
          last_error = "server error";
        }
      } else if (r == Client::ReadResult::kTimeout) {
        ++stats_.timeouts;
        ResilientMetrics::get().timeouts.add();
        last_error = "request timeout";
        client_.reset();
      } else {
        last_error = "connection lost";
        client_.reset();
      }
    } catch (const std::system_error& e) {
      last_error = e.what();
      client_.reset();
    }
    backoff(attempt, hint);
  }
  throw std::runtime_error("ResilientClient: span at offset " +
                           std::to_string(offset) + " failed after " +
                           std::to_string(config_.max_attempts) +
                           " attempts; last error: " + last_error);
}

void ResilientClient::fetch(const std::string& algorithm, std::uint64_t seed,
                            std::uint64_t offset,
                            std::span<std::uint8_t> out) {
  fetch(algorithm, seed, stream::StreamRef{}, offset, out);
}

void ResilientClient::fetch(const std::string& algorithm, std::uint64_t seed,
                            stream::StreamRef ref, std::uint64_t offset,
                            std::span<std::uint8_t> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t n = std::min(config_.span_bytes, out.size() - done);
    fetch_span(algorithm, seed, ref, offset + done, out.subspan(done, n));
    done += n;
  }
}

std::vector<std::uint8_t> ResilientClient::generate(
    const std::string& algorithm, std::uint64_t seed, std::uint64_t offset,
    std::size_t nbytes) {
  return generate(algorithm, seed, stream::StreamRef{}, offset, nbytes);
}

std::vector<std::uint8_t> ResilientClient::generate(
    const std::string& algorithm, std::uint64_t seed, stream::StreamRef ref,
    std::uint64_t offset, std::size_t nbytes) {
  std::vector<std::uint8_t> out(nbytes);
  fetch(algorithm, seed, ref, offset, out);
  return out;
}

}  // namespace bsrng::net
