#include "net/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "fault/fault.hpp"

namespace bsrng::net {

namespace {

using Clock = std::chrono::steady_clock;

// Client-side syscall injection points (resolved once; disarmed cost is a
// relaxed load + branch per send/recv).
struct ClientFaults {
  fault::FaultPoint& write_short;
  fault::FaultPoint& read_reset;

  static ClientFaults& get() {
    static ClientFaults f{
        fault::faults().point("net.client.write_short"),
        fault::faults().point("net.client.read_reset"),
    };
    return f;
  }
};

// Milliseconds left until `deadline`, clamped at >= 0.
int ms_until(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

void set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0)
    throw std::system_error(errno, std::generic_category(), "fcntl");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0)
    throw std::system_error(errno, std::generic_category(), "fcntl");
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               int connect_timeout_ms) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("Client: bad host address " + host);
  }
  const auto fail = [&](int err, const char* what) {
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), what);
  };
  try {
    if (connect_timeout_ms > 0) set_nonblocking(fd_, true);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    if (connect_timeout_ms <= 0 || errno != EINPROGRESS)
      fail(errno, "connect");
    // Non-blocking connect in flight: wait for writability against the
    // deadline, retrying EINTR with the remaining budget each time.
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(connect_timeout_ms);
    for (;;) {
      pollfd pfd{fd_, POLLOUT, 0};
      const int remaining = ms_until(deadline);
      const int n = ::poll(&pfd, 1, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail(errno, "connect poll");
      }
      if (n == 0) fail(ETIMEDOUT, "connect");
      break;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
      fail(errno, "connect getsockopt");
    if (err != 0) fail(err, "connect");
  }
  if (connect_timeout_ms > 0) {
    try {
      set_nonblocking(fd_, false);
    } catch (...) {
      ::close(fd_);
      fd_ = -1;
      throw;
    }
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    std::size_t len = bytes.size() - off;
    // Injected short write: the kernel accepting 1 byte is a legal send()
    // outcome; the loop must (and does) continue from the new offset.
    if (ClientFaults::get().write_short.fire() && len > 1) len = 1;
    const ssize_t w = ::send(fd_, bytes.data() + off, len, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "send");
    }
    off += static_cast<std::size_t>(w);
  }
}

void Client::send_generate(const std::string& algorithm, std::uint64_t seed,
                           std::uint64_t offset, std::uint32_t nbytes) {
  send_all(encode_generate({algorithm, seed, offset, nbytes}));
}

void Client::send_generate(const std::string& algorithm, std::uint64_t seed,
                           stream::StreamRef ref, std::uint64_t offset,
                           std::uint32_t nbytes) {
  send_all(encode_generate2({algorithm, seed, offset, nbytes, ref}));
}

void Client::send_hello(std::uint32_t version) {
  send_all(encode_hello(version));
}

void Client::send_checkpoint(const std::string& algorithm, std::uint64_t seed,
                             stream::StreamRef ref, std::uint64_t offset) {
  send_all(encode_checkpoint_request({algorithm, seed, offset, 0, ref}));
}

void Client::send_resume(std::span<const std::uint8_t> checkpoint_blob,
                         std::uint32_t nbytes) {
  send_all(encode_resume(checkpoint_blob, nbytes));
}

void Client::send_metrics() { send_all(encode_simple_request(kMetrics)); }

void Client::send_ping() { send_all(encode_simple_request(kPing)); }

void Client::send_raw(std::span<const std::uint8_t> bytes) {
  send_all(bytes);
}

Client::ReadResult Client::read_response(Response& out, int timeout_ms) {
  std::vector<std::uint8_t> body;
  const bool bounded = timeout_ms >= 0;
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           bounded ? timeout_ms : 0);
  for (;;) {
    // Responses can carry kMaxGenerateBytes payloads plus framing.
    try {
      if (extract_frame(rbuf_, body, kMaxGenerateBytes + 64)) {
        std::optional<Response> resp = decode_response(body);
        if (!resp) return ReadResult::kClosed;  // unknown status byte
        out = std::move(*resp);
        return ReadResult::kFrame;
      }
    } catch (const std::runtime_error&) {
      return ReadResult::kClosed;  // nonsense length prefix: broken peer
    }
    if (bounded) {
      pollfd pfd{fd_, POLLIN, 0};
      const int n = ::poll(&pfd, 1, ms_until(deadline));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ReadResult::kClosed;
      }
      if (n == 0) return ReadResult::kTimeout;
    }
    if (ClientFaults::get().read_reset.fire()) {
      errno = ECONNRESET;
      return ReadResult::kClosed;
    }
    std::uint8_t buf[65536];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + r);
      continue;
    }
    if (r == 0) return ReadResult::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ReadResult::kClosed;
  }
}

std::optional<Response> Client::read_response() {
  Response resp;
  if (read_response(resp, -1) != ReadResult::kFrame) return std::nullopt;
  return resp;
}

std::vector<std::uint8_t> Client::generate(const std::string& algorithm,
                                           std::uint64_t seed,
                                           std::uint64_t offset,
                                           std::uint32_t nbytes) {
  send_generate(algorithm, seed, offset, nbytes);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error(
        "Client: server status " +
        std::to_string(static_cast<int>(resp->status)) + ": " +
        std::string(resp->payload.begin(), resp->payload.end()));
  if (resp->payload.size() != nbytes)
    throw std::runtime_error("Client: short generate payload");
  return std::move(resp->payload);
}

std::vector<std::uint8_t> Client::generate(const std::string& algorithm,
                                           std::uint64_t seed,
                                           stream::StreamRef ref,
                                           std::uint64_t offset,
                                           std::uint32_t nbytes) {
  send_generate(algorithm, seed, ref, offset, nbytes);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error(
        "Client: server status " +
        std::to_string(static_cast<int>(resp->status)) + ": " +
        std::string(resp->payload.begin(), resp->payload.end()));
  if (resp->payload.size() != nbytes)
    throw std::runtime_error("Client: short generate payload");
  return std::move(resp->payload);
}

std::uint32_t Client::hello(std::uint32_t version) {
  send_hello(version);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error("Client: protocol version rejected");
  if (resp->payload.size() < 4)
    throw std::runtime_error("Client: short hello payload");
  return read_u32le(resp->payload.data());
}

std::vector<std::uint8_t> Client::checkpoint(const std::string& algorithm,
                                             std::uint64_t seed,
                                             stream::StreamRef ref,
                                             std::uint64_t offset) {
  send_checkpoint(algorithm, seed, ref, offset);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error(
        "Client: checkpoint failed: " +
        std::string(resp->payload.begin(), resp->payload.end()));
  return std::move(resp->payload);
}

std::vector<std::uint8_t> Client::resume(
    std::span<const std::uint8_t> checkpoint_blob, std::uint32_t nbytes) {
  send_resume(checkpoint_blob, nbytes);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error(
        "Client: resume failed: " +
        std::string(resp->payload.begin(), resp->payload.end()));
  if (resp->payload.size() != nbytes)
    throw std::runtime_error("Client: short resume payload");
  return std::move(resp->payload);
}

std::string Client::metrics_json() {
  send_metrics();
  std::optional<Response> resp = read_response();
  if (!resp || resp->status != Status::kOk)
    throw std::runtime_error("Client: metrics request failed");
  return {resp->payload.begin(), resp->payload.end()};
}

void Client::ping() {
  send_ping();
  std::optional<Response> resp = read_response();
  if (!resp || resp->status != Status::kOk)
    throw std::runtime_error("Client: ping failed");
}

}  // namespace bsrng::net
