#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace bsrng::net {

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(), "socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::invalid_argument("Client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(), "connect");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), rbuf_(std::move(other.rbuf_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void Client::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "send");
    }
    off += static_cast<std::size_t>(w);
  }
}

void Client::send_generate(const std::string& algorithm, std::uint64_t seed,
                           std::uint64_t offset, std::uint32_t nbytes) {
  send_all(encode_generate({algorithm, seed, offset, nbytes}));
}

void Client::send_metrics() { send_all(encode_simple_request(kMetrics)); }

void Client::send_ping() { send_all(encode_simple_request(kPing)); }

void Client::send_raw(std::span<const std::uint8_t> bytes) {
  send_all(bytes);
}

std::optional<Response> Client::read_response() {
  std::vector<std::uint8_t> body;
  for (;;) {
    // Responses can carry kMaxGenerateBytes payloads plus framing.
    try {
      if (extract_frame(rbuf_, body, kMaxGenerateBytes + 64))
        return decode_response(body);
    } catch (const std::runtime_error&) {
      return std::nullopt;  // nonsense length prefix: treat as broken peer
    }
    std::uint8_t buf[65536];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r > 0) {
      rbuf_.insert(rbuf_.end(), buf, buf + r);
      continue;
    }
    if (r == 0) return std::nullopt;
    if (errno == EINTR) continue;
    return std::nullopt;
  }
}

std::vector<std::uint8_t> Client::generate(const std::string& algorithm,
                                           std::uint64_t seed,
                                           std::uint64_t offset,
                                           std::uint32_t nbytes) {
  send_generate(algorithm, seed, offset, nbytes);
  std::optional<Response> resp = read_response();
  if (!resp) throw std::runtime_error("Client: connection lost");
  if (resp->status != Status::kOk)
    throw std::runtime_error(
        "Client: server status " +
        std::to_string(static_cast<int>(resp->status)) + ": " +
        std::string(resp->payload.begin(), resp->payload.end()));
  if (resp->payload.size() != nbytes)
    throw std::runtime_error("Client: short generate payload");
  return std::move(resp->payload);
}

std::string Client::metrics_json() {
  send_metrics();
  std::optional<Response> resp = read_response();
  if (!resp || resp->status != Status::kOk)
    throw std::runtime_error("Client: metrics request failed");
  return {resp->payload.begin(), resp->payload.end()};
}

void Client::ping() {
  send_ping();
  std::optional<Response> resp = read_response();
  if (!resp || resp->status != Status::kOk)
    throw std::runtime_error("Client: ping failed");
}

}  // namespace bsrng::net
