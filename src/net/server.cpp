#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "net/protocol.hpp"
#include "net/session.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::net {

namespace {

// Largest merged span one batch may hand the engine: two full kGenerate
// answers' worth, so merging never builds an unbounded contiguous buffer.
constexpr std::size_t kMaxBatchBytes = 2 * kMaxGenerateBytes;
// Per-poll-round read budget per connection, for cross-connection fairness.
constexpr std::size_t kReadBudget = 256u << 10;
// An HTTP metrics probe must fit its header block in this much buffer.
constexpr std::size_t kMaxHttpHeader = 8u << 10;

struct NetMetrics {
  telemetry::Counter& accepted;
  telemetry::Counter& requests;
  telemetry::Counter& bytes_served;
  telemetry::Counter& bad_frames;
  telemetry::Counter& backpressure_stalls;
  telemetry::Counter& batched_spans;
  telemetry::Gauge& connections;
  telemetry::Gauge& sessions;
  telemetry::Gauge& started_unix;

  static NetMetrics& get() {
    static NetMetrics m{
        telemetry::metrics().counter("net.accepted"),
        telemetry::metrics().counter("net.requests"),
        telemetry::metrics().counter("net.bytes_served"),
        telemetry::metrics().counter("net.bad_frames"),
        telemetry::metrics().counter("net.backpressure_stalls"),
        telemetry::metrics().counter("net.batched_spans"),
        telemetry::metrics().gauge("net.connections"),
        telemetry::metrics().gauge("net.sessions"),
        telemetry::metrics().gauge("net.started_unix_seconds"),
    };
    return m;
  }
};

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::vector<std::uint8_t> ascii_payload(std::string_view text) {
  return {text.begin(), text.end()};
}

}  // namespace

struct Server::Impl {
  ServerConfig config;
  core::StreamEngine engine;

  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread loop_thread;
  std::atomic<bool> stop_flag{false};
  std::uint16_t bound_port = 0;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> bytes_served{0};
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> batched{0};
  std::atomic<std::size_t> connections{0};
  std::atomic<std::size_t> sessions{0};

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;
    bool http = false;        // first bytes were "GET " — metrics probe
    bool saw_binary = false;  // at least one frame extracted
    bool poisoned = false;    // malformed frame: answer pending, then close
    bool eof = false;         // peer half-closed: serve the backlog, close
    bool closing = false;     // flush wbuf, then close
    bool throttled = false;   // over the write high watermark: not reading
    bool dead = false;        // socket error: close immediately
    std::deque<Request> pending;
    std::map<std::pair<std::string, std::uint64_t>, Session> sess;

    std::size_t pending_write() const { return wbuf.size() - wpos; }
  };
  std::map<int, Conn> conns;

  explicit Impl(ServerConfig cfg)
      : config(std::move(cfg)),
        engine(core::StreamEngineConfig{
            .workers = config.workers,
            .chunk_bytes = config.engine_chunk_bytes,
            .parallel = true}) {}

  // --- lifecycle ---------------------------------------------------------

  void start() {
    if (loop_thread.joinable())
      throw std::logic_error("Server: already started");
    listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::invalid_argument("Server: bad bind address " +
                                  config.bind_address);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd, 1024) < 0) {
      const int err = errno;
      ::close(listen_fd);
      listen_fd = -1;
      throw std::system_error(err, std::generic_category(), "bind/listen");
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port = ntohs(bound.sin_port);
    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) < 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw_errno("pipe2");
    }
    wake_rd = pipefd[0];
    wake_wr = pipefd[1];
    // Scrape dashboards want process start time; this is the one deliberate
    // wall-clock read in src/net (see tests/net/net_lint_test.cpp).
    NetMetrics::get().started_unix.set(static_cast<double>(std::chrono::duration_cast<std::chrono::seconds>(std::chrono::system_clock::now().time_since_epoch()).count()));  // bsrng-lint: allow(wall-clock)
    stop_flag.store(false, std::memory_order_release);
    loop_thread = std::thread([this] { loop(); });
  }

  void stop() {
    if (!loop_thread.joinable()) return;
    stop_flag.store(true, std::memory_order_release);
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_wr, &b, 1);
    loop_thread.join();
    ::close(listen_fd);
    ::close(wake_rd);
    ::close(wake_wr);
    listen_fd = wake_rd = wake_wr = -1;
  }

  ~Impl() { stop(); }

  // --- event loop --------------------------------------------------------

  void loop() {
    std::vector<pollfd> pfds;
    while (!stop_flag.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({wake_rd, POLLIN, 0});
      // A full house stops accepting (negative fd = ignored by poll); the
      // kernel backlog queues the overflow.
      const bool accepting = conns.size() < config.max_connections;
      pfds.push_back({accepting ? listen_fd : -1, POLLIN, 0});
      for (auto& [fd, c] : conns) {
        short ev = 0;
        if (!c.closing && !c.throttled && !c.poisoned && !c.eof)
          ev |= POLLIN;
        if (c.pending_write() > 0) ev |= POLLOUT;
        pfds.push_back({fd, ev, 0});
      }
      const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                           config.poll_timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((pfds[0].revents & POLLIN) != 0) {
        std::uint8_t drain[64];
        while (::read(wake_rd, drain, sizeof drain) > 0) {
        }
      }
      if ((pfds[1].revents & POLLIN) != 0) accept_new();
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        const auto it = conns.find(pfds[i].fd);
        if (it == conns.end()) continue;
        Conn& c = it->second;
        const short re = pfds[i].revents;
        if ((re & (POLLERR | POLLNVAL)) != 0) {
          close_conn(it);
          continue;
        }
        if ((re & POLLOUT) != 0) flush_writes(c);
        if (!c.dead && !c.eof && (re & (POLLIN | POLLHUP)) != 0 &&
            !c.closing) {
          switch (read_input(c)) {
            case ReadResult::kError:
              c.dead = true;
              break;
            case ReadResult::kEof:
              // Half-close: frames pipelined before the EOF are still in
              // rbuf/pending and get real answers below.
              c.eof = true;
              break;
            case ReadResult::kOk:
              break;
          }
        }
        if (!c.dead) {
          maybe_unthrottle(c);
          process(c);
          if (c.eof && !c.closing && !c.poisoned) {
            if (c.http)
              c.dead = true;  // the header block can never complete now
            else if (c.pending.empty())
              c.closing = true;  // backlog served: drain wbuf, then close
          }
          flush_writes(c);
        }
        if (c.dead || (c.closing && c.pending_write() == 0)) close_conn(it);
      }
    }
    for (auto& [fd, c] : conns) {
      sessions.fetch_sub(c.sess.size(), std::memory_order_relaxed);
      ::close(c.fd);
    }
    conns.clear();
    connections.store(0, std::memory_order_relaxed);
    NetMetrics::get().connections.set(0);
    NetMetrics::get().sessions.set(
        static_cast<double>(sessions.load(std::memory_order_relaxed)));
  }

  void accept_new() {
    while (conns.size() < config.max_connections) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient error: next poll round retries
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Conn c;
      c.fd = fd;
      conns.emplace(fd, std::move(c));
      accepted.fetch_add(1, std::memory_order_relaxed);
      connections.store(conns.size(), std::memory_order_relaxed);
      NetMetrics::get().accepted.add();
      NetMetrics::get().connections.set(static_cast<double>(conns.size()));
    }
  }

  void close_conn(std::map<int, Conn>::iterator it) {
    sessions.fetch_sub(it->second.sess.size(), std::memory_order_relaxed);
    ::close(it->second.fd);
    conns.erase(it);
    connections.store(conns.size(), std::memory_order_relaxed);
    NetMetrics::get().connections.set(static_cast<double>(conns.size()));
    NetMetrics::get().sessions.set(
        static_cast<double>(sessions.load(std::memory_order_relaxed)));
  }

  enum class ReadResult { kOk, kEof, kError };

  // kEof is a *half*-close: bytes read before it stay in rbuf and any
  // complete frames among them must still be answered (the peer's read side
  // may well be open, waiting for exactly those responses).
  ReadResult read_input(Conn& c) {
    std::uint8_t buf[16384];
    std::size_t got = 0;
    while (got < kReadBudget) {
      const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
      if (r > 0) {
        c.rbuf.insert(c.rbuf.end(), buf, buf + r);
        got += static_cast<std::size_t>(r);
        continue;
      }
      if (r == 0) return ReadResult::kEof;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    return ReadResult::kOk;
  }

  void flush_writes(Conn& c) {
    while (c.pending_write() > 0) {
      const ssize_t w = ::send(c.fd, c.wbuf.data() + c.wpos,
                               c.pending_write(), MSG_NOSIGNAL);
      if (w > 0) {
        c.wpos += static_cast<std::size_t>(w);
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (w < 0 && errno == EINTR) continue;
      c.dead = true;  // EPIPE / ECONNRESET: the disconnect path cleans up
      break;
    }
    if (c.wpos == c.wbuf.size()) {
      c.wbuf.clear();
      c.wpos = 0;
    } else if (c.wpos > (1u << 20)) {
      c.wbuf.erase(c.wbuf.begin(), c.wbuf.begin() +
                                       static_cast<std::ptrdiff_t>(c.wpos));
      c.wpos = 0;
    }
  }

  void respond(Conn& c, Status status, std::span<const std::uint8_t> payload) {
    const std::vector<std::uint8_t> frame = encode_response(status, payload);
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
  }

  void throttle(Conn& c) {
    if (c.throttled) return;
    c.throttled = true;
    stalls.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().backpressure_stalls.add();
  }

  void maybe_unthrottle(Conn& c) {
    if (c.throttled && c.pending_write() <= config.resume_write_queue)
      c.throttled = false;
  }

  void mark_poisoned(Conn& c) {
    if (c.poisoned) return;
    c.poisoned = true;
    bad_frames.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().bad_frames.add();
  }

  void process(Conn& c) {
    if (!c.http && !c.saw_binary && c.rbuf.size() >= 4 &&
        std::memcmp(c.rbuf.data(), "GET ", 4) == 0)
      c.http = true;
    if (c.http) {
      process_http(c);
      return;
    }
    if (!c.poisoned && !c.closing) {
      try {
        std::vector<std::uint8_t> body;
        while (extract_frame(c.rbuf, body, kMaxRequestBody)) {
          c.saw_binary = true;
          auto req = decode_request(body);
          if (!req) {
            mark_poisoned(c);
            break;
          }
          c.pending.push_back(std::move(*req));
        }
      } catch (const std::runtime_error&) {
        mark_poisoned(c);  // oversized length prefix: stream unrecoverable
      }
    }
    drain_pending(c);
    if (c.pending.empty() && c.poisoned && !c.closing) {
      respond(c, Status::kBadFrame, ascii_payload("malformed frame"));
      c.closing = true;
    }
  }

  void process_http(Conn& c) {
    static constexpr char kHeaderEnd[] = "\r\n\r\n";
    const auto it = std::search(c.rbuf.begin(), c.rbuf.end(), kHeaderEnd,
                                kHeaderEnd + 4);
    if (it == c.rbuf.end()) {
      if (c.rbuf.size() > kMaxHttpHeader) c.dead = true;
      return;
    }
    requests.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().requests.add();
    const std::string json = telemetry::metrics().to_json();
    std::string head = "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
                       "Content-Length: " +
                       std::to_string(json.size()) +
                       "\r\nConnection: close\r\n\r\n";
    c.wbuf.insert(c.wbuf.end(), head.begin(), head.end());
    c.wbuf.insert(c.wbuf.end(), json.begin(), json.end());
    c.closing = true;
  }

  void drain_pending(Conn& c) {
    while (!c.pending.empty()) {
      // Backpressure: over the high watermark this connection's requests
      // wait (its socket is no longer polled for reads either).  A poisoned
      // connection finishes its backlog regardless — it is about to close.
      if (!c.poisoned && c.pending_write() >= config.max_write_queue) {
        throttle(c);
        break;
      }
      const Request& front = c.pending.front();
      if (front.type == kPing) {
        bump_requests(1);
        respond(c, Status::kOk, {});
        c.pending.pop_front();
        continue;
      }
      if (front.type == kMetrics) {
        bump_requests(1);
        const std::string json = telemetry::metrics().to_json();
        respond(c, Status::kOk,
                std::span(reinterpret_cast<const std::uint8_t*>(json.data()),
                          json.size()));
        c.pending.pop_front();
        continue;
      }
      const GenerateRequest& g = front.generate;
      if (g.nbytes > kMaxGenerateBytes) {
        bump_requests(1);
        respond(c, Status::kTooLarge, ascii_payload("nbytes beyond limit"));
        c.pending.pop_front();
        continue;
      }
      if (g.offset >
          std::numeric_limits<std::uint64_t>::max() - g.nbytes) {
        // The span would run past the end of the 2^64-byte stream address
        // space; downstream arithmetic must never see a wrapping end.
        bump_requests(1);
        respond(c, Status::kTooLarge,
                ascii_payload("offset + nbytes overflows"));
        c.pending.pop_front();
        continue;
      }
      if (!core::algorithm_exists(g.algorithm)) {
        bump_requests(1);
        respond(c, Status::kUnknownAlgorithm, ascii_payload(g.algorithm));
        c.pending.pop_front();
        continue;
      }
      serve_run(c);
    }
  }

  void bump_requests(std::uint64_t n) {
    requests.fetch_add(n, std::memory_order_relaxed);
    NetMetrics::get().requests.add(n);
  }

  // The batching step: merge the longest prefix of pending kGenerate
  // requests that continues one tenant stream contiguously into a single
  // engine span, then slice it back into per-request responses in order.
  void reject_seek(Conn& c) {
    bump_requests(1);
    respond(c, Status::kSeekTooFar,
            ascii_payload("forward seek beyond server bound"));
    c.pending.pop_front();
  }

  void serve_run(Conn& c) {
    const GenerateRequest first = c.pending.front().generate;
    // Bound the seek before touching any generator: lane-slice/sequential
    // sessions reach an offset by clocking through the gap *inline on the
    // loop thread*, so one hostile offset near 2^63 would otherwise starve
    // every connection and wedge stop() joining the loop.  A rejected first
    // request never creates a session.
    auto key = std::make_pair(first.algorithm, first.seed);
    auto sit = c.sess.find(key);
    if (sit == c.sess.end()) {
      Session fresh(first.algorithm, first.seed);
      if (fresh.seek_cost(first.offset) > config.max_seek_bytes) {
        reject_seek(c);
        return;
      }
      sit = c.sess.emplace(std::move(key), std::move(fresh)).first;
      sessions.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().sessions.set(
          static_cast<double>(sessions.load(std::memory_order_relaxed)));
    } else if (sit->second.seek_cost(first.offset) > config.max_seek_bytes) {
      reject_seek(c);
      return;
    }
    // A merged span may not outgrow the write queue either — otherwise one
    // buffered burst would defeat max_write_queue entirely.  The first
    // request is always served whole so progress never stalls.
    const std::size_t cap = std::min(kMaxBatchBytes, config.max_write_queue);
    std::size_t count = 0;
    std::size_t total = 0;
    std::uint64_t next_off = first.offset;
    for (const Request& r : c.pending) {
      if (r.type != kGenerate) break;
      const GenerateRequest& g = r.generate;
      if (g.algorithm != first.algorithm || g.seed != first.seed ||
          g.offset != next_off || g.nbytes > kMaxGenerateBytes)
        break;
      if (count > 0 && total + g.nbytes > cap) break;
      ++count;
      total += g.nbytes;
      next_off += g.nbytes;
    }
    std::vector<std::uint8_t> payload(total);
    bool ok = true;
    try {
      sit->second.serve(engine, first.offset, payload);
    } catch (const std::exception&) {
      ok = false;
    }
    std::size_t off = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const GenerateRequest& g = c.pending.front().generate;
      if (ok) {
        respond(c, Status::kOk, std::span(payload.data() + off, g.nbytes));
        bytes_served.fetch_add(g.nbytes, std::memory_order_relaxed);
        NetMetrics::get().bytes_served.add(g.nbytes);
      } else {
        respond(c, Status::kServerError, ascii_payload("generation failed"));
      }
      off += g.nbytes;
      c.pending.pop_front();
    }
    bump_requests(count);
    if (count > 1) {
      batched.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().batched_spans.add();
    }
  }
};

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { stop(); }

void Server::start() { impl_->start(); }

void Server::stop() { impl_->stop(); }

bool Server::running() const noexcept { return impl_->loop_thread.joinable(); }

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.bytes_served = impl_->bytes_served.load(std::memory_order_relaxed);
  s.bad_frames = impl_->bad_frames.load(std::memory_order_relaxed);
  s.backpressure_stalls = impl_->stalls.load(std::memory_order_relaxed);
  s.batched_spans = impl_->batched.load(std::memory_order_relaxed);
  s.connections = impl_->connections.load(std::memory_order_relaxed);
  s.sessions = impl_->sessions.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bsrng::net
