#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "fault/fault.hpp"
#include "net/protocol.hpp"
#include "net/session.hpp"
#include "stream/checkpoint.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::net {

namespace {

// Largest merged span one batch may hand the engine: two full kGenerate
// answers' worth, so merging never builds an unbounded contiguous buffer.
constexpr std::size_t kMaxBatchBytes = 2 * kMaxGenerateBytes;
// Per-poll-round read budget per connection, for cross-connection fairness.
constexpr std::size_t kReadBudget = 256u << 10;
// An HTTP metrics probe must fit its header block in this much buffer.
constexpr std::size_t kMaxHttpHeader = 8u << 10;

struct NetMetrics {
  telemetry::Counter& accepted;
  telemetry::Counter& requests;
  telemetry::Counter& bytes_served;
  telemetry::Counter& bad_frames;
  telemetry::Counter& backpressure_stalls;
  telemetry::Counter& batched_spans;
  telemetry::Counter& sheds;
  telemetry::Counter& idle_closed;
  telemetry::Counter& drains;
  telemetry::Gauge& connections;
  telemetry::Gauge& sessions;
  telemetry::Gauge& started_unix;

  static NetMetrics& get() {
    static NetMetrics m{
        telemetry::metrics().counter("net.accepted"),
        telemetry::metrics().counter("net.requests"),
        telemetry::metrics().counter("net.bytes_served"),
        telemetry::metrics().counter("net.bad_frames"),
        telemetry::metrics().counter("net.backpressure_stalls"),
        telemetry::metrics().counter("net.batched_spans"),
        telemetry::metrics().counter("net.sheds"),
        telemetry::metrics().counter("net.idle_closed"),
        telemetry::metrics().counter("net.drains"),
        telemetry::metrics().gauge("net.connections"),
        telemetry::metrics().gauge("net.sessions"),
        telemetry::metrics().gauge("net.started_unix_seconds"),
    };
    return m;
  }
};

// Server-side syscall injection points: the seeded chaos schedule models
// short reads/writes, peer resets, and transient accept failures at the
// exact layer the real kernel would produce them.  Disarmed cost per
// syscall is a relaxed load + branch.
struct ServerFaults {
  fault::FaultPoint& accept_fail;
  fault::FaultPoint& read_short;
  fault::FaultPoint& read_reset;
  fault::FaultPoint& write_short;
  fault::FaultPoint& write_reset;

  static ServerFaults& get() {
    static ServerFaults f{
        fault::faults().point("net.server.accept_fail"),
        fault::faults().point("net.server.read_short"),
        fault::faults().point("net.server.read_reset"),
        fault::faults().point("net.server.write_short"),
        fault::faults().point("net.server.write_reset"),
    };
    return f;
  }
};

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::vector<std::uint8_t> ascii_payload(std::string_view text) {
  return {text.begin(), text.end()};
}

}  // namespace

struct Server::Impl {
  ServerConfig config;
  core::StreamEngine engine;

  int listen_fd = -1;
  int wake_rd = -1;
  int wake_wr = -1;
  std::thread loop_thread;
  std::atomic<bool> stop_flag{false};
  std::atomic<bool> drain_flag{false};
  std::uint16_t bound_port = 0;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> bytes_served{0};
  std::atomic<std::uint64_t> bad_frames{0};
  std::atomic<std::uint64_t> stalls{0};
  std::atomic<std::uint64_t> batched{0};
  std::atomic<std::uint64_t> sheds{0};
  std::atomic<std::uint64_t> idle_closed{0};
  std::atomic<std::uint64_t> drains{0};
  std::atomic<std::size_t> connections{0};
  std::atomic<std::size_t> sessions{0};

  using Clock = std::chrono::steady_clock;

  // A decoded request waiting for its in-order answer.  `shed` is decided
  // at admission (per-tenant in-flight overflow) but answered here, in
  // response order — rejecting out of order would desync the pipeline.
  struct PendingReq {
    Request req;
    bool shed = false;
  };

  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;
    std::vector<std::uint8_t> wbuf;
    std::size_t wpos = 0;
    bool http = false;        // first bytes were "GET " — metrics probe
    bool saw_binary = false;  // at least one frame extracted
    bool poisoned = false;    // malformed frame: answer pending, then close
    bool eof = false;         // peer half-closed: serve the backlog, close
    bool closing = false;     // flush wbuf, then close
    bool throttled = false;   // over the write high watermark: not reading
    bool dead = false;        // socket error: close immediately
    // Advisory protocol version from kHello (requests self-describe, so a
    // client that never says hello simply stays at 1).
    std::uint32_t version = 1;
    Clock::time_point last_activity;   // last byte read or written
    Clock::time_point partial_since;   // oldest incomplete-frame byte
    bool has_partial = false;
    std::deque<PendingReq> pending;
    std::map<std::pair<std::string, std::uint64_t>, Session> sess;

    std::size_t pending_write() const { return wbuf.size() - wpos; }
  };
  std::map<int, Conn> conns;
  // Bytes queued for write across all connections (the shed signal),
  // maintained incrementally: respond/process_http add, flush/close
  // subtract.  Loop-thread only.
  std::size_t queued_total = 0;

  // Per-tenant quota state; tenant identity is (algorithm, seed) across
  // connections.  Loop-thread only.
  struct Tenant {
    std::size_t pending = 0;   // decoded, unanswered kGenerate requests
    double tokens = 0.0;       // bytes/sec bucket
    bool bucket_init = false;
    Clock::time_point last_refill;
  };
  std::map<std::pair<std::string, std::uint64_t>, Tenant> tenants;

  bool tenant_tracking() const {
    return config.tenant_max_pending > 0 || config.tenant_bytes_per_sec > 0;
  }

  Tenant& tenant(const GenerateRequest& g) {
    return tenants[std::make_pair(g.algorithm, g.seed)];
  }

  void tenant_release(const GenerateRequest& g) {
    const auto it = tenants.find(std::make_pair(g.algorithm, g.seed));
    if (it == tenants.end()) return;
    if (it->second.pending > 0) --it->second.pending;
    // Bucket state matters only while a bytes/sec quota is on; otherwise
    // idle tenants are dropped so the map tracks live load, not history.
    if (it->second.pending == 0 && config.tenant_bytes_per_sec == 0)
      tenants.erase(it);
  }

  // Refill-then-read the tenant's byte bucket (burst = one second's rate).
  double tenant_bucket(Tenant& t, Clock::time_point now) const {
    const double rate = static_cast<double>(config.tenant_bytes_per_sec);
    if (!t.bucket_init) {
      t.bucket_init = true;
      t.tokens = rate;
      t.last_refill = now;
      return t.tokens;
    }
    const double elapsed =
        std::chrono::duration<double>(now - t.last_refill).count();
    t.tokens = std::min(rate, t.tokens + elapsed * rate);
    t.last_refill = now;
    return t.tokens;
  }

  explicit Impl(ServerConfig cfg)
      : config(std::move(cfg)),
        engine(core::StreamEngineConfig{
            .workers = config.workers,
            .chunk_bytes = config.engine_chunk_bytes,
            .parallel = true,
            .numa_nodes = config.numa_nodes}) {}

  // --- lifecycle ---------------------------------------------------------

  void start() {
    if (loop_thread.joinable())
      throw std::logic_error("Server: already started");
    listen_fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd < 0) throw_errno("socket");
    int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd);
      listen_fd = -1;
      throw std::invalid_argument("Server: bad bind address " +
                                  config.bind_address);
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd, 1024) < 0) {
      const int err = errno;
      ::close(listen_fd);
      listen_fd = -1;
      throw std::system_error(err, std::generic_category(), "bind/listen");
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port = ntohs(bound.sin_port);
    int pipefd[2];
    if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) < 0) {
      ::close(listen_fd);
      listen_fd = -1;
      throw_errno("pipe2");
    }
    wake_rd = pipefd[0];
    wake_wr = pipefd[1];
    // Scrape dashboards want process start time; this is the one deliberate
    // wall-clock read in src/net (see tests/net/net_lint_test.cpp).
    NetMetrics::get().started_unix.set(static_cast<double>(std::chrono::duration_cast<std::chrono::seconds>(std::chrono::system_clock::now().time_since_epoch()).count()));  // bsrng-lint: allow(wall-clock)
    stop_flag.store(false, std::memory_order_release);
    loop_thread = std::thread([this] { loop(); });
  }

  void stop() {
    if (!loop_thread.joinable()) return;
    stop_flag.store(true, std::memory_order_release);
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_wr, &b, 1);
    loop_thread.join();
    ::close(listen_fd);
    ::close(wake_rd);
    ::close(wake_wr);
    listen_fd = wake_rd = wake_wr = -1;
  }

  // Graceful drain: flag the loop (stop accepting; sweep walks quiet
  // connections to closing), then wait for the population to hit zero or
  // the deadline — whichever first — and stop().
  void drain(int deadline_ms) {
    if (!loop_thread.joinable()) return;
    if (!drain_flag.exchange(true, std::memory_order_acq_rel)) {
      drains.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().drains.add();
    }
    const std::uint8_t b = 1;
    [[maybe_unused]] const ssize_t w = ::write(wake_wr, &b, 1);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(0, deadline_ms));
    while (connections.load(std::memory_order_relaxed) > 0 &&
           Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stop();
  }

  ~Impl() { stop(); }

  // --- event loop --------------------------------------------------------

  void loop() {
    std::vector<pollfd> pfds;
    while (!stop_flag.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({wake_rd, POLLIN, 0});
      // A full house stops accepting (negative fd = ignored by poll); the
      // kernel backlog queues the overflow.  A draining server stops
      // accepting for good.
      const bool accepting = conns.size() < config.max_connections &&
                             !drain_flag.load(std::memory_order_relaxed);
      pfds.push_back({accepting ? listen_fd : -1, POLLIN, 0});
      for (auto& [fd, c] : conns) {
        short ev = 0;
        if (!c.closing && !c.throttled && !c.poisoned && !c.eof)
          ev |= POLLIN;
        if (c.pending_write() > 0) ev |= POLLOUT;
        pfds.push_back({fd, ev, 0});
      }
      const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                           config.poll_timeout_ms);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((pfds[0].revents & POLLIN) != 0) {
        std::uint8_t drain[64];
        while (::read(wake_rd, drain, sizeof drain) > 0) {
        }
      }
      if ((pfds[1].revents & POLLIN) != 0) accept_new();
      for (std::size_t i = 2; i < pfds.size(); ++i) {
        const auto it = conns.find(pfds[i].fd);
        if (it == conns.end()) continue;
        Conn& c = it->second;
        const short re = pfds[i].revents;
        if ((re & (POLLERR | POLLNVAL)) != 0) {
          close_conn(it);
          continue;
        }
        if ((re & POLLOUT) != 0) flush_writes(c);
        if (!c.dead && !c.eof && (re & (POLLIN | POLLHUP)) != 0 &&
            !c.closing) {
          switch (read_input(c)) {
            case ReadResult::kError:
              c.dead = true;
              break;
            case ReadResult::kEof:
              // Half-close: frames pipelined before the EOF are still in
              // rbuf/pending and get real answers below.
              c.eof = true;
              break;
            case ReadResult::kOk:
              break;
          }
        }
        if (!c.dead) {
          maybe_unthrottle(c);
          process(c);
          if (c.eof && !c.closing && !c.poisoned) {
            if (c.http)
              c.dead = true;  // the header block can never complete now
            else if (c.pending.empty())
              c.closing = true;  // backlog served: drain wbuf, then close
          }
          flush_writes(c);
        }
        if (c.dead || (c.closing && c.pending_write() == 0)) close_conn(it);
      }
      sweep_timeouts();
    }
    for (auto& [fd, c] : conns) {
      sessions.fetch_sub(c.sess.size(), std::memory_order_relaxed);
      ::close(c.fd);
    }
    conns.clear();
    connections.store(0, std::memory_order_relaxed);
    NetMetrics::get().connections.set(0);
    NetMetrics::get().sessions.set(
        static_cast<double>(sessions.load(std::memory_order_relaxed)));
  }

  // Once per poll round: close connections past the idle or slow-loris
  // bound, and walk draining connections to closing once they go quiet.
  void sweep_timeouts() {
    const bool draining = drain_flag.load(std::memory_order_relaxed);
    if (config.idle_timeout_ms <= 0 && config.partial_frame_timeout_ms <= 0 &&
        !draining)
      return;
    const Clock::time_point now = Clock::now();
    for (auto it = conns.begin(); it != conns.end();) {
      Conn& c = it->second;
      const auto age = [&](Clock::time_point since) {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   now - since)
            .count();
      };
      const bool idle = config.idle_timeout_ms > 0 &&
                        age(c.last_activity) > config.idle_timeout_ms;
      const bool loris = config.partial_frame_timeout_ms > 0 &&
                         c.has_partial &&
                         age(c.partial_since) > config.partial_frame_timeout_ms;
      if (!c.dead && (idle || loris)) {
        idle_closed.fetch_add(1, std::memory_order_relaxed);
        NetMetrics::get().idle_closed.add();
        c.dead = true;
      }
      // Quiet under drain: flush wbuf, then close.  The one-poll-interval
      // grace keeps a request that is already in the socket buffer (sent,
      // not yet read) from being orphaned by a drain that lands between
      // rounds.
      if (draining && !c.dead && !c.closing && !c.poisoned && !c.http &&
          c.pending.empty() &&
          age(c.last_activity) >= std::max(1, config.poll_timeout_ms))
        c.closing = true;
      if (c.dead || (c.closing && c.pending_write() == 0)) {
        it = close_conn(it);
        continue;
      }
      ++it;
    }
  }

  void accept_new() {
    while (conns.size() < config.max_connections) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN or transient error: next poll round retries
      }
      // Injected transient accept failure: the connection is dropped after
      // the kernel handshake, exactly what a listener hitting EMFILE does.
      // The peer sees a reset and its resilient layer reconnects.
      if (ServerFaults::get().accept_fail.fire()) {
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Conn c;
      c.fd = fd;
      c.last_activity = Clock::now();
      conns.emplace(fd, std::move(c));
      accepted.fetch_add(1, std::memory_order_relaxed);
      connections.store(conns.size(), std::memory_order_relaxed);
      NetMetrics::get().accepted.add();
      NetMetrics::get().connections.set(static_cast<double>(conns.size()));
    }
  }

  std::map<int, Conn>::iterator close_conn(std::map<int, Conn>::iterator it) {
    Conn& c = it->second;
    sessions.fetch_sub(c.sess.size(), std::memory_order_relaxed);
    queued_total -= c.pending_write();
    if (tenant_tracking())
      for (const PendingReq& p : c.pending)
        if (is_stream_request(p.req) && !p.shed)
          tenant_release(p.req.generate);
    ::close(c.fd);
    const auto next = conns.erase(it);
    connections.store(conns.size(), std::memory_order_relaxed);
    NetMetrics::get().connections.set(static_cast<double>(conns.size()));
    NetMetrics::get().sessions.set(
        static_cast<double>(sessions.load(std::memory_order_relaxed)));
    return next;
  }

  enum class ReadResult { kOk, kEof, kError };

  // kEof is a *half*-close: bytes read before it stay in rbuf and any
  // complete frames among them must still be answered (the peer's read side
  // may well be open, waiting for exactly those responses).
  ReadResult read_input(Conn& c) {
    std::uint8_t buf[16384];
    std::size_t got = 0;
    while (got < kReadBudget) {
      ServerFaults& sf = ServerFaults::get();
      // Injected peer reset: the recv "fails" with ECONNRESET.  Short read:
      // the kernel "returns" a single byte — legal, and exactly what the
      // incremental frame extractor must absorb.
      if (sf.read_reset.fire()) {
        errno = ECONNRESET;
        return ReadResult::kError;
      }
      std::size_t len = sizeof buf;
      if (sf.read_short.fire()) len = 1;
      const ssize_t r = ::recv(c.fd, buf, len, 0);
      if (r > 0) {
        c.rbuf.insert(c.rbuf.end(), buf, buf + r);
        got += static_cast<std::size_t>(r);
        c.last_activity = Clock::now();
        continue;
      }
      if (r == 0) return ReadResult::kEof;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return ReadResult::kError;
    }
    return ReadResult::kOk;
  }

  void flush_writes(Conn& c) {
    while (c.pending_write() > 0) {
      ServerFaults& sf = ServerFaults::get();
      if (sf.write_reset.fire()) {
        errno = EPIPE;
        c.dead = true;
        break;
      }
      std::size_t len = c.pending_write();
      if (sf.write_short.fire() && len > 1) len = 1;
      const ssize_t w = ::send(c.fd, c.wbuf.data() + c.wpos, len,
                               MSG_NOSIGNAL);
      if (w > 0) {
        c.wpos += static_cast<std::size_t>(w);
        queued_total -= static_cast<std::size_t>(w);
        c.last_activity = Clock::now();
        continue;
      }
      if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (w < 0 && errno == EINTR) continue;
      c.dead = true;  // EPIPE / ECONNRESET: the disconnect path cleans up
      break;
    }
    if (c.wpos == c.wbuf.size()) {
      c.wbuf.clear();
      c.wpos = 0;
    } else if (c.wpos > (1u << 20)) {
      c.wbuf.erase(c.wbuf.begin(), c.wbuf.begin() +
                                       static_cast<std::ptrdiff_t>(c.wpos));
      c.wpos = 0;
    }
  }

  void respond(Conn& c, Status status, std::span<const std::uint8_t> payload) {
    const std::vector<std::uint8_t> frame = encode_response(status, payload);
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
    queued_total += frame.size();
  }

  // Answer the front request kRetryLater (shed) and drop it.
  void respond_retry_later(Conn& c, std::uint32_t hint_ms) {
    bump_requests(1);
    respond(c, Status::kRetryLater, encode_retry_after(hint_ms));
    sheds.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().sheds.add();
    pop_front_request(c);
  }

  void respond_retry_later(Conn& c) {
    respond_retry_later(c, config.retry_after_ms);
  }

  // Drop the front request, returning its tenant in-flight slot.
  void pop_front_request(Conn& c) {
    const PendingReq& p = c.pending.front();
    if (tenant_tracking() && is_stream_request(p.req) && !p.shed)
      tenant_release(p.req.generate);
    c.pending.pop_front();
  }

  void throttle(Conn& c) {
    if (c.throttled) return;
    c.throttled = true;
    stalls.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().backpressure_stalls.add();
  }

  void maybe_unthrottle(Conn& c) {
    if (c.throttled && c.pending_write() <= config.resume_write_queue)
      c.throttled = false;
  }

  void mark_poisoned(Conn& c) {
    if (c.poisoned) return;
    c.poisoned = true;
    bad_frames.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().bad_frames.add();
  }

  void process(Conn& c) {
    if (!c.http && !c.saw_binary && c.rbuf.size() >= 4 &&
        std::memcmp(c.rbuf.data(), "GET ", 4) == 0)
      c.http = true;
    if (c.http) {
      process_http(c);
      return;
    }
    if (!c.poisoned && !c.closing) {
      try {
        std::vector<std::uint8_t> body;
        while (extract_frame(c.rbuf, body, kMaxRequestBody)) {
          c.saw_binary = true;
          auto req = decode_request(body);
          if (!req) {
            mark_poisoned(c);
            break;
          }
          // Fold the substream ref into the derived seed at admission:
          // from here on sessions, quotas, and batching key on the actual
          // stream identity, and a v2 request is indistinguishable from
          // the equivalent v1 one.  kCheckpoint is deliberately NOT
          // folded — a minted checkpoint echoes the client's own
          // addressing (root seed + ref), not the folded identity.
          if (is_stream_request(*req)) {
            req->generate.seed = req->generate.effective_seed();
            req->generate.ref = {};
          }
          PendingReq p{std::move(*req), false};
          // Per-tenant in-flight admission: the overflow slot is marked for
          // an in-order kRetryLater instead of occupying quota.
          if (config.tenant_max_pending > 0 && is_stream_request(p.req)) {
            Tenant& t = tenant(p.req.generate);
            if (t.pending >= config.tenant_max_pending)
              p.shed = true;
            else
              ++t.pending;
          }
          c.pending.push_back(std::move(p));
        }
      } catch (const std::runtime_error&) {
        mark_poisoned(c);  // oversized length prefix: stream unrecoverable
      }
    }
    // Slow-loris bookkeeping: a non-empty rbuf after extraction is an
    // incomplete frame (or HTTP header-in-progress); remember when it
    // started so the sweep can bound it.
    if (c.rbuf.empty()) {
      c.has_partial = false;
    } else if (!c.has_partial) {
      c.has_partial = true;
      c.partial_since = Clock::now();
    }
    drain_pending(c);
    if (c.pending.empty() && c.poisoned && !c.closing) {
      respond(c, Status::kBadFrame, ascii_payload("malformed frame"));
      c.closing = true;
    }
  }

  void process_http(Conn& c) {
    static constexpr char kHeaderEnd[] = "\r\n\r\n";
    const auto it = std::search(c.rbuf.begin(), c.rbuf.end(), kHeaderEnd,
                                kHeaderEnd + 4);
    if (it == c.rbuf.end()) {
      if (c.rbuf.size() > kMaxHttpHeader) c.dead = true;
      // An unfinished header is a partial frame for the slow-loris sweep.
      if (!c.has_partial) {
        c.has_partial = true;
        c.partial_since = Clock::now();
      }
      return;
    }
    c.has_partial = false;
    requests.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::get().requests.add();
    const std::string json = telemetry::metrics().to_json();
    std::string head = "HTTP/1.0 200 OK\r\nContent-Type: application/json\r\n"
                       "Content-Length: " +
                       std::to_string(json.size()) +
                       "\r\nConnection: close\r\n\r\n";
    c.wbuf.insert(c.wbuf.end(), head.begin(), head.end());
    c.wbuf.insert(c.wbuf.end(), json.begin(), json.end());
    queued_total += head.size() + json.size();
    c.closing = true;
  }

  void drain_pending(Conn& c) {
    while (!c.pending.empty()) {
      // Backpressure: over the high watermark this connection's requests
      // wait (its socket is no longer polled for reads either).  A poisoned
      // connection finishes its backlog regardless — it is about to close.
      if (!c.poisoned && c.pending_write() >= config.max_write_queue) {
        throttle(c);
        break;
      }
      const PendingReq& front = c.pending.front();
      if (front.req.type == kPing) {
        bump_requests(1);
        respond(c, Status::kOk, {});
        c.pending.pop_front();
        continue;
      }
      if (front.req.type == kMetrics) {
        bump_requests(1);
        const std::string json = telemetry::metrics().to_json();
        respond(c, Status::kOk,
                std::span(reinterpret_cast<const std::uint8_t*>(json.data()),
                          json.size()));
        c.pending.pop_front();
        continue;
      }
      if (front.req.type == kHello) {
        // Advisory handshake: the payload is the server's version either
        // way, so a too-new client learns what to downshift to.
        bump_requests(1);
        std::vector<std::uint8_t> ver;
        append_u32le(ver, kProtocolVersion);
        const bool supported =
            front.req.hello_version >= kProtocolVersionMin &&
            front.req.hello_version <= kProtocolVersion;
        if (supported) c.version = front.req.hello_version;
        respond(c, supported ? Status::kOk : Status::kBadVersion, ver);
        c.pending.pop_front();
        continue;
      }
      if (front.req.type == kResume && !front.req.checkpoint_ok) {
        // The frame was sound but the checkpoint blob failed the strict
        // parse (magic/version/structure/schedule digest) — the connection
        // stays usable.
        bump_requests(1);
        respond(c, Status::kBadCheckpoint,
                ascii_payload("checkpoint rejected"));
        c.pending.pop_front();
        continue;
      }
      const GenerateRequest& g = front.req.generate;
      if (g.nbytes > kMaxGenerateBytes) {
        bump_requests(1);
        respond(c, Status::kTooLarge, ascii_payload("nbytes beyond limit"));
        pop_front_request(c);
        continue;
      }
      if (g.offset >
          std::numeric_limits<std::uint64_t>::max() - g.nbytes) {
        // The span would run past the end of the 2^64-byte stream address
        // space; downstream arithmetic must never see a wrapping end.
        bump_requests(1);
        respond(c, Status::kTooLarge,
                ascii_payload("offset + nbytes overflows"));
        pop_front_request(c);
        continue;
      }
      if (!core::algorithm_exists(g.algorithm)) {
        bump_requests(1);
        respond(c, Status::kUnknownAlgorithm, ascii_payload(g.algorithm));
        pop_front_request(c);
        continue;
      }
      if (front.req.type == kCheckpoint) {
        // Mint an O(1) resumable position.  The ref was not folded at
        // admission, so the blob records the client's own (root seed, ref)
        // addressing; kResume folds it when the blob comes back.
        bump_requests(1);
        const std::vector<std::uint8_t> blob = stream::serialize_checkpoint(
            {g.algorithm, g.seed, g.ref, g.offset});
        respond(c, Status::kOk, blob);
        pop_front_request(c);
        continue;
      }
      // Shedding, answered in response order: per-tenant in-flight
      // overflow (decided at admission) and global write-backlog overload.
      if (front.shed) {
        respond_retry_later(c);
        continue;
      }
      if (config.shed_queue_bytes > 0 &&
          queued_total > config.shed_queue_bytes) {
        respond_retry_later(c);
        continue;
      }
      serve_run(c);
    }
  }

  void bump_requests(std::uint64_t n) {
    requests.fetch_add(n, std::memory_order_relaxed);
    NetMetrics::get().requests.add(n);
  }

  // The batching step: merge the longest prefix of pending kGenerate
  // requests that continues one tenant stream contiguously into a single
  // engine span, then slice it back into per-request responses in order.
  void reject_seek(Conn& c) {
    bump_requests(1);
    respond(c, Status::kSeekTooFar,
            ascii_payload("forward seek beyond server bound"));
    pop_front_request(c);
  }

  void serve_run(Conn& c) {
    const GenerateRequest first = c.pending.front().req.generate;
    // Per-tenant bytes/sec quota: refill the bucket, and shed the request
    // when even the first span cannot be afforded — with a retry-after hint
    // sized to the deficit, so a compliant client sleeps exactly long
    // enough for the bucket to cover it.
    Tenant* bucket = nullptr;
    double tokens = 0.0;
    if (config.tenant_bytes_per_sec > 0) {
      bucket = &tenant(first);
      tokens = tenant_bucket(*bucket, Clock::now());
      if (tokens < static_cast<double>(first.nbytes)) {
        const double deficit = static_cast<double>(first.nbytes) - tokens;
        const double rate = static_cast<double>(config.tenant_bytes_per_sec);
        const auto wait_ms =
            static_cast<std::uint32_t>(deficit * 1000.0 / rate) + 1;
        respond_retry_later(c, std::max(config.retry_after_ms, wait_ms));
        return;
      }
    }
    // Bound the seek before touching any generator: lane-slice/sequential
    // sessions reach an offset by clocking through the gap *inline on the
    // loop thread*, so one hostile offset near 2^63 would otherwise starve
    // every connection and wedge stop() joining the loop.  A rejected first
    // request never creates a session.
    auto key = std::make_pair(first.algorithm, first.seed);
    auto sit = c.sess.find(key);
    if (sit == c.sess.end()) {
      Session fresh(first.algorithm, first.seed);
      if (fresh.seek_cost(first.offset) > config.max_seek_bytes) {
        reject_seek(c);
        return;
      }
      sit = c.sess.emplace(std::move(key), std::move(fresh)).first;
      sessions.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().sessions.set(
          static_cast<double>(sessions.load(std::memory_order_relaxed)));
    } else if (sit->second.seek_cost(first.offset) > config.max_seek_bytes) {
      reject_seek(c);
      return;
    }
    // A merged span may not outgrow the write queue either — otherwise one
    // buffered burst would defeat max_write_queue entirely.  The first
    // request is always served whole so progress never stalls.
    const std::size_t cap = std::min(kMaxBatchBytes, config.max_write_queue);
    std::size_t count = 0;
    std::size_t total = 0;
    std::uint64_t next_off = first.offset;
    for (const PendingReq& p : c.pending) {
      if (!is_stream_request(p.req) || p.shed) break;
      const GenerateRequest& g = p.req.generate;
      if (g.algorithm != first.algorithm || g.seed != first.seed ||
          g.offset != next_off || g.nbytes > kMaxGenerateBytes)
        break;
      if (count > 0 && total + g.nbytes > cap) break;
      // Merging may not outspend the tenant's bucket either; the first
      // request always fits (checked above) so progress never stalls.
      if (bucket && count > 0 &&
          static_cast<double>(total + g.nbytes) > tokens)
        break;
      ++count;
      total += g.nbytes;
      next_off += g.nbytes;
    }
    std::vector<std::uint8_t> payload(total);
    bool ok = true;
    try {
      sit->second.serve(engine, first.offset, payload);
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok && bucket) bucket->tokens -= static_cast<double>(total);
    std::size_t off = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const GenerateRequest& g = c.pending.front().req.generate;
      if (ok) {
        respond(c, Status::kOk, std::span(payload.data() + off, g.nbytes));
        bytes_served.fetch_add(g.nbytes, std::memory_order_relaxed);
        NetMetrics::get().bytes_served.add(g.nbytes);
      } else {
        respond(c, Status::kServerError, ascii_payload("generation failed"));
      }
      off += g.nbytes;
      pop_front_request(c);
    }
    bump_requests(count);
    if (count > 1) {
      batched.fetch_add(1, std::memory_order_relaxed);
      NetMetrics::get().batched_spans.add();
    }
  }
};

Server::Server(ServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

Server::~Server() { stop(); }

void Server::start() { impl_->start(); }

void Server::stop() { impl_->stop(); }

void Server::drain(int deadline_ms) { impl_->drain(deadline_ms); }

bool Server::running() const noexcept { return impl_->loop_thread.joinable(); }

std::uint16_t Server::port() const noexcept { return impl_->bound_port; }

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = impl_->accepted.load(std::memory_order_relaxed);
  s.requests = impl_->requests.load(std::memory_order_relaxed);
  s.bytes_served = impl_->bytes_served.load(std::memory_order_relaxed);
  s.bad_frames = impl_->bad_frames.load(std::memory_order_relaxed);
  s.backpressure_stalls = impl_->stalls.load(std::memory_order_relaxed);
  s.batched_spans = impl_->batched.load(std::memory_order_relaxed);
  s.sheds = impl_->sheds.load(std::memory_order_relaxed);
  s.idle_closed = impl_->idle_closed.load(std::memory_order_relaxed);
  s.drains = impl_->drains.load(std::memory_order_relaxed);
  s.connections = impl_->connections.load(std::memory_order_relaxed);
  s.sessions = impl_->sessions.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bsrng::net
