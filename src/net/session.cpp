#include "net/session.hpp"

#include <utility>

namespace bsrng::net {

Session::Session(std::string algorithm, std::uint64_t seed)
    : algorithm_(std::move(algorithm)),
      seed_(seed),
      spec_(core::partition_spec(algorithm_, seed_)) {}

std::uint64_t Session::seek_cost(std::uint64_t offset) const noexcept {
  if (spec_.kind == core::PartitionKind::kCounter) return 0;
  if (gen_ && offset >= gen_pos_) return offset - gen_pos_;
  return offset;  // backward jump or no live generator: clock from zero
}

void Session::serve(core::StreamEngine& engine, std::uint64_t offset,
                    std::span<std::uint8_t> out) {
  if (spec_.kind == core::PartitionKind::kCounter) {
    // O(1) counter seek; the engine shards the span across its pool.
    engine.generate(spec_, offset, out);
    cursor_ = offset + out.size();
    return;
  }
  if (!gen_ || offset < gen_pos_) {
    gen_ = spec_.make();
    gen_pos_ = 0;
  }
  try {
    core::discard_bytes(*gen_, offset - gen_pos_);
    gen_->fill(out);
  } catch (...) {
    // The generator may have advanced partway; keeping it would desync it
    // from gen_pos_ and the *next* sequential span would silently return
    // wrong bytes.  Drop it; the next serve rebuilds from the spec.
    gen_.reset();
    gen_pos_ = 0;
    throw;
  }
  gen_pos_ = cursor_ = offset + out.size();
}

}  // namespace bsrng::net
