#include "net/session.hpp"

#include <utility>

namespace bsrng::net {

Session::Session(std::string algorithm, std::uint64_t seed)
    : algorithm_(std::move(algorithm)),
      seed_(seed),
      spec_(core::partition_spec(algorithm_, seed_)) {}

void Session::serve(core::StreamEngine& engine, std::uint64_t offset,
                    std::span<std::uint8_t> out) {
  if (spec_.kind == core::PartitionKind::kCounter) {
    // O(1) counter seek; the engine shards the span across its pool.
    engine.generate_at(spec_, offset, out);
    cursor_ = offset + out.size();
    return;
  }
  if (!gen_ || offset < gen_pos_) {
    gen_ = spec_.make();
    gen_pos_ = 0;
  }
  core::discard_bytes(*gen_, offset - gen_pos_);
  gen_->fill(out);
  gen_pos_ = cursor_ = offset + out.size();
}

}  // namespace bsrng::net
