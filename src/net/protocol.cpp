#include "net/protocol.hpp"

#include <cstring>
#include <stdexcept>

namespace bsrng::net {

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::vector<std::uint8_t> encode_generate(const GenerateRequest& req) {
  if (req.algorithm.size() > 255)
    throw std::invalid_argument("protocol: algorithm name too long");
  std::vector<std::uint8_t> out;
  const std::size_t body = 1 + 1 + req.algorithm.size() + 8 + 8 + 4;
  out.reserve(4 + body);
  append_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(kGenerate);
  out.push_back(static_cast<std::uint8_t>(req.algorithm.size()));
  out.insert(out.end(), req.algorithm.begin(), req.algorithm.end());
  append_u64le(out, req.seed);
  append_u64le(out, req.offset);
  append_u32le(out, req.nbytes);
  return out;
}

std::vector<std::uint8_t> encode_simple_request(std::uint8_t type) {
  std::vector<std::uint8_t> out;
  append_u32le(out, 1);
  out.push_back(type);
  return out;
}

std::vector<std::uint8_t> encode_response(
    Status status, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + payload.size());
  append_u32le(out, static_cast<std::uint32_t>(1 + payload.size()));
  out.push_back(static_cast<std::uint8_t>(status));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Request> decode_request(std::span<const std::uint8_t> body) {
  if (body.empty()) return std::nullopt;
  Request req;
  req.type = body[0];
  if (req.type == kMetrics || req.type == kPing)
    return body.size() == 1 ? std::optional<Request>(req) : std::nullopt;
  if (req.type != kGenerate) return std::nullopt;
  if (body.size() < 2) return std::nullopt;
  const std::size_t alen = body[1];
  if (alen == 0) return std::nullopt;  // no algorithm can have an empty name
  // Fixed tail: seed(8) + offset(8) + nbytes(4); exact-size match so a
  // frame with trailing garbage is malformed, not silently accepted.
  if (body.size() != 2 + alen + 20) return std::nullopt;
  req.generate.algorithm.assign(
      reinterpret_cast<const char*>(body.data() + 2), alen);
  req.generate.seed = read_u64le(body.data() + 2 + alen);
  req.generate.offset = read_u64le(body.data() + 2 + alen + 8);
  req.generate.nbytes = read_u32le(body.data() + 2 + alen + 16);
  return req;
}

std::optional<Response> decode_response(std::span<const std::uint8_t> body) {
  if (body.empty()) return std::nullopt;
  if (body[0] > static_cast<std::uint8_t>(Status::kRetryLater))
    return std::nullopt;
  Response resp;
  resp.status = static_cast<Status>(body[0]);
  resp.payload.assign(body.begin() + 1, body.end());
  return resp;
}

std::vector<std::uint8_t> encode_retry_after(std::uint32_t ms) {
  std::vector<std::uint8_t> out;
  append_u32le(out, ms);
  return out;
}

std::optional<std::uint32_t> decode_retry_after(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  return read_u32le(payload.data());
}

bool extract_frame(std::vector<std::uint8_t>& buf,
                   std::vector<std::uint8_t>& body, std::size_t max_body) {
  if (buf.size() < 4) return false;
  const std::uint32_t len = read_u32le(buf.data());
  if (len > max_body)
    throw std::runtime_error("protocol: frame body exceeds limit");
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return false;
  body.assign(buf.begin() + 4, buf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  buf.erase(buf.begin(), buf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  return true;
}

}  // namespace bsrng::net
