#include "net/protocol.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

namespace bsrng::net {

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void append_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

std::vector<std::uint8_t> encode_generate(const GenerateRequest& req) {
  if (req.algorithm.size() > 255)
    throw std::invalid_argument("protocol: algorithm name too long");
  std::vector<std::uint8_t> out;
  const std::size_t body = 1 + 1 + req.algorithm.size() + 8 + 8 + 4;
  out.reserve(4 + body);
  append_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(kGenerate);
  out.push_back(static_cast<std::uint8_t>(req.algorithm.size()));
  out.insert(out.end(), req.algorithm.begin(), req.algorithm.end());
  append_u64le(out, req.seed);
  append_u64le(out, req.offset);
  append_u32le(out, req.nbytes);
  return out;
}

std::vector<std::uint8_t> encode_generate2(const GenerateRequest& req) {
  if (req.algorithm.size() > 255)
    throw std::invalid_argument("protocol: algorithm name too long");
  std::vector<std::uint8_t> out;
  const std::size_t body = 1 + 1 + req.algorithm.size() + 8 + 24 + 8 + 4;
  out.reserve(4 + body);
  append_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(kGenerate2);
  out.push_back(static_cast<std::uint8_t>(req.algorithm.size()));
  out.insert(out.end(), req.algorithm.begin(), req.algorithm.end());
  append_u64le(out, req.seed);
  append_u64le(out, req.ref.tenant);
  append_u64le(out, req.ref.stream);
  append_u64le(out, req.ref.shard);
  append_u64le(out, req.offset);
  append_u32le(out, req.nbytes);
  return out;
}

std::vector<std::uint8_t> encode_hello(std::uint32_t version) {
  std::vector<std::uint8_t> out;
  append_u32le(out, 5);
  out.push_back(kHello);
  append_u32le(out, version);
  return out;
}

std::vector<std::uint8_t> encode_checkpoint_request(
    const GenerateRequest& req) {
  if (req.algorithm.size() > 255)
    throw std::invalid_argument("protocol: algorithm name too long");
  std::vector<std::uint8_t> out;
  const std::size_t body = 1 + 1 + req.algorithm.size() + 8 + 24 + 8;
  out.reserve(4 + body);
  append_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(kCheckpoint);
  out.push_back(static_cast<std::uint8_t>(req.algorithm.size()));
  out.insert(out.end(), req.algorithm.begin(), req.algorithm.end());
  append_u64le(out, req.seed);
  append_u64le(out, req.ref.tenant);
  append_u64le(out, req.ref.stream);
  append_u64le(out, req.ref.shard);
  append_u64le(out, req.offset);
  return out;
}

std::vector<std::uint8_t> encode_resume(
    std::span<const std::uint8_t> checkpoint_blob, std::uint32_t nbytes) {
  if (checkpoint_blob.empty() || checkpoint_blob.size() > 0xFFFF)
    throw std::invalid_argument("protocol: checkpoint blob size out of range");
  std::vector<std::uint8_t> out;
  const std::size_t body = 1 + 4 + 2 + checkpoint_blob.size();
  out.reserve(4 + body);
  append_u32le(out, static_cast<std::uint32_t>(body));
  out.push_back(kResume);
  append_u32le(out, nbytes);
  out.push_back(static_cast<std::uint8_t>(checkpoint_blob.size() & 0xFF));
  out.push_back(static_cast<std::uint8_t>(checkpoint_blob.size() >> 8));
  out.insert(out.end(), checkpoint_blob.begin(), checkpoint_blob.end());
  return out;
}

std::vector<std::uint8_t> encode_simple_request(std::uint8_t type) {
  std::vector<std::uint8_t> out;
  append_u32le(out, 1);
  out.push_back(type);
  return out;
}

std::vector<std::uint8_t> encode_response(
    Status status, std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + payload.size());
  append_u32le(out, static_cast<std::uint32_t>(1 + payload.size()));
  out.push_back(static_cast<std::uint8_t>(status));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Request> decode_request(std::span<const std::uint8_t> body) {
  if (body.empty()) return std::nullopt;
  Request req;
  req.type = body[0];
  if (req.type == kMetrics || req.type == kPing)
    return body.size() == 1 ? std::optional<Request>(req) : std::nullopt;
  if (req.type == kHello) {
    if (body.size() != 5) return std::nullopt;
    req.hello_version = read_u32le(body.data() + 1);
    return req;
  }
  if (req.type == kResume) {
    // u32 nbytes | u16 ck_len | blob, exact size.  The checkpoint blob is
    // validated here (structure AND schedule digest) but a bad blob is NOT
    // a bad frame: the framing was sound, so the request decodes and the
    // server answers kBadCheckpoint on a connection that stays usable.
    if (body.size() < 7) return std::nullopt;
    req.generate.nbytes = read_u32le(body.data() + 1);
    const std::size_t cklen = static_cast<std::size_t>(body[5]) |
                              (static_cast<std::size_t>(body[6]) << 8);
    if (cklen == 0 || body.size() != 7 + cklen) return std::nullopt;
    if (auto ck = stream::parse_checkpoint(body.subspan(7, cklen))) {
      req.generate.algorithm = std::move(ck->algorithm);
      req.generate.seed = ck->seed;
      req.generate.ref = ck->ref;
      req.generate.offset = ck->offset;
      req.checkpoint_ok = true;
    }
    return req;
  }
  if (req.type != kGenerate && req.type != kGenerate2 &&
      req.type != kCheckpoint)
    return std::nullopt;
  if (body.size() < 2) return std::nullopt;
  const std::size_t alen = body[1];
  if (alen == 0) return std::nullopt;  // no algorithm can have an empty name
  // Fixed tails — exact-size match so a frame with trailing garbage is
  // malformed, not silently accepted:
  //   kGenerate    seed(8) + offset(8) + nbytes(4)            = 20
  //   kGenerate2   seed(8) + ref(24) + offset(8) + nbytes(4)  = 44
  //   kCheckpoint  seed(8) + ref(24) + offset(8)              = 40
  const std::size_t tail =
      req.type == kGenerate ? 20 : (req.type == kGenerate2 ? 44 : 40);
  if (body.size() != 2 + alen + tail) return std::nullopt;
  req.generate.algorithm.assign(
      reinterpret_cast<const char*>(body.data() + 2), alen);
  const std::uint8_t* p = body.data() + 2 + alen;
  req.generate.seed = read_u64le(p);
  p += 8;
  if (req.type != kGenerate) {
    req.generate.ref.tenant = read_u64le(p);
    req.generate.ref.stream = read_u64le(p + 8);
    req.generate.ref.shard = read_u64le(p + 16);
    p += 24;
  }
  req.generate.offset = read_u64le(p);
  if (req.type != kCheckpoint) req.generate.nbytes = read_u32le(p + 8);
  return req;
}

std::optional<Response> decode_response(std::span<const std::uint8_t> body) {
  if (body.empty()) return std::nullopt;
  if (body[0] > static_cast<std::uint8_t>(Status::kBadCheckpoint))
    return std::nullopt;
  Response resp;
  resp.status = static_cast<Status>(body[0]);
  resp.payload.assign(body.begin() + 1, body.end());
  return resp;
}

std::vector<std::uint8_t> encode_retry_after(std::uint32_t ms) {
  std::vector<std::uint8_t> out;
  append_u32le(out, ms);
  return out;
}

std::optional<std::uint32_t> decode_retry_after(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  return read_u32le(payload.data());
}

bool extract_frame(std::vector<std::uint8_t>& buf,
                   std::vector<std::uint8_t>& body, std::size_t max_body) {
  if (buf.size() < 4) return false;
  const std::uint32_t len = read_u32le(buf.data());
  if (len > max_body)
    throw std::runtime_error("protocol: frame body exceeds limit");
  if (buf.size() < 4 + static_cast<std::size_t>(len)) return false;
  body.assign(buf.begin() + 4, buf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  buf.erase(buf.begin(), buf.begin() + 4 + static_cast<std::ptrdiff_t>(len));
  return true;
}

}  // namespace bsrng::net
