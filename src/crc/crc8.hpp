// crc8.hpp — the paper's CRC-8 worked example (§4.2, Fig. 5/6).
//
// Three implementations of the same MSB-first (non-reflected) CRC-8:
//   * crc8_bitwise  — the naive shift+mask register of Fig. 5,
//   * crc8_table    — conventional byte-at-a-time lookup (software practice),
//   * Crc8Sliced<W> — Fig. 6: W independent streams checksummed in lockstep,
//                     shift/mask replaced by slice renaming.
// Default polynomial 0x07 (CRC-8/SMBUS, x^8+x^2+x+1); any 8-bit poly works.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bitslice/slice.hpp"

namespace bsrng::crc {

inline constexpr std::uint8_t kCrc8DefaultPoly = 0x07;

// Bit-serial MSB-first CRC-8 over a bit stream (bits consumed MSB-of-byte
// first when fed from bytes).
std::uint8_t crc8_bitwise(std::span<const std::uint8_t> data,
                          std::uint8_t poly = kCrc8DefaultPoly,
                          std::uint8_t init = 0x00);

// Table-driven equivalent.
std::uint8_t crc8_table(std::span<const std::uint8_t> data,
                        std::uint8_t poly = kCrc8DefaultPoly,
                        std::uint8_t init = 0x00);

std::array<std::uint8_t, 256> make_crc8_table(std::uint8_t poly);

// Bitsliced CRC-8: lane j checks stream j.  Feed one input slice per clock
// (bit t of all W streams), read out per-lane CRCs at the end.
template <typename W>
class Crc8Sliced {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;

  explicit Crc8Sliced(std::uint8_t poly = kCrc8DefaultPoly,
                      std::uint8_t init = 0x00) noexcept
      : poly_(poly) {
    for (int i = 0; i < 8; ++i)
      reg_[static_cast<std::size_t>(i)] =
          bitslice::splat<W>((init >> i) & 1u);
  }

  // Clock in one bit of every stream.  The register "shift" is the circular
  // head_ decrement — reference swapping, no data movement (Fig. 6).
  void step(const W& in) noexcept {
    const W fb = in ^ reg_[idx(7)];
    head_ = (head_ + 7) % 8;  // shift left by renaming: stage i+1 := stage i
    reg_[idx(0)] = bitslice::SliceTraits<W>::zero();
    for (int i = 0; i < 8; ++i)
      if ((poly_ >> i) & 1u) reg_[idx(static_cast<std::size_t>(i))] ^= fb;
  }

  // CRC of lane j (call after the final input bit).
  std::uint8_t lane_crc(std::size_t lane) const noexcept {
    std::uint8_t c = 0;
    for (std::size_t i = 0; i < 8; ++i)
      c |= static_cast<std::uint8_t>(
          bitslice::SliceTraits<W>::get_lane(reg_[idx(i)], lane) << i);
    return c;
  }

 private:
  std::size_t idx(std::size_t stage) const noexcept {
    return (head_ + stage) % 8;
  }

  std::uint8_t poly_;
  std::size_t head_ = 0;
  std::array<W, 8> reg_{};
};

}  // namespace bsrng::crc
