// crc32.hpp — CRC-32 (IEEE 802.3, the "32-bit cyclic redundancy codes for
// internet applications" the paper cites [19]) in naive, table-driven, and
// bitsliced forms, extending the §4.2 example to a production-size CRC.
//
// Reflected algorithm: poly 0xEDB88320, init 0xFFFFFFFF, final XOR
// 0xFFFFFFFF, bits consumed LSB-of-byte first.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "bitslice/slice.hpp"

namespace bsrng::crc {

inline constexpr std::uint32_t kCrc32Poly = 0xEDB88320u;

std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data);
std::uint32_t crc32_table(std::span<const std::uint8_t> data);
std::array<std::uint32_t, 256> make_crc32_table();

// Bitsliced reflected CRC-32 over W parallel streams; one input slice per
// clock (bit t of all W streams, LSB-of-byte-first per stream).
template <typename W>
class Crc32Sliced {
 public:
  static constexpr std::size_t lanes = bitslice::lane_count<W>;

  Crc32Sliced() noexcept {
    for (auto& s : reg_) s = bitslice::SliceTraits<W>::ones();  // init 0xFFFFFFFF
  }

  void step(const W& in) noexcept {
    // Reflected form shifts right: fb = bit0 ^ in; stage i := stage i+1,
    // then stage i ^= fb where reflected-poly bit i is set.
    const W fb = in ^ reg_[idx(0)];
    head_ = (head_ + 1) % 32;  // shift right by renaming
    reg_[idx(31)] = bitslice::SliceTraits<W>::zero();
    for (std::size_t i = 0; i < 32; ++i)
      if ((kCrc32Poly >> i) & 1u) reg_[idx(i)] ^= fb;
  }

  // Final CRC of lane j (applies the output complement).
  std::uint32_t lane_crc(std::size_t lane) const noexcept {
    std::uint32_t c = 0;
    for (std::size_t i = 0; i < 32; ++i)
      c |= static_cast<std::uint32_t>(
               bitslice::SliceTraits<W>::get_lane(reg_[idx(i)], lane))
           << i;
    return ~c;
  }

 private:
  std::size_t idx(std::size_t stage) const noexcept {
    return (head_ + stage) % 32;
  }

  std::size_t head_ = 0;
  std::array<W, 32> reg_{};
};

}  // namespace bsrng::crc
