#include "crc/crc8.hpp"

namespace bsrng::crc {

std::uint8_t crc8_bitwise(std::span<const std::uint8_t> data,
                          std::uint8_t poly, std::uint8_t init) {
  std::uint8_t crc = init;
  for (const std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const bool in = (byte >> bit) & 1u;
      const bool fb = ((crc >> 7) & 1u) != in;
      crc = static_cast<std::uint8_t>(crc << 1);
      if (fb) crc ^= poly;
    }
  }
  return crc;
}

std::array<std::uint8_t, 256> make_crc8_table(std::uint8_t poly) {
  std::array<std::uint8_t, 256> table{};
  for (unsigned v = 0; v < 256; ++v) {
    std::uint8_t crc = static_cast<std::uint8_t>(v);
    for (int bit = 0; bit < 8; ++bit)
      crc = static_cast<std::uint8_t>((crc << 1) ^ (((crc >> 7) & 1u) ? poly : 0u));
    table[v] = crc;
  }
  return table;
}

std::uint8_t crc8_table(std::span<const std::uint8_t> data, std::uint8_t poly,
                        std::uint8_t init) {
  const auto table = make_crc8_table(poly);
  std::uint8_t crc = init;
  for (const std::uint8_t byte : data) crc = table[crc ^ byte];
  return crc;
}

}  // namespace bsrng::crc
