#include "crc/crc32.hpp"

namespace bsrng::crc {

std::uint32_t crc32_bitwise(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    for (int bit = 0; bit < 8; ++bit) {
      const std::uint32_t fb = (crc ^ (static_cast<std::uint32_t>(byte) >> bit)) & 1u;
      crc >>= 1;
      if (fb) crc ^= kCrc32Poly;
    }
  }
  return ~crc;
}

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t v = 0; v < 256; ++v) {
    std::uint32_t crc = v;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1u) ? kCrc32Poly : 0u);
    table[v] = crc;
  }
  return table;
}

std::uint32_t crc32_table(std::span<const std::uint8_t> data) {
  static const auto table = make_crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data)
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  return ~crc;
}

}  // namespace bsrng::crc
