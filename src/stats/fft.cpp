#include "stats/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace bsrng::stats {

void fft_pow2(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft_pow2: length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<cplx> dft(const std::vector<cplx>& in) {
  const std::size_t n = in.size();
  if (n == 0) return {};
  if ((n & (n - 1)) == 0) {
    std::vector<cplx> out = in;
    fft_pow2(out);
    return out;
  }
  // Bluestein: X_k = b*_k (a conv b)_k with a_j = x_j b*_j,
  // b_j = exp(i pi j^2 / n); convolution via power-of-two FFT.
  std::size_t m = 1;
  while (m < 2 * n - 1) m <<= 1;
  std::vector<cplx> a(m, 0.0), b(m, 0.0), chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    // j^2 mod 2n avoids precision loss for large j.
    const auto jj = static_cast<double>((static_cast<unsigned long long>(j) * j) %
                                        (2 * n));
    const double ang = std::numbers::pi * jj / static_cast<double>(n);
    chirp[j] = cplx(std::cos(ang), std::sin(ang));
    a[j] = in[j] * std::conj(chirp[j]);
    b[j] = chirp[j];
    if (j != 0) b[m - j] = chirp[j];
  }
  fft_pow2(a);
  fft_pow2(b);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_pow2(a, /*inverse=*/true);
  std::vector<cplx> out(n);
  for (std::size_t k = 0; k < n; ++k)
    out[k] = std::conj(chirp[k]) * a[k] / static_cast<double>(m);
  return out;
}

std::vector<double> half_spectrum_magnitudes(const std::vector<double>& x) {
  std::vector<cplx> in(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) in[i] = cplx(x[i], 0.0);
  const std::vector<cplx> spec = dft(in);
  std::vector<double> mags(x.size() / 2);
  for (std::size_t k = 0; k < mags.size(); ++k) mags[k] = std::abs(spec[k]);
  return mags;
}

}  // namespace bsrng::stats
