#include "stats/berlekamp_massey.hpp"

namespace bsrng::stats {

std::size_t berlekamp_massey(std::span<const std::uint8_t> bits) {
  const std::size_t n = bits.size();
  std::vector<std::uint8_t> c(n + 1, 0), b(n + 1, 0), t;
  c[0] = b[0] = 1;
  std::size_t L = 0, m = 1;
  for (std::size_t i = 0; i < n; ++i) {
    // Discrepancy d = s_i + sum_{j=1..L} c_j s_{i-j} (mod 2).
    std::uint8_t d = bits[i] & 1u;
    for (std::size_t j = 1; j <= L; ++j) d ^= c[j] & bits[i - j] & 1u;
    if (d == 0) {
      ++m;
    } else if (2 * L <= i) {
      t = c;
      for (std::size_t j = 0; j + m <= n; ++j) c[j + m] ^= b[j];
      L = i + 1 - L;
      b = t;
      m = 1;
    } else {
      for (std::size_t j = 0; j + m <= n; ++j) c[j + m] ^= b[j];
      ++m;
    }
  }
  return L;
}

}  // namespace bsrng::stats
