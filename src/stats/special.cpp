#include "stats/special.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace bsrng::stats {

namespace {
constexpr double kEps = 1e-15;
constexpr int kMaxIter = 10000;

// Series expansion for P(a, x), valid/fast for x < a + 1.
double igam_series(double a, double x) {
  double sum = 1.0 / a;
  double term = sum;
  for (int n = 1; n < kMaxIter; ++n) {
    term *= x / (a + n);
    sum += term;
    if (std::abs(term) < std::abs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction (modified Lentz) for Q(a, x), valid/fast for x >= a + 1.
double igamc_cf(double a, double x) {
  const double tiny = std::numeric_limits<double>::min() / kEps;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}
}  // namespace

double igam(double a, double x) {
  if (a <= 0.0 || x < 0.0)
    throw std::invalid_argument("igam: require a > 0, x >= 0");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? igam_series(a, x) : 1.0 - igamc_cf(a, x);
}

double igamc(double a, double x) {
  if (a <= 0.0 || x < 0.0)
    throw std::invalid_argument("igamc: require a > 0, x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - igam_series(a, x) : igamc_cf(a, x);
}

double erfc(double x) { return std::erfc(x); }

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace bsrng::stats
