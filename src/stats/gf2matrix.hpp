// gf2matrix.hpp — binary matrix rank over GF(2) for the NIST rank test.
//
// Rows are packed in 64-bit words; rank is computed by forward elimination.
// Also provides the exact probability that a random M x Q binary matrix has
// a given rank (the NIST test's reference distribution).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bsrng::stats {

class Gf2Matrix {
 public:
  Gf2Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), words_per_row_((cols + 63) / 64),
        data_(rows * words_per_row_, 0) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  bool get(std::size_t r, std::size_t c) const noexcept {
    return (data_[r * words_per_row_ + c / 64] >> (c % 64)) & 1u;
  }
  void set(std::size_t r, std::size_t c, bool v) noexcept {
    const std::uint64_t m = std::uint64_t{1} << (c % 64);
    auto& w = data_[r * words_per_row_ + c / 64];
    w = (w & ~m) | (v ? m : 0u);
  }

  // Rank over GF(2); non-destructive.
  std::size_t rank() const;

 private:
  std::size_t rows_, cols_, words_per_row_;
  std::vector<std::uint64_t> data_;
};

// P[rank(M x Q random binary matrix) = r].
double gf2_rank_probability(std::size_t m, std::size_t q, std::size_t r);

}  // namespace bsrng::stats
