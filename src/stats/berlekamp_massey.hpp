// berlekamp_massey.hpp — linear complexity of a binary sequence (the
// shortest LFSR reproducing it), for the NIST linear-complexity test and for
// validating LFSR constructions (an n-bit maximal LFSR stream must have
// complexity exactly n).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bsrng::stats {

// Returns L = linear complexity of `bits` (bits[i] in {0,1}).
std::size_t berlekamp_massey(std::span<const std::uint8_t> bits);

}  // namespace bsrng::stats
