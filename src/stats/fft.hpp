// fft.hpp — FFT for the NIST spectral (DFT) test.
//
// Radix-2 iterative Cooley-Tukey for power-of-two lengths, plus Bluestein's
// chirp-z algorithm so arbitrary lengths (e.g. the suite's 10^6-bit streams)
// are exact DFTs rather than zero-padded approximations.
#pragma once

#include <complex>
#include <vector>

namespace bsrng::stats {

using cplx = std::complex<double>;

// In-place radix-2 FFT; data.size() must be a power of two.
// inverse = true computes the unscaled inverse transform (caller divides).
void fft_pow2(std::vector<cplx>& data, bool inverse = false);

// DFT of arbitrary length via Bluestein (exact, O(n log n)).
std::vector<cplx> dft(const std::vector<cplx>& in);

// Moduli |X_k| for k = 0 .. n/2 - 1 of the real sequence `x` — the quantity
// the NIST spectral test thresholds.
std::vector<double> half_spectrum_magnitudes(const std::vector<double>& x);

}  // namespace bsrng::stats
