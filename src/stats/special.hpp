// special.hpp — special functions required by NIST SP 800-22: the
// complementary error function and the regularized incomplete gamma
// functions.  Self-contained (series + continued-fraction, Numerical
// Recipes-style) so the suite does not depend on any external stats library.
#pragma once

namespace bsrng::stats {

// Regularized lower incomplete gamma P(a, x) = gamma(a,x) / Gamma(a).
double igam(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x); the function the
// NIST tests call `igamc`.
double igamc(double a, double x);

// erfc wrapper (kept here so every NIST test draws from one header).
double erfc(double x);

// Standard normal CDF.
double normal_cdf(double x);

}  // namespace bsrng::stats
