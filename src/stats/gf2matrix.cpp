#include "stats/gf2matrix.hpp"

#include <cmath>

namespace bsrng::stats {

std::size_t Gf2Matrix::rank() const {
  std::vector<std::uint64_t> m = data_;
  const std::size_t w = words_per_row_;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    const std::size_t word = col / 64;
    const std::uint64_t bit = std::uint64_t{1} << (col % 64);
    // Find a pivot row at or below `rank` with this column set.
    std::size_t pivot = rank;
    while (pivot < rows_ && !(m[pivot * w + word] & bit)) ++pivot;
    if (pivot == rows_) continue;
    for (std::size_t k = 0; k < w; ++k)
      std::swap(m[rank * w + k], m[pivot * w + k]);
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r != rank && (m[r * w + word] & bit))
        for (std::size_t k = 0; k < w; ++k) m[r * w + k] ^= m[rank * w + k];
    }
    ++rank;
  }
  return rank;
}

double gf2_rank_probability(std::size_t m, std::size_t q, std::size_t r) {
  if (r > m || r > q) return 0.0;
  // NIST SP 800-22 §3.5: P(rank = r) =
  //   2^{r(Q+M-r) - MQ} * prod_{i=0}^{r-1} (1-2^{i-Q})(1-2^{i-M}) / (1-2^{i-r})
  double log2p = static_cast<double>(r) *
                     (static_cast<double>(q) + static_cast<double>(m) -
                      static_cast<double>(r)) -
                 static_cast<double>(m) * static_cast<double>(q);
  double prod = 1.0;
  for (std::size_t i = 0; i < r; ++i) {
    prod *= (1.0 - std::exp2(static_cast<double>(i) - static_cast<double>(q))) *
            (1.0 - std::exp2(static_cast<double>(i) - static_cast<double>(m))) /
            (1.0 - std::exp2(static_cast<double>(i) - static_cast<double>(r)));
  }
  return std::exp2(log2p) * prod;
}

}  // namespace bsrng::stats
