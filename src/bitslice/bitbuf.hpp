// bitbuf.hpp — growable packed bit buffer (LSB-first within 64-bit words).
//
// The row-major "stream" view of generated randomness: bit t of the buffer is
// bit t of one PRNG instance's output.  Used at bitsliced <-> byte-stream
// boundaries and throughout the NIST SP 800-22 suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace bsrng::bitslice {

class BitBuf {
 public:
  BitBuf() = default;
  explicit BitBuf(std::size_t nbits) { resize(nbits); }

  std::size_t size() const noexcept { return nbits_; }
  bool empty() const noexcept { return nbits_ == 0; }

  void clear() noexcept {
    words_.clear();
    nbits_ = 0;
  }

  // Resize to nbits; new bits are zero.
  void resize(std::size_t nbits) {
    words_.resize((nbits + 63) / 64, 0);
    nbits_ = nbits;
    mask_tail();
  }

  void reserve(std::size_t nbits) { words_.reserve((nbits + 63) / 64); }

  bool get(std::size_t i) const noexcept {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }

  void set(std::size_t i, bool v) noexcept {
    const std::uint64_t m = std::uint64_t{1} << (i % 64);
    words_[i / 64] = (words_[i / 64] & ~m) | (v ? m : 0u);
  }

  void push_back(bool v) {
    if (nbits_ % 64 == 0) words_.push_back(0);
    ++nbits_;
    set(nbits_ - 1, v);
  }

  // Append the low `n` bits of `w`, LSB first.
  void append_word(std::uint64_t w, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) push_back((w >> i) & 1u);
  }

  // Append bytes, each LSB-first (bit 0 of byte 0 becomes the next bit).
  void append_bytes(std::span<const std::uint8_t> bytes) {
    for (auto b : bytes) append_word(b, 8);
  }

  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::vector<std::uint64_t>& mutable_words() noexcept { return words_; }

  // Number of set bits.
  std::size_t count() const noexcept;

  // Pack into bytes, LSB-first; trailing partial byte zero-padded.
  std::vector<std::uint8_t> to_bytes() const;

  // View bit range [pos, pos+len) as a new buffer (copy).
  BitBuf slice(std::size_t pos, std::size_t len) const;

  friend bool operator==(const BitBuf& a, const BitBuf& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

 private:
  void mask_tail() noexcept {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << (nbits_ % 64)) - 1;
  }

  std::vector<std::uint64_t> words_;
  std::size_t nbits_ = 0;
};

}  // namespace bsrng::bitslice
