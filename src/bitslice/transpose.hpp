// transpose.hpp — row-major <-> column-major bit-matrix conversion.
//
// Bitsliced engines consume and produce column-major data: slice t holds bit
// t of W independent streams.  The outside world (files, NIST suite, cipher
// test vectors) is row-major: stream j is a contiguous run of bits.  The
// transposes here convert between the two views at stream boundaries; they
// are *not* on the hot generation path (§4.1 — the whole point of bitslicing
// is that the inner loop never reformats data).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "bitslice/slice.hpp"

namespace bsrng::bitslice {

// In-place transpose of an 8x8 bit matrix; m[i] bit j  <->  m[j] bit i.
void transpose8x8(std::uint8_t m[8]) noexcept;

// In-place transpose of a 32x32 bit matrix held in 32 words.
void transpose32x32(std::uint32_t m[32]) noexcept;

// In-place transpose of a 64x64 bit matrix held in 64 words.
void transpose64x64(std::uint64_t m[64]) noexcept;

// ---------------------------------------------------------------------------
// Block (de)interleave between W row-major bit streams and column-major
// slices.
//
//   interleave:   rows[j] = stream j, packed LSB-first in 64-bit words.
//                 Produces nbits slices: slice t lane j = bit t of stream j.
//   deinterleave: the exact inverse.
//
// Both are implemented with 64x64 block transposes; a slice wider than 64
// lanes is treated as lane_count/64 adjacent 64-lane blocks.
// ---------------------------------------------------------------------------
template <typename W>
void interleave(std::span<const std::vector<std::uint64_t>> rows,
                std::size_t nbits, std::vector<W>& slices);

template <typename W>
void deinterleave(std::span<const W> slices, std::size_t nbits,
                  std::vector<std::vector<std::uint64_t>>& rows);

extern template void interleave<SliceU32>(
    std::span<const std::vector<std::uint64_t>>, std::size_t,
    std::vector<SliceU32>&);
extern template void interleave<SliceU64>(
    std::span<const std::vector<std::uint64_t>>, std::size_t,
    std::vector<SliceU64>&);
extern template void interleave<SliceV128>(
    std::span<const std::vector<std::uint64_t>>, std::size_t,
    std::vector<SliceV128>&);
extern template void interleave<SliceV256>(
    std::span<const std::vector<std::uint64_t>>, std::size_t,
    std::vector<SliceV256>&);
extern template void interleave<SliceV512>(
    std::span<const std::vector<std::uint64_t>>, std::size_t,
    std::vector<SliceV512>&);
extern template void deinterleave<SliceU32>(std::span<const SliceU32>,
                                            std::size_t,
                                            std::vector<std::vector<std::uint64_t>>&);
extern template void deinterleave<SliceU64>(std::span<const SliceU64>,
                                            std::size_t,
                                            std::vector<std::vector<std::uint64_t>>&);
extern template void deinterleave<SliceV128>(std::span<const SliceV128>,
                                             std::size_t,
                                             std::vector<std::vector<std::uint64_t>>&);
extern template void deinterleave<SliceV256>(std::span<const SliceV256>,
                                             std::size_t,
                                             std::vector<std::vector<std::uint64_t>>&);
extern template void deinterleave<SliceV512>(std::span<const SliceV512>,
                                             std::size_t,
                                             std::vector<std::vector<std::uint64_t>>&);

}  // namespace bsrng::bitslice
