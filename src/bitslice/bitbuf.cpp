#include "bitslice/bitbuf.hpp"

#include <bit>

namespace bsrng::bitslice {

std::size_t BitBuf::count() const noexcept {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::vector<std::uint8_t> BitBuf::to_bytes() const {
  std::vector<std::uint8_t> out((nbits_ + 7) / 8, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t word = i / 8, byte = i % 8;
    if (word < words_.size())
      out[i] = static_cast<std::uint8_t>(words_[word] >> (8 * byte));
  }
  return out;
}

BitBuf BitBuf::slice(std::size_t pos, std::size_t len) const {
  BitBuf out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) out.push_back(get(pos + i));
  return out;
}

}  // namespace bsrng::bitslice
