// slice.hpp — lane-width abstraction for bitsliced (column-major) computation.
//
// A "slice" is one machine word holding the SAME bit position of W independent
// cipher/LFSR instances: lane j of the word belongs to instance j (the paper's
// column-major data representation, §4.1).  Algorithms written against this
// abstraction run unchanged at every datapath width the host offers:
//
//   lane width W    type        hardware
//   ------------    ---------   -------------------------------
//   32              SliceU32    the paper's per-GPU-thread register
//   64              SliceU64    any 64-bit scalar unit
//   128             SliceV128   SSE2
//   256             SliceV256   AVX2
//   512             SliceV512   AVX-512F
//
// Only bit-parallel operations are provided (XOR/AND/OR/NOT/ANDNOT/MUX):
// bitsliced code never shifts *within* a slice — shifting the simulated
// register is a renaming of whole slices (§4.3), which is exactly what makes
// the technique fast.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace bsrng::bitslice {

using SliceU32 = std::uint32_t;
using SliceU64 = std::uint64_t;

namespace detail {
// Portable fixed-width vector-of-u64 slice.  With -march=native GCC/Clang
// lower the element-wise loops to single VPXOR/VPAND/VPOR instructions, so a
// dedicated intrinsic path is unnecessary while staying valgrind/UBSan clean.
template <std::size_t NWords>
struct WideSlice {
  std::array<std::uint64_t, NWords> w{};

  friend constexpr WideSlice operator^(WideSlice a, const WideSlice& b) {
    for (std::size_t i = 0; i < NWords; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  friend constexpr WideSlice operator&(WideSlice a, const WideSlice& b) {
    for (std::size_t i = 0; i < NWords; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend constexpr WideSlice operator|(WideSlice a, const WideSlice& b) {
    for (std::size_t i = 0; i < NWords; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend constexpr WideSlice operator~(WideSlice a) {
    for (std::size_t i = 0; i < NWords; ++i) a.w[i] = ~a.w[i];
    return a;
  }
  constexpr WideSlice& operator^=(const WideSlice& b) { return *this = *this ^ b; }
  constexpr WideSlice& operator&=(const WideSlice& b) { return *this = *this & b; }
  constexpr WideSlice& operator|=(const WideSlice& b) { return *this = *this | b; }
  friend constexpr bool operator==(const WideSlice&, const WideSlice&) = default;
};
}  // namespace detail

using SliceV128 = detail::WideSlice<2>;
using SliceV256 = detail::WideSlice<4>;
using SliceV512 = detail::WideSlice<8>;

// ---------------------------------------------------------------------------
// SliceTraits: uniform construction / lane access over all slice types.
// Lane access is O(1) but not branch-free; it exists for (de)interleaving at
// stream boundaries and for tests — inner loops must use only bulk operators.
// ---------------------------------------------------------------------------
template <typename W>
struct SliceTraits;

template <>
struct SliceTraits<SliceU32> {
  static constexpr std::size_t lanes = 32;
  static constexpr SliceU32 zero() { return 0u; }
  static constexpr SliceU32 ones() { return ~0u; }
  static constexpr bool get_lane(SliceU32 s, std::size_t j) {
    return (s >> j) & 1u;
  }
  static constexpr void set_lane(SliceU32& s, std::size_t j, bool v) {
    s = (s & ~(SliceU32{1} << j)) | (SliceU32{v} << j);
  }
  static constexpr std::uint64_t word64(SliceU32 s, std::size_t) { return s; }
  static constexpr void set_word64(SliceU32& s, std::size_t, std::uint64_t v) {
    s = static_cast<SliceU32>(v);
  }
};

template <>
struct SliceTraits<SliceU64> {
  static constexpr std::size_t lanes = 64;
  static constexpr SliceU64 zero() { return 0u; }
  static constexpr SliceU64 ones() { return ~SliceU64{0}; }
  static constexpr bool get_lane(SliceU64 s, std::size_t j) {
    return (s >> j) & 1u;
  }
  static constexpr void set_lane(SliceU64& s, std::size_t j, bool v) {
    s = (s & ~(SliceU64{1} << j)) | (SliceU64{v} << j);
  }
  static constexpr std::uint64_t word64(SliceU64 s, std::size_t) { return s; }
  static constexpr void set_word64(SliceU64& s, std::size_t, std::uint64_t v) {
    s = v;
  }
};

template <std::size_t NWords>
struct SliceTraits<detail::WideSlice<NWords>> {
  using W = detail::WideSlice<NWords>;
  static constexpr std::size_t lanes = 64 * NWords;
  static constexpr W zero() { return W{}; }
  static constexpr W ones() {
    W s{};
    for (auto& w : s.w) w = ~std::uint64_t{0};
    return s;
  }
  static constexpr bool get_lane(const W& s, std::size_t j) {
    return (s.w[j / 64] >> (j % 64)) & 1u;
  }
  static constexpr void set_lane(W& s, std::size_t j, bool v) {
    const std::uint64_t m = std::uint64_t{1} << (j % 64);
    s.w[j / 64] = (s.w[j / 64] & ~m) | (v ? m : 0u);
  }
  static constexpr std::uint64_t word64(const W& s, std::size_t k) {
    return s.w[k];
  }
  static constexpr void set_word64(W& s, std::size_t k, std::uint64_t v) {
    s.w[k] = v;
  }
};

// Number of independent instances a slice of type W carries.
template <typename W>
inline constexpr std::size_t lane_count = SliceTraits<W>::lanes;

// A slice with every lane set to `v` (broadcast of one bit to all instances).
template <typename W>
constexpr W splat(bool v) {
  return v ? SliceTraits<W>::ones() : SliceTraits<W>::zero();
}

// Bit-parallel multiplexer: lane-wise (c ? a : b).  XOR form costs one AND
// and two XORs — the cheapest gate realization for irregular-clocking ciphers
// such as MICKEY 2.0 where every lane may clock differently (§4.4).
template <typename W>
constexpr W mux(const W& c, const W& a, const W& b) {
  return b ^ (c & (a ^ b));
}

// Lane-wise a AND (NOT b).
template <typename W>
constexpr W andnot(const W& a, const W& b) {
  return a & ~b;
}

// Population count across all lanes of a slice (test/statistics helper).
template <typename W>
constexpr std::size_t popcount(const W& s) {
  std::size_t n = 0;
  for (std::size_t k = 0; k < lane_count<W> / 64 + (lane_count<W> < 64); ++k)
    n += static_cast<std::size_t>(
        std::popcount(SliceTraits<W>::word64(s, k) &
                      (lane_count<W> >= 64 ? ~std::uint64_t{0}
                                           : ((std::uint64_t{1} << lane_count<W>) - 1))));
  return n;
}

}  // namespace bsrng::bitslice
