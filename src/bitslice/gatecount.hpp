// gatecount.hpp — a 1-lane slice type that counts boolean operations.
//
// Instantiating a bitsliced engine over CountingSlice measures its exact
// gate cost per clock (XOR/AND/OR/NOT on full-width registers).  Dividing by
// the lane count of a real slice gives gate-ops per produced bit — the
// `gate_ops_per_bit` input of the gpusim throughput projection (E1/E2) and
// the quantity behind the paper's "k full-width XORs instead of 32 x k
// bit-level XORs" argument (§4.3).
#pragma once

#include <cstdint>

#include "bitslice/slice.hpp"

namespace bsrng::bitslice {

struct CountingSlice {
  bool v = false;

  static inline std::uint64_t ops = 0;
  static void reset() { ops = 0; }

  friend CountingSlice operator^(CountingSlice a, CountingSlice b) {
    ++ops;
    return {a.v != b.v};
  }
  friend CountingSlice operator&(CountingSlice a, CountingSlice b) {
    ++ops;
    return {a.v && b.v};
  }
  friend CountingSlice operator|(CountingSlice a, CountingSlice b) {
    ++ops;
    return {a.v || b.v};
  }
  friend CountingSlice operator~(CountingSlice a) {
    ++ops;
    return {!a.v};
  }
  CountingSlice& operator^=(CountingSlice b) { return *this = *this ^ b; }
  CountingSlice& operator&=(CountingSlice b) { return *this = *this & b; }
  CountingSlice& operator|=(CountingSlice b) { return *this = *this | b; }
  friend bool operator==(CountingSlice, CountingSlice) = default;
};

template <>
struct SliceTraits<CountingSlice> {
  static constexpr std::size_t lanes = 1;
  static constexpr CountingSlice zero() { return {false}; }
  static constexpr CountingSlice ones() { return {true}; }
  static constexpr bool get_lane(CountingSlice s, std::size_t) { return s.v; }
  static constexpr void set_lane(CountingSlice& s, std::size_t, bool v) {
    s.v = v;
  }
  static constexpr std::uint64_t word64(CountingSlice s, std::size_t) {
    return s.v;
  }
  static constexpr void set_word64(CountingSlice& s, std::size_t,
                                   std::uint64_t v) {
    s.v = v & 1u;
  }
};

}  // namespace bsrng::bitslice
