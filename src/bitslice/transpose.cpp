#include "bitslice/transpose.hpp"

#include <cstring>

namespace bsrng::bitslice {

// Hacker's Delight 7-3: recursive halving with masked swaps.
void transpose8x8(std::uint8_t m[8]) noexcept {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= std::uint64_t{m[i]} << (8 * i);
  // Swap 4x4 quadrants, then 2x2, then 1x1 (bit order: m[i] bit j = x bit 8i+j).
  std::uint64_t t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x ^= t ^ (t << 28);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x ^= t ^ (t << 14);
  t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x ^= t ^ (t << 7);
  for (int i = 0; i < 8; ++i) m[i] = static_cast<std::uint8_t>(x >> (8 * i));
}

void transpose32x32(std::uint32_t m[32]) noexcept {
  std::uint32_t mask = 0x0000FFFFu;
  for (std::uint32_t j = 16; j != 0; j >>= 1, mask ^= (mask << j)) {
    for (std::uint32_t k = 0; k < 32; k = (k + j + 1) & ~j) {
      const std::uint32_t t = (m[k] ^ (m[k + j] << j)) & ~mask;
      m[k] ^= t;
      m[k + j] ^= (t >> j);
    }
  }
}

void transpose64x64(std::uint64_t m[64]) noexcept {
  std::uint64_t mask = 0x00000000FFFFFFFFull;
  for (std::uint64_t j = 32; j != 0; j >>= 1, mask ^= (mask << j)) {
    for (std::uint64_t k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = (m[k] ^ (m[k + j] << j)) & ~mask;
      m[k] ^= t;
      m[k + j] ^= (t >> j);
    }
  }
}

namespace {

// Extract 64-bit word `blk` of the bit range [0, nbits) of a packed stream;
// bits past the stream's end read as zero.
std::uint64_t stream_word(const std::vector<std::uint64_t>& s, std::size_t blk,
                          std::size_t nbits) {
  if (blk * 64 >= nbits || blk >= s.size()) return 0;
  std::uint64_t w = s[blk];
  const std::size_t remaining = nbits - blk * 64;
  if (remaining < 64) w &= (std::uint64_t{1} << remaining) - 1;
  return w;
}

}  // namespace

template <typename W>
void interleave(std::span<const std::vector<std::uint64_t>> rows,
                std::size_t nbits, std::vector<W>& slices) {
  constexpr std::size_t L = lane_count<W>;
  slices.assign(nbits, SliceTraits<W>::zero());
  const std::size_t nblocks = (nbits + 63) / 64;
  // Process a 64x64 tile per (bit-block, lane-block) pair.
  for (std::size_t lb = 0; lb < L / 64 + (L < 64); ++lb) {
    const std::size_t lanes_here = L < 64 ? L : 64;
    for (std::size_t bb = 0; bb < nblocks; ++bb) {
      std::uint64_t tile[64] = {};
      for (std::size_t j = 0; j < lanes_here; ++j) {
        const std::size_t lane = lb * 64 + j;
        if (lane < rows.size()) tile[j] = stream_word(rows[lane], bb, nbits);
      }
      transpose64x64(tile);
      const std::size_t bits_here = nbits - bb * 64 < 64 ? nbits - bb * 64 : 64;
      for (std::size_t t = 0; t < bits_here; ++t) {
        if constexpr (L == 32) {
          slices[bb * 64 + t] = static_cast<SliceU32>(tile[t]);
        } else {
          SliceTraits<W>::set_word64(slices[bb * 64 + t], lb, tile[t]);
        }
      }
    }
  }
}

template <typename W>
void deinterleave(std::span<const W> slices, std::size_t nbits,
                  std::vector<std::vector<std::uint64_t>>& rows) {
  constexpr std::size_t L = lane_count<W>;
  const std::size_t nblocks = (nbits + 63) / 64;
  rows.assign(L, std::vector<std::uint64_t>(nblocks, 0));
  for (std::size_t lb = 0; lb < L / 64 + (L < 64); ++lb) {
    const std::size_t lanes_here = L < 64 ? L : 64;
    for (std::size_t bb = 0; bb < nblocks; ++bb) {
      std::uint64_t tile[64] = {};
      const std::size_t bits_here = nbits - bb * 64 < 64 ? nbits - bb * 64 : 64;
      for (std::size_t t = 0; t < bits_here; ++t)
        tile[t] = SliceTraits<W>::word64(slices[bb * 64 + t], lb);
      transpose64x64(tile);
      for (std::size_t j = 0; j < lanes_here; ++j)
        rows[lb * 64 + j][bb] = tile[j];
    }
  }
  // Mask trailing garbage bits in the final block of each stream.
  if (nbits % 64 != 0)
    for (auto& r : rows) r.back() &= (std::uint64_t{1} << (nbits % 64)) - 1;
}

template void interleave<SliceU32>(std::span<const std::vector<std::uint64_t>>,
                                   std::size_t, std::vector<SliceU32>&);
template void interleave<SliceU64>(std::span<const std::vector<std::uint64_t>>,
                                   std::size_t, std::vector<SliceU64>&);
template void interleave<SliceV128>(std::span<const std::vector<std::uint64_t>>,
                                    std::size_t, std::vector<SliceV128>&);
template void interleave<SliceV256>(std::span<const std::vector<std::uint64_t>>,
                                    std::size_t, std::vector<SliceV256>&);
template void interleave<SliceV512>(std::span<const std::vector<std::uint64_t>>,
                                    std::size_t, std::vector<SliceV512>&);
template void deinterleave<SliceU32>(std::span<const SliceU32>, std::size_t,
                                     std::vector<std::vector<std::uint64_t>>&);
template void deinterleave<SliceU64>(std::span<const SliceU64>, std::size_t,
                                     std::vector<std::vector<std::uint64_t>>&);
template void deinterleave<SliceV128>(std::span<const SliceV128>, std::size_t,
                                      std::vector<std::vector<std::uint64_t>>&);
template void deinterleave<SliceV256>(std::span<const SliceV256>, std::size_t,
                                      std::vector<std::vector<std::uint64_t>>&);
template void deinterleave<SliceV512>(std::span<const SliceV512>, std::size_t,
                                      std::vector<std::vector<std::uint64_t>>&);

}  // namespace bsrng::bitslice
