// device.hpp — SIMT virtual GPU: the execution substrate substituting for
// CUDA in this reproduction (see DESIGN.md §2).
//
// Model: a grid of `blocks` thread blocks, each of `threads_per_block`
// threads; per-block shared memory; a global memory array; block-level
// barrier.  Kernels are callables receiving a ThreadCtx, mirroring the
// structure of the paper's CUDA kernels (threadIdx/blockIdx, __shared__
// staging buffers, coalesced global stores), and all global/shared traffic
// is recorded in the MemModel cost counters.
//
// Execution: blocks are distributed over a host worker pool.  Within a
// block, threads run sequentially unless the kernel needs barrier semantics,
// in which case `barriers = true` runs each block's threads as real OS
// threads synchronized with std::barrier (use small configs).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/memmodel.hpp"
#include "gpusim/sanitizer.hpp"

namespace bsrng::gpusim {

// A launch that failed at the device level (today: only via the seeded
// "gpusim.launch_fault" injection point — the simulated analogue of a CUDA
// launch error).  multi_device_generate catches this and degrades to the
// host StreamEngine path.
class DeviceFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct LaunchConfig {
  std::size_t blocks = 1;
  std::size_t threads_per_block = 32;
  std::size_t shared_bytes = 0;  // per-block shared memory
  bool barriers = false;         // real-thread execution with sync_block()
  // Sanitizer (sanitizer.hpp): when `check` is set — or the
  // BSRNG_GPUSIM_CHECK environment variable is truthy — every access is
  // shadowed by race/bounds/divergence/uninit checking and findings are
  // queryable from Device::check_reports() after the launch.
  bool check = false;
  std::string_view kernel_name = "kernel";  // label used in CheckReports
  std::size_t max_check_reports = 64;       // stored per block (all counted)
};

class Device;

// Per-thread view handed to the kernel.
class ThreadCtx {
 public:
  std::size_t thread_idx() const noexcept { return thread_idx_; }
  std::size_t block_idx() const noexcept { return block_idx_; }
  std::size_t block_dim() const noexcept { return block_dim_; }
  std::size_t grid_dim() const noexcept { return grid_dim_; }
  std::size_t global_thread_id() const noexcept {
    return block_idx_ * block_dim_ + thread_idx_;
  }
  std::size_t lane() const noexcept { return thread_idx_ % kWarpSize; }

  // Per-block shared memory (uint32 granularity, like the paper's staging
  // buffers).  Accesses are counted in the cost model.
  std::uint32_t shared_load(std::size_t idx);
  void shared_store(std::size_t idx, std::uint32_t v);

  // Global memory (word-addressed).  Counted and coalesce-modeled.
  std::uint32_t global_load(std::size_t word_idx);
  void global_store(std::size_t word_idx, std::uint32_t v);

  // Block-wide barrier; only valid when LaunchConfig::barriers is set.
  void sync_block();

 private:
  friend class Device;
  ThreadCtx(Device& dev, std::size_t block, std::size_t thread,
            std::size_t block_dim, std::size_t grid_dim,
            std::span<std::uint32_t> shared, WarpAccessRecorder& warp,
            void* barrier, BlockSanitizer* sanitizer)
      : dev_(dev), block_idx_(block), thread_idx_(thread),
        block_dim_(block_dim), grid_dim_(grid_dim), shared_(shared),
        warp_(warp), barrier_(barrier), sanitizer_(sanitizer) {}

  Device& dev_;
  std::size_t block_idx_, thread_idx_, block_dim_, grid_dim_;
  std::span<std::uint32_t> shared_;
  WarpAccessRecorder& warp_;
  void* barrier_;
  BlockSanitizer* sanitizer_;  // null when checking is off
  std::uint64_t op_slot_ = 0;  // lockstep sequence number for coalescing
  std::uint64_t op_seq_ = 0;   // all memory ops, for sanitizer reports
  std::uint64_t epoch_ = 0;    // barrier arrivals so far
};

using Kernel = std::function<void(ThreadCtx&)>;

class Device {
 public:
  // `global_words`: size of the device's global memory array.
  explicit Device(std::size_t global_words = 0);

  std::span<std::uint32_t> global_memory() noexcept { return global_; }
  std::span<const std::uint32_t> global_memory() const noexcept {
    return global_;
  }

  // Run a grid to completion; returns aggregated memory statistics for the
  // launch (also accumulated into total_stats()).
  MemStats launch(const LaunchConfig& cfg, const Kernel& kernel);

  const MemStats& total_stats() const noexcept { return total_; }
  void reset_stats() noexcept { total_ = {}; }

  // Sanitizer findings accumulated across launches run with checking on
  // (LaunchConfig::check or BSRNG_GPUSIM_CHECK).  Per-block storage is
  // capped at LaunchConfig::max_check_reports; MemStats::check_findings
  // counts every finding including dropped ones.
  const std::vector<CheckReport>& check_reports() const noexcept {
    return check_reports_;
  }
  void clear_check_reports() noexcept { check_reports_.clear(); }
  // Drain the accumulated reports (per-launch consumption: take after each
  // checked launch and the returned batch is exactly that launch's stored
  // reports).  Note the asymmetry kept for telemetry continuity: taking or
  // clearing reports does NOT rewind total_stats().check_findings, which
  // keeps counting every finding ever flagged (reset_stats() rewinds it).
  std::vector<CheckReport> take_check_reports() {
    return std::exchange(check_reports_, {});
  }

 private:
  friend class ThreadCtx;

  std::vector<std::uint32_t> global_;
  MemStats total_;
  std::vector<CheckReport> check_reports_;
};

}  // namespace bsrng::gpusim
