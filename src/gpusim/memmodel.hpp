// memmodel.hpp — memory-transaction cost model for the virtual GPU.
//
// The paper's §4.5 performance engineering (shared-memory staging, coalesced
// global writes) cannot be timed on a CPU host, but it can be *counted*: a
// warp's simultaneous global accesses cost one transaction per distinct
// 128-byte segment they touch (the NVIDIA L1-line rule), while shared-memory
// accesses are on-chip and cost a flat unit.  bench_memory_ablation (E8)
// reproduces the §4.5 effects from these counters.
//
// Grouping rule: our kernels are branch-free SIMT code, so the k-th global
// access executed by each thread of a warp is assumed to issue in lockstep
// with the k-th access of its warp-mates (the standard coalescing model).
// The simulator executes threads sequentially and tags each access with its
// per-thread sequence number ("slot"); accesses sharing a slot coalesce.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace bsrng::gpusim {

inline constexpr std::uint64_t kSegmentBytes = 128;
inline constexpr std::size_t kWarpSize = 32;

struct MemStats {
  std::uint64_t global_requests = 0;      // individual per-thread accesses
  std::uint64_t global_transactions = 0;  // coalesced 128B segments
  std::uint64_t global_bytes = 0;
  std::uint64_t shared_accesses = 0;
  std::uint64_t check_findings = 0;  // sanitizer findings (0 when check off)

  // Transaction efficiency: 1.0 means the warp's bytes were moved in the
  // minimum possible number of segments.
  double coalescing_efficiency() const {
    if (global_transactions == 0) return 1.0;
    const std::uint64_t ideal =
        (global_bytes + kSegmentBytes - 1) / kSegmentBytes;
    return static_cast<double>(ideal) /
           static_cast<double>(global_transactions);
  }

  MemStats& operator+=(const MemStats& o) {
    global_requests += o.global_requests;
    global_transactions += o.global_transactions;
    global_bytes += o.global_bytes;
    shared_accesses += o.shared_accesses;
    check_findings += o.check_findings;
    return *this;
  }
};

// Collects the global accesses of one warp, grouped by lockstep slot, and
// coalesces each completed slot into transactions.
class WarpAccessRecorder {
 public:
  explicit WarpAccessRecorder(std::size_t active_lanes)
      : active_lanes_(active_lanes) {}

  // Lane access in lockstep slot `slot` touching [addr, addr+bytes).
  // Thread-safe: in barrier mode a warp's threads report concurrently.
  void record(std::uint64_t slot, std::uint64_t addr, std::uint32_t bytes);

  void record_shared(std::uint32_t n) {
    std::scoped_lock lock(mu_);
    stats_.shared_accesses += n;
  }

  // Coalesce all slots (call once the warp's threads have all finished).
  void finalize();

  const MemStats& stats() const { return stats_; }

 private:
  struct Access {
    std::uint64_t addr;
    std::uint32_t bytes;
  };

  std::size_t active_lanes_;
  std::vector<std::vector<Access>> slots_;
  MemStats stats_;
  bool finalized_ = false;
  std::mutex mu_;
};

}  // namespace bsrng::gpusim
