#include "gpusim/catalog.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace bsrng::gpusim {

namespace {
// Table 2 of the paper, verbatim.
const std::array<GpuSpec, 6> kCatalog = {{
    {"GTX 480", 1344, 168, 177},
    {"GTX 980 Ti", 5632, 176, 337},
    {"GTX 1050 Ti", 1981, 62, 112},
    {"GTX 1080 Ti", 10609, 332, 484},
    {"Tesla V100", 14028, 7014, 900},
    {"GTX 2080 Ti", 11750, 367, 616},
}};
}  // namespace

std::span<const GpuSpec> device_catalog() { return kCatalog; }

const GpuSpec& find_device(const std::string& name) {
  const auto it =
      std::find_if(kCatalog.begin(), kCatalog.end(),
                   [&](const GpuSpec& g) { return g.name == name; });
  if (it == kCatalog.end())
    throw std::out_of_range("unknown GPU: " + name);
  return *it;
}

double project_throughput_gbps(const GpuSpec& gpu, const ProjectionParams& p) {
  if (p.gate_ops_per_bit <= 0.0)
    throw std::invalid_argument("gate_ops_per_bit must be positive");
  // Integer/boolean throughput ~ one op per FMA lane per cycle = SP peak / 2.
  const double giga_ops = gpu.sp_gflops / 2.0;
  const double compute_gbps = giga_ops / p.gate_ops_per_bit;
  // GB/s of write bandwidth sustains (GB/s / bytes-per-bit) Gbit/s.
  const double memory_gbps = gpu.mem_bw_gbs / p.bytes_per_bit;
  return p.utilization * std::min(compute_gbps, memory_gbps);
}

double normalized_gbps_per_gflops(const GpuSpec& gpu, double gbps) {
  return gbps / gpu.sp_gflops;
}

}  // namespace bsrng::gpusim
