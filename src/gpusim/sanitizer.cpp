#include "gpusim/sanitizer.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace bsrng::gpusim {

namespace {

// Per-epoch dedup bits: report each hazard kind once per (word, epoch) so a
// racy loop yields one report per word, not one per iteration.  Bounds
// violations are counted per occurrence (each touches a different address
// in the typical off-by-one loop) and rely on the max_reports cap.
constexpr std::uint8_t kBitRaw = 1u << 0;
constexpr std::uint8_t kBitWar = 1u << 1;
constexpr std::uint8_t kBitWaw = 1u << 2;
constexpr std::uint8_t kBitUninit = 1u << 3;

}  // namespace

const char* check_kind_name(CheckKind kind) noexcept {
  switch (kind) {
    case CheckKind::kSharedRaceRaw: return "shared-race-raw";
    case CheckKind::kSharedRaceWar: return "shared-race-war";
    case CheckKind::kSharedRaceWaw: return "shared-race-waw";
    case CheckKind::kSharedOutOfBounds: return "shared-out-of-bounds";
    case CheckKind::kGlobalOutOfBounds: return "global-out-of-bounds";
    case CheckKind::kBarrierDivergence: return "barrier-divergence";
    case CheckKind::kUninitSharedRead: return "uninit-shared-read";
  }
  return "unknown";
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  os << "[gpusim-check] " << check_kind_name(kind) << ": kernel '" << kernel
     << "' block " << block << " thread " << thread;
  if (other_thread >= 0) os << " (vs thread " << other_thread << ")";
  if (kind == CheckKind::kBarrierDivergence) {
    os << " exited after " << epoch << " barrier arrival(s), block-mates"
       << " reached " << address;
  } else {
    os << (kind == CheckKind::kGlobalOutOfBounds ? " global" : " shared")
       << " word " << address << ", epoch " << epoch << ", op " << slot;
  }
  return os.str();
}

bool check_env_enabled() {
  const char* v = std::getenv("BSRNG_GPUSIM_CHECK");
  if (v == nullptr) return false;
  std::string s(v);
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !(s.empty() || s == "0" || s == "false" || s == "off" || s == "no");
}

BlockSanitizer::BlockSanitizer(std::string kernel, std::size_t block,
                               std::size_t threads_per_block,
                               std::size_t shared_words,
                               std::size_t global_words,
                               std::size_t max_reports)
    : kernel_(std::move(kernel)),
      block_(block),
      shared_words_(shared_words),
      global_words_(global_words),
      max_reports_(max_reports),
      words_(shared_words),
      exit_arrivals_(threads_per_block, -1) {}

void BlockSanitizer::roll_epoch(WordState& w, std::uint64_t epoch) {
  // Epochs only advance: all live threads of a block sit between the same
  // pair of full-block barriers (an exited thread makes no more accesses),
  // so a later-epoch access means every earlier-epoch access of this word
  // is barrier-separated from it.
  if (epoch > w.epoch) {
    w.epoch = epoch;
    w.writer = -1;
    w.reader1 = -1;
    w.reader2 = -1;
    w.reported = 0;
  }
}

void BlockSanitizer::add_report(CheckKind kind, std::size_t thread,
                                std::ptrdiff_t other_thread,
                                std::uint64_t epoch, std::uint64_t address,
                                std::uint64_t slot) {
  ++findings_;
  if (reports_.size() >= max_reports_) return;  // counted but not stored
  CheckReport r;
  r.kind = kind;
  r.kernel = kernel_;
  r.block = block_;
  r.thread = thread;
  r.other_thread = other_thread;
  r.epoch = epoch;
  r.address = address;
  r.slot = slot;
  reports_.push_back(std::move(r));
}

bool BlockSanitizer::on_shared_load(std::size_t thread, std::uint64_t epoch,
                                    std::size_t idx, std::uint64_t slot) {
  std::scoped_lock lock(mu_);
  if (idx >= shared_words_) {
    add_report(CheckKind::kSharedOutOfBounds, thread, -1, epoch, idx, slot);
    return false;
  }
  WordState& w = words_[idx];
  roll_epoch(w, epoch);
  if (!w.ever_written && (w.reported & kBitUninit) == 0) {
    w.reported |= kBitUninit;
    add_report(CheckKind::kUninitSharedRead, thread, -1, epoch, idx, slot);
  }
  if (w.writer >= 0 && w.writer != static_cast<std::ptrdiff_t>(thread) &&
      (w.reported & kBitRaw) == 0) {
    w.reported |= kBitRaw;
    add_report(CheckKind::kSharedRaceRaw, thread, w.writer, epoch, idx, slot);
  }
  const auto t = static_cast<std::ptrdiff_t>(thread);
  if (w.reader1 < 0) {
    w.reader1 = t;
  } else if (w.reader1 != t && w.reader2 < 0) {
    w.reader2 = t;
  }
  return true;
}

bool BlockSanitizer::on_shared_store(std::size_t thread, std::uint64_t epoch,
                                     std::size_t idx, std::uint64_t slot) {
  std::scoped_lock lock(mu_);
  if (idx >= shared_words_) {
    add_report(CheckKind::kSharedOutOfBounds, thread, -1, epoch, idx, slot);
    return false;
  }
  WordState& w = words_[idx];
  roll_epoch(w, epoch);
  const auto t = static_cast<std::ptrdiff_t>(thread);
  if (w.writer >= 0 && w.writer != t && (w.reported & kBitWaw) == 0) {
    w.reported |= kBitWaw;
    add_report(CheckKind::kSharedRaceWaw, thread, w.writer, epoch, idx, slot);
  } else {
    const std::ptrdiff_t other =
        (w.reader1 >= 0 && w.reader1 != t) ? w.reader1
        : (w.reader2 >= 0 && w.reader2 != t) ? w.reader2
                                             : -1;
    if (other >= 0 && (w.reported & kBitWar) == 0) {
      w.reported |= kBitWar;
      add_report(CheckKind::kSharedRaceWar, thread, other, epoch, idx, slot);
    }
  }
  w.writer = t;
  w.ever_written = true;
  return true;
}

bool BlockSanitizer::on_global_load(std::size_t thread, std::uint64_t epoch,
                                    std::size_t word, std::uint64_t slot) {
  if (word < global_words_) return true;
  std::scoped_lock lock(mu_);
  add_report(CheckKind::kGlobalOutOfBounds, thread, -1, epoch, word, slot);
  return false;
}

bool BlockSanitizer::on_global_store(std::size_t thread, std::uint64_t epoch,
                                     std::size_t word, std::uint64_t slot) {
  if (word < global_words_) return true;
  std::scoped_lock lock(mu_);
  add_report(CheckKind::kGlobalOutOfBounds, thread, -1, epoch, word, slot);
  return false;
}

void BlockSanitizer::on_thread_exit(std::size_t thread,
                                    std::uint64_t barrier_arrivals) {
  std::scoped_lock lock(mu_);
  exit_arrivals_[thread] = static_cast<std::ptrdiff_t>(barrier_arrivals);
}

void BlockSanitizer::finalize() {
  std::scoped_lock lock(mu_);
  const auto most = std::max_element(exit_arrivals_.begin(),
                                     exit_arrivals_.end());
  if (most == exit_arrivals_.end() || *most <= 0) return;
  for (std::size_t t = 0; t < exit_arrivals_.size(); ++t) {
    if (exit_arrivals_[t] >= *most) continue;
    // address carries the block's max arrival count, epoch the thread's own.
    add_report(CheckKind::kBarrierDivergence, t, -1,
               static_cast<std::uint64_t>(std::max<std::ptrdiff_t>(
                   exit_arrivals_[t], 0)),
               static_cast<std::uint64_t>(*most), 0);
  }
}

std::vector<CheckReport> BlockSanitizer::take_reports() {
  std::scoped_lock lock(mu_);
  return std::move(reports_);
}

}  // namespace bsrng::gpusim
