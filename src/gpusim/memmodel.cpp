#include "gpusim/memmodel.hpp"

#include <algorithm>

namespace bsrng::gpusim {

void WarpAccessRecorder::record(std::uint64_t slot, std::uint64_t addr,
                                std::uint32_t bytes) {
  std::scoped_lock lock(mu_);
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  slots_[slot].push_back({addr, bytes});
  ++stats_.global_requests;
  stats_.global_bytes += bytes;
}

void WarpAccessRecorder::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& slot : slots_) {
    if (slot.empty()) continue;
    // Count distinct 128-byte segments touched by this lockstep access.
    std::vector<std::uint64_t> segs;
    segs.reserve(slot.size() * 2);
    for (const auto& a : slot) {
      const std::uint64_t first = a.addr / kSegmentBytes;
      const std::uint64_t last = (a.addr + a.bytes - 1) / kSegmentBytes;
      for (std::uint64_t s = first; s <= last; ++s) segs.push_back(s);
    }
    std::sort(segs.begin(), segs.end());
    segs.erase(std::unique(segs.begin(), segs.end()), segs.end());
    stats_.global_transactions += segs.size();
    slot.clear();
  }
  slots_.clear();
}

}  // namespace bsrng::gpusim
