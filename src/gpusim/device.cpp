#include "gpusim/device.hpp"

#include <barrier>
#include <deque>
#include <stdexcept>
#include <thread>

namespace bsrng::gpusim {

std::uint32_t ThreadCtx::shared_load(std::size_t idx) {
  warp_.record_shared(1);
  return shared_[idx];
}

void ThreadCtx::shared_store(std::size_t idx, std::uint32_t v) {
  warp_.record_shared(1);
  shared_[idx] = v;
}

std::uint32_t ThreadCtx::global_load(std::size_t word_idx) {
  warp_.record(op_slot_++, word_idx * 4, 4);
  return dev_.global_[word_idx];
}

void ThreadCtx::global_store(std::size_t word_idx, std::uint32_t v) {
  warp_.record(op_slot_++, word_idx * 4, 4);
  dev_.global_[word_idx] = v;
}

void ThreadCtx::sync_block() {
  if (barrier_ == nullptr)
    throw std::logic_error(
        "sync_block() requires LaunchConfig::barriers = true");
  static_cast<std::barrier<>*>(barrier_)->arrive_and_wait();
}

Device::Device(std::size_t global_words) : global_(global_words, 0) {}

MemStats Device::launch(const LaunchConfig& cfg, const Kernel& kernel) {
  if (cfg.threads_per_block == 0 || cfg.blocks == 0)
    throw std::invalid_argument("launch: empty grid");
  MemStats launch_stats;

  const std::size_t warps_per_block =
      (cfg.threads_per_block + kWarpSize - 1) / kWarpSize;

  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    std::vector<std::uint32_t> shared((cfg.shared_bytes + 3) / 4, 0);
    std::deque<WarpAccessRecorder> warps;  // deque: recorders are immovable
    for (std::size_t w = 0; w < warps_per_block; ++w) {
      const std::size_t first = w * kWarpSize;
      const std::size_t active =
          std::min(kWarpSize, cfg.threads_per_block - first);
      warps.emplace_back(active);
    }

    if (!cfg.barriers) {
      for (std::size_t t = 0; t < cfg.threads_per_block; ++t) {
        ThreadCtx ctx(*this, b, t, cfg.threads_per_block, cfg.blocks,
                      shared, warps[t / kWarpSize], nullptr);
        kernel(ctx);
      }
    } else {
      std::barrier<> bar(static_cast<std::ptrdiff_t>(cfg.threads_per_block));
      std::vector<std::thread> threads;
      threads.reserve(cfg.threads_per_block);
      for (std::size_t t = 0; t < cfg.threads_per_block; ++t) {
        threads.emplace_back([&, t] {
          ThreadCtx ctx(*this, b, t, cfg.threads_per_block, cfg.blocks,
                        shared, warps[t / kWarpSize], &bar);
          kernel(ctx);
        });
      }
      for (auto& th : threads) th.join();
    }

    for (auto& w : warps) {
      w.finalize();
      launch_stats += w.stats();
    }
  }
  total_ += launch_stats;
  return launch_stats;
}

}  // namespace bsrng::gpusim
