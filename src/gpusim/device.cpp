#include "gpusim/device.hpp"

#include <barrier>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>

#include "fault/fault.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::gpusim {

namespace {

struct DeviceFaults {
  fault::FaultPoint& launch_fault;

  static DeviceFaults& get() {
    static DeviceFaults f{fault::faults().point("gpusim.launch_fault")};
    return f;
  }
};

// Launch-granularity telemetry (one update set per launch, not per memory
// access — the virtual GPU's hot loops stay untouched).
struct DeviceMetrics {
  telemetry::Counter& launches;
  telemetry::Counter& blocks;
  telemetry::Counter& threads;
  telemetry::Counter& barrier_arrivals;
  telemetry::Counter& global_transactions;
  telemetry::Counter& shared_accesses;
  telemetry::Counter& check_findings;

  static DeviceMetrics& get() {
    static DeviceMetrics m{
        telemetry::metrics().counter("gpusim.launches"),
        telemetry::metrics().counter("gpusim.blocks"),
        telemetry::metrics().counter("gpusim.threads"),
        telemetry::metrics().counter("gpusim.barrier_arrivals"),
        telemetry::metrics().counter("gpusim.global_transactions"),
        telemetry::metrics().counter("gpusim.shared_accesses"),
        telemetry::metrics().counter("gpusim.check_findings"),
    };
    return m;
  }
};

// Checked-mode accesses go through relaxed atomics: a kernel under the
// sanitizer may contain a *deliberate* data race (that is what the checker
// is for), and the shadow report must not come with host-level UB attached.
// On x86 these compile to plain loads/stores; the unchecked path is
// untouched.
std::uint32_t relaxed_load(const std::uint32_t* p) noexcept {
  return __atomic_load_n(p, __ATOMIC_RELAXED);
}
void relaxed_store(std::uint32_t* p, std::uint32_t v) noexcept {
  __atomic_store_n(p, v, __ATOMIC_RELAXED);
}

}  // namespace

std::uint32_t ThreadCtx::shared_load(std::size_t idx) {
  warp_.record_shared(1);
  if (sanitizer_ != nullptr) {
    if (!sanitizer_->on_shared_load(thread_idx_, epoch_, idx, op_seq_++))
      return 0;  // out of bounds: suppressed
    return relaxed_load(&shared_[idx]);
  }
  return shared_[idx];
}

void ThreadCtx::shared_store(std::size_t idx, std::uint32_t v) {
  warp_.record_shared(1);
  if (sanitizer_ != nullptr) {
    if (!sanitizer_->on_shared_store(thread_idx_, epoch_, idx, op_seq_++))
      return;  // out of bounds: suppressed
    relaxed_store(&shared_[idx], v);
    return;
  }
  shared_[idx] = v;
}

std::uint32_t ThreadCtx::global_load(std::size_t word_idx) {
  warp_.record(op_slot_++, word_idx * 4, 4);
  if (sanitizer_ != nullptr) {
    if (!sanitizer_->on_global_load(thread_idx_, epoch_, word_idx, op_seq_++))
      return 0;  // out of bounds: suppressed
    return relaxed_load(&dev_.global_[word_idx]);
  }
  return dev_.global_[word_idx];
}

void ThreadCtx::global_store(std::size_t word_idx, std::uint32_t v) {
  warp_.record(op_slot_++, word_idx * 4, 4);
  if (sanitizer_ != nullptr) {
    if (!sanitizer_->on_global_store(thread_idx_, epoch_, word_idx, op_seq_++))
      return;  // out of bounds: suppressed
    relaxed_store(&dev_.global_[word_idx], v);
    return;
  }
  dev_.global_[word_idx] = v;
}

void ThreadCtx::sync_block() {
  if (barrier_ == nullptr)
    throw std::logic_error(
        "sync_block() requires LaunchConfig::barriers = true");
  static_cast<std::barrier<>*>(barrier_)->arrive_and_wait();
  ++epoch_;
}

Device::Device(std::size_t global_words) : global_(global_words, 0) {}

MemStats Device::launch(const LaunchConfig& cfg, const Kernel& kernel) {
  if (cfg.threads_per_block == 0 || cfg.blocks == 0)
    throw std::invalid_argument("launch: empty grid");
  // Fires after grid validation (an invalid grid is a caller bug, not a
  // device fault) and before any block runs, so a faulted launch leaves
  // global memory untouched and a retry/fallback is byte-exact.
  if (DeviceFaults::get().launch_fault.fire())
    throw DeviceFault("gpusim: injected launch fault");
  const bool check = cfg.check || check_env_enabled();
  MemStats launch_stats;

  const std::size_t warps_per_block =
      (cfg.threads_per_block + kWarpSize - 1) / kWarpSize;
  const std::size_t shared_words = (cfg.shared_bytes + 3) / 4;

  for (std::size_t b = 0; b < cfg.blocks; ++b) {
    std::vector<std::uint32_t> shared(shared_words, 0);
    std::deque<WarpAccessRecorder> warps;  // deque: recorders are immovable
    for (std::size_t w = 0; w < warps_per_block; ++w) {
      const std::size_t first = w * kWarpSize;
      const std::size_t active =
          std::min(kWarpSize, cfg.threads_per_block - first);
      warps.emplace_back(active);
    }
    std::unique_ptr<BlockSanitizer> san;
    if (check)
      san = std::make_unique<BlockSanitizer>(
          std::string(cfg.kernel_name), b, cfg.threads_per_block,
          shared_words, global_.size(), cfg.max_check_reports);

    if (!cfg.barriers) {
      for (std::size_t t = 0; t < cfg.threads_per_block; ++t) {
        ThreadCtx ctx(*this, b, t, cfg.threads_per_block, cfg.blocks,
                      shared, warps[t / kWarpSize], nullptr, san.get());
        kernel(ctx);
        DeviceMetrics::get().barrier_arrivals.add(ctx.epoch_);
        if (san) san->on_thread_exit(t, ctx.epoch_);
      }
    } else {
      std::barrier<> bar(static_cast<std::ptrdiff_t>(cfg.threads_per_block));
      std::vector<std::thread> threads;
      threads.reserve(cfg.threads_per_block);
      for (std::size_t t = 0; t < cfg.threads_per_block; ++t) {
        threads.emplace_back([&, t] {
          ThreadCtx ctx(*this, b, t, cfg.threads_per_block, cfg.blocks,
                        shared, warps[t / kWarpSize], &bar, san.get());
          kernel(ctx);
          DeviceMetrics::get().barrier_arrivals.add(ctx.epoch_);
          if (san) san->on_thread_exit(t, ctx.epoch_);
          // Leave the barrier's participant set so a divergent kernel (a
          // thread exiting while block-mates still sync) terminates and is
          // reported instead of deadlocking the launch.
          bar.arrive_and_drop();
        });
      }
      for (auto& th : threads) th.join();
    }

    for (auto& w : warps) {
      w.finalize();
      launch_stats += w.stats();
    }
    if (san) {
      san->finalize();
      launch_stats.check_findings += san->total_findings();
      auto reports = san->take_reports();
      check_reports_.insert(check_reports_.end(),
                            std::make_move_iterator(reports.begin()),
                            std::make_move_iterator(reports.end()));
    }
  }
  DeviceMetrics& dm = DeviceMetrics::get();
  dm.launches.add();
  dm.blocks.add(cfg.blocks);
  dm.threads.add(cfg.blocks * cfg.threads_per_block);
  dm.global_transactions.add(launch_stats.global_transactions);
  dm.shared_accesses.add(launch_stats.shared_accesses);
  dm.check_findings.add(launch_stats.check_findings);

  total_ += launch_stats;
  return launch_stats;
}

}  // namespace bsrng::gpusim
