// catalog.hpp — the paper's GPU platforms (Table 2) and the throughput
// projection model used to regenerate Fig. 10/11 shapes without the silicon.
//
// Projection model (documented in DESIGN.md/EXPERIMENTS.md): a bitsliced
// generator is compute-bound at `gate_ops_per_bit` boolean register
// operations per produced bit; a GPU retires roughly one 32-bit logical op
// per FMA lane per cycle, i.e. ~ (SP GFLOPS / 2) billion ops/s.  The memory
// side needs `bytes_per_bit` of write bandwidth.  Projected throughput is
// the binding minimum, scaled by an empirical utilization factor.
#pragma once

#include <span>
#include <string>

namespace bsrng::gpusim {

struct GpuSpec {
  std::string name;
  double sp_gflops;   // single-precision peak (Table 2)
  double dp_gflops;   // double-precision peak (Table 2)
  double mem_bw_gbs;  // memory bandwidth GB/s (Table 2)
};

// The six GPUs of Table 2, in the paper's order.
std::span<const GpuSpec> device_catalog();

// Look up by name; throws std::out_of_range if absent.
const GpuSpec& find_device(const std::string& name);

struct ProjectionParams {
  double gate_ops_per_bit;  // measured: boolean slice ops per output bit
  double bytes_per_bit = 0.125;  // one output bit must be written once
  double utilization = 0.75;     // achieved fraction of peak (empirical)
};

// Projected generation throughput in Gbit/s on `gpu`.
double project_throughput_gbps(const GpuSpec& gpu, const ProjectionParams& p);

// Gbps per GFLOPS — the normalized metric of Table 1 / Fig. 11.
double normalized_gbps_per_gflops(const GpuSpec& gpu, double gbps);

}  // namespace bsrng::gpusim
