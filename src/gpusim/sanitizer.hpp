// sanitizer.hpp — compute-sanitizer-style checker for the virtual GPU.
//
// The paper's §4.5 engineering (shared-memory staging, coalesced flushes,
// __syncthreads barriers) is exactly the code most prone to silent data
// races and off-by-one staging indices.  This module shadows every
// shared/global access of a launch with a per-block checker that detects:
//
//   * shared-memory hazards — RAW/WAR/WAW conflicts between distinct
//     threads of a block with no intervening sync_block(), tracked per
//     32-bit word per *barrier epoch* (a thread's epoch is the number of
//     barriers it has passed; a full-block barrier separates epochs, so two
//     same-word accesses by different threads race iff they share an epoch);
//   * out-of-bounds shared and global word indices (the faulting access is
//     suppressed and reported instead of touching memory);
//   * barrier divergence — a thread exiting with fewer barrier arrivals
//     than its block-mates (e.g. a divergent early return);
//   * uninitialised shared reads — a load of a staging word never stored
//     since launch (zero in the simulator, garbage on real silicon).
//
// Checking is opt-in per launch (LaunchConfig::check) or process-wide via
// the BSRNG_GPUSIM_CHECK environment variable; reports are queryable from
// Device::check_reports() after the launch.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace bsrng::gpusim {

enum class CheckKind : std::uint8_t {
  kSharedRaceRaw,      // read-after-write by another thread, same epoch
  kSharedRaceWar,      // write-after-read by another thread, same epoch
  kSharedRaceWaw,      // write-after-write by another thread, same epoch
  kSharedOutOfBounds,  // shared word index >= configured shared words
  kGlobalOutOfBounds,  // global word index >= device global words
  kBarrierDivergence,  // thread exited with fewer barrier arrivals
  kUninitSharedRead,   // load of a shared word never stored this launch
};

const char* check_kind_name(CheckKind kind) noexcept;

// One finding.  `address` is a word index in the shared or global space;
// `slot` is the offending thread's per-thread memory-op sequence number;
// `other_thread` is the conflicting thread for races (-1 when n/a).
struct CheckReport {
  CheckKind kind = CheckKind::kSharedRaceRaw;
  std::string kernel;
  std::size_t block = 0;
  std::size_t thread = 0;
  std::ptrdiff_t other_thread = -1;
  std::uint64_t epoch = 0;
  std::uint64_t address = 0;
  std::uint64_t slot = 0;

  std::string to_string() const;
};

// True when BSRNG_GPUSIM_CHECK is set to anything but 0/false/off/no/"".
bool check_env_enabled();

// Shadow state for one thread block of one launch.  Thread-safe: in
// barrier mode a block's threads report concurrently.
class BlockSanitizer {
 public:
  BlockSanitizer(std::string kernel, std::size_t block,
                 std::size_t threads_per_block, std::size_t shared_words,
                 std::size_t global_words, std::size_t max_reports);

  // Access hooks, called before the memory is touched.  Return false when
  // the access is out of bounds and must be suppressed.
  bool on_shared_load(std::size_t thread, std::uint64_t epoch,
                      std::size_t idx, std::uint64_t slot);
  bool on_shared_store(std::size_t thread, std::uint64_t epoch,
                       std::size_t idx, std::uint64_t slot);
  bool on_global_load(std::size_t thread, std::uint64_t epoch,
                      std::size_t word, std::uint64_t slot);
  bool on_global_store(std::size_t thread, std::uint64_t epoch,
                       std::size_t word, std::uint64_t slot);

  // Called once per thread when its kernel body returns.
  void on_thread_exit(std::size_t thread, std::uint64_t barrier_arrivals);

  // Block-completion checks (barrier divergence); call after all threads
  // of the block have exited.
  void finalize();

  // Total findings, including ones dropped past max_reports.
  std::uint64_t total_findings() const noexcept { return findings_; }
  std::vector<CheckReport> take_reports();

 private:
  // Per-word shadow state for the current barrier epoch.  Epochs advance
  // monotonically (all live threads of a block share an epoch between two
  // full-block barriers), so one record per word suffices.  Two reader
  // slots hold *distinct* thread ids: if only reader1 is set, every reader
  // this epoch was reader1, so a WAR conflict with a storing thread T
  // exists iff reader1 != T or reader2 != T.
  struct WordState {
    std::uint64_t epoch = 0;
    std::ptrdiff_t writer = -1;  // last writer this epoch
    std::ptrdiff_t reader1 = -1;
    std::ptrdiff_t reader2 = -1;
    std::uint8_t reported = 0;  // per-epoch CheckKind dedup bitmask
    bool ever_written = false;  // since launch (persists across epochs)
  };

  void roll_epoch(WordState& w, std::uint64_t epoch);
  // Returns true when the report was counted as a fresh finding.
  void add_report(CheckKind kind, std::size_t thread,
                  std::ptrdiff_t other_thread, std::uint64_t epoch,
                  std::uint64_t address, std::uint64_t slot);

  std::string kernel_;
  std::size_t block_;
  std::size_t shared_words_;
  std::size_t global_words_;
  std::size_t max_reports_;
  std::vector<WordState> words_;
  std::vector<std::ptrdiff_t> exit_arrivals_;  // -1 until the thread exits
  std::vector<CheckReport> reports_;
  std::uint64_t findings_ = 0;
  std::mutex mu_;
};

}  // namespace bsrng::gpusim
