// modern.hpp — additional baseline generators rounding out the comparison
// set: RC4 (the classic byte-oriented stream cipher — table-driven, hence
// *not* bitsliceable, a useful contrast), PCG32 and xoshiro256++ (the
// post-paper state of the art in statistical PRNGs).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::baselines {

// RC4 (ARCFOUR).  Cryptographically retired; included as the byte-table
// architecture the bitslicing technique cannot accelerate.
class Rc4 {
 public:
  explicit Rc4(std::span<const std::uint8_t> key);

  std::uint8_t next_byte() noexcept;
  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  std::array<std::uint8_t, 256> s_{};
  std::uint8_t i_ = 0, j_ = 0;
};

// PCG32 (O'Neill): 64-bit LCG state, xorshift-rotate output.
class Pcg32 {
 public:
  Pcg32(std::uint64_t seed, std::uint64_t stream = 54u);

  std::uint32_t next() noexcept;
  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;  // odd
};

// xoshiro256++ (Blackman & Vigna).
class Xoshiro256pp {
 public:
  explicit Xoshiro256pp(std::uint64_t seed);

  std::uint64_t next() noexcept;
  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace bsrng::baselines
