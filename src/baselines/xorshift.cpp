#include "baselines/xorshift.hpp"

#include "lfsr/bitsliced_lfsr.hpp"  // splitmix64

namespace bsrng::baselines {

Xorwow::Xorwow(std::uint32_t seed) noexcept {
  // Expand the seed through splitmix64 so any 32-bit seed yields a
  // well-mixed, nonzero 160-bit xorshift state (Marsaglia's published
  // constants are the seed==0 defaults).
  if (seed == 0) {
    x_ = 123456789u;
    y_ = 362436069u;
    z_ = 521288629u;
    w_ = 88675123u;
    v_ = 5783321u;
    d_ = 6615241u;
    return;
  }
  std::uint64_t s = seed;
  const std::uint64_t a = lfsr::splitmix64(s);
  const std::uint64_t b = lfsr::splitmix64(s);
  const std::uint64_t c = lfsr::splitmix64(s);
  x_ = static_cast<std::uint32_t>(a);
  y_ = static_cast<std::uint32_t>(a >> 32) | 1u;  // keep state nonzero
  z_ = static_cast<std::uint32_t>(b);
  w_ = static_cast<std::uint32_t>(b >> 32);
  v_ = static_cast<std::uint32_t>(c) | 1u;
  d_ = static_cast<std::uint32_t>(c >> 32);
}

void Xorwow::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 4 <= out.size()) {
    const std::uint32_t w = next();
    out[i] = static_cast<std::uint8_t>(w);
    out[i + 1] = static_cast<std::uint8_t>(w >> 8);
    out[i + 2] = static_cast<std::uint8_t>(w >> 16);
    out[i + 3] = static_cast<std::uint8_t>(w >> 24);
    i += 4;
  }
  if (i < out.size()) {
    const std::uint32_t w = next();
    for (std::size_t k = 0; i < out.size(); ++i, ++k)
      out[i] = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

}  // namespace bsrng::baselines
