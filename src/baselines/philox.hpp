// philox.hpp — Philox4x32-10 counter-based generator (Salmon et al.,
// "Parallel random numbers: as easy as 1, 2, 3", SC'11): the other generator
// family cuRAND offers, and the natural CTR-structured comparison point for
// the paper's AES-CTR PRNG (both are embarrassingly parallel in the counter).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::baselines {

class Philox4x32 {
 public:
  static constexpr unsigned kRounds = 10;
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  explicit Philox4x32(Key key = {0, 0}, Counter counter = {0, 0, 0, 0})
      : key_(key), counter_(counter) {}

  // The pure round function: one 128-bit block from (counter, key).
  static Counter block(Counter c, Key k) noexcept;

  // Sequential convenience: emits block words, bumping the counter.
  std::uint32_t next() noexcept;
  void fill(std::span<std::uint8_t> out) noexcept;

  // Jump the counter (for partitioning across devices).
  void set_counter(Counter c) noexcept {
    counter_ = c;
    have_ = 0;
  }

 private:
  void bump() noexcept;

  Key key_;
  Counter counter_;
  Counter out_{};
  unsigned have_ = 0;  // unconsumed words of out_
};

}  // namespace bsrng::baselines
