// minstd.hpp — Park-Miller minimal standard generator (Lehmer LCG with
// multiplier 48271 modulo 2^31 - 1), the algorithm of the "ParkMiller" GPU
// row in the paper's Table 1 ([21]).  Pinned to std::minstd_rand in tests.
#pragma once

#include <cstdint>
#include <span>

namespace bsrng::baselines {

class Minstd {
 public:
  static constexpr std::uint32_t kModulus = 2147483647u;  // 2^31 - 1
  static constexpr std::uint32_t kMultiplier = 48271u;

  explicit Minstd(std::uint32_t seed = 1u)
      : x_(seed % kModulus == 0 ? 1u : seed % kModulus) {}

  std::uint32_t next() noexcept {
    x_ = static_cast<std::uint32_t>(
        (std::uint64_t{x_} * kMultiplier) % kModulus);
    return x_;
  }

  void fill(std::span<std::uint8_t> out) noexcept {
    // Only the low 31 bits are uniform; emit 3 bytes per draw to avoid the
    // always-clear top bit skewing the stream.
    std::size_t i = 0;
    while (i < out.size()) {
      const std::uint32_t w = next();
      for (std::size_t k = 0; k < 3 && i < out.size(); ++k, ++i)
        out[i] = static_cast<std::uint8_t>(w >> (8 * k));
    }
  }

 private:
  std::uint32_t x_;
};

}  // namespace bsrng::baselines
