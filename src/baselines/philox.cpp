#include "baselines/philox.hpp"

namespace bsrng::baselines {

namespace {
constexpr std::uint32_t kMul0 = 0xD2511F53u;
constexpr std::uint32_t kMul1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t p = std::uint64_t{a} * b;
  hi = static_cast<std::uint32_t>(p >> 32);
  lo = static_cast<std::uint32_t>(p);
}
}  // namespace

Philox4x32::Counter Philox4x32::block(Counter c, Key k) noexcept {
  for (unsigned r = 0; r < kRounds; ++r) {
    std::uint32_t hi0, lo0, hi1, lo1;
    mulhilo(kMul0, c[0], hi0, lo0);
    mulhilo(kMul1, c[2], hi1, lo1);
    c = Counter{hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
    k[0] += kWeyl0;
    k[1] += kWeyl1;
  }
  return c;
}

void Philox4x32::bump() noexcept {
  out_ = block(counter_, key_);
  have_ = 4;
  // 128-bit little-endian counter increment.
  for (auto& w : counter_)
    if (++w != 0) break;
}

std::uint32_t Philox4x32::next() noexcept {
  if (have_ == 0) bump();
  return out_[4 - have_--];
}

void Philox4x32::fill(std::span<std::uint8_t> out) noexcept {
  for (std::size_t i = 0; i < out.size();) {
    const std::uint32_t w = next();
    for (std::size_t k = 0; k < 4 && i < out.size(); ++k, ++i)
      out[i] = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

}  // namespace bsrng::baselines
