// MiddleSquare is header-only; this TU anchors the module in the build.
#include "baselines/middle_square.hpp"
