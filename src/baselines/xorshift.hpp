// xorshift.hpp — Marsaglia's xorshift family (paper ref [26]) including
// XORWOW, the default device-API generator of the cuRAND library the paper
// benchmarks against.
#pragma once

#include <cstdint>
#include <span>

namespace bsrng::baselines {

// 32-bit xorshift, triple (13, 17, 5).
class Xorshift32 {
 public:
  explicit Xorshift32(std::uint32_t seed = 2463534242u) : x_(seed ? seed : 1u) {}
  std::uint32_t next() noexcept {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 17;
    x_ ^= x_ << 5;
    return x_;
  }

 private:
  std::uint32_t x_;
};

// 64-bit xorshift, triple (13, 7, 17).
class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t seed = 88172645463325252ull)
      : x_(seed ? seed : 1u) {}
  std::uint64_t next() noexcept {
    x_ ^= x_ << 13;
    x_ ^= x_ >> 7;
    x_ ^= x_ << 17;
    return x_;
  }

 private:
  std::uint64_t x_;
};

// 128-bit xorshift (Marsaglia 2003, §4 "xor128").
class Xorshift128 {
 public:
  Xorshift128(std::uint32_t x = 123456789u, std::uint32_t y = 362436069u,
              std::uint32_t z = 521288629u, std::uint32_t w = 88675123u)
      : x_(x), y_(y), z_(z), w_(w) {}
  std::uint32_t next() noexcept {
    const std::uint32_t t = x_ ^ (x_ << 11);
    x_ = y_;
    y_ = z_;
    z_ = w_;
    w_ = (w_ ^ (w_ >> 19)) ^ (t ^ (t >> 8));
    return w_;
  }

 private:
  std::uint32_t x_, y_, z_, w_;
};

// XORWOW: xorshift160 plus a Weyl sequence (Marsaglia 2003, §3.1); cuRAND's
// XORWOW generator is this algorithm.
class Xorwow {
 public:
  explicit Xorwow(std::uint32_t seed = 0) noexcept;
  std::uint32_t next() noexcept {
    const std::uint32_t t = x_ ^ (x_ >> 2);
    x_ = y_;
    y_ = z_;
    z_ = w_;
    w_ = v_;
    v_ = (v_ ^ (v_ << 4)) ^ (t ^ (t << 1));
    d_ += 362437u;
    return v_ + d_;
  }
  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  std::uint32_t x_, y_, z_, w_, v_, d_;
};

}  // namespace bsrng::baselines
