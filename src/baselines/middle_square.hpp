// middle_square.hpp — von Neumann's Middle Square Method (paper §2.1, ref
// [44]): the historical PRNG the paper's background opens with.  Included as
// the known-bad statistical calibration generator — it collapses to short
// cycles and fails the NIST suite, which the tests assert.
#pragma once

#include <cstdint>
#include <span>

namespace bsrng::baselines {

class MiddleSquare {
 public:
  explicit MiddleSquare(std::uint32_t seed = 675248u) : x_(seed) {}

  // Square the 8-digit decimal state and take the middle 8 digits.
  std::uint32_t next() noexcept {
    const std::uint64_t sq = std::uint64_t{x_} * x_;
    x_ = static_cast<std::uint32_t>((sq / 10000) % 100000000ull);
    return x_;
  }

  void fill(std::span<std::uint8_t> out) noexcept {
    for (std::size_t i = 0; i < out.size();) {
      const std::uint32_t w = next();
      for (std::size_t k = 0; k < 3 && i < out.size(); ++k, ++i)
        out[i] = static_cast<std::uint8_t>(w >> (8 * k));
    }
  }

 private:
  std::uint32_t x_;
};

}  // namespace bsrng::baselines
