#include "baselines/modern.hpp"

#include <bit>
#include <stdexcept>

#include "lfsr/bitsliced_lfsr.hpp"  // splitmix64

namespace bsrng::baselines {

Rc4::Rc4(std::span<const std::uint8_t> key) {
  if (key.empty() || key.size() > 256)
    throw std::invalid_argument("RC4 key must be 1..256 bytes");
  for (unsigned i = 0; i < 256; ++i) s_[i] = static_cast<std::uint8_t>(i);
  std::uint8_t j = 0;
  for (unsigned i = 0; i < 256; ++i) {
    j = static_cast<std::uint8_t>(j + s_[i] + key[i % key.size()]);
    std::swap(s_[i], s_[j]);
  }
}

std::uint8_t Rc4::next_byte() noexcept {
  i_ = static_cast<std::uint8_t>(i_ + 1);
  j_ = static_cast<std::uint8_t>(j_ + s_[i_]);
  std::swap(s_[i_], s_[j_]);
  return s_[static_cast<std::uint8_t>(s_[i_] + s_[j_])];
}

void Rc4::fill(std::span<std::uint8_t> out) noexcept {
  for (auto& b : out) b = next_byte();
}

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1) | 1u) {
  next();
  state_ += seed;
  next();
}

std::uint32_t Pcg32::next() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ull + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  const auto rot = static_cast<int>(old >> 59);
  return std::rotr(xorshifted, rot);
}

void Pcg32::fill(std::span<std::uint8_t> out) noexcept {
  for (std::size_t i = 0; i < out.size();) {
    const std::uint32_t w = next();
    for (std::size_t k = 0; k < 4 && i < out.size(); ++k, ++i)
      out[i] = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) {
  // Seed the full state through splitmix64 (the authors' recommendation).
  std::uint64_t x = seed;
  for (auto& s : s_) s = bsrng::lfsr::splitmix64(x);
}

std::uint64_t Xoshiro256pp::next() noexcept {
  const std::uint64_t result = std::rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::fill(std::span<std::uint8_t> out) noexcept {
  for (std::size_t i = 0; i < out.size();) {
    const std::uint64_t w = next();
    for (std::size_t k = 0; k < 8 && i < out.size(); ++k, ++i)
      out[i] = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

}  // namespace bsrng::baselines
