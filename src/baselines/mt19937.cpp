#include "baselines/mt19937.hpp"

namespace bsrng::baselines {

void Mt19937::reseed(std::uint32_t seed) noexcept {
  state_[0] = seed;
  for (std::size_t i = 1; i < N; ++i)
    state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) +
                static_cast<std::uint32_t>(i);
  index_ = N;
}

void Mt19937::twist() noexcept {
  for (std::size_t i = 0; i < N; ++i) {
    const std::uint32_t x =
        (state_[i] & kUpperMask) | (state_[(i + 1) % N] & kLowerMask);
    std::uint32_t xa = x >> 1;
    if (x & 1u) xa ^= kMatrixA;
    state_[i] = state_[(i + M) % N] ^ xa;
  }
  index_ = 0;
}

std::uint32_t Mt19937::next() noexcept {
  if (index_ >= N) twist();
  std::uint32_t y = state_[index_++];
  y ^= y >> 11;
  y ^= (y << 7) & 0x9D2C5680u;
  y ^= (y << 15) & 0xEFC60000u;
  y ^= y >> 18;
  return y;
}

void Mt19937::fill(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 4 <= out.size()) {
    const std::uint32_t w = next();
    out[i] = static_cast<std::uint8_t>(w);
    out[i + 1] = static_cast<std::uint8_t>(w >> 8);
    out[i + 2] = static_cast<std::uint8_t>(w >> 16);
    out[i + 3] = static_cast<std::uint8_t>(w >> 24);
    i += 4;
  }
  if (i < out.size()) {
    const std::uint32_t w = next();
    for (std::size_t k = 0; i < out.size(); ++i, ++k)
      out[i] = static_cast<std::uint8_t>(w >> (8 * k));
  }
}

}  // namespace bsrng::baselines
