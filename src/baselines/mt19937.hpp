// mt19937.hpp — Mersenne Twister (Matsumoto & Nishimura 1998, paper ref
// [29]): the generator cuRAND's default host API configuration uses and the
// paper's cuRAND comparison baseline ("evaluated using the Mersenne Twister
// algorithm as the default cuRand method", §5.2).
//
// Independent implementation; the test suite pins it bit-for-bit to
// std::mt19937.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace bsrng::baselines {

class Mt19937 {
 public:
  static constexpr std::uint32_t kDefaultSeed = 5489u;

  explicit Mt19937(std::uint32_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint32_t seed) noexcept;
  std::uint32_t next() noexcept;
  void fill(std::span<std::uint8_t> out) noexcept;

 private:
  void twist() noexcept;

  static constexpr std::size_t N = 624, M = 397;
  static constexpr std::uint32_t kMatrixA = 0x9908B0DFu;
  static constexpr std::uint32_t kUpperMask = 0x80000000u;
  static constexpr std::uint32_t kLowerMask = 0x7FFFFFFFu;

  std::array<std::uint32_t, N> state_{};
  std::size_t index_ = N;
};

}  // namespace bsrng::baselines
