#include "core/registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/middle_square.hpp"
#include "baselines/modern.hpp"
#include "baselines/minstd.hpp"
#include "baselines/mt19937.hpp"
#include "baselines/philox.hpp"
#include "baselines/xorshift.hpp"
#include "bitslice/gatecount.hpp"
#include "ciphers/a51_bs.hpp"
#include "ciphers/a51_ref.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/aes_ref.hpp"
#include "ciphers/chacha_bs.hpp"
#include "ciphers/chacha_ref.hpp"
#include "ciphers/grain_bs.hpp"
#include "ciphers/grain_ref.hpp"
#include "ciphers/mickey_bs.hpp"
#include "ciphers/mickey_ref.hpp"
#include "ciphers/trivium_bs.hpp"
#include "ciphers/trivium_ref.hpp"
#include "lfsr/bitsliced_lfsr.hpp"

namespace bsrng::core {

namespace bs = bsrng::bitslice;

namespace {

// Serialize one slice little-endian: lane j of the slice becomes bit j of
// the output bytes.
template <typename W>
void slice_to_bytes(const W& s, std::uint8_t* out) {
  constexpr std::size_t nwords = bs::lane_count<W> / 64 + (bs::lane_count<W> < 64);
  for (std::size_t k = 0; k < nwords; ++k) {
    const std::uint64_t w = bs::SliceTraits<W>::word64(s, k);
    const std::size_t nbytes = std::min<std::size_t>(8, bs::lane_count<W> / 8);
    for (std::size_t b = 0; b < nbytes; ++b)
      out[8 * k + b] = static_cast<std::uint8_t>(w >> (8 * b));
  }
}

// Adapter for bitsliced stream-cipher engines (MickeyBs/GrainBs/TriviumBs).
template <typename W, typename Engine>
class SlicedStreamGen final : public Generator {
 public:
  SlicedStreamGen(std::string name, std::uint64_t seed)
      : name_(std::move(name)), engine_(seed) {}

  // Wrap an already-built engine (lane-range shards of a PartitionSpec).
  SlicedStreamGen(std::string name, Engine engine)
      : name_(std::move(name)), engine_(std::move(engine)) {}

  void fill(std::span<std::uint8_t> out) override {
    constexpr std::size_t step_bytes = bs::lane_count<W> / 8;
    std::size_t i = 0;
    // Drain residue.
    while (pos_ < buf_len_ && i < out.size()) out[i++] = buf_[pos_++];
    // Whole steps straight into the output.
    while (i + step_bytes <= out.size()) {
      const W z = engine_.step();
      slice_to_bytes(z, out.data() + i);
      i += step_bytes;
    }
    // Final partial step via the residue buffer.
    if (i < out.size()) {
      const W z = engine_.step();
      slice_to_bytes(z, buf_.data());
      buf_len_ = step_bytes;
      pos_ = 0;
      while (i < out.size()) out[i++] = buf_[pos_++];
    }
  }

  std::string_view name() const noexcept override { return name_; }
  std::size_t lanes() const noexcept override { return bs::lane_count<W>; }

 private:
  std::string name_;
  Engine engine_;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0, pos_ = 0;
};

// Seed-derived CTR parameters, shared by the factory and partition_spec so
// counter shards reproduce the factory stream exactly.
template <std::size_t KeyLen>
struct CtrParams {
  std::array<std::uint8_t, KeyLen> key;
  std::array<std::uint8_t, 12> nonce;
};

template <std::size_t KeyLen>
CtrParams<KeyLen> derive_ctr_params(std::uint64_t seed) {
  CtrParams<KeyLen> p;
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < KeyLen; i += 8) {
    const std::uint64_t w = lfsr::splitmix64(x);
    for (std::size_t k = 0; k < 8; ++k)
      p.key[i + k] = static_cast<std::uint8_t>(w >> (8 * k));
  }
  const std::uint64_t w0 = lfsr::splitmix64(x), w1 = lfsr::splitmix64(x);
  for (std::size_t k = 0; k < 8; ++k)
    p.nonce[k] = static_cast<std::uint8_t>(w0 >> (8 * k));
  for (std::size_t k = 0; k < 4; ++k)
    p.nonce[8 + k] = static_cast<std::uint8_t>(w1 >> (8 * k));
  return p;
}

// Adapter for the bitsliced AES-CTR generator; counter0 selects the first
// stream block (0 for the factory, a shard offset for PartitionSpec).
template <typename W>
class AesCtrGen final : public Generator {
 public:
  AesCtrGen(std::string name, std::uint64_t seed, std::uint32_t counter0 = 0)
      : name_(std::move(name)), gen_(make(seed, counter0)) {}

  void fill(std::span<std::uint8_t> out) override { gen_.fill(out); }
  std::string_view name() const noexcept override { return name_; }
  std::size_t lanes() const noexcept override { return bs::lane_count<W>; }

 private:
  static ciphers::AesCtrBs<W> make(std::uint64_t seed, std::uint32_t counter0) {
    const auto p = derive_ctr_params<16>(seed);
    return ciphers::AesCtrBs<W>(p.key, p.nonce, counter0);
  }

  std::string name_;
  ciphers::AesCtrBs<W> gen_;
};

// Adapter for the bitsliced ChaCha20 generator.
template <typename W>
class ChaChaGen final : public Generator {
 public:
  ChaChaGen(std::string name, std::uint64_t seed, std::uint32_t counter0 = 0)
      : name_(std::move(name)), gen_(make(seed, counter0)) {}

  void fill(std::span<std::uint8_t> out) override { gen_.fill(out); }
  std::string_view name() const noexcept override { return name_; }
  std::size_t lanes() const noexcept override { return bs::lane_count<W>; }

 private:
  static ciphers::ChaCha20Bs<W> make(std::uint64_t seed,
                                     std::uint32_t counter0) {
    const auto p = derive_ctr_params<32>(seed);
    return ciphers::ChaCha20Bs<W>(p.key, p.nonce, counter0);
  }

  std::string name_;
  ciphers::ChaCha20Bs<W> gen_;
};

// Generic stream-continuous adapter: `Src` is any callable returning a
// (value, nbytes) chunk per draw; partial consumption is buffered so
// fill(a); fill(b) equals fill(a+b).
template <typename Src>
class ChunkStreamGen final : public Generator {
 public:
  ChunkStreamGen(std::string name, Src src)
      : name_(std::move(name)), src_(std::move(src)) {}

  void fill(std::span<std::uint8_t> out) override {
    std::size_t i = 0;
    while (pos_ < len_ && i < out.size()) out[i++] = buf_[pos_++];
    while (i < out.size()) {
      const auto [v, n] = src_();
      for (std::size_t k = 0; k < n; ++k)
        buf_[k] = static_cast<std::uint8_t>(v >> (8 * k));
      len_ = n;
      pos_ = 0;
      while (pos_ < len_ && i < out.size()) out[i++] = buf_[pos_++];
    }
  }
  std::string_view name() const noexcept override { return name_; }

 private:
  std::string name_;
  Src src_;
  std::array<std::uint8_t, 8> buf_{};
  std::size_t len_ = 0, pos_ = 0;
};

struct Chunk {
  std::uint64_t v;
  std::size_t n;
};

template <typename Src>
std::unique_ptr<Generator> make_chunk_gen(std::string name, Src src) {
  return std::make_unique<ChunkStreamGen<Src>>(std::move(name), std::move(src));
}

// Adapter for scalar reference ciphers exposing step32().
template <typename Ref>
std::unique_ptr<Generator> make_scalar_cipher_gen(std::string name, Ref ref) {
  return make_chunk_gen(std::move(name),
                        [r = std::move(ref)]() mutable -> Chunk {
                          return {r.step32(), 4};
                        });
}

template <std::size_t N>
std::array<std::uint8_t, N> derive_bytes(std::uint64_t& x);

// Scalar AES-128-CTR oracle wrapped as a Generator; first_block offsets the
// CTR stream (0 for the factory, a shard offset for PartitionSpec).
class AesRefGen final : public Generator {
 public:
  AesRefGen(std::string name, std::uint64_t seed, std::uint64_t first_block = 0)
      : name_(std::move(name)), cipher_(make_key(seed)),
        offset_(first_block * 16) {
    std::uint64_t x = seed + 1;
    nonce_ = derive_bytes<12>(x);
  }
  void fill(std::span<std::uint8_t> out) override {
    // Continue the CTR stream across calls via a byte offset.
    std::vector<std::uint8_t> tmp(offset_ % 16 + out.size());
    ciphers::aes_ctr_fill(cipher_, nonce_,
                          static_cast<std::uint32_t>(offset_ / 16), tmp);
    std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(offset_ % 16),
              tmp.end(), out.begin());
    offset_ += out.size();
  }
  std::string_view name() const noexcept override { return name_; }

 private:
  static std::array<std::uint8_t, 16> make_key(std::uint64_t seed) {
    std::uint64_t x = seed;
    return derive_bytes<16>(x);
  }
  std::string name_;
  ciphers::Aes128 cipher_;
  std::array<std::uint8_t, 12> nonce_{};
  std::size_t offset_ = 0;
};

// Scalar ChaCha20 oracle wrapped as a Generator.
class ChaChaRefGen final : public Generator {
 public:
  ChaChaRefGen(std::string name, std::uint64_t seed,
               std::uint32_t counter0 = 0)
      : name_(std::move(name)), g_(make(seed, counter0)) {}
  void fill(std::span<std::uint8_t> out) override { g_.fill(out); }
  std::string_view name() const noexcept override { return name_; }

 private:
  static ciphers::ChaCha20Ref make(std::uint64_t seed,
                                   std::uint32_t counter0) {
    std::uint64_t x = seed;
    const auto key = derive_bytes<32>(x);
    const auto nonce = derive_bytes<12>(x);
    return ciphers::ChaCha20Ref(key, nonce, counter0);
  }
  std::string name_;
  ciphers::ChaCha20Ref g_;
};

template <std::size_t N>
std::array<std::uint8_t, N> derive_bytes(std::uint64_t& x) {
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; i += 8) {
    const std::uint64_t w = lfsr::splitmix64(x);
    for (std::size_t k = 0; k < 8 && i + k < N; ++k)
      out[i + k] = static_cast<std::uint8_t>(w >> (8 * k));
  }
  return out;
}

using Factory =
    std::function<std::unique_ptr<Generator>(std::string, std::uint64_t)>;

template <typename W>
void register_width(std::map<std::string, Factory>& f, const std::string& w) {
  f["mickey-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<SlicedStreamGen<W, ciphers::MickeyBs<W>>>(std::move(n), s);
  };
  f["grain-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<SlicedStreamGen<W, ciphers::GrainBs<W>>>(std::move(n), s);
  };
  f["trivium-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<SlicedStreamGen<W, ciphers::TriviumBs<W>>>(std::move(n), s);
  };
  f["aes-ctr-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<AesCtrGen<W>>(std::move(n), s);
  };
  f["a51-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<SlicedStreamGen<W, ciphers::A51Bs<W>>>(std::move(n), s);
  };
  f["chacha20-bs" + w] = [](std::string n, std::uint64_t s) {
    return std::make_unique<ChaChaGen<W>>(std::move(n), s);
  };
}

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> f = [] {
    std::map<std::string, Factory> m;
    register_width<bs::SliceU32>(m, "32");
    register_width<bs::SliceU64>(m, "64");
    register_width<bs::SliceV128>(m, "128");
    register_width<bs::SliceV256>(m, "256");
    register_width<bs::SliceV512>(m, "512");
    m["mickey-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<10>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::MickeyRef(key, iv));
    };
    m["grain-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<8>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::GrainRef(key, iv));
    };
    m["trivium-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<10>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::TriviumRef(key, iv));
    };
    m["aes-ctr-ref"] = [](std::string n, std::uint64_t s) {
      return std::make_unique<AesRefGen>(std::move(n), s);
    };
    m["a51-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<8>(x);
      const std::uint32_t frame =
          static_cast<std::uint32_t>(lfsr::splitmix64(x)) & 0x3FFFFFu;
      return make_scalar_cipher_gen(std::move(n), ciphers::A51Ref(key, frame));
    };
    m["chacha20-ref"] = [](std::string n, std::uint64_t s) {
      return std::make_unique<ChaChaRefGen>(std::move(n), s);
    };
    m["rc4"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<16>(x);
      return make_chunk_gen(std::move(n), [g = baselines::Rc4(key)]() mutable -> Chunk {
        return {g.next_byte(), 1};
      });
    };
    m["pcg32"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(std::move(n), [g = baselines::Pcg32(s)]() mutable -> Chunk {
        return {g.next(), 4};
      });
    };
    m["xoshiro256pp"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Xoshiro256pp(s)]() mutable -> Chunk {
            return {g.next(), 8};
          });
    };
    m["mt19937"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Mt19937(static_cast<std::uint32_t>(s))]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["xorwow"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Xorwow(static_cast<std::uint32_t>(s))]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["philox"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Philox4x32({static_cast<std::uint32_t>(s),
                                         static_cast<std::uint32_t>(s >> 32)})]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["minstd"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Minstd(static_cast<std::uint32_t>(s | 1))]() mutable
                 -> Chunk { return {g.next(), 3}; });
    };
    m["xorshift128"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const std::uint64_t a = lfsr::splitmix64(x), b = lfsr::splitmix64(x);
      baselines::Xorshift128 g(static_cast<std::uint32_t>(a) | 1u,
                               static_cast<std::uint32_t>(a >> 32),
                               static_cast<std::uint32_t>(b),
                               static_cast<std::uint32_t>(b >> 32));
      return make_chunk_gen(std::move(n), [g]() mutable -> Chunk { return {g.next(), 4}; });
    };
    m["middle-square"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n),
          [g = baselines::MiddleSquare(
               static_cast<std::uint32_t>(s % 99999989))]() mutable -> Chunk {
            return {g.next(), 3};  // 8 decimal digits ~ 26.5 bits: emit 3 bytes
          });
    };
    return m;
  }();
  return f;
}

}  // namespace

std::unique_ptr<Generator> try_make_generator(std::string_view name,
                                              std::uint64_t seed) {
  const auto& f = factories();
  const auto it = f.find(std::string(name));
  if (it == f.end()) return nullptr;
  return it->second(it->first, seed);
}

std::unique_ptr<Generator> make_generator(std::string_view name,
                                          std::uint64_t seed) {
  auto gen = try_make_generator(name, seed);
  if (!gen)
    throw std::invalid_argument("unknown generator: " + std::string(name));
  return gen;
}

bool algorithm_exists(std::string_view name) noexcept {
  return factories().count(std::string(name)) != 0;
}

PartitionSpec AlgorithmInfo::partition_spec(std::uint64_t seed) const {
  return core::partition_spec(name, seed);
}

std::optional<AlgorithmInfo> find_algorithm(std::string_view name) {
  for (auto& a : list_algorithms())
    if (a.name == name) return std::move(a);
  return std::nullopt;
}

namespace {

// Lane width encoded in a "<cipher>-bs<width>" name, 0 if `name` does not
// start with `prefix`.
std::size_t bs_width(std::string_view name, std::string_view prefix) {
  if (!name.starts_with(prefix)) return 0;
  const std::string_view rest = name.substr(prefix.size());
  for (const std::size_t w : {32u, 64u, 128u, 256u, 512u})
    if (rest == std::to_string(w)) return w;
  return 0;
}

// Invoke fn.template operator()<W>() for the slice type of width w.
template <typename Fn>
void with_slice_width(std::size_t w, Fn&& fn) {
  switch (w) {
    case 32: fn.template operator()<bs::SliceU32>(); break;
    case 64: fn.template operator()<bs::SliceU64>(); break;
    case 128: fn.template operator()<bs::SliceV128>(); break;
    case 256: fn.template operator()<bs::SliceV256>(); break;
    case 512: fn.template operator()<bs::SliceV512>(); break;
    default: throw std::invalid_argument("unsupported lane width");
  }
}

// Lane-sliced shard granularity: one shard = one 32-lane sub-engine, the
// paper's per-GPU-thread configuration (§5.4 runs one such engine per
// device).
constexpr std::size_t kLaneBlockLanes = 32;

}  // namespace

PartitionSpec partition_spec(std::string_view name, std::uint64_t seed) {
  if (factories().find(std::string(name)) == factories().end())
    throw std::invalid_argument("unknown generator: " + std::string(name));
  PartitionSpec spec;
  const std::string n(name);
  spec.make = [n, seed] { return make_generator(n, seed); };

  // --- counter-partitioned families -----------------------------------------
  if (const std::size_t w = bs_width(n, "aes-ctr-bs")) {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 16;
    with_slice_width(w, [&]<typename W>() {
      spec.make_at_block = [n, seed](std::uint64_t first_block) {
        return std::make_unique<AesCtrGen<W>>(
            n, seed, static_cast<std::uint32_t>(first_block));
      };
    });
    return spec;
  }
  if (const std::size_t w = bs_width(n, "chacha20-bs")) {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 64;
    with_slice_width(w, [&]<typename W>() {
      spec.make_at_block = [n, seed](std::uint64_t first_block) {
        return std::make_unique<ChaChaGen<W>>(
            n, seed, static_cast<std::uint32_t>(first_block));
      };
    });
    return spec;
  }
  if (n == "aes-ctr-ref") {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 16;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      return std::make_unique<AesRefGen>(n, seed, first_block);
    };
    return spec;
  }
  if (n == "chacha20-ref") {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 64;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      return std::make_unique<ChaChaRefGen>(
          n, seed, static_cast<std::uint32_t>(first_block));
    };
    return spec;
  }
  if (n == "philox") {
    // Counter-based by construction (Salmon et al.): one 128-bit counter
    // per 16-byte block, incremented little-endian from word 0.
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 16;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      baselines::Philox4x32 g({static_cast<std::uint32_t>(seed),
                               static_cast<std::uint32_t>(seed >> 32)});
      g.set_counter({static_cast<std::uint32_t>(first_block),
                     static_cast<std::uint32_t>(first_block >> 32), 0, 0});
      return make_chunk_gen(n, [g]() mutable -> Chunk {
        return {g.next(), 4};
      });
    };
    return spec;
  }

  // --- lane-sliced bitsliced stream ciphers ---------------------------------
  // A W-lane serialized stream is rows of W/8 bytes; a 32-lane sub-engine
  // over lanes [32b, 32b+32) — built from the same per-lane derivation as
  // the full engine — reproduces byte columns [4b, 4b+4) of every row.
  const auto lane_spec = [&](std::size_t width, auto&& make_block) {
    spec.kind = PartitionKind::kLaneSlice;
    spec.lane_blocks = width / kLaneBlockLanes;
    spec.lane_block_bytes = kLaneBlockLanes / 8;
    spec.make_lane_block = std::forward<decltype(make_block)>(make_block);
  };
  using U32 = bs::SliceU32;
  if (const std::size_t w = bs_width(n, "mickey-bs")) {
    lane_spec(w, [n, seed, w](std::size_t b) -> std::unique_ptr<Generator> {
      std::vector<ciphers::MickeyBs<U32>::KeyBytes> keys(w);
      std::vector<ciphers::MickeyBs<U32>::IvBytes> ivs(w);
      ciphers::derive_mickey_lane_params(seed, keys, ivs);
      ciphers::MickeyBs<U32> eng(
          std::span{keys}.subspan(b * kLaneBlockLanes, kLaneBlockLanes),
          std::span{ivs}.subspan(b * kLaneBlockLanes, kLaneBlockLanes),
          ciphers::mickey::kMaxIvBits);
      return std::make_unique<SlicedStreamGen<U32, ciphers::MickeyBs<U32>>>(
          n, std::move(eng));
    });
    return spec;
  }
  if (const std::size_t w = bs_width(n, "grain-bs")) {
    lane_spec(w, [n, seed, w](std::size_t b) -> std::unique_ptr<Generator> {
      std::vector<ciphers::GrainBs<U32>::KeyBytes> keys(w);
      std::vector<ciphers::GrainBs<U32>::IvBytes> ivs(w);
      ciphers::derive_grain_lane_params(seed, keys, ivs);
      ciphers::GrainBs<U32> eng(
          std::span{keys}.subspan(b * kLaneBlockLanes, kLaneBlockLanes),
          std::span{ivs}.subspan(b * kLaneBlockLanes, kLaneBlockLanes));
      return std::make_unique<SlicedStreamGen<U32, ciphers::GrainBs<U32>>>(
          n, std::move(eng));
    });
    return spec;
  }
  if (const std::size_t w = bs_width(n, "trivium-bs")) {
    lane_spec(w, [n, seed, w](std::size_t b) -> std::unique_ptr<Generator> {
      std::vector<ciphers::TriviumBs<U32>::KeyBytes> keys(w);
      std::vector<ciphers::TriviumBs<U32>::IvBytes> ivs(w);
      ciphers::derive_trivium_lane_params(seed, keys, ivs);
      ciphers::TriviumBs<U32> eng(
          std::span{keys}.subspan(b * kLaneBlockLanes, kLaneBlockLanes),
          std::span{ivs}.subspan(b * kLaneBlockLanes, kLaneBlockLanes));
      return std::make_unique<SlicedStreamGen<U32, ciphers::TriviumBs<U32>>>(
          n, std::move(eng));
    });
    return spec;
  }
  if (const std::size_t w = bs_width(n, "a51-bs")) {
    lane_spec(w, [n, seed, w](std::size_t b) -> std::unique_ptr<Generator> {
      std::vector<ciphers::A51Bs<U32>::KeyBytes> keys(w);
      std::vector<std::uint32_t> frames(w);
      ciphers::derive_a51_lane_params(seed, keys, frames);
      ciphers::A51Bs<U32> eng(
          std::span{keys}.subspan(b * kLaneBlockLanes, kLaneBlockLanes),
          std::span{frames}.subspan(b * kLaneBlockLanes, kLaneBlockLanes));
      return std::make_unique<SlicedStreamGen<U32, ciphers::A51Bs<U32>>>(
          n, std::move(eng));
    });
    return spec;
  }

  // Scalar references and classical baselines: no safe decomposition.
  return spec;
}

double gate_ops_per_step(std::string_view cipher) {
  using C = bs::CountingSlice;
  constexpr int kSteps = 256;
  C::reset();
  if (cipher == "mickey") {
    ciphers::MickeyBs<C> e(1);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
  } else if (cipher == "grain") {
    ciphers::GrainBs<C> e(1);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
  } else if (cipher == "trivium") {
    ciphers::TriviumBs<C> e(1);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
  } else if (cipher == "aes-ctr") {
    std::array<std::uint8_t, 16> key{};
    ciphers::AesBs<C> e(key);
    typename ciphers::AesBs<C>::State st{};
    C::reset();
    for (int i = 0; i < kSteps; ++i) e.encrypt_slices(st);
  } else if (cipher == "a51") {
    ciphers::A51Bs<C> e(1);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
  } else if (cipher == "chacha20") {
    std::array<std::uint8_t, 32> key{};
    std::array<std::uint8_t, 12> nonce{};
    ciphers::ChaCha20Bs<C> e(key, nonce);
    std::vector<std::uint8_t> out(64 * kSteps);  // kSteps batches at 1 lane
    C::reset();
    e.fill(out);
  } else if (cipher.starts_with("lfsr")) {
    const unsigned degree =
        static_cast<unsigned>(std::stoul(std::string(cipher.substr(4))));
    lfsr::BitslicedLfsr<C> e(lfsr::primitive_polynomial(degree), 7u);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
  } else {
    throw std::invalid_argument("gate_ops_per_step: unknown cipher " +
                                std::string(cipher));
  }
  return static_cast<double>(C::ops) / kSteps;
}

std::vector<AlgorithmInfo> list_algorithms() {
  std::vector<AlgorithmInfo> out;
  const double mickey = gate_ops_per_step("mickey");
  const double grain = gate_ops_per_step("grain");
  const double trivium = gate_ops_per_step("trivium");
  const double aes = gate_ops_per_step("aes-ctr");  // per block = 128 bits
  const double a51 = gate_ops_per_step("a51");
  const double chacha = gate_ops_per_step("chacha20");  // per block = 512 bits
  constexpr auto kCtr = PartitionKind::kCounter;
  constexpr auto kLane = PartitionKind::kLaneSlice;
  constexpr auto kSeq = PartitionKind::kSequential;
  for (const std::size_t w : {32u, 64u, 128u, 256u, 512u}) {
    const auto ws = std::to_string(w);
    const double dw = static_cast<double>(w);
    out.push_back({"mickey-bs" + ws, "bitsliced", w, true, mickey / dw, kLane});
    out.push_back({"grain-bs" + ws, "bitsliced", w, true, grain / dw, kLane});
    out.push_back(
        {"trivium-bs" + ws, "bitsliced", w, true, trivium / dw, kLane});
    out.push_back(
        {"aes-ctr-bs" + ws, "bitsliced", w, true, aes / (128.0 * dw), kCtr});
    out.push_back({"a51-bs" + ws, "bitsliced", w, false, a51 / dw, kLane});
    out.push_back(
        {"chacha20-bs" + ws, "bitsliced", w, true, chacha / (512.0 * dw), kCtr});
  }
  for (const char* n : {"mickey-ref", "grain-ref", "trivium-ref",
                        "aes-ctr-ref", "a51-ref", "chacha20-ref"})
    out.push_back({n, "reference", 1, true, 0.0,
                   std::string_view(n).starts_with("aes-ctr") ||
                           std::string_view(n).starts_with("chacha20")
                       ? kCtr
                       : kSeq});
  for (const char* n : {"mt19937", "xorwow", "philox", "minstd", "xorshift128",
                        "middle-square", "rc4", "pcg32", "xoshiro256pp"})
    out.push_back({n, "baseline", 1, false, 0.0,
                   std::string_view(n) == "philox" ? kCtr : kSeq});
  return out;
}

}  // namespace bsrng::core
