#include "core/registry.hpp"

#include <functional>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/middle_square.hpp"
#include "baselines/modern.hpp"
#include "baselines/minstd.hpp"
#include "baselines/mt19937.hpp"
#include "baselines/philox.hpp"
#include "baselines/xorshift.hpp"
#include "bitslice/gatecount.hpp"
#include "ciphers/a51_ref.hpp"
#include "ciphers/aes_ref.hpp"
#include "ciphers/chacha_ref.hpp"
#include "ciphers/grain_ref.hpp"
#include "ciphers/mickey_ref.hpp"
#include "ciphers/trivium_ref.hpp"
#include "core/adapters.hpp"
#include "core/descriptor.hpp"
#include "core/keyschedule.hpp"
#include "lfsr/bitsliced_lfsr.hpp"

namespace bsrng::core {

namespace {

namespace ks = bsrng::core::keyschedule;
using ks::derive_bytes;

constexpr std::size_t kWidths[] = {32, 64, 128, 256, 512};

// Generic stream-continuous adapter: `Src` is any callable returning a
// (value, nbytes) chunk per draw; partial consumption is buffered so
// fill(a); fill(b) equals fill(a+b).
template <typename Src>
class ChunkStreamGen final : public Generator {
 public:
  ChunkStreamGen(std::string name, Src src)
      : name_(std::move(name)), src_(std::move(src)) {}

  void fill(std::span<std::uint8_t> out) override {
    std::size_t i = 0;
    while (pos_ < len_ && i < out.size()) out[i++] = buf_[pos_++];
    while (i < out.size()) {
      const auto [v, n] = src_();
      for (std::size_t k = 0; k < n; ++k)
        buf_[k] = static_cast<std::uint8_t>(v >> (8 * k));
      len_ = n;
      pos_ = 0;
      while (pos_ < len_ && i < out.size()) out[i++] = buf_[pos_++];
    }
  }
  std::string_view name() const noexcept override { return name_; }

 private:
  std::string name_;
  Src src_;
  std::array<std::uint8_t, 8> buf_{};
  std::size_t len_ = 0, pos_ = 0;
};

struct Chunk {
  std::uint64_t v;
  std::size_t n;
};

template <typename Src>
std::unique_ptr<Generator> make_chunk_gen(std::string name, Src src) {
  return std::make_unique<ChunkStreamGen<Src>>(std::move(name), std::move(src));
}

// Adapter for scalar reference ciphers exposing step32().
template <typename Ref>
std::unique_ptr<Generator> make_scalar_cipher_gen(std::string name, Ref ref) {
  return make_chunk_gen(std::move(name),
                        [r = std::move(ref)]() mutable -> Chunk {
                          return {r.step32(), 4};
                        });
}

// Scalar AES-128-CTR oracle wrapped as a Generator; first_block offsets the
// CTR stream (0 for the factory, a shard offset for PartitionSpec).
class AesRefGen final : public Generator {
 public:
  AesRefGen(std::string name, std::uint64_t seed, std::uint64_t first_block = 0)
      : name_(std::move(name)), cipher_(make_key(seed)),
        offset_(first_block * 16) {
    // Historical schedule: the nonce comes from a seed+1 expansion, NOT the
    // continuation of the key stream (unlike the bitsliced aes-ctr family).
    std::uint64_t x = seed + 1;
    nonce_ = derive_bytes<12>(x);
  }
  void fill(std::span<std::uint8_t> out) override {
    // Continue the CTR stream across calls via a byte offset.
    std::vector<std::uint8_t> tmp(offset_ % 16 + out.size());
    ciphers::aes_ctr_fill(cipher_, nonce_,
                          static_cast<std::uint32_t>(offset_ / 16), tmp);
    std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(offset_ % 16),
              tmp.end(), out.begin());
    offset_ += out.size();
  }
  std::string_view name() const noexcept override { return name_; }

 private:
  static std::array<std::uint8_t, 16> make_key(std::uint64_t seed) {
    std::uint64_t x = seed;
    return derive_bytes<16>(x);
  }
  std::string name_;
  ciphers::Aes128 cipher_;
  std::array<std::uint8_t, 12> nonce_{};
  std::size_t offset_ = 0;
};

// Scalar ChaCha20 oracle wrapped as a Generator.
class ChaChaRefGen final : public Generator {
 public:
  ChaChaRefGen(std::string name, std::uint64_t seed,
               std::uint32_t counter0 = 0)
      : name_(std::move(name)), g_(make(seed, counter0)) {}
  void fill(std::span<std::uint8_t> out) override { g_.fill(out); }
  std::string_view name() const noexcept override { return name_; }

 private:
  static ciphers::ChaCha20Ref make(std::uint64_t seed,
                                   std::uint32_t counter0) {
    std::uint64_t x = seed;
    const auto key = derive_bytes<32>(x);
    const auto nonce = derive_bytes<12>(x);
    return ciphers::ChaCha20Ref(key, nonce, counter0);
  }
  std::string name_;
  ciphers::ChaCha20Ref g_;
};

using Factory =
    std::function<std::unique_ptr<Generator>(std::string, std::uint64_t)>;

const std::map<std::string, Factory>& factories() {
  static const std::map<std::string, Factory> f = [] {
    std::map<std::string, Factory> m;
    // Bitsliced cipher families: one entry per descriptor x width, all
    // built by the descriptor's own factory.
    for (const AlgorithmDescriptor& d : algorithm_descriptors())
      for (const std::size_t w : kWidths)
        m[d.base + "-bs" + std::to_string(w)] =
            [&d, w](std::string n, std::uint64_t s) {
              return d.make_stream(std::move(n), w, s);
            };
    m["mickey-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<10>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::MickeyRef(key, iv));
    };
    m["grain-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<8>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::GrainRef(key, iv));
    };
    m["trivium-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<10>(x);
      const auto iv = derive_bytes<10>(x);
      return make_scalar_cipher_gen(std::move(n), ciphers::TriviumRef(key, iv));
    };
    m["aes-ctr-ref"] = [](std::string n, std::uint64_t s) {
      return std::make_unique<AesRefGen>(std::move(n), s);
    };
    m["a51-ref"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<8>(x);
      const std::uint32_t frame =
          static_cast<std::uint32_t>(lfsr::splitmix64(x)) & 0x3FFFFFu;
      return make_scalar_cipher_gen(std::move(n), ciphers::A51Ref(key, frame));
    };
    m["chacha20-ref"] = [](std::string n, std::uint64_t s) {
      return std::make_unique<ChaChaRefGen>(std::move(n), s);
    };
    m["rc4"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const auto key = derive_bytes<16>(x);
      return make_chunk_gen(std::move(n), [g = baselines::Rc4(key)]() mutable -> Chunk {
        return {g.next_byte(), 1};
      });
    };
    m["pcg32"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(std::move(n), [g = baselines::Pcg32(s)]() mutable -> Chunk {
        return {g.next(), 4};
      });
    };
    m["xoshiro256pp"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Xoshiro256pp(s)]() mutable -> Chunk {
            return {g.next(), 8};
          });
    };
    m["mt19937"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Mt19937(static_cast<std::uint32_t>(s))]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["xorwow"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Xorwow(static_cast<std::uint32_t>(s))]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["philox"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Philox4x32({static_cast<std::uint32_t>(s),
                                         static_cast<std::uint32_t>(s >> 32)})]() mutable
                 -> Chunk { return {g.next(), 4}; });
    };
    m["minstd"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n), [g = baselines::Minstd(static_cast<std::uint32_t>(s | 1))]() mutable
                 -> Chunk { return {g.next(), 3}; });
    };
    m["xorshift128"] = [](std::string n, std::uint64_t s) {
      std::uint64_t x = s;
      const std::uint64_t a = lfsr::splitmix64(x), b = lfsr::splitmix64(x);
      baselines::Xorshift128 g(static_cast<std::uint32_t>(a) | 1u,
                               static_cast<std::uint32_t>(a >> 32),
                               static_cast<std::uint32_t>(b),
                               static_cast<std::uint32_t>(b >> 32));
      return make_chunk_gen(std::move(n), [g]() mutable -> Chunk { return {g.next(), 4}; });
    };
    m["middle-square"] = [](std::string n, std::uint64_t s) {
      return make_chunk_gen(
          std::move(n),
          [g = baselines::MiddleSquare(
               static_cast<std::uint32_t>(s % 99999989))]() mutable -> Chunk {
            return {g.next(), 3};  // 8 decimal digits ~ 26.5 bits: emit 3 bytes
          });
    };
    return m;
  }();
  return f;
}

}  // namespace

std::unique_ptr<Generator> try_make_generator(std::string_view name,
                                              std::uint64_t seed) {
  const auto& f = factories();
  const auto it = f.find(std::string(name));
  if (it == f.end()) return nullptr;
  return it->second(it->first, seed);
}

std::unique_ptr<Generator> make_generator(std::string_view name,
                                          std::uint64_t seed) {
  auto gen = try_make_generator(name, seed);
  if (!gen)
    throw std::invalid_argument("unknown generator: " + std::string(name));
  return gen;
}

bool algorithm_exists(std::string_view name) noexcept {
  return factories().count(std::string(name)) != 0;
}

PartitionSpec AlgorithmInfo::partition_spec(std::uint64_t seed) const {
  return core::partition_spec(name, seed);
}

std::optional<AlgorithmInfo> find_algorithm(std::string_view name) {
  for (auto& a : list_algorithms())
    if (a.name == name) return std::move(a);
  return std::nullopt;
}

PartitionSpec partition_spec(std::string_view name, std::uint64_t seed) {
  if (factories().find(std::string(name)) == factories().end())
    throw std::invalid_argument("unknown generator: " + std::string(name));
  PartitionSpec spec;
  const std::string n(name);
  spec.make = [n, seed] { return make_generator(n, seed); };

  // --- bitsliced cipher families: the descriptor IS the sharding law ------
  if (const auto [d, w] = find_bitsliced(n); d != nullptr) {
    if (d->partition == PartitionKind::kCounter) {
      spec.kind = PartitionKind::kCounter;
      spec.block_bytes = d->counter_block_bytes;
      spec.make_at_block = [d, n, w, seed](std::uint64_t first_block) {
        return d->make_at_block(n, w, seed, first_block);
      };
      return spec;
    }
    // A W-lane serialized stream is rows of W/8 bytes; a 32-lane sub-engine
    // over lanes [32b, 32b+32) — built from the same per-lane derivation as
    // the full engine — reproduces byte columns [4b, 4b+4) of every row.
    spec.kind = PartitionKind::kLaneSlice;
    spec.lane_blocks = w / kLaneBlockLanes;
    spec.lane_block_bytes = kLaneBlockLanes / 8;
    spec.make_lane_block = [d, n, seed](std::size_t b) {
      return d->make_lane_block(n, seed, b);
    };
    return spec;
  }

  // --- counter-partitioned scalar references & baselines ------------------
  if (n == "aes-ctr-ref") {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 16;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      return std::make_unique<AesRefGen>(n, seed, first_block);
    };
    return spec;
  }
  if (n == "chacha20-ref") {
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 64;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      return std::make_unique<ChaChaRefGen>(
          n, seed, static_cast<std::uint32_t>(first_block));
    };
    return spec;
  }
  if (n == "philox") {
    // Counter-based by construction (Salmon et al.): one 128-bit counter
    // per 16-byte block, incremented little-endian from word 0.
    spec.kind = PartitionKind::kCounter;
    spec.block_bytes = 16;
    spec.make_at_block = [n, seed](std::uint64_t first_block) {
      baselines::Philox4x32 g({static_cast<std::uint32_t>(seed),
                               static_cast<std::uint32_t>(seed >> 32)});
      g.set_counter({static_cast<std::uint32_t>(first_block),
                     static_cast<std::uint32_t>(first_block >> 32), 0, 0});
      return make_chunk_gen(n, [g]() mutable -> Chunk {
        return {g.next(), 4};
      });
    };
    return spec;
  }

  // Scalar references and classical baselines: no safe decomposition.
  return spec;
}

double gate_ops_per_step(std::string_view cipher) {
  if (const AlgorithmDescriptor* d = find_descriptor(cipher))
    return d->measure_gate_ops();
  if (cipher.starts_with("lfsr")) {
    using C = bitslice::CountingSlice;
    constexpr int kSteps = 256;
    const unsigned degree =
        static_cast<unsigned>(std::stoul(std::string(cipher.substr(4))));
    lfsr::BitslicedLfsr<C> e(lfsr::primitive_polynomial(degree), 7u);
    C::reset();
    for (int i = 0; i < kSteps; ++i) (void)e.step();
    return static_cast<double>(C::ops) / kSteps;
  }
  throw std::invalid_argument("gate_ops_per_step: unknown cipher " +
                              std::string(cipher));
}

std::vector<AlgorithmInfo> list_algorithms() {
  std::vector<AlgorithmInfo> out;
  const auto& descs = algorithm_descriptors();
  std::vector<double> gates;
  gates.reserve(descs.size());
  for (const AlgorithmDescriptor& d : descs)
    gates.push_back(d.measure_gate_ops());
  constexpr auto kCtr = PartitionKind::kCounter;
  constexpr auto kSeq = PartitionKind::kSequential;
  for (const std::size_t w : kWidths) {
    const double dw = static_cast<double>(w);
    for (std::size_t i = 0; i < descs.size(); ++i)
      out.push_back({descs[i].base + "-bs" + std::to_string(w), "bitsliced",
                     w, descs[i].cryptographic,
                     gates[i] / (descs[i].bits_per_step * dw),
                     descs[i].partition});
  }
  for (const char* n : {"mickey-ref", "grain-ref", "trivium-ref",
                        "aes-ctr-ref", "a51-ref", "chacha20-ref"})
    out.push_back({n, "reference", 1, true, 0.0,
                   std::string_view(n).starts_with("aes-ctr") ||
                           std::string_view(n).starts_with("chacha20")
                       ? kCtr
                       : kSeq});
  for (const char* n : {"mt19937", "xorwow", "philox", "minstd", "xorshift128",
                        "middle-square", "rc4", "pcg32", "xoshiro256pp"})
    out.push_back({n, "baseline", 1, false, 0.0,
                   std::string_view(n) == "philox" ? kCtr : kSeq});
  return out;
}

}  // namespace bsrng::core
