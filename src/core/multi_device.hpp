// multi_device.hpp — §5.4 multi-GPU generation, as StreamEngine wrappers.
//
// The paper partitions the input parameters (seed/nonce/counter) across D
// devices, generates in parallel, and reconstructs the sequence — with the
// property that "the same output sequence of random bits could be generated
// identically in a single GPU sequentially".  Both entry points below are
// now thin wrappers over core::StreamEngine (one worker per device,
// contiguous per-device chunks):
//
//   * multi_device_aes_ctr — a kCounter PartitionSpec: device d owns the
//     contiguous counter range of its chunk; reconstruction is
//     concatenation.
//   * multi_device_mickey — a kLaneSlice PartitionSpec: device d runs its
//     own 32-lane engine (seed = d-th splitmix64 substream of the master
//     seed); reconstruction re-interleaves the 4-byte device columns.
//
// "Devices" are pool workers here (the paper itself drives its GPUs from
// one OpenMP thread each, §5.4).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "core/throughput.hpp"

namespace bsrng::core {

// The per-device accounting is the engine's per-worker report; `workers`
// counts devices and modeled_speedup() is the D-device-over-one-device
// work-balance model (sum / max of per-device busy time).
using MultiDeviceReport = ThroughputReport;

// Fill `out` with the AES-128-CTR keystream for (key, nonce), counter
// starting at 0, split across `devices` contiguous chunks.  Bit-identical to
// the single-device stream for every D.
MultiDeviceReport multi_device_aes_ctr(std::span<const std::uint8_t> key16,
                                       std::span<const std::uint8_t> nonce12,
                                       std::size_t devices,
                                       std::span<std::uint8_t> out,
                                       bool parallel = true);

// Fill `out` with the serialized MICKEY 2.0 bitsliced stream of a logical
// (devices x 32)-lane generator seeded from `master_seed`, each device
// running its own 32-lane engine.  Reconstruction interleaves device slices;
// equality is against the lane-partitioned reference, validated in tests.
MultiDeviceReport multi_device_mickey(std::uint64_t master_seed,
                                      std::size_t devices,
                                      std::span<std::uint8_t> out,
                                      bool parallel = true);

// Fill `out` with the canonical stream of ANY registered algorithm, split
// across `devices` per the algorithm's own PartitionSpec (contiguous counter
// ranges for kCounter, interleaved 32-lane columns for kLaneSlice, one
// device for kSequential).  Byte-identical to make_generator(algorithm,
// seed)->fill(out) for every device count — the §5.4 reconstruction
// property, generalized from the two bespoke wrappers above via the
// algorithm descriptor table.  Throws std::invalid_argument for unknown
// algorithms or devices == 0.
MultiDeviceReport multi_device_generate(std::string_view algorithm,
                                        std::uint64_t seed,
                                        std::size_t devices,
                                        std::span<std::uint8_t> out,
                                        bool parallel = true);

struct MultiDeviceOptions {
  bool parallel = true;
  // Stage each device's chunk through a gpusim::Device: one launch per
  // device whose threads generate the chunk positionally (generate_at) and
  // store it word-by-word through the device's global memory, so the
  // traffic is cost-modeled and the launch can fault.  A DeviceFault from
  // any launch walks the degradation ladder: the whole span is regenerated
  // on the host StreamEngine path (byte-identical — generate_at is
  // idempotent), multi_device.device_fallbacks is counted, and the report
  // is annotated (device_fallbacks / degraded_to_host).
  bool use_gpusim = false;
  std::size_t gpusim_threads = 4;  // threads per device launch
};

// Options overload of multi_device_generate; the bool-parallel overload
// above is equivalent to {.parallel = parallel}.
MultiDeviceReport multi_device_generate(std::string_view algorithm,
                                        std::uint64_t seed,
                                        std::size_t devices,
                                        std::span<std::uint8_t> out,
                                        const MultiDeviceOptions& options);

}  // namespace bsrng::core
