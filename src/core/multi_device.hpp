// multi_device.hpp — §5.4 multi-GPU generation.
//
// The paper partitions the input parameters (seed/nonce/counter) across D
// devices, generates in parallel, and reconstructs the sequence — with the
// property that "the same output sequence of random bits could be generated
// identically in a single GPU sequentially".  We reproduce both halves:
//
//   * counter-partitioned AES-CTR: device d owns the contiguous counter
//     range of its chunk; reconstruction is concatenation.
//   * lane-partitioned stream ciphers: device d runs lanes
//     [d*W, (d+1)*W) of a (D*W)-lane logical generator; reconstruction
//     re-interleaves the slices.
//
// "Devices" are host threads here (the paper itself drives its GPUs from
// one OpenMP thread each, §5.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace bsrng::core {

struct MultiDeviceReport {
  std::size_t devices = 0;
  double wall_seconds = 0;          // end-to-end
  double max_device_seconds = 0;    // slowest device (parallel wall time)
  double sum_device_seconds = 0;    // total work (1-device-equivalent time)
  // Modeled speedup of the D-device run over one device doing all the work,
  // assuming devices run concurrently: sum / max.
  double modeled_speedup() const {
    return max_device_seconds > 0 ? sum_device_seconds / max_device_seconds
                                  : 0.0;
  }
};

// Fill `out` with the AES-128-CTR keystream for (key, nonce), counter
// starting at 0, split across `devices` contiguous chunks.  Bit-identical to
// the single-device stream for every D.
MultiDeviceReport multi_device_aes_ctr(std::span<const std::uint8_t> key16,
                                       std::span<const std::uint8_t> nonce12,
                                       std::size_t devices,
                                       std::span<std::uint8_t> out,
                                       bool parallel = true);

// Fill `out` with the serialized MICKEY 2.0 bitsliced stream of a logical
// (devices x 32)-lane generator seeded from `master_seed`, each device
// running its own 32-lane engine.  Reconstruction interleaves device slices
// so the result equals the single (devices*32)-lane... see .cpp: equality is
// against the lane-partitioned reference, validated in tests.
MultiDeviceReport multi_device_mickey(std::uint64_t master_seed,
                                      std::size_t devices,
                                      std::span<std::uint8_t> out,
                                      bool parallel = true);

}  // namespace bsrng::core
