#include "core/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "fault/fault.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::core {

namespace {

// Injection points resolved once, telemetry-style; disarmed cost per task is
// two relaxed loads + branches.
struct PoolFaults {
  fault::FaultPoint& task_throw;
  fault::FaultPoint& task_stall;

  static PoolFaults& get() {
    static PoolFaults f{
        fault::faults().point("pool.task_throw"),
        fault::faults().point("pool.task_stall"),
    };
    return f;
  }
};

// Metric handles resolved once (name lookup takes the registry mutex); the
// hot claim loop then costs one relaxed load + branch per touch when
// telemetry is disabled.
struct PoolMetrics {
  telemetry::Counter& batches;
  telemetry::Counter& claims;
  telemetry::Counter& cas_retries;
  telemetry::Counter& stale_batch_backoffs;
  telemetry::Gauge& queue_depth;
  telemetry::Gauge& numa_nodes;
  telemetry::Counter& affinity_pins;

  static PoolMetrics& get() {
    static PoolMetrics m{
        telemetry::metrics().counter("thread_pool.batches"),
        telemetry::metrics().counter("thread_pool.claims"),
        telemetry::metrics().counter("thread_pool.claim_cas_retries"),
        telemetry::metrics().counter("thread_pool.stale_batch_backoffs"),
        telemetry::metrics().gauge("thread_pool.queue_depth"),
        telemetry::metrics().gauge("thread_pool.numa_nodes"),
        telemetry::metrics().counter("thread_pool.affinity_pins"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, NumaTopology topo)
    : topo_(std::move(topo)) {
  workers = std::max<std::size_t>(1, workers);
  PoolMetrics::get().numa_nodes.set(static_cast<double>(topo_.node_count()));
  scratch_.resize(workers);  // storage only; pages are worker-first-touched
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads_.emplace_back([this, w] { worker_loop(w); });
}

void ThreadPool::pin_to_node(std::size_t worker) {
  // Only a real (sysfs) multi-node topology pins: emulated nodes are
  // logical, and on one node the scheduler already does the right thing.
  // A failed pin is ignored — placement is never a correctness contract.
  if (topo_.emulated_only() || topo_.node_count() < 2) return;
  const NumaNode& node = topo_.nodes()[node_of(worker)];
  if (node.cpus.empty()) return;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : node.cpus)
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  if (CPU_COUNT(&set) > 0 &&
      pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0)
    PoolMetrics::get().affinity_pins.add();
#endif
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t ThreadPool::default_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::run_indexed(
    std::size_t ntasks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (ntasks == 0) return;
  PoolMetrics& pm = PoolMetrics::get();
  pm.batches.add();
  pm.queue_depth.set(static_cast<double>(ntasks));
  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_tasks_ = ntasks;
  pending_ = ntasks;
  first_error_ = nullptr;
  ++generation_;
  cursor_.store(static_cast<std::uint64_t>(generation_ & 0xFFFFFFFFu) << 32,
                std::memory_order_release);
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  pm.queue_depth.set(0.0);
  if (first_error_) std::rethrow_exception(std::exchange(first_error_, nullptr));
}

void ThreadPool::worker_loop(std::size_t worker) {
  pin_to_node(worker);
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t ntasks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_;
      ntasks = job_tasks_;
    }
    PoolMetrics& pm = PoolMetrics::get();
    const std::uint64_t tag = static_cast<std::uint64_t>(seen & 0xFFFFFFFFu)
                              << 32;
    std::size_t done_here = 0;
    std::exception_ptr err;
    std::uint64_t cur = cursor_.load(std::memory_order_acquire);
    for (;;) {
      // Claim only while the cursor still carries this batch's tag; the CAS
      // makes tag check and index claim one atomic step.
      if ((cur & ~std::uint64_t{0xFFFFFFFFu}) != tag) {
        pm.stale_batch_backoffs.add();
        break;
      }
      const std::size_t t = static_cast<std::size_t>(cur & 0xFFFFFFFFu);
      if (t >= ntasks) break;
      if (!cursor_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        pm.cas_retries.add();
        continue;
      }
      pm.claims.add();
      try {
        PoolFaults& pf = PoolFaults::get();
        // A stalled worker delays its claimed task (shaking out ordering
        // assumptions); a thrown one exercises run_indexed's first-error
        // rethrow.  Output bytes are unaffected either way: the batch still
        // completes or the caller sees the failure and retries whole spans.
        if (pf.task_stall.fire())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        pf.task_throw.maybe_throw();
        (*fn)(worker, t);
      } catch (...) {
        if (!err) err = std::current_exception();
      }
      ++done_here;
      cur = cursor_.load(std::memory_order_acquire);
    }
    if (done_here > 0 || err) {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      pending_ -= done_here;
      if (pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace bsrng::core
