// gpu_kernel.hpp — the paper's §4.4/§4.5 CUDA kernel, reconstructed on the
// virtual GPU for EVERY bitsliced cipher in the registry.
//
// Each simulated GPU thread owns a 32-lane bitsliced engine ("32 parallel
// ... stream ciphers ... each thread at each clock cycle generates 32
// random bits"), stages its 32-bit output words in per-block shared memory,
// and flushes the block's staging buffer to global memory with coalesced
// bursts.  The launch geometry defaults to the paper's best-performing
// configuration scaled down for simulation time — the memory-traffic ratios
// are geometry-invariant.
//
// gpusim is a backend, not a demo: the kernel reproduces the canonical
// registry stream for the seed.  Thread parameterization comes from the
// same AlgorithmDescriptor (core/descriptor.hpp) the registry and
// StreamEngine use —
//   kLaneSlice ciphers (mickey/grain/trivium/a51): thread t runs lanes
//     [32t, 32t+32) of a (32 * total_threads)-lane derivation, so word w of
//     thread t is stream word w * total_threads + t of the
//     "<cipher>-bs<32 * total_threads>" stream (when that width is
//     registered — kernel_equivalent_algorithm names it).
//   kCounter ciphers (aes-ctr/chacha20): thread t seeks its private engine
//     to counter block t * words_per_thread * 4 / block_bytes and produces
//     stream words [t * words_per_thread, (t+1) * words_per_thread) — the
//     width-independent canonical CTR stream.
// kernel_stream_word exposes the (thread, word) → stream-word bijection, so
// global memory is byte-identical to the StreamEngine stream under either
// output layout (verified by tests/core/cross_backend_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "gpusim/device.hpp"

namespace bsrng::core {

struct GpuKernelConfig {
  std::size_t blocks = 4;
  std::size_t threads_per_block = 64;
  std::size_t words_per_thread = 128;  // the paper's "loop size"
  std::size_t staging_words = 16;      // shared-memory words per thread
  bool use_shared_staging = true;      // §4.5 on/off (ablation switch)
  bool coalesced_layout = true;        // coalesced vs per-thread regions
  bool check = false;  // run under the gpusim sanitizer (also enabled
                       // process-wide by BSRNG_GPUSIM_CHECK)
  std::uint64_t seed = 1;
};

struct GpuKernelResult {
  gpusim::MemStats stats;  // stats.check_findings > 0 => sanitizer findings;
                           // details via Device::check_reports()
  std::uint64_t bytes = 0;  // keystream bytes landed in global memory
};

// Run `algorithm`'s kernel on the device; `algorithm` is a cipher base name
// ("mickey", "grain", "trivium", "aes-ctr", "a51", "chacha20") or any of its
// registered bitsliced names ("mickey-bs512" — the width suffix is ignored,
// geometry decides).  Device global memory must hold at least
// blocks * threads_per_block * words_per_thread words.  words_per_thread
// need not be a multiple of staging_words (the final flush is a ragged
// partial round); kCounter ciphers require words_per_thread * 4 to be a
// multiple of the cipher's counter block size so every thread's range is
// block-aligned.  Throws std::invalid_argument for unknown algorithms and
// invalid geometry.
//
// Output: word w of global thread t lands at word index
// kernel_out_index(cfg, t, w) and carries canonical-stream word
// kernel_stream_word(algorithm, cfg, t, w).
GpuKernelResult run_gpu_kernel(gpusim::Device& dev, std::string_view algorithm,
                               const GpuKernelConfig& cfg);

// Oracle for tests: the 32-bit output word w of global thread t, computed
// directly from host-side engines (no gpusim involved).
std::uint32_t kernel_word(std::string_view algorithm,
                          const GpuKernelConfig& cfg, std::size_t thread,
                          std::size_t w);

// Where word w of thread t lands in device global memory (layout only).
std::size_t kernel_out_index(const GpuKernelConfig& cfg, std::size_t thread,
                             std::size_t w) noexcept;

// Which 32-bit word of the canonical stream thread t's w-th word carries.
// Composed with kernel_out_index this is the memory ↔ stream bijection for
// the launch.
std::size_t kernel_stream_word(std::string_view algorithm,
                               const GpuKernelConfig& cfg, std::size_t thread,
                               std::size_t w);

// The registered algorithm whose canonical stream this launch reproduces:
// "<cipher>-bs<32 * total_threads>" for kLaneSlice ciphers (empty when
// 32 * total_threads is not a registered width), "<cipher>-bs32" for
// kCounter ciphers (their stream is width-independent).
std::string kernel_equivalent_algorithm(std::string_view algorithm,
                                        const GpuKernelConfig& cfg);

}  // namespace bsrng::core
