// gpu_kernel.hpp — the paper's §4.4/§4.5 CUDA kernel, reconstructed on the
// virtual GPU.
//
// Each simulated GPU thread owns a 32-lane bitsliced MICKEY 2.0 engine ("32
// parallel Mickey stream ciphers ... each thread at each clock cycle
// generates 32 random bits"), stages its 32-bit output words in per-block
// shared memory, and flushes the block's staging buffer to global memory
// with coalesced bursts.  The launch geometry defaults to the paper's
// best-performing configuration (64 blocks x 256 threads; we scale it down
// for simulation time — the memory-traffic ratios are geometry-invariant).
#pragma once

#include <cstdint>

#include "gpusim/device.hpp"

namespace bsrng::core {

struct GpuKernelConfig {
  std::size_t blocks = 4;
  std::size_t threads_per_block = 64;
  std::size_t words_per_thread = 128;  // the paper's "loop size"
  std::size_t staging_words = 16;      // shared-memory words per thread
  bool use_shared_staging = true;      // §4.5 on/off (ablation switch)
  bool coalesced_layout = true;        // coalesced vs per-thread regions
  bool check = false;  // run under the gpusim sanitizer (also enabled
                       // process-wide by BSRNG_GPUSIM_CHECK)
  std::uint64_t seed = 1;
};

struct GpuKernelResult {
  gpusim::MemStats stats;  // stats.check_findings > 0 => sanitizer findings;
                           // details via Device::check_reports()
  std::uint64_t bytes = 0;  // keystream bytes landed in global memory
};

// Run the kernel; device global memory must hold at least
// blocks * threads_per_block * words_per_thread words.
//
// Output layout (coalesced_layout): word w of global thread t lands at
// w * total_threads + t; otherwise at t * words_per_thread + w.
GpuKernelResult run_mickey_gpu_kernel(gpusim::Device& dev,
                                      const GpuKernelConfig& cfg);

// Oracle for tests: the 32-bit output word w of global thread t, computed
// directly from a host-side MickeyBs engine (no gpusim involved).
std::uint32_t mickey_kernel_word(std::uint64_t seed, std::size_t thread,
                                 std::size_t w);

}  // namespace bsrng::core
