#include "core/generator.hpp"

#include <algorithm>
#include <array>
#include <vector>

namespace bsrng::core {

void discard_bytes(Generator& gen, std::uint64_t n) {
  if (n == 0) return;
  std::vector<std::uint8_t> scratch(
      static_cast<std::size_t>(std::min<std::uint64_t>(n, std::uint64_t{1} << 16)));
  while (n > 0) {
    const std::size_t step =
        static_cast<std::size_t>(std::min<std::uint64_t>(n, scratch.size()));
    gen.fill(std::span(scratch.data(), step));
    n -= step;
  }
}

std::uint32_t Generator::next_u32() {
  std::array<std::uint8_t, 4> b;
  fill(b);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t Generator::next_u64() {
  std::array<std::uint8_t, 8> b;
  fill(b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[static_cast<std::size_t>(i)]} << (8 * i);
  return v;
}

double Generator::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

}  // namespace bsrng::core
