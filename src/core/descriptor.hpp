// descriptor.hpp — AlgorithmDescriptor: the single source of truth for each
// bitsliced cipher family.
//
// One descriptor per cipher base name (mickey, grain, trivium, aes-ctr, a51,
// chacha20) carries everything the three consuming layers need:
//   * registry   — make_stream builds the "<base>-bs<width>" Generator;
//                  make_at_block / make_lane_block build the PartitionSpec
//                  shards; partition / cryptographic / bits_per_step /
//                  measure_gate_ops feed list_algorithms metadata.
//   * gpusim     — run_kernel launches the cipher on the virtual GPU
//                  (core/gpu_kernel.hpp run_gpu_kernel dispatches here) and
//                  kernel_word is its host-side oracle.
//   * StreamEngine & multi_device — consume the registry PartitionSpec, so
//                  they inherit the same derivations transitively.
// Before this header, the registry kept a hand-rolled factory lambda table
// plus per-cipher *Gen wrappers, and the GPU kernel was a mickey-only
// special case; adding a cipher meant editing every layer by hand.  Now each
// layer iterates algorithm_descriptors(), so a cipher registered here is
// automatically constructible, partitionable, and kernel-launchable — and
// all of them derive their parameters from the one core/keyschedule.hpp
// schedule, which is what keeps host and virtual-GPU streams byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "core/gpu_kernel.hpp"
#include "core/registry.hpp"

namespace bsrng::core {

struct AlgorithmDescriptor {
  std::string base;           // registry prefix: names are "<base>-bs<width>"
  bool cryptographic = true;  // CSPRNG vs statistical PRNG (a51 is broken)
  PartitionKind partition = PartitionKind::kLaneSlice;

  // kCounter only: the cipher's seekable block granularity in bytes.
  std::size_t counter_block_bytes = 0;

  // Output bits per engine step per lane (1 for bit-serial stream ciphers,
  // the block size in bits for counter-mode ciphers); normalizes
  // measure_gate_ops() to the per-bit costs list_algorithms reports.
  double bits_per_step = 1.0;

  // Exact boolean-gate cost of one bitsliced step, measured over the
  // CountingSlice (gate_ops_per_step delegates here).
  std::function<double()> measure_gate_ops;

  // The canonical "<base>-bs<width>" Generator (whole stream, lane 0 first).
  std::function<std::unique_ptr<Generator>(
      std::string name, std::size_t width, std::uint64_t seed)>
      make_stream;

  // kCounter: the stream seeked to counter block `first_block` (the
  // PartitionSpec::make_at_block shard).  Null for kLaneSlice ciphers.
  std::function<std::unique_ptr<Generator>(
      std::string name, std::size_t width, std::uint64_t seed,
      std::uint64_t first_block)>
      make_at_block;

  // kLaneSlice: the 32-lane column sub-stream over lanes
  // [32 * lane_block, 32 * lane_block + 32) of the master derivation (the
  // PartitionSpec::make_lane_block shard — width-independent because lane
  // parameters depend only on lane index).  Null for kCounter ciphers.
  std::function<std::unique_ptr<Generator>(
      std::string name, std::uint64_t seed, std::size_t lane_block)>
      make_lane_block;

  // Launch this cipher's kernel on the virtual GPU (gpu_kernel.hpp
  // documents the geometry → stream mapping) and its host-side oracle for
  // word w of global thread t.
  std::function<GpuKernelResult(gpusim::Device&, const GpuKernelConfig&)>
      run_kernel;
  std::function<std::uint32_t(const GpuKernelConfig&, std::size_t thread,
                              std::size_t w)>
      kernel_word;
};

// The six bitsliced cipher families, in registry listing order.
const std::vector<AlgorithmDescriptor>& algorithm_descriptors();

// Descriptor for a cipher base name ("mickey"), nullptr if unknown.
const AlgorithmDescriptor* find_descriptor(std::string_view base);

// Resolve a registered bitsliced name ("mickey-bs512") to its descriptor
// and lane width; {nullptr, 0} if `name` is not "<base>-bs<width>" for a
// registered base and width.
std::pair<const AlgorithmDescriptor*, std::size_t> find_bitsliced(
    std::string_view name);

}  // namespace bsrng::core
