// throughput.hpp — measurement utilities for the evaluation harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/generator.hpp"

namespace bsrng::core {

struct ThroughputResult {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  double gbps() const {  // gigabits per second
    return seconds > 0 ? static_cast<double>(bytes) * 8.0 / seconds / 1e9
                       : 0.0;
  }
};

// Generate `total_bytes` in `chunk_bytes` chunks and time it.
ThroughputResult measure_throughput(Generator& gen, std::uint64_t total_bytes,
                                    std::size_t chunk_bytes = 1 << 16);

// ---------------------------------------------------------------------------
// Multi-worker accounting, shared by StreamEngine and the §5.4 multi-device
// wrappers.  "Worker" is one pool thread (or one simulated device); busy time
// is the span each worker spent generating, excluding pool idle waits.
// ---------------------------------------------------------------------------

struct WorkerStat {
  std::uint64_t bytes = 0;   // output bytes this worker produced
  double seconds = 0.0;      // busy time across all its tasks
  std::size_t tasks = 0;     // partition tasks it claimed
};

struct ThroughputReport {
  std::size_t workers = 0;
  std::uint64_t bytes = 0;
  double wall_seconds = 0.0;        // end-to-end
  double max_worker_seconds = 0.0;  // slowest worker (parallel wall bound)
  double sum_worker_seconds = 0.0;  // total work (1-worker-equivalent time)
  std::vector<WorkerStat> per_worker;

  // Degradation-ladder annotations (multi_device gpusim backend): how many
  // simulated device launches faulted, and whether the span was regenerated
  // through the host StreamEngine path as a result.  Output bytes are
  // identical either way; these record that the ladder was walked.
  std::uint64_t device_fallbacks = 0;
  bool degraded_to_host = false;

  // Modeled speedup of the T-worker run over one worker doing all the work,
  // assuming workers run concurrently: sum / max.  This is the §5.4 scaling
  // model; on a host with fewer cores than workers, wall time cannot show it
  // but the busy-time ratio still can.
  double modeled_speedup() const {
    return max_worker_seconds > 0 ? sum_worker_seconds / max_worker_seconds
                                  : 0.0;
  }
  double gbps() const {  // gigabits per second of end-to-end wall time
    return wall_seconds > 0
               ? static_cast<double>(bytes) * 8.0 / wall_seconds / 1e9
               : 0.0;
  }
};

// Recompute the aggregate max/sum fields from `per_worker` (the engine calls
// this after workers publish their stats).
void finalize_report(ThroughputReport& rep);

}  // namespace bsrng::core
