// throughput.hpp — measurement utilities for the evaluation harness.
#pragma once

#include <cstdint>
#include <span>

#include "core/generator.hpp"

namespace bsrng::core {

struct ThroughputResult {
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  double gbps() const {  // gigabits per second
    return seconds > 0 ? static_cast<double>(bytes) * 8.0 / seconds / 1e9
                       : 0.0;
  }
};

// Generate `total_bytes` in `chunk_bytes` chunks and time it.
ThroughputResult measure_throughput(Generator& gen, std::uint64_t total_bytes,
                                    std::size_t chunk_bytes = 1 << 16);

}  // namespace bsrng::core
