#include "core/numa.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace bsrng::core {

namespace {

// Read one small sysfs file; empty string when absent/unreadable.
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<int> parse_cpulist(std::string_view text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto parse_int = [&](int& out) {
    if (i >= text.size() || !std::isdigit(static_cast<unsigned char>(text[i])))
      return false;
    long v = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      v = v * 10 + (text[i] - '0');
      if (v > 1 << 20) return false;  // no machine has a million CPUs
      ++i;
    }
    out = static_cast<int>(v);
    return true;
  };
  while (i < text.size()) {
    int lo = 0;
    if (!parse_int(lo)) return {};
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parse_int(hi) || hi < lo) return {};
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    if (i < text.size()) {
      if (text[i] == ',') {
        ++i;
        continue;
      }
      // Trailing newline/whitespace ends the list; anything else is junk.
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])))
        ++i;
      if (i != text.size()) return {};
    }
  }
  return cpus;
}

NumaTopology NumaTopology::single_node() {
  NumaTopology t;
  t.nodes_.resize(1);
  return t;
}

NumaTopology NumaTopology::emulated(std::size_t nodes) {
  NumaTopology t;
  t.nodes_.resize(nodes == 0 ? 1 : nodes);
  t.emulated_ = t.nodes_.size() > 1;
  return t;
}

NumaTopology NumaTopology::from_sysfs(const std::string& root) {
  NumaTopology t;
  // Node ids are dense from 0 on Linux; probe until the first gap.
  for (std::size_t id = 0;; ++id) {
    const std::string cpulist =
        slurp(root + "/node" + std::to_string(id) + "/cpulist");
    if (cpulist.empty()) break;
    std::vector<int> cpus = parse_cpulist(cpulist);
    if (cpus.empty()) break;
    t.nodes_.push_back(NumaNode{std::move(cpus)});
  }
  if (t.nodes_.empty()) return single_node();
  return t;
}

NumaTopology NumaTopology::detect() {
  if (const char* env = std::getenv("BSRNG_NUMA_NODES")) {
    char* end = nullptr;
    const unsigned long n = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && n >= 1 && n <= 1024)
      return emulated(static_cast<std::size_t>(n));
  }
  return from_sysfs("/sys/devices/system/node");
}

}  // namespace bsrng::core
