// keyschedule.hpp — the one splitmix64 seed-expansion schedule behind every
// seed → key/IV/nonce mapping in the library.
//
// The paper expands "a carefully selected pre-stored random number set" into
// per-lane cipher parameters (§4.4); our reproduction uses a splitmix64
// stream for that expansion.  Before this header existed the byte-drawing
// loop was copied into registry.cpp and each ciphers/*_bs.cpp; the copies
// had to stay bit-identical for StreamEngine shards and gpusim kernels to
// reproduce the canonical streams.  Now there is exactly one implementation,
// and tests/core/keyschedule_test.cpp pins its exact byte output so any
// future change is a deliberate, visible break.
//
// Leaf header: depends only on lfsr/bitsliced_lfsr.hpp (splitmix64).  Both
// core/ and ciphers/ include it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "lfsr/bitsliced_lfsr.hpp"  // lfsr::splitmix64

namespace bsrng::core::keyschedule {

// splitmix64 advances its state by a fixed increment per draw, which makes
// the schedule O(1)-seekable: the state after n draws from seed s is
// s + n * kSplitmixGamma.  SeedStream::skip_words builds on this so a GPU
// thread (or lane-range shard) can derive ONLY its own lanes' parameters
// instead of replaying every preceding lane.  Pinned against
// lfsr::splitmix64 by the keyschedule unit tests.
inline constexpr std::uint64_t kSplitmixGamma = 0x9E3779B97F4A7C15ull;

// Words consumed when filling `nbytes` bytes (8 little-endian bytes per
// draw, final word truncated).
constexpr std::uint64_t words_for_bytes(std::size_t nbytes) noexcept {
  return (nbytes + 7) / 8;
}

// The seed-expansion stream.  All derivation helpers below are thin loops
// over this class, so every consumer draws from the identical sequence.
class SeedStream {
 public:
  explicit SeedStream(std::uint64_t seed) noexcept : x_(seed) {}

  std::uint64_t next_word() noexcept { return lfsr::splitmix64(x_); }

  // Jump the stream forward by `n` draws in O(1).
  void skip_words(std::uint64_t n) noexcept { x_ += n * kSplitmixGamma; }

  // Fill `out` little-endian, 8 bytes per draw; a partial trailing word is
  // truncated (its unused high bytes are discarded, not carried over).
  void fill(std::span<std::uint8_t> out) noexcept {
    for (std::size_t i = 0; i < out.size(); i += 8) {
      const std::uint64_t w = next_word();
      for (std::size_t k = 0; k < 8 && i + k < out.size(); ++k)
        out[i + k] = static_cast<std::uint8_t>(w >> (8 * k));
    }
  }

  template <std::size_t N>
  std::array<std::uint8_t, N> bytes() noexcept {
    std::array<std::uint8_t, N> out{};
    fill(out);
    return out;
  }

 private:
  std::uint64_t x_;
};

// Draw N bytes from an in-progress expansion state `x` (advances x).  The
// historical registry.cpp helper, preserved byte-for-byte.
template <std::size_t N>
std::array<std::uint8_t, N> derive_bytes(std::uint64_t& x) noexcept {
  std::array<std::uint8_t, N> out{};
  for (std::size_t i = 0; i < N; i += 8) {
    const std::uint64_t w = lfsr::splitmix64(x);
    for (std::size_t k = 0; k < 8 && i + k < N; ++k)
      out[i + k] = static_cast<std::uint8_t>(w >> (8 * k));
  }
  return out;
}

// Counter-mode (key, nonce) material: KeyLen key bytes then a 12-byte nonce
// off one continuous stream — the schedule shared by the aes-ctr-bs* and
// chacha20-bs* factories and their PartitionSpec / gpusim shards.
template <std::size_t KeyLen>
struct CtrParams {
  std::array<std::uint8_t, KeyLen> key;
  std::array<std::uint8_t, 12> nonce;
};

template <std::size_t KeyLen>
CtrParams<KeyLen> derive_ctr_params(std::uint64_t seed) noexcept {
  SeedStream s(seed);
  CtrParams<KeyLen> p;
  p.key = s.template bytes<KeyLen>();
  p.nonce = s.template bytes<12>();
  return p;
}

}  // namespace bsrng::core::keyschedule
