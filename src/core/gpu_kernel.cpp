#include "core/gpu_kernel.hpp"

#include <stdexcept>
#include <string>

#include "core/adapters.hpp"
#include "core/descriptor.hpp"

namespace bsrng::core {

namespace {

// Accept a cipher base name or any registered "<base>-bs<width>" alias; the
// width suffix carries no information for the kernel (geometry decides the
// logical lane count), it is accepted so callers can pass registry names
// straight through.
const AlgorithmDescriptor& resolve(std::string_view algorithm) {
  if (const AlgorithmDescriptor* d = find_descriptor(algorithm)) return *d;
  if (const AlgorithmDescriptor* d = find_bitsliced(algorithm).first) return *d;
  throw std::invalid_argument("run_gpu_kernel: unknown algorithm " +
                              std::string(algorithm));
}

}  // namespace

GpuKernelResult run_gpu_kernel(gpusim::Device& dev, std::string_view algorithm,
                               const GpuKernelConfig& cfg) {
  return resolve(algorithm).run_kernel(dev, cfg);
}

std::uint32_t kernel_word(std::string_view algorithm,
                          const GpuKernelConfig& cfg, std::size_t thread,
                          std::size_t w) {
  return resolve(algorithm).kernel_word(cfg, thread, w);
}

std::size_t kernel_out_index(const GpuKernelConfig& cfg, std::size_t thread,
                             std::size_t w) noexcept {
  return cfg.coalesced_layout
             ? w * cfg.blocks * cfg.threads_per_block + thread
             : thread * cfg.words_per_thread + w;
}

std::size_t kernel_stream_word(std::string_view algorithm,
                               const GpuKernelConfig& cfg, std::size_t thread,
                               std::size_t w) {
  const AlgorithmDescriptor& d = resolve(algorithm);
  const std::size_t total_threads = cfg.blocks * cfg.threads_per_block;
  // kLaneSlice: thread t's words are the t-th 4-byte column of each
  // serialized slice row.  kCounter: thread t owns the contiguous range
  // starting at block t * words_per_thread * 4 / block_bytes.
  return d.partition == PartitionKind::kLaneSlice
             ? w * total_threads + thread
             : thread * cfg.words_per_thread + w;
}

std::string kernel_equivalent_algorithm(std::string_view algorithm,
                                        const GpuKernelConfig& cfg) {
  const AlgorithmDescriptor& d = resolve(algorithm);
  if (d.partition == PartitionKind::kCounter)
    // Counter streams are width-independent; bs32 is the canonical pick.
    return d.base + "-bs32";
  const std::size_t lanes =
      cfg.blocks * cfg.threads_per_block * kLaneBlockLanes;
  const std::string name = d.base + "-bs" + std::to_string(lanes);
  return adapters::bs_width(name, d.base + "-bs") != 0 ? name : std::string();
}

}  // namespace bsrng::core
