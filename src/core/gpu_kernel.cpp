#include "core/gpu_kernel.hpp"

#include <stdexcept>

#include "bitslice/slice.hpp"
#include "ciphers/mickey_bs.hpp"

namespace bsrng::core {

namespace gs = bsrng::gpusim;
namespace bs = bsrng::bitslice;

namespace {
std::uint64_t thread_seed(std::uint64_t seed, std::size_t thread) {
  // Per-thread key/IV material: disjoint master seeds per thread; each
  // engine then expands its own 32 lane keys (§4.4's IV expansion).
  return seed * 0x9E3779B97F4A7C15ull + thread + 1;
}
}  // namespace

GpuKernelResult run_mickey_gpu_kernel(gpusim::Device& dev,
                                      const GpuKernelConfig& cfg) {
  const std::size_t total_threads = cfg.blocks * cfg.threads_per_block;
  const std::size_t total_words = total_threads * cfg.words_per_thread;
  if (dev.global_memory().size() < total_words)
    throw std::invalid_argument("run_mickey_gpu_kernel: device memory too small");
  if (cfg.use_shared_staging && cfg.words_per_thread % cfg.staging_words != 0)
    throw std::invalid_argument(
        "run_mickey_gpu_kernel: words_per_thread must be a multiple of "
        "staging_words");

  const auto out_index = [&](std::size_t t, std::size_t w) {
    return cfg.coalesced_layout ? w * total_threads + t
                                : t * cfg.words_per_thread + w;
  };

  GpuKernelResult result;
  result.stats = dev.launch(
      {.blocks = cfg.blocks, .threads_per_block = cfg.threads_per_block,
       .shared_bytes = cfg.use_shared_staging
                           ? cfg.threads_per_block * cfg.staging_words * 4
                           : 0,
       .check = cfg.check, .kernel_name = "mickey_gpu_kernel"},
      [&](gs::ThreadCtx& ctx) {
        const std::size_t t = ctx.global_thread_id();
        ciphers::MickeyBs<bs::SliceU32> engine(thread_seed(cfg.seed, t));
        if (!cfg.use_shared_staging) {
          for (std::size_t w = 0; w < cfg.words_per_thread; ++w)
            ctx.global_store(out_index(t, w), engine.step());
          return;
        }
        // §4.5: "each thread stores the output of each loop (32 bits) in the
        // Shared Memory.  After filling the shared memory capacity, the
        // entire data is moved to Global Memory".
        const std::size_t rounds = cfg.words_per_thread / cfg.staging_words;
        for (std::size_t round = 0; round < rounds; ++round) {
          for (std::size_t i = 0; i < cfg.staging_words; ++i)
            ctx.shared_store(i * ctx.block_dim() + ctx.thread_idx(),
                             engine.step());
          for (std::size_t i = 0; i < cfg.staging_words; ++i)
            ctx.global_store(
                out_index(t, round * cfg.staging_words + i),
                ctx.shared_load(i * ctx.block_dim() + ctx.thread_idx()));
        }
      });
  result.bytes = total_words * 4;
  return result;
}

std::uint32_t mickey_kernel_word(std::uint64_t seed, std::size_t thread,
                                 std::size_t w) {
  ciphers::MickeyBs<bs::SliceU32> engine(thread_seed(seed, thread));
  std::uint32_t out = 0;
  for (std::size_t i = 0; i <= w; ++i) out = engine.step();
  return out;
}

}  // namespace bsrng::core
