// numa.hpp — NUMA topology discovery for the worker pool.
//
// On a multi-socket box, a worker that fills an output span resident on the
// other socket's memory pays the interconnect on every byte.  ThreadPool
// therefore places its workers round-robin across NUMA nodes, pins each one
// to its node's CPU set, and keeps the per-worker scratch buffers (the
// lane-slice double buffers) first-touched on the owning worker's thread so
// the kernel backs them with node-local pages.
//
// Discovery is strictly best-effort and NEVER affects output bytes — the
// partitioning of work is a pure function of the span and the PartitionSpec,
// so the same request produces identical bytes on 1 node, 8 nodes, or a
// machine where sysfs is absent (tests pin this).  Three sources, in order:
//
//   1. BSRNG_NUMA_NODES=N   forced N-node emulation (no affinity pinning —
//                           the nodes are logical).  This is the CI/TSan
//                           knob: it exercises the multi-node code path on
//                           single-node builders deterministically.
//   2. /sys/devices/system/node/node*/cpulist   the real topology.
//   3. single_node()        graceful fallback when neither exists (macOS,
//                           containers with masked sysfs, etc.).
//
// No libnuma: the only privileged operation is pthread_setaffinity_np, and
// a failed pin is ignored (placement is an optimization, never a contract).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bsrng::core {

struct NumaNode {
  std::vector<int> cpus;  // empty for emulated nodes
};

class NumaTopology {
 public:
  // One node, no CPU list: the "I know nothing" topology.  Workers are not
  // pinned and all scratch is wherever the first touch lands.
  static NumaTopology single_node();

  // N logical nodes with no CPU lists; workers get node identities (and
  // node-local scratch accounting) but no affinity pinning.
  static NumaTopology emulated(std::size_t nodes);

  // BSRNG_NUMA_NODES override, else sysfs, else single_node().
  static NumaTopology detect();

  // Parse sysfs alone (no env override); exposed for tests pointed at a
  // fake sysfs root.  Falls back to single_node() when `root` has no
  // node directories or none of them parse.
  static NumaTopology from_sysfs(const std::string& root);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  bool emulated_only() const noexcept { return emulated_; }
  const std::vector<NumaNode>& nodes() const noexcept { return nodes_; }

  // Round-robin worker placement; the layout every pool uses.
  std::size_t node_of_worker(std::size_t worker) const noexcept {
    return nodes_.empty() ? 0 : worker % nodes_.size();
  }

 private:
  std::vector<NumaNode> nodes_;
  bool emulated_ = false;
};

// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids; empty on malformed
// input.  Exposed for tests.
std::vector<int> parse_cpulist(std::string_view text);

}  // namespace bsrng::core
