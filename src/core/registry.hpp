// registry.hpp — algorithm registry and factory: every PRNG this library
// implements, constructible by name with a 64-bit seed.
//
// Naming scheme:
//   Bitsliced CSPRNGs (the paper's contribution): "<cipher>-bs<width>",
//     cipher in {mickey, grain, trivium, aes-ctr}, width in {32, 64, 128,
//     256, 512} (32 = the paper's per-GPU-thread configuration, 512 = the
//     host's full AVX-512 datapath).
//   Scalar cipher references: "mickey-ref", "grain-ref", "trivium-ref",
//     "aes-ctr-ref".
//   Conventional baselines: "mt19937" (cuRAND's default algorithm),
//     "xorwow", "philox", "minstd", "xorshift128", "middle-square".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/generator.hpp"

namespace bsrng::core {

struct AlgorithmInfo {
  std::string name;
  std::string family;      // "bitsliced", "reference", "baseline"
  std::size_t lanes;       // parallel instances per generator
  bool cryptographic;      // CSPRNG vs statistical PRNG
  double gate_ops_per_bit; // exact gate count per output bit (0 if n/a)
};

// All registered algorithms with their measured gate costs.
std::vector<AlgorithmInfo> list_algorithms();

// Construct by name; throws std::invalid_argument for unknown names.
std::unique_ptr<Generator> make_generator(std::string_view name,
                                          std::uint64_t seed);

// Exact boolean-gate cost of one bitsliced clock of `cipher` (one of
// "mickey", "grain", "trivium", "aes-ctr", "lfsr<n>"), measured by running
// the engine over the CountingSlice; per *slice*, i.e. divide by the lane
// count for per-bit cost.
double gate_ops_per_step(std::string_view cipher);

}  // namespace bsrng::core
