// registry.hpp — algorithm registry and factory: every PRNG this library
// implements, constructible by name with a 64-bit seed.
//
// Naming scheme:
//   Bitsliced CSPRNGs (the paper's contribution): "<cipher>-bs<width>",
//     cipher in {mickey, grain, trivium, aes-ctr}, width in {32, 64, 128,
//     256, 512} (32 = the paper's per-GPU-thread configuration, 512 = the
//     host's full AVX-512 datapath).
//   Scalar cipher references: "mickey-ref", "grain-ref", "trivium-ref",
//     "aes-ctr-ref".
//   Conventional baselines: "mt19937" (cuRAND's default algorithm),
//     "xorwow", "philox", "minstd", "xorshift128", "middle-square".
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/generator.hpp"

namespace bsrng::core {

// How a generator family shards its stream across workers/devices (§5.4).
//   kCounter    — counter-mode: block b of the stream is a pure function of
//                 (params, b); any contiguous block range can be generated
//                 independently (aes-ctr-*, chacha20-*, philox).
//   kLaneSlice  — bitsliced W-lane engines: lanes are independent instances,
//                 so a 32-lane sub-engine over lanes [32b, 32b+32) reproduces
//                 byte columns [4b, 4b+4) of every serialized slice row
//                 (mickey/grain/trivium/a51 bitsliced — the paper's per-GPU
//                 device slices).
//   kSequential — no safe decomposition is known; the stream is produced by
//                 one worker (scalar references and classical baselines).
enum class PartitionKind { kCounter, kLaneSlice, kSequential };

// Recipe the StreamEngine uses to rebuild any byte range of an algorithm's
// canonical single-generator stream.  Factories close over the exact same
// seed derivation as make_generator, so shard output is bit-identical to
// Generator::fill — a property enforced by tests/core/stream_engine_test.
struct PartitionSpec {
  PartitionKind kind = PartitionKind::kSequential;

  // kCounter: stream bytes [b*block_bytes, ...) for any block index b.
  std::size_t block_bytes = 0;
  std::function<std::unique_ptr<Generator>(std::uint64_t first_block)>
      make_at_block;

  // kLaneSlice: the serialized stream is rows of
  // lane_blocks * lane_block_bytes bytes; make_lane_block(b) yields the
  // column sub-stream contributing bytes [b*lane_block_bytes,
  // (b+1)*lane_block_bytes) of every row.
  std::size_t lane_blocks = 0;
  std::size_t lane_block_bytes = 0;
  std::function<std::unique_ptr<Generator>(std::size_t lane_block)>
      make_lane_block;

  // Always set: the whole-stream generator (the kSequential path, and the
  // reference every other path must reproduce).
  std::function<std::unique_ptr<Generator>()> make;
};

// Sharding recipe for a registered algorithm; throws std::invalid_argument
// for unknown names (same name space as make_generator).
PartitionSpec partition_spec(std::string_view name, std::uint64_t seed);

struct AlgorithmInfo {
  std::string name;
  std::string family;      // "bitsliced", "reference", "baseline"
  std::size_t lanes;       // parallel instances per generator
  bool cryptographic;      // CSPRNG vs statistical PRNG
  double gate_ops_per_bit; // exact gate count per output bit (0 if n/a)
  PartitionKind partition; // how StreamEngine shards this family

  // The sharding recipe for this algorithm — `partition` tells callers
  // whether it decomposes, this constructs the shards.  One lookup covers
  // discovery and construction, so the two can never use different names.
  PartitionSpec partition_spec(std::uint64_t seed) const;
};

// All registered algorithms with their measured gate costs.
std::vector<AlgorithmInfo> list_algorithms();

// Metadata for one algorithm; nullopt for unknown names.  The returned
// info's partition_spec(seed) is the same-name StreamEngine sharding law.
std::optional<AlgorithmInfo> find_algorithm(std::string_view name);

// True iff `name` is a registered algorithm (the non-throwing existence
// probe paired with try_make_generator).
bool algorithm_exists(std::string_view name) noexcept;

// Construct by name; returns nullptr for unknown names (never throws for
// name errors — use algorithm_exists to distinguish a bad name up front).
std::unique_ptr<Generator> try_make_generator(std::string_view name,
                                              std::uint64_t seed);

// Throwing wrapper over try_make_generator: std::invalid_argument for
// unknown names.
std::unique_ptr<Generator> make_generator(std::string_view name,
                                          std::uint64_t seed);

// Exact boolean-gate cost of one bitsliced clock of `cipher` (one of
// "mickey", "grain", "trivium", "aes-ctr", "lfsr<n>"), measured by running
// the engine over the CountingSlice; per *slice*, i.e. divide by the lane
// count for per-bit cost.
double gate_ops_per_step(std::string_view cipher);

}  // namespace bsrng::core
