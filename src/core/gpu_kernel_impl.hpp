// gpu_kernel_impl.hpp — the one virtual-GPU kernel body behind every
// cipher's run_kernel (internal; descriptors.cpp is the only includer).
//
// run_kernel_generic is the paper's §4.5 kernel skeleton templated over a
// KernelEngine: per thread, a private engine produces 32-bit words that are
// staged in per-block shared memory and flushed to global memory in
// coalesced bursts.  What used to be run_mickey_gpu_kernel hard-coded the
// engine type; the descriptor table now instantiates this template once per
// cipher, so the staging/layout/sanitizer/telemetry logic exists exactly
// once.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string_view>
#include <type_traits>

#include "core/gpu_kernel.hpp"
#include "gpusim/device.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::core::detail {

// Minimal interface a per-thread cipher adapter must expose to the kernel
// body: the next 32 bits of that thread's output stream.
template <typename E>
concept KernelEngine = requires(E e) {
  { e.next_word() } -> std::convertible_to<std::uint32_t>;
};

inline std::size_t kernel_out_index_impl(const GpuKernelConfig& cfg,
                                         std::size_t thread,
                                         std::size_t w) noexcept {
  return cfg.coalesced_layout
             ? w * cfg.blocks * cfg.threads_per_block + thread
             : thread * cfg.words_per_thread + w;
}

// Shared geometry validation (memory sizing and staging shape); cipher
// families add their own constraints (counter block alignment) before
// calling in here.
inline void validate_kernel_config(const gpusim::Device& dev,
                                   const GpuKernelConfig& cfg) {
  if (cfg.blocks == 0 || cfg.threads_per_block == 0 ||
      cfg.words_per_thread == 0)
    throw std::invalid_argument(
        "run_gpu_kernel: blocks, threads_per_block and words_per_thread "
        "must be nonzero");
  if (cfg.use_shared_staging && cfg.staging_words == 0)
    throw std::invalid_argument(
        "run_gpu_kernel: staging_words must be nonzero when shared staging "
        "is enabled");
  const std::size_t total_words =
      cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
  if (dev.global_memory().size() < total_words)
    throw std::invalid_argument("run_gpu_kernel: device memory too small");
}

// `make_engine(global_thread_id)` builds the thread's private KernelEngine;
// it runs inside the kernel, once per simulated thread (mirroring the
// paper's per-thread IV expansion at kernel start).
template <typename MakeEngine>
  requires KernelEngine<std::invoke_result_t<MakeEngine&, std::size_t>>
GpuKernelResult run_kernel_generic(gpusim::Device& dev,
                                   const GpuKernelConfig& cfg,
                                   std::string_view kernel_name,
                                   MakeEngine&& make_engine) {
  validate_kernel_config(dev, cfg);
  const std::size_t total_words =
      cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;

  GpuKernelResult result;
  result.stats = dev.launch(
      {.blocks = cfg.blocks, .threads_per_block = cfg.threads_per_block,
       .shared_bytes = cfg.use_shared_staging
                           ? cfg.threads_per_block * cfg.staging_words * 4
                           : 0,
       .check = cfg.check, .kernel_name = kernel_name},
      [&](gpusim::ThreadCtx& ctx) {
        const std::size_t t = ctx.global_thread_id();
        auto engine = make_engine(t);
        if (!cfg.use_shared_staging) {
          for (std::size_t w = 0; w < cfg.words_per_thread; ++w)
            ctx.global_store(kernel_out_index_impl(cfg, t, w),
                             engine.next_word());
          return;
        }
        // §4.5: "each thread stores the output of each loop (32 bits) in the
        // Shared Memory.  After filling the shared memory capacity, the
        // entire data is moved to Global Memory".  The final round may be a
        // partial (ragged) flush when staging_words does not divide
        // words_per_thread.
        for (std::size_t w0 = 0; w0 < cfg.words_per_thread;
             w0 += cfg.staging_words) {
          const std::size_t chunk =
              std::min(cfg.staging_words, cfg.words_per_thread - w0);
          for (std::size_t i = 0; i < chunk; ++i)
            ctx.shared_store(i * ctx.block_dim() + ctx.thread_idx(),
                             engine.next_word());
          for (std::size_t i = 0; i < chunk; ++i)
            ctx.global_store(
                kernel_out_index_impl(cfg, t, w0 + i),
                ctx.shared_load(i * ctx.block_dim() + ctx.thread_idx()));
        }
      });
  result.bytes = total_words * 4;

  auto& reg = telemetry::metrics();
  reg.counter("gpu_kernel.launches").add(1);
  reg.counter("gpu_kernel.bytes").add(result.bytes);
  return result;
}

}  // namespace bsrng::core::detail
