// adapters.hpp — internal Generator adapters shared by the registry and the
// algorithm descriptor table (descriptors.cpp).
//
// Exactly two adapters cover every bitsliced cipher in the library:
//   SlicedStreamGen — wraps a W-lane stream-cipher engine exposing step();
//                     serializes each step's slice little-endian (lane j =
//                     bit j).
//   CounterModeGen  — wraps a counter-mode bulk engine exposing fill()
//                     (AesCtrBs / ChaCha20Bs), whose stream is already
//                     serialized in block order.
// Per-cipher *Gen wrapper classes used to live in registry.cpp; the
// descriptor table instantiates these two templates instead.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "bitslice/slice.hpp"
#include "core/generator.hpp"

namespace bsrng::core {

// Lanes per partition shard and per simulated GPU thread: the paper's
// per-thread configuration (§4.4 runs one 32-lane engine per CUDA thread,
// §5.4 one such engine per device).
inline constexpr std::size_t kLaneBlockLanes = 32;

namespace adapters {

namespace bs = bsrng::bitslice;

// Serialize one slice little-endian: lane j of the slice becomes bit j of
// the output bytes.
template <typename W>
void slice_to_bytes(const W& s, std::uint8_t* out) {
  constexpr std::size_t nwords =
      bs::lane_count<W> / 64 + (bs::lane_count<W> < 64);
  for (std::size_t k = 0; k < nwords; ++k) {
    const std::uint64_t w = bs::SliceTraits<W>::word64(s, k);
    const std::size_t nbytes = std::min<std::size_t>(8, bs::lane_count<W> / 8);
    for (std::size_t b = 0; b < nbytes; ++b)
      out[8 * k + b] = static_cast<std::uint8_t>(w >> (8 * b));
  }
}

// Adapter for bitsliced stream-cipher engines (MickeyBs/GrainBs/TriviumBs/
// A51Bs): each step() emits W bits, one per lane.
template <typename W, typename Engine>
class SlicedStreamGen final : public Generator {
 public:
  SlicedStreamGen(std::string name, Engine engine)
      : name_(std::move(name)), engine_(std::move(engine)) {}

  void fill(std::span<std::uint8_t> out) override {
    constexpr std::size_t step_bytes = bs::lane_count<W> / 8;
    std::size_t i = 0;
    // Drain residue.
    while (pos_ < buf_len_ && i < out.size()) out[i++] = buf_[pos_++];
    // Whole steps straight into the output.
    while (i + step_bytes <= out.size()) {
      const W z = engine_.step();
      slice_to_bytes(z, out.data() + i);
      i += step_bytes;
    }
    // Final partial step via the residue buffer.
    if (i < out.size()) {
      const W z = engine_.step();
      slice_to_bytes(z, buf_.data());
      buf_len_ = step_bytes;
      pos_ = 0;
      while (i < out.size()) out[i++] = buf_[pos_++];
    }
  }

  std::string_view name() const noexcept override { return name_; }
  std::size_t lanes() const noexcept override { return bs::lane_count<W>; }

 private:
  std::string name_;
  Engine engine_;
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0, pos_ = 0;
};

// Adapter for counter-mode bulk engines (AesCtrBs/ChaCha20Bs): the engine
// already produces the serialized stream, the adapter only carries the name.
template <typename W, typename Engine>
class CounterModeGen final : public Generator {
 public:
  CounterModeGen(std::string name, Engine engine)
      : name_(std::move(name)), engine_(std::move(engine)) {}

  void fill(std::span<std::uint8_t> out) override { engine_.fill(out); }
  std::string_view name() const noexcept override { return name_; }
  std::size_t lanes() const noexcept override { return bs::lane_count<W>; }

 private:
  std::string name_;
  Engine engine_;
};

// Lane width encoded in a "<cipher>-bs<width>" name, 0 if `name` does not
// start with `prefix`.
inline std::size_t bs_width(std::string_view name, std::string_view prefix) {
  if (!name.starts_with(prefix)) return 0;
  const std::string_view rest = name.substr(prefix.size());
  for (const std::size_t w : {32u, 64u, 128u, 256u, 512u})
    if (rest == std::to_string(w)) return w;
  return 0;
}

// Invoke fn.template operator()<W>() for the slice type of width w.
template <typename Fn>
void with_slice_width(std::size_t w, Fn&& fn) {
  switch (w) {
    case 32: fn.template operator()<bs::SliceU32>(); break;
    case 64: fn.template operator()<bs::SliceU64>(); break;
    case 128: fn.template operator()<bs::SliceV128>(); break;
    case 256: fn.template operator()<bs::SliceV256>(); break;
    case 512: fn.template operator()<bs::SliceV512>(); break;
    default: throw std::invalid_argument("unsupported lane width");
  }
}

}  // namespace adapters

}  // namespace bsrng::core
