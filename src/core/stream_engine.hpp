// stream_engine.hpp — deterministic thread-pool sharded generation (§5.4,
// generalized).
//
// The paper partitions seed/nonce/counter space across D devices and
// reconstructs a bit-identical single-device sequence.  StreamEngine lifts
// that per-algorithm trick into one engine: it fills an arbitrary output
// span for ANY registered generator by partitioning work across T pool
// workers according to the algorithm's PartitionSpec, and the result is
// byte-identical to a direct single-generator Generator::fill for every T
// (enforced by tests/core/stream_engine_test.cpp).
//
//   kCounter    — the span is cut into block-aligned chunks; each worker
//                 claims chunks dynamically and generates them with a shard
//                 generator seeked to the chunk's first block.
//   kLaneSlice  — each worker claims 32-lane column sub-streams and scatters
//                 their bytes into the interleaved row layout, double-
//                 buffered per worker so generation and scatter alternate on
//                 warm buffers.
//   kSequential — one worker produces the whole stream in chunks (no safe
//                 decomposition; determinism is trivial).
//
// The engine owns a persistent ThreadPool; construct once, generate many.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/registry.hpp"
#include "core/thread_pool.hpp"
#include "core/throughput.hpp"

namespace bsrng::core {

struct StreamEngineConfig {
  // Pool width; 0 = hardware concurrency.
  std::size_t workers = 0;
  // Scheduling granularity for kCounter/kSequential chunking and the
  // kLaneSlice scatter buffers.  0 = one contiguous chunk per worker (the
  // §5.4 multi-device layout, used by the multi_device_* wrappers).
  std::size_t chunk_bytes = 1u << 18;
  // When false, tasks run inline on the calling thread in task order
  // (attributed round-robin to "workers" for the report) — the multi-device
  // wrappers' sequential baseline mode.
  bool parallel = true;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  std::size_t workers() const noexcept { return config_.workers; }

  // Fill `out` with the canonical stream of a registered algorithm,
  // sharded per its PartitionSpec.  Byte-identical to
  // make_generator(algo, seed)->fill(out) for every worker count.
  ThroughputReport generate(std::string_view algo, std::uint64_t seed,
                            std::span<std::uint8_t> out);

  // Same, from an explicit spec (the multi_device_* wrappers use this with
  // hand-built specs).
  ThroughputReport generate(const PartitionSpec& spec,
                            std::span<std::uint8_t> out);

  // Fill `out` with bytes [offset, offset + out.size()) of the canonical
  // stream — the tail-equivalence law: generate_at(offset, n) equals the
  // last n bytes of generate over offset + n bytes, for every worker count
  // (tests/core/stream_engine_test.cpp pins it).  Seek cost depends on the
  // partition kind: kCounter seeks in O(1) via make_at_block (offsets past
  // 2^40 are fine), kLaneSlice fast-forwards each 32-lane column sub-stream
  // independently (O(offset / lane_blocks) work per worker), and
  // kSequential clocks one generator past `offset` bytes.  bsrngd's session
  // resume is built on this.
  ThroughputReport generate_at(std::string_view algo, std::uint64_t seed,
                               std::uint64_t offset,
                               std::span<std::uint8_t> out);
  ThroughputReport generate_at(const PartitionSpec& spec,
                               std::uint64_t offset,
                               std::span<std::uint8_t> out);

 private:
  ThroughputReport run_counter(const PartitionSpec& spec,
                               std::span<std::uint8_t> out);
  ThroughputReport run_lane_slice(const PartitionSpec& spec,
                                  std::span<std::uint8_t> out);
  ThroughputReport run_sequential(const PartitionSpec& spec,
                                  std::span<std::uint8_t> out);

  // Run task(t) for t in [0, ntasks) honoring config_.parallel; each task
  // returns the bytes it produced.  Times every task and attributes busy
  // time/bytes to the executing worker; returns the finalized report.
  ThroughputReport dispatch(
      std::size_t ntasks,
      const std::function<std::uint64_t(std::size_t task)>& task);

  StreamEngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bsrng::core
