// stream_engine.hpp — deterministic thread-pool sharded generation (§5.4,
// generalized), addressed through the substream tree.
//
// The paper partitions seed/nonce/counter space across D devices and
// reconstructs a bit-identical single-device sequence.  StreamEngine lifts
// that per-algorithm trick into one engine: it fills an arbitrary output
// span for ANY registered generator by partitioning work across T pool
// workers according to the algorithm's PartitionSpec, and the result is
// byte-identical to a direct single-generator Generator::fill for every T
// (enforced by tests/core/stream_engine_test.cpp).
//
//   kCounter    — the span is cut into block-aligned chunks; each worker
//                 claims chunks dynamically and generates them with a shard
//                 generator seeked to the chunk's first block.
//   kLaneSlice  — each worker claims 32-lane column sub-streams and scatters
//                 their bytes into the interleaved row layout, double-
//                 buffered per worker so generation and scatter alternate on
//                 warm buffers (the buffers live in the pool, node-local).
//   kSequential — one worker produces the whole stream in chunks (no safe
//                 decomposition; determinism is trivial).
//
// The canonical entry point is StreamRef-addressed: a StreamRequest names
// (algorithm, root seed, tenant→stream→shard path, byte offset) and
// generate(req, out) fills bytes [offset, offset + out.size()) of that
// substream — the same bytes for every worker count, NUMA node count,
// backend, and protocol version (the fabric's byte-exactness law).  The
// historical (algorithm, seed) overload pairs survive as [[deprecated]]
// forwarders; see the README migration table.
//
// checkpoint()/resume() turn any position into a serializable
// stream::StreamCheckpoint and back — O(1) both ways for counter specs.
//
// The engine owns a persistent ThreadPool; construct once, generate many.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/registry.hpp"
#include "core/thread_pool.hpp"
#include "core/throughput.hpp"
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"

namespace bsrng::core {

struct StreamEngineConfig {
  // Pool width; 0 = hardware concurrency.
  std::size_t workers = 0;
  // Scheduling granularity for kCounter/kSequential chunking and the
  // kLaneSlice scatter buffers.  0 = one contiguous chunk per worker (the
  // §5.4 multi-device layout, used by the multi_device_* wrappers).
  std::size_t chunk_bytes = 1u << 18;
  // When false, tasks run inline on the calling thread in task order
  // (attributed round-robin to "workers" for the report) — the multi-device
  // wrappers' sequential baseline mode.
  bool parallel = true;
  // NUMA placement: 0 = detect (BSRNG_NUMA_NODES override, then sysfs,
  // then single node); N > 0 = force N emulated nodes.  Placement never
  // changes output bytes — it only moves workers and their scratch pages.
  std::size_t numa_nodes = 0;
};

// The canonical addressing unit: which substream, and where in it.
struct StreamRequest {
  std::string algorithm;
  std::uint64_t seed = 0;     // root seed of the tenant tree
  stream::StreamRef ref{};    // tenant → stream → shard path ({0,0,0} = root)
  std::uint64_t offset = 0;   // first byte of the span to fill

  // The seed the substream actually runs on (O(1), pinned schedule).
  std::uint64_t derived_seed() const noexcept {
    return ref.derive_seed(seed);
  }
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  std::size_t workers() const noexcept { return config_.workers; }

  // Fill `out` with bytes [req.offset, req.offset + out.size()) of the
  // substream named by `req` — byte-identical to
  // make_generator(req.algorithm, req.derived_seed())->fill over the same
  // range, for every worker count.  Seek cost depends on the partition
  // kind: kCounter seeks in O(1) via make_at_block (offsets past 2^40 are
  // fine), kLaneSlice fast-forwards each 32-lane column sub-stream
  // independently, and kSequential clocks one generator past the offset.
  ThroughputReport generate(const StreamRequest& req,
                            std::span<std::uint8_t> out);

  // Low-level positional form for hand-built specs (the multi_device_*
  // wrappers); generate(req, out) is this applied to the registry spec of
  // the derived seed.  The tail-equivalence law: generate(spec, offset, n)
  // equals the last n bytes of generate(spec, 0, offset + n), for every
  // worker count (tests/core/stream_engine_test.cpp pins it).
  ThroughputReport generate(const PartitionSpec& spec, std::uint64_t offset,
                            std::span<std::uint8_t> out);

  // Freeze `req` into a serializable checkpoint (stream::serialize_checkpoint
  // turns it into the versioned wire blob).  Throws std::invalid_argument
  // for unknown algorithms — a checkpoint that could not resume must not
  // be mintable.
  stream::StreamCheckpoint checkpoint(const StreamRequest& req) const;

  // Resume a parsed checkpoint: fill `out` with the next out.size() bytes
  // of its substream, starting at ck.offset.  Byte-exact across process
  // restarts — ck is a pure address, the engine holds no hidden state.
  ThroughputReport resume(const stream::StreamCheckpoint& ck,
                          std::span<std::uint8_t> out);

  // --- historical overloads (pre-StreamRef), thin forwarders ------------

  [[deprecated("use generate(StreamRequest{algo, seed}, out)")]]
  ThroughputReport generate(std::string_view algo, std::uint64_t seed,
                            std::span<std::uint8_t> out) {
    return generate(StreamRequest{std::string(algo), seed, {}, 0}, out);
  }

  [[deprecated("use generate(spec, 0, out)")]]
  ThroughputReport generate(const PartitionSpec& spec,
                            std::span<std::uint8_t> out) {
    return generate(spec, 0, out);
  }

  [[deprecated(
      "use generate(StreamRequest{algo, seed, {}, offset}, out)")]]
  ThroughputReport generate_at(std::string_view algo, std::uint64_t seed,
                               std::uint64_t offset,
                               std::span<std::uint8_t> out) {
    return generate(StreamRequest{std::string(algo), seed, {}, offset}, out);
  }

  [[deprecated("use generate(spec, offset, out)")]]
  ThroughputReport generate_at(const PartitionSpec& spec,
                               std::uint64_t offset,
                               std::span<std::uint8_t> out) {
    return generate(spec, offset, out);
  }

 private:
  ThroughputReport run_counter(const PartitionSpec& spec,
                               std::span<std::uint8_t> out);
  ThroughputReport run_lane_slice(const PartitionSpec& spec,
                                  std::span<std::uint8_t> out);
  ThroughputReport run_sequential(const PartitionSpec& spec,
                                  std::span<std::uint8_t> out);

  // Run task(worker, t) for t in [0, ntasks) honoring config_.parallel;
  // each task returns the bytes it produced.  Times every task and
  // attributes busy time/bytes to the executing worker; returns the
  // finalized report.
  ThroughputReport dispatch(
      std::size_t ntasks,
      const std::function<std::uint64_t(std::size_t worker,
                                        std::size_t task)>& task);

  StreamEngineConfig config_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace bsrng::core
