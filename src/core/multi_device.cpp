#include "core/multi_device.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bitslice/slice.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "core/stream_engine.hpp"
#include "gpusim/device.hpp"
#include "lfsr/bitsliced_lfsr.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::core {

namespace bs = bsrng::bitslice;

namespace {

// Per-device throughput accounting for the §5.4 wrappers; the engine's own
// metrics (stream_engine.*) cover bytes/latency, these add the device view.
struct MultiDeviceMetrics {
  telemetry::Counter& runs;
  telemetry::Counter& device_tasks;
  telemetry::Histogram& device_seconds;
  telemetry::Gauge& last_gbps;
  telemetry::Gauge& last_modeled_speedup;
  telemetry::Counter& device_fallbacks;

  static MultiDeviceMetrics& get() {
    static MultiDeviceMetrics m{
        telemetry::metrics().counter("multi_device.runs"),
        telemetry::metrics().counter("multi_device.device_tasks"),
        telemetry::metrics().histogram("multi_device.device_seconds"),
        telemetry::metrics().gauge("multi_device.last_gbps"),
        telemetry::metrics().gauge("multi_device.last_modeled_speedup"),
        telemetry::metrics().counter("multi_device.device_fallbacks"),
    };
    return m;
  }
};

MultiDeviceReport record_run(MultiDeviceReport rep) {
  MultiDeviceMetrics& mm = MultiDeviceMetrics::get();
  mm.runs.add();
  for (const WorkerStat& w : rep.per_worker) {
    mm.device_tasks.add(w.tasks);
    mm.device_seconds.observe(w.seconds);
  }
  mm.last_gbps.set(rep.gbps());
  mm.last_modeled_speedup.set(rep.modeled_speedup());
  return rep;
}

// 32-lane AES-CTR shard seeked to a counter offset; the engine concatenates
// these per-device chunks back into the canonical stream.
class AesCtrShard final : public Generator {
 public:
  AesCtrShard(std::span<const std::uint8_t> key16,
              std::span<const std::uint8_t> nonce12, std::uint32_t counter0)
      : gen_(key16, nonce12, counter0) {}

  void fill(std::span<std::uint8_t> out) override { gen_.fill(out); }
  std::string_view name() const noexcept override {
    return "aes-ctr-bs32-shard";
  }
  std::size_t lanes() const noexcept override { return 32; }

 private:
  ciphers::AesCtrBs<bs::SliceU32> gen_;
};

// One device's 32-lane MICKEY engine as a column stream: each step yields
// 4 keystream bytes (bit j = lane j, little-endian within the word).
class MickeyShard final : public Generator {
 public:
  explicit MickeyShard(std::uint64_t seed) : gen_(seed) {}

  void fill(std::span<std::uint8_t> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (have_ == 0) {
        word_ = gen_.step();
        have_ = 4;
      }
      out[i] = static_cast<std::uint8_t>(word_ >> (8 * (4 - have_)));
      --have_;
    }
  }
  std::string_view name() const noexcept override { return "mickey-bs32-shard"; }
  std::size_t lanes() const noexcept override { return 32; }

 private:
  ciphers::MickeyBs<bs::SliceU32> gen_;
  std::uint32_t word_ = 0;
  std::size_t have_ = 0;
};

StreamEngine make_device_engine(std::size_t devices, bool parallel) {
  StreamEngineConfig cfg;
  cfg.workers = devices;
  cfg.chunk_bytes = 0;  // one contiguous chunk per device (§5.4 layout)
  cfg.parallel = parallel;
  return StreamEngine(cfg);
}

}  // namespace

MultiDeviceReport multi_device_aes_ctr(std::span<const std::uint8_t> key16,
                                       std::span<const std::uint8_t> nonce12,
                                       std::size_t devices,
                                       std::span<std::uint8_t> out,
                                       bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  std::array<std::uint8_t, 16> key{};
  std::array<std::uint8_t, 12> nonce{};
  std::copy(key16.begin(), key16.end(), key.begin());
  std::copy(nonce12.begin(), nonce12.end(), nonce.begin());
  PartitionSpec spec;
  spec.kind = PartitionKind::kCounter;
  spec.block_bytes = 16;
  spec.make_at_block = [key, nonce](std::uint64_t b) {
    return std::unique_ptr<Generator>(std::make_unique<AesCtrShard>(
        std::span(key), std::span(nonce), static_cast<std::uint32_t>(b)));
  };
  return record_run(make_device_engine(devices, parallel).generate(spec, 0, out));
}

MultiDeviceReport multi_device_mickey(std::uint64_t master_seed,
                                      std::size_t devices,
                                      std::span<std::uint8_t> out,
                                      bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  PartitionSpec spec;
  spec.kind = PartitionKind::kLaneSlice;
  spec.lane_blocks = devices;
  spec.lane_block_bytes = 4;  // 32 lanes per device engine
  spec.make_lane_block = [master_seed](std::size_t d) {
    // Per-device seed: disjoint splitmix substreams of the master seed.
    std::uint64_t x = master_seed;
    std::uint64_t seed = 0;
    for (std::size_t i = 0; i <= d; ++i) seed = lfsr::splitmix64(x);
    return std::unique_ptr<Generator>(std::make_unique<MickeyShard>(seed));
  };
  return record_run(make_device_engine(devices, parallel).generate(spec, 0, out));
}

MultiDeviceReport multi_device_generate(std::string_view algorithm,
                                        std::uint64_t seed,
                                        std::size_t devices,
                                        std::span<std::uint8_t> out,
                                        bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  return record_run(make_device_engine(devices, parallel)
                        .generate(partition_spec(algorithm, seed), 0, out));
}

namespace {

// Generate [lo, hi) of the canonical stream for `spec` through one
// gpusim::Device: every kernel thread owns a word-aligned slice of the
// chunk, produces it positionally with a non-parallel StreamEngine (so the
// bytes are the engine-law bytes at that offset, independent of the device
// topology) and stores it through device global memory; the host then reads
// the words back out.  Throws gpusim::DeviceFault when the launch faults.
void gpusim_device_chunk(const PartitionSpec& spec, std::uint64_t lo,
                         std::span<std::uint8_t> chunk,
                         std::size_t threads) {
  if (chunk.empty()) return;
  const std::size_t words = (chunk.size() + 3) / 4;
  threads = std::max<std::size_t>(1, std::min(threads, words));
  gpusim::Device dev(words);
  gpusim::LaunchConfig cfg;
  cfg.blocks = 1;
  cfg.threads_per_block = threads;
  cfg.kernel_name = "multi_device_shard";
  const std::size_t words_per_thread = (words + threads - 1) / threads;
  dev.launch(cfg, [&](gpusim::ThreadCtx& ctx) {
    const std::size_t w0 = ctx.thread_idx() * words_per_thread;
    const std::size_t w1 = std::min(words, w0 + words_per_thread);
    if (w0 >= w1) return;
    const std::size_t b0 = w0 * 4;
    const std::size_t b1 = std::min(chunk.size(), w1 * 4);
    std::vector<std::uint8_t> buf((w1 - w0) * 4, 0);
    StreamEngineConfig ecfg;
    ecfg.workers = 1;
    ecfg.parallel = false;
    StreamEngine(ecfg).generate(spec, lo + b0,
                                std::span(buf.data(), b1 - b0));
    for (std::size_t w = w0; w < w1; ++w) {
      const std::size_t k = (w - w0) * 4;
      const std::uint32_t v =
          static_cast<std::uint32_t>(buf[k]) |
          (static_cast<std::uint32_t>(buf[k + 1]) << 8) |
          (static_cast<std::uint32_t>(buf[k + 2]) << 16) |
          (static_cast<std::uint32_t>(buf[k + 3]) << 24);
      ctx.global_store(w, v);
    }
  });
  const std::span<const std::uint32_t> mem = dev.global_memory();
  for (std::size_t w = 0; w < words; ++w) {
    const std::uint32_t v = mem[w];
    for (std::size_t k = 0; k < 4 && w * 4 + k < chunk.size(); ++k)
      chunk[w * 4 + k] = static_cast<std::uint8_t>(v >> (8 * k));
  }
}

}  // namespace

MultiDeviceReport multi_device_generate(std::string_view algorithm,
                                        std::uint64_t seed,
                                        std::size_t devices,
                                        std::span<std::uint8_t> out,
                                        const MultiDeviceOptions& options) {
  if (!options.use_gpusim)
    return multi_device_generate(algorithm, seed, devices, out,
                                 options.parallel);
  if (devices == 0) throw std::invalid_argument("need at least one device");
  using Clock = std::chrono::steady_clock;
  const PartitionSpec spec = partition_spec(algorithm, seed);

  MultiDeviceReport rep;
  rep.per_worker.resize(devices);
  std::vector<std::exception_ptr> errors(devices);
  const std::size_t per_device = (out.size() + devices - 1) / devices;
  const auto run_device = [&](std::size_t d) {
    const std::size_t lo = std::min(out.size(), d * per_device);
    const std::size_t hi = std::min(out.size(), lo + per_device);
    const auto t0 = Clock::now();
    try {
      gpusim_device_chunk(spec, lo, out.subspan(lo, hi - lo),
                          options.gpusim_threads);
    } catch (...) {
      errors[d] = std::current_exception();
    }
    WorkerStat& w = rep.per_worker[d];
    w.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    w.bytes = hi - lo;
    w.tasks = 1;
  };

  const auto w0 = Clock::now();
  if (options.parallel && devices > 1) {
    std::vector<std::thread> threads;
    threads.reserve(devices);
    for (std::size_t d = 0; d < devices; ++d)
      threads.emplace_back(run_device, d);
    for (auto& t : threads) t.join();
  } else {
    for (std::size_t d = 0; d < devices; ++d) run_device(d);
  }
  rep.wall_seconds = std::chrono::duration<double>(Clock::now() - w0).count();

  // Walk the degradation ladder: device faults are recoverable (regenerate
  // the whole span on the host path — byte-identical, positional generate
  // is idempotent), anything else is a real bug and propagates.
  std::uint64_t faulted = 0;
  std::exception_ptr other;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const gpusim::DeviceFault&) {
      ++faulted;
    } catch (...) {
      if (!other) other = e;
    }
  }
  if (other) std::rethrow_exception(other);
  if (faulted > 0) {
    MultiDeviceMetrics::get().device_fallbacks.add(faulted);
    MultiDeviceReport host = multi_device_generate(algorithm, seed, devices,
                                                   out, options.parallel);
    host.device_fallbacks = faulted;
    host.degraded_to_host = true;
    return host;
  }
  finalize_report(rep);
  return record_run(rep);
}

}  // namespace bsrng::core
