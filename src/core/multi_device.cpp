#include "core/multi_device.hpp"

#include <chrono>
#include <functional>
#include <stdexcept>
#include <thread>

#include "bitslice/slice.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "lfsr/bitsliced_lfsr.hpp"

namespace bsrng::core {

namespace bs = bsrng::bitslice;
using Clock = std::chrono::steady_clock;

namespace {

// Run one closure per device, in threads or sequentially, and time each.
MultiDeviceReport run_devices(std::size_t devices, bool parallel,
                              const std::function<void(std::size_t)>& work) {
  MultiDeviceReport rep;
  rep.devices = devices;
  std::vector<double> secs(devices, 0.0);
  const auto t0 = Clock::now();
  const auto timed = [&](std::size_t d) {
    const auto s = Clock::now();
    work(d);
    secs[d] = std::chrono::duration<double>(Clock::now() - s).count();
  };
  if (parallel) {
    std::vector<std::thread> threads;
    threads.reserve(devices);
    for (std::size_t d = 0; d < devices; ++d) threads.emplace_back(timed, d);
    for (auto& t : threads) t.join();
  } else {
    for (std::size_t d = 0; d < devices; ++d) timed(d);
  }
  rep.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  for (const double s : secs) {
    rep.sum_device_seconds += s;
    rep.max_device_seconds = std::max(rep.max_device_seconds, s);
  }
  return rep;
}

}  // namespace

MultiDeviceReport multi_device_aes_ctr(std::span<const std::uint8_t> key16,
                                       std::span<const std::uint8_t> nonce12,
                                       std::size_t devices,
                                       std::span<std::uint8_t> out,
                                       bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  // Chunk boundaries align to AES blocks so each device's counter range is
  // self-contained (the paper's "different counter values ... passed to
  // GPUs", §5.4).
  const std::size_t blocks_total = (out.size() + 15) / 16;
  const std::size_t blocks_per_dev = (blocks_total + devices - 1) / devices;
  return run_devices(devices, parallel, [&](std::size_t d) {
    const std::size_t first_block = d * blocks_per_dev;
    if (first_block >= blocks_total) return;
    const std::size_t first_byte = first_block * 16;
    const std::size_t last_byte =
        std::min(out.size(), (first_block + blocks_per_dev) * 16);
    ciphers::AesCtrBs<bs::SliceU32> gen(
        key16, nonce12, static_cast<std::uint32_t>(first_block));
    gen.fill(out.subspan(first_byte, last_byte - first_byte));
  });
}

MultiDeviceReport multi_device_mickey(std::uint64_t master_seed,
                                      std::size_t devices,
                                      std::span<std::uint8_t> out,
                                      bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  constexpr std::size_t kSliceBytes = 4;  // 32 lanes per device engine
  const std::size_t stride = kSliceBytes * devices;
  const std::size_t steps = (out.size() + stride - 1) / stride;
  // Device d owns byte columns [d*4, d*4+4) of every stride-sized row.
  std::vector<std::vector<std::uint8_t>> dev_out(
      devices, std::vector<std::uint8_t>(steps * kSliceBytes));
  const auto rep = run_devices(devices, parallel, [&](std::size_t d) {
    // Per-device seed: disjoint splitmix substreams of the master seed.
    std::uint64_t x = master_seed;
    std::uint64_t seed = 0;
    for (std::size_t i = 0; i <= d; ++i) seed = lfsr::splitmix64(x);
    ciphers::MickeyBs<bs::SliceU32> engine(seed);
    for (std::size_t t = 0; t < steps; ++t) {
      const std::uint32_t z = engine.step();
      for (std::size_t b = 0; b < kSliceBytes; ++b)
        dev_out[d][t * kSliceBytes + b] =
            static_cast<std::uint8_t>(z >> (8 * b));
    }
  });
  // Reconstruction: interleave device columns into the global stream.
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::size_t t = i / stride;
    const std::size_t col = i % stride;
    out[i] = dev_out[col / kSliceBytes][t * kSliceBytes + col % kSliceBytes];
  }
  return rep;
}

}  // namespace bsrng::core
