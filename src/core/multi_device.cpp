#include "core/multi_device.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <stdexcept>

#include "bitslice/slice.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "core/stream_engine.hpp"
#include "lfsr/bitsliced_lfsr.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::core {

namespace bs = bsrng::bitslice;

namespace {

// Per-device throughput accounting for the §5.4 wrappers; the engine's own
// metrics (stream_engine.*) cover bytes/latency, these add the device view.
struct MultiDeviceMetrics {
  telemetry::Counter& runs;
  telemetry::Counter& device_tasks;
  telemetry::Histogram& device_seconds;
  telemetry::Gauge& last_gbps;
  telemetry::Gauge& last_modeled_speedup;

  static MultiDeviceMetrics& get() {
    static MultiDeviceMetrics m{
        telemetry::metrics().counter("multi_device.runs"),
        telemetry::metrics().counter("multi_device.device_tasks"),
        telemetry::metrics().histogram("multi_device.device_seconds"),
        telemetry::metrics().gauge("multi_device.last_gbps"),
        telemetry::metrics().gauge("multi_device.last_modeled_speedup"),
    };
    return m;
  }
};

MultiDeviceReport record_run(MultiDeviceReport rep) {
  MultiDeviceMetrics& mm = MultiDeviceMetrics::get();
  mm.runs.add();
  for (const WorkerStat& w : rep.per_worker) {
    mm.device_tasks.add(w.tasks);
    mm.device_seconds.observe(w.seconds);
  }
  mm.last_gbps.set(rep.gbps());
  mm.last_modeled_speedup.set(rep.modeled_speedup());
  return rep;
}

// 32-lane AES-CTR shard seeked to a counter offset; the engine concatenates
// these per-device chunks back into the canonical stream.
class AesCtrShard final : public Generator {
 public:
  AesCtrShard(std::span<const std::uint8_t> key16,
              std::span<const std::uint8_t> nonce12, std::uint32_t counter0)
      : gen_(key16, nonce12, counter0) {}

  void fill(std::span<std::uint8_t> out) override { gen_.fill(out); }
  std::string_view name() const noexcept override {
    return "aes-ctr-bs32-shard";
  }
  std::size_t lanes() const noexcept override { return 32; }

 private:
  ciphers::AesCtrBs<bs::SliceU32> gen_;
};

// One device's 32-lane MICKEY engine as a column stream: each step yields
// 4 keystream bytes (bit j = lane j, little-endian within the word).
class MickeyShard final : public Generator {
 public:
  explicit MickeyShard(std::uint64_t seed) : gen_(seed) {}

  void fill(std::span<std::uint8_t> out) override {
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (have_ == 0) {
        word_ = gen_.step();
        have_ = 4;
      }
      out[i] = static_cast<std::uint8_t>(word_ >> (8 * (4 - have_)));
      --have_;
    }
  }
  std::string_view name() const noexcept override { return "mickey-bs32-shard"; }
  std::size_t lanes() const noexcept override { return 32; }

 private:
  ciphers::MickeyBs<bs::SliceU32> gen_;
  std::uint32_t word_ = 0;
  std::size_t have_ = 0;
};

StreamEngine make_device_engine(std::size_t devices, bool parallel) {
  StreamEngineConfig cfg;
  cfg.workers = devices;
  cfg.chunk_bytes = 0;  // one contiguous chunk per device (§5.4 layout)
  cfg.parallel = parallel;
  return StreamEngine(cfg);
}

}  // namespace

MultiDeviceReport multi_device_aes_ctr(std::span<const std::uint8_t> key16,
                                       std::span<const std::uint8_t> nonce12,
                                       std::size_t devices,
                                       std::span<std::uint8_t> out,
                                       bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  std::array<std::uint8_t, 16> key{};
  std::array<std::uint8_t, 12> nonce{};
  std::copy(key16.begin(), key16.end(), key.begin());
  std::copy(nonce12.begin(), nonce12.end(), nonce.begin());
  PartitionSpec spec;
  spec.kind = PartitionKind::kCounter;
  spec.block_bytes = 16;
  spec.make_at_block = [key, nonce](std::uint64_t b) {
    return std::unique_ptr<Generator>(std::make_unique<AesCtrShard>(
        std::span(key), std::span(nonce), static_cast<std::uint32_t>(b)));
  };
  return record_run(make_device_engine(devices, parallel).generate(spec, out));
}

MultiDeviceReport multi_device_mickey(std::uint64_t master_seed,
                                      std::size_t devices,
                                      std::span<std::uint8_t> out,
                                      bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  PartitionSpec spec;
  spec.kind = PartitionKind::kLaneSlice;
  spec.lane_blocks = devices;
  spec.lane_block_bytes = 4;  // 32 lanes per device engine
  spec.make_lane_block = [master_seed](std::size_t d) {
    // Per-device seed: disjoint splitmix substreams of the master seed.
    std::uint64_t x = master_seed;
    std::uint64_t seed = 0;
    for (std::size_t i = 0; i <= d; ++i) seed = lfsr::splitmix64(x);
    return std::unique_ptr<Generator>(std::make_unique<MickeyShard>(seed));
  };
  return record_run(make_device_engine(devices, parallel).generate(spec, out));
}

MultiDeviceReport multi_device_generate(std::string_view algorithm,
                                        std::uint64_t seed,
                                        std::size_t devices,
                                        std::span<std::uint8_t> out,
                                        bool parallel) {
  if (devices == 0) throw std::invalid_argument("need at least one device");
  return record_run(make_device_engine(devices, parallel)
                        .generate(partition_spec(algorithm, seed), out));
}

}  // namespace bsrng::core
