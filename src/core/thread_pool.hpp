// thread_pool.hpp — persistent worker pool for sharded generation.
//
// One pool, many runs: StreamEngine submits a batch of independent partition
// tasks, workers claim indices from an atomic cursor (dynamic scheduling, so
// an unlucky slow shard does not stall the fast ones), and run_indexed
// blocks until the whole batch is drained.  The same pool backs the bench
// harness, replacing the per-benchmark ad-hoc std::thread spawning.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bsrng::core {

class ThreadPool {
 public:
  // Spawns `workers` threads (at least one).  Threads persist until
  // destruction; an idle pool consumes no CPU.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }

  // Execute fn(worker, task) for every task index in [0, ntasks), spread
  // dynamically over the pool; blocks until all tasks finished.  The first
  // exception thrown by any task is rethrown here (remaining tasks of the
  // batch are still drained so the pool stays consistent).
  void run_indexed(std::size_t ntasks,
                   const std::function<void(std::size_t worker,
                                            std::size_t task)>& fn);

  // Default worker count: the hardware concurrency, at least one.
  static std::size_t default_workers();

 private:
  void worker_loop(std::size_t worker);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // run_indexed waits for completion
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_tasks_ = 0;
  std::uint64_t generation_ = 0;  // bumped per batch
  // Claim cursor: batch tag (generation mod 2^32) in the high half, next
  // unclaimed task index in the low half.  Claims go through CAS on the
  // whole word, so a worker that overslept a batch can observe the tag
  // mismatch and back off without ever consuming an index of — or invoking
  // the (dead) job of — a batch it did not sign up for.
  std::atomic<std::uint64_t> cursor_{0};
  std::size_t pending_ = 0;       // tasks not yet finished
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace bsrng::core
