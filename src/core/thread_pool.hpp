// thread_pool.hpp — persistent NUMA-aware worker pool for sharded
// generation.
//
// One pool, many runs: StreamEngine submits a batch of independent partition
// tasks, workers claim indices from an atomic cursor (dynamic scheduling, so
// an unlucky slow shard does not stall the fast ones), and run_indexed
// blocks until the whole batch is drained.  The same pool backs the bench
// harness, replacing the per-benchmark ad-hoc std::thread spawning.
//
// NUMA placement: workers are assigned round-robin to the topology's nodes.
// On a real (sysfs-discovered) multi-node topology each worker pins itself
// to its node's CPU set; emulated topologies (BSRNG_NUMA_NODES) get node
// identities without pinning.  Each worker also owns a pair of persistent
// scratch buffers that are only ever resized/written from that worker's
// thread, so first-touch places their pages on the worker's node — the
// lane-slice scatter path reuses them across batches instead of
// re-allocating per task.  Placement is an optimization only: output bytes
// are identical for every node count (tests pin this).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/numa.hpp"

namespace bsrng::core {

class ThreadPool {
 public:
  // Spawns `workers` threads (at least one), placed on `topo`.  Threads
  // persist until destruction; an idle pool consumes no CPU.
  explicit ThreadPool(std::size_t workers,
                      NumaTopology topo = NumaTopology::detect());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return threads_.size(); }

  const NumaTopology& topology() const noexcept { return topo_; }
  std::size_t node_of(std::size_t worker) const noexcept {
    return topo_.node_of_worker(worker);
  }

  // Worker-local scratch (which in {0, 1}: the lane-slice double buffers).
  // Must only be touched from worker `worker`'s thread while it runs a task
  // — that is what keeps the pages node-local via first touch.
  std::vector<std::uint8_t>& scratch(std::size_t worker,
                                     std::size_t which) noexcept {
    return scratch_[worker][which & 1];
  }

  // Execute fn(worker, task) for every task index in [0, ntasks), spread
  // dynamically over the pool; blocks until all tasks finished.  The first
  // exception thrown by any task is rethrown here (remaining tasks of the
  // batch are still drained so the pool stays consistent).
  void run_indexed(std::size_t ntasks,
                   const std::function<void(std::size_t worker,
                                            std::size_t task)>& fn);

  // Default worker count: the hardware concurrency, at least one.
  static std::size_t default_workers();

 private:
  void worker_loop(std::size_t worker);
  void pin_to_node(std::size_t worker);

  NumaTopology topo_;
  std::vector<std::array<std::vector<std::uint8_t>, 2>> scratch_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for a new batch
  std::condition_variable done_cv_;  // run_indexed waits for completion
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_tasks_ = 0;
  std::uint64_t generation_ = 0;  // bumped per batch
  // Claim cursor: batch tag (generation mod 2^32) in the high half, next
  // unclaimed task index in the low half.  Claims go through CAS on the
  // whole word, so a worker that overslept a batch can observe the tag
  // mismatch and back off without ever consuming an index of — or invoking
  // the (dead) job of — a batch it did not sign up for.
  std::atomic<std::uint64_t> cursor_{0};
  std::size_t pending_ = 0;       // tasks not yet finished
  std::exception_ptr first_error_;
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace bsrng::core
