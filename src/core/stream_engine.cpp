#include "core/stream_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <new>
#include <stdexcept>
#include <vector>

#include "fault/fault.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng::core {

using Clock = std::chrono::steady_clock;

namespace {

struct EngineFaults {
  fault::FaultPoint& alloc_fail;

  static EngineFaults& get() {
    static EngineFaults f{fault::faults().point("engine.alloc_fail")};
    return f;
  }
};

// Resolved once; per-job/per-task updates are relaxed atomics behind the
// registry's enabled flag (one predictable branch when telemetry is off).
struct EngineMetrics {
  telemetry::Counter& jobs;
  telemetry::Counter& bytes;
  telemetry::Counter& tasks;
  telemetry::Counter& checkpoints;
  telemetry::Counter& resumes;
  telemetry::Histogram& task_seconds;
  telemetry::Histogram& job_seconds;
  telemetry::Gauge& last_gbps;

  static EngineMetrics& get() {
    static EngineMetrics m{
        telemetry::metrics().counter("stream_engine.jobs"),
        telemetry::metrics().counter("stream_engine.bytes"),
        telemetry::metrics().counter("stream_engine.tasks"),
        telemetry::metrics().counter("stream_engine.checkpoints"),
        telemetry::metrics().counter("stream_engine.resumes"),
        telemetry::metrics().histogram("stream_engine.task_seconds"),
        telemetry::metrics().histogram("stream_engine.job_seconds"),
        telemetry::metrics().gauge("stream_engine.last_gbps"),
    };
    return m;
  }
};

}  // namespace

StreamEngine::StreamEngine(StreamEngineConfig config) : config_(config) {
  if (config_.workers == 0) config_.workers = ThreadPool::default_workers();
  if (config_.parallel)
    pool_ = std::make_unique<ThreadPool>(
        config_.workers, config_.numa_nodes > 0
                             ? NumaTopology::emulated(config_.numa_nodes)
                             : NumaTopology::detect());
}

StreamEngine::~StreamEngine() = default;

ThroughputReport StreamEngine::generate(const StreamRequest& req,
                                        std::span<std::uint8_t> out) {
  return generate(partition_spec(req.algorithm, req.derived_seed()),
                  req.offset, out);
}

stream::StreamCheckpoint StreamEngine::checkpoint(
    const StreamRequest& req) const {
  if (!algorithm_exists(req.algorithm))
    throw std::invalid_argument("StreamEngine: cannot checkpoint unknown "
                                "algorithm '" +
                                req.algorithm + "'");
  EngineMetrics::get().checkpoints.add();
  return stream::StreamCheckpoint{req.algorithm, req.seed, req.ref,
                                  req.offset};
}

ThroughputReport StreamEngine::resume(const stream::StreamCheckpoint& ck,
                                      std::span<std::uint8_t> out) {
  EngineMetrics::get().resumes.add();
  return generate(StreamRequest{ck.algorithm, ck.seed, ck.ref, ck.offset},
                  out);
}

ThroughputReport StreamEngine::generate(const PartitionSpec& spec,
                                        std::uint64_t offset,
                                        std::span<std::uint8_t> out) {
  if (offset == 0) {
    switch (spec.kind) {
      case PartitionKind::kCounter:
        return run_counter(spec, out);
      case PartitionKind::kLaneSlice:
        return run_lane_slice(spec, out);
      case PartitionKind::kSequential:
        return run_sequential(spec, out);
    }
    throw std::logic_error("StreamEngine: unhandled partition kind");
  }
  // The span must fit the 2^64-byte stream address space: a wrapping end
  // offset would undersize the lane-slice scratch envelope below and turn
  // into an out-of-bounds read.
  if (out.size() > std::numeric_limits<std::uint64_t>::max() - offset)
    throw std::invalid_argument(
        "StreamEngine: offset + span length overflows the stream address");
  switch (spec.kind) {
    case PartitionKind::kCounter: {
      if (spec.block_bytes == 0 || !spec.make_at_block)
        throw std::invalid_argument("StreamEngine: malformed kCounter spec");
      const std::uint64_t bb = spec.block_bytes;
      const std::uint64_t first_block = offset / bb;
      const std::size_t lead = static_cast<std::size_t>(offset % bb);
      // Unaligned head: one block generated into scratch, tail copied out.
      std::size_t head = 0;
      if (lead != 0 && !out.empty()) {
        head = std::min<std::size_t>(spec.block_bytes - lead, out.size());
        std::vector<std::uint8_t> scratch(lead + head);
        auto gen = spec.make_at_block(first_block);
        gen->fill(scratch);
        std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lead),
                  scratch.end(), out.begin());
      }
      // The rest is block-aligned: shift the spec's block origin and reuse
      // the parallel counter path (O(1) seek — the §5.4 counter partition).
      const std::uint64_t base = first_block + (lead != 0 ? 1 : 0);
      PartitionSpec shifted = spec;
      shifted.make_at_block = [&spec, base](std::uint64_t b) {
        return spec.make_at_block(base + b);
      };
      ThroughputReport rep = run_counter(shifted, out.subspan(head));
      rep.bytes = out.size();
      return rep;
    }
    case PartitionKind::kLaneSlice: {
      if (spec.lane_blocks == 0 || spec.lane_block_bytes == 0 ||
          !spec.make_lane_block)
        throw std::invalid_argument("StreamEngine: malformed kLaneSlice spec");
      const std::uint64_t cb = spec.lane_block_bytes;
      const std::uint64_t row = spec.lane_blocks * cb;
      const std::uint64_t r0 = offset / row;
      const std::size_t within = static_cast<std::size_t>(offset % row);
      // Each 32-lane column sub-stream fast-forwards past its first r0 rows
      // independently, inside its own pool task — the seek parallelizes
      // exactly like generation does.
      PartitionSpec shifted = spec;
      shifted.make_lane_block = [&spec, r0, cb](std::size_t b) {
        auto gen = spec.make_lane_block(b);
        discard_bytes(*gen, r0 * cb);
        return gen;
      };
      if (within == 0 && out.size() % row == 0)
        return run_lane_slice(shifted, out);
      if (out.empty()) return run_lane_slice(shifted, out);
      // Row-align through a scratch envelope, then slice the request out.
      // end >= 1 (out is non-empty) and cannot wrap (checked on entry), so
      // ceil(end / row) is computed wrap-free as (end - 1) / row + 1.
      const std::uint64_t end = offset + out.size();
      const std::uint64_t rows = (end - 1) / row + 1 - r0;
      if (rows > std::numeric_limits<std::size_t>::max() / row)
        throw std::invalid_argument(
            "StreamEngine: lane-slice scratch envelope overflows size_t");
      std::vector<std::uint8_t> scratch(
          static_cast<std::size_t>(rows * row));
      ThroughputReport rep = run_lane_slice(shifted, scratch);
      std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(within),
                scratch.begin() + static_cast<std::ptrdiff_t>(within) +
                    static_cast<std::ptrdiff_t>(out.size()),
                out.begin());
      rep.bytes = out.size();
      return rep;
    }
    case PartitionKind::kSequential: {
      if (!spec.make)
        throw std::invalid_argument("StreamEngine: malformed kSequential spec");
      return dispatch(out.empty() ? 0 : 1,
                      [&](std::size_t, std::size_t) -> std::uint64_t {
        auto gen = spec.make();
        discard_bytes(*gen, offset);
        const std::size_t chunk =
            config_.chunk_bytes == 0 ? out.size() : config_.chunk_bytes;
        for (std::size_t i = 0; i < out.size(); i += chunk)
          gen->fill(out.subspan(i, std::min(chunk, out.size() - i)));
        return out.size();
      });
    }
  }
  throw std::logic_error("StreamEngine: unhandled partition kind");
}

ThroughputReport StreamEngine::dispatch(
    std::size_t ntasks,
    const std::function<std::uint64_t(std::size_t, std::size_t)>& task) {
  // Every generation job funnels through here, so one injection point
  // models "the allocation/setup for this job failed".  It fires before any
  // output byte is written: a caller that catches and re-issues the span
  // gets byte-identical results (positional generate is idempotent).
  if (EngineFaults::get().alloc_fail.fire()) throw std::bad_alloc();
  ThroughputReport rep;
  rep.per_worker.resize(config_.workers);
  EngineMetrics& em = EngineMetrics::get();
  const auto timed = [&](std::size_t worker, std::size_t t) {
    const auto t0 = Clock::now();
    const std::uint64_t bytes = task(worker, t);
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    WorkerStat& s = rep.per_worker[worker];
    s.seconds += secs;
    s.bytes += bytes;
    ++s.tasks;
    em.tasks.add();
    em.task_seconds.observe(secs);
  };
  const auto w0 = Clock::now();
  if (config_.parallel) {
    pool_->run_indexed(ntasks, timed);
  } else {
    for (std::size_t t = 0; t < ntasks; ++t) timed(t % config_.workers, t);
  }
  rep.wall_seconds = std::chrono::duration<double>(Clock::now() - w0).count();
  finalize_report(rep);
  em.jobs.add();
  em.bytes.add(rep.bytes);
  em.job_seconds.observe(rep.wall_seconds);
  em.last_gbps.set(rep.gbps());
  return rep;
}

ThroughputReport StreamEngine::run_counter(const PartitionSpec& spec,
                                           std::span<std::uint8_t> out) {
  if (spec.block_bytes == 0 || !spec.make_at_block)
    throw std::invalid_argument("StreamEngine: malformed kCounter spec");
  const std::size_t bb = spec.block_bytes;
  const std::size_t blocks_total = (out.size() + bb - 1) / bb;
  // Chunks are block-aligned so every shard's counter range is
  // self-contained (the paper's "different counter values ... passed to
  // GPUs", §5.4).  chunk_bytes == 0: one contiguous chunk per worker.
  std::size_t blocks_per_chunk;
  if (config_.chunk_bytes == 0) {
    blocks_per_chunk =
        std::max<std::size_t>(1, (blocks_total + config_.workers - 1) /
                                     config_.workers);
  } else {
    blocks_per_chunk = std::max<std::size_t>(1, config_.chunk_bytes / bb);
  }
  const std::size_t nchunks =
      blocks_total == 0 ? 0
                        : (blocks_total + blocks_per_chunk - 1) /
                              blocks_per_chunk;
  return dispatch(nchunks, [&](std::size_t, std::size_t c) -> std::uint64_t {
    const std::size_t first_block = c * blocks_per_chunk;
    const std::size_t first_byte = first_block * bb;
    const std::size_t last_byte =
        std::min(out.size(), (first_block + blocks_per_chunk) * bb);
    auto gen = spec.make_at_block(first_block);
    gen->fill(out.subspan(first_byte, last_byte - first_byte));
    return last_byte - first_byte;
  });
}

ThroughputReport StreamEngine::run_lane_slice(const PartitionSpec& spec,
                                              std::span<std::uint8_t> out) {
  if (spec.lane_blocks == 0 || spec.lane_block_bytes == 0 ||
      !spec.make_lane_block)
    throw std::invalid_argument("StreamEngine: malformed kLaneSlice spec");
  const std::size_t nb = spec.lane_blocks;        // column sub-streams
  const std::size_t cb = spec.lane_block_bytes;   // bytes per row per block
  const std::size_t row = nb * cb;                // serialized row stride
  const std::size_t rows = (out.size() + row - 1) / row;
  // One task per lane block; the worker streams its column generator into
  // alternating scratch buffers (double-buffered: the scatter of buffer A
  // runs while buffer B is still warm from the previous round) and scatters
  // rows into the interleaved output.  With a pool the buffers are the
  // worker's persistent node-local pair (first-touched on that worker's
  // thread, reused across batches); the inline path keeps task-local ones.
  const std::size_t rows_per_chunk = std::max<std::size_t>(
      1, (config_.chunk_bytes == 0 ? (1u << 18) : config_.chunk_bytes) / cb);
  const bool pooled = config_.parallel && pool_ != nullptr;
  return dispatch(rows == 0 ? 0 : nb,
                  [&](std::size_t worker, std::size_t b) -> std::uint64_t {
    auto gen = spec.make_lane_block(b);
    std::vector<std::uint8_t> local[2];
    const auto buf = [&](std::size_t which) -> std::vector<std::uint8_t>& {
      return pooled ? pool_->scratch(worker, which) : local[which];
    };
    if (buf(0).size() < rows_per_chunk * cb) buf(0).resize(rows_per_chunk * cb);
    if (buf(1).size() < rows_per_chunk * cb) buf(1).resize(rows_per_chunk * cb);
    std::uint64_t produced = 0;
    std::size_t which = 0;
    for (std::size_t r0 = 0; r0 < rows; r0 += rows_per_chunk, which ^= 1) {
      const std::size_t r1 = std::min(rows, r0 + rows_per_chunk);
      std::vector<std::uint8_t>& col = buf(which);
      gen->fill(std::span(col.data(), (r1 - r0) * cb));
      for (std::size_t r = r0; r < r1; ++r) {
        const std::size_t dst = r * row + b * cb;
        if (dst >= out.size()) break;
        const std::size_t n = std::min(cb, out.size() - dst);
        std::memcpy(out.data() + dst, col.data() + (r - r0) * cb, n);
        produced += n;
      }
    }
    return produced;
  });
}

ThroughputReport StreamEngine::run_sequential(const PartitionSpec& spec,
                                              std::span<std::uint8_t> out) {
  if (!spec.make)
    throw std::invalid_argument("StreamEngine: malformed kSequential spec");
  // No safe decomposition: one task produces the whole stream, chunked so
  // the report still reflects steady-state generation.
  return dispatch(out.empty() ? 0 : 1,
                  [&](std::size_t, std::size_t) -> std::uint64_t {
    auto gen = spec.make();
    const std::size_t chunk =
        config_.chunk_bytes == 0 ? out.size() : config_.chunk_bytes;
    for (std::size_t i = 0; i < out.size(); i += chunk)
      gen->fill(out.subspan(i, std::min(chunk, out.size() - i)));
    return out.size();
  });
}

}  // namespace bsrng::core
