// generator.hpp — BSRNG's public bulk-generation interface.
//
// A Generator produces a deterministic byte stream from a seed.  Bitsliced
// engines run W independent cipher instances and serialize their output
// slice-by-slice (step t emits the W bits of all lanes, lane 0 = bit 0), so
// the stream is reproducible at any lane width... of the SAME width: the
// width is part of the generator's identity (e.g. "mickey-bs512").
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace bsrng::core {

class Generator {
 public:
  virtual ~Generator() = default;

  // Fill `out` with the next bytes of the stream.
  virtual void fill(std::span<std::uint8_t> out) = 0;

  // Stable identifier (also the registry name).
  virtual std::string_view name() const noexcept = 0;

  // Number of independent internal instances (lanes); 1 for scalar PRNGs.
  virtual std::size_t lanes() const noexcept { return 1; }

  // Convenience draws built on fill().
  std::uint32_t next_u32();
  std::uint64_t next_u64();
  // Uniform double in [0, 1) with 53 random bits.
  double next_double();
};

// Clock `gen` forward by `n` stream bytes, discarding the output (chunked
// through a small scratch buffer).  The O(n) seek for generators whose
// family has no cheaper PartitionSpec decomposition — StreamEngine's
// generate_at and bsrngd's session resume use it for the kLaneSlice /
// kSequential paths.
void discard_bytes(Generator& gen, std::uint64_t n);

}  // namespace bsrng::core
