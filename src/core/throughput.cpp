#include "core/throughput.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

namespace bsrng::core {

ThroughputResult measure_throughput(Generator& gen, std::uint64_t total_bytes,
                                    std::size_t chunk_bytes) {
  std::vector<std::uint8_t> buf(chunk_bytes);
  ThroughputResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t remaining = total_bytes;
  // Fold a checksum through so the optimizer cannot elide generation.
  volatile std::uint8_t sink = 0;
  std::uint8_t acc = 0;
  while (remaining > 0) {
    const std::size_t n =
        remaining < chunk_bytes ? static_cast<std::size_t>(remaining) : chunk_bytes;
    gen.fill(std::span(buf.data(), n));
    acc ^= buf[0] ^ buf[n - 1];
    remaining -= n;
  }
  sink = acc;
  (void)sink;
  r.bytes = total_bytes;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

void finalize_report(ThroughputReport& rep) {
  rep.workers = rep.per_worker.size();
  rep.bytes = 0;
  rep.max_worker_seconds = 0.0;
  rep.sum_worker_seconds = 0.0;
  for (const WorkerStat& w : rep.per_worker) {
    rep.bytes += w.bytes;
    rep.sum_worker_seconds += w.seconds;
    rep.max_worker_seconds = std::max(rep.max_worker_seconds, w.seconds);
  }
}

}  // namespace bsrng::core
