// descriptors.cpp — the AlgorithmDescriptor table: six cipher families, two
// generic builders.
//
// Every lane-sliced cipher (mickey/grain/trivium/a51) is lane_descriptor<T>
// over a small traits struct (engine template + 32-lane shard builder);
// every counter-mode cipher (aes-ctr/chacha20) is counter_descriptor<T>
// (engine template + keyschedule CtrParams).  The builders wire the shared
// adapters (core/adapters.hpp) and the generic kernel
// (core/gpu_kernel_impl.hpp), so registering a new cipher is one traits
// struct and one push_back.

#include "core/descriptor.hpp"

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bitslice/gatecount.hpp"
#include "bitslice/slice.hpp"
#include "ciphers/a51_bs.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/chacha_bs.hpp"
#include "ciphers/grain_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "ciphers/trivium_bs.hpp"
#include "core/adapters.hpp"
#include "core/gpu_kernel_impl.hpp"
#include "core/keyschedule.hpp"

namespace bsrng::core {

namespace {

namespace bs = bsrng::bitslice;
namespace ks = bsrng::core::keyschedule;
using U32 = bs::SliceU32;

constexpr int kGateSteps = 256;

// --- per-thread kernel adapters (satisfy detail::KernelEngine) -------------

// A 32-lane stream-cipher engine: each step() slice is the thread's next
// output word ("each thread at each clock cycle generates 32 random bits").
template <typename E>
struct LaneKernelEngine {
  E engine;
  std::uint32_t next_word() {
    return static_cast<std::uint32_t>(engine.step());
  }
};

// A counter-mode bulk engine seeked to the thread's first block: the
// serialized stream is consumed 4 little-endian bytes per output word.
template <typename E>
struct CounterKernelEngine {
  E engine;
  std::uint32_t next_word() {
    std::array<std::uint8_t, 4> b{};
    engine.fill(b);
    return static_cast<std::uint32_t>(b[0]) |
           (static_cast<std::uint32_t>(b[1]) << 8) |
           (static_cast<std::uint32_t>(b[2]) << 16) |
           (static_cast<std::uint32_t>(b[3]) << 24);
  }
};

// --- lane-sliced families ---------------------------------------------------
// Traits contract: Engine<W> (master-seed constructible for any slice width)
// and make_lane32(seed, first_lane) building the 32-lane engine over lanes
// [first_lane, first_lane + 32) of the master derivation.

struct MickeyTraits {
  template <typename W>
  using Engine = ciphers::MickeyBs<W>;
  static ciphers::MickeyBs<U32> make_lane32(std::uint64_t seed,
                                            std::size_t first_lane) {
    std::vector<ciphers::MickeyBs<U32>::KeyBytes> keys(kLaneBlockLanes);
    std::vector<ciphers::MickeyBs<U32>::IvBytes> ivs(kLaneBlockLanes);
    ciphers::derive_mickey_lane_params(seed, keys, ivs, first_lane);
    return ciphers::MickeyBs<U32>(keys, ivs, ciphers::mickey::kMaxIvBits);
  }
};

struct GrainTraits {
  template <typename W>
  using Engine = ciphers::GrainBs<W>;
  static ciphers::GrainBs<U32> make_lane32(std::uint64_t seed,
                                           std::size_t first_lane) {
    std::vector<ciphers::GrainBs<U32>::KeyBytes> keys(kLaneBlockLanes);
    std::vector<ciphers::GrainBs<U32>::IvBytes> ivs(kLaneBlockLanes);
    ciphers::derive_grain_lane_params(seed, keys, ivs, first_lane);
    return ciphers::GrainBs<U32>(keys, ivs);
  }
};

struct TriviumTraits {
  template <typename W>
  using Engine = ciphers::TriviumBs<W>;
  static ciphers::TriviumBs<U32> make_lane32(std::uint64_t seed,
                                             std::size_t first_lane) {
    std::vector<ciphers::TriviumBs<U32>::KeyBytes> keys(kLaneBlockLanes);
    std::vector<ciphers::TriviumBs<U32>::IvBytes> ivs(kLaneBlockLanes);
    ciphers::derive_trivium_lane_params(seed, keys, ivs, first_lane);
    return ciphers::TriviumBs<U32>(keys, ivs);
  }
};

struct A51Traits {
  template <typename W>
  using Engine = ciphers::A51Bs<W>;
  static ciphers::A51Bs<U32> make_lane32(std::uint64_t seed,
                                         std::size_t first_lane) {
    std::vector<ciphers::A51Bs<U32>::KeyBytes> keys(kLaneBlockLanes);
    std::vector<std::uint32_t> frames(kLaneBlockLanes);
    ciphers::derive_a51_lane_params(seed, keys, frames, first_lane);
    return ciphers::A51Bs<U32>(keys, frames);
  }
};

template <typename Traits>
AlgorithmDescriptor lane_descriptor(const char* base, bool cryptographic) {
  AlgorithmDescriptor d;
  d.base = base;
  d.cryptographic = cryptographic;
  d.partition = PartitionKind::kLaneSlice;
  d.bits_per_step = 1.0;
  d.measure_gate_ops = [] {
    using C = bs::CountingSlice;
    typename Traits::template Engine<C> e(1);
    C::reset();
    for (int i = 0; i < kGateSteps; ++i) (void)e.step();
    return static_cast<double>(C::ops) / kGateSteps;
  };
  d.make_stream = [](std::string name, std::size_t width, std::uint64_t seed) {
    std::unique_ptr<Generator> g;
    adapters::with_slice_width(width, [&]<typename W>() {
      using E = typename Traits::template Engine<W>;
      g = std::make_unique<adapters::SlicedStreamGen<W, E>>(std::move(name),
                                                            E(seed));
    });
    return g;
  };
  d.make_lane_block = [](std::string name, std::uint64_t seed,
                         std::size_t lane_block) -> std::unique_ptr<Generator> {
    using E = typename Traits::template Engine<U32>;
    return std::make_unique<adapters::SlicedStreamGen<U32, E>>(
        std::move(name), Traits::make_lane32(seed, lane_block * kLaneBlockLanes));
  };
  d.run_kernel = [name = std::string(base) + "_gpu_kernel"](
                     gpusim::Device& dev, const GpuKernelConfig& cfg) {
    return detail::run_kernel_generic(dev, cfg, name, [&cfg](std::size_t t) {
      using E = typename Traits::template Engine<U32>;
      return LaneKernelEngine<E>{
          Traits::make_lane32(cfg.seed, t * kLaneBlockLanes)};
    });
  };
  d.kernel_word = [](const GpuKernelConfig& cfg, std::size_t thread,
                     std::size_t w) {
    auto e = Traits::make_lane32(cfg.seed, thread * kLaneBlockLanes);
    std::uint32_t out = 0;
    for (std::size_t i = 0; i <= w; ++i)
      out = static_cast<std::uint32_t>(e.step());
    return out;
  };
  return d;
}

// --- counter-mode families --------------------------------------------------
// Traits contract: kKeyLen/kBlockBytes, Engine<W>, make<W>(seed, counter0)
// building the engine from the shared keyschedule CtrParams, and measure()
// (the CountingSlice gate audit differs per cipher).

struct AesCtrTraits {
  static constexpr std::size_t kKeyLen = 16, kBlockBytes = 16;
  template <typename W>
  using Engine = ciphers::AesCtrBs<W>;
  template <typename W>
  static ciphers::AesCtrBs<W> make(std::uint64_t seed, std::uint32_t counter0) {
    const auto p = ks::derive_ctr_params<kKeyLen>(seed);
    return ciphers::AesCtrBs<W>(p.key, p.nonce, counter0);
  }
  static double measure() {
    using C = bs::CountingSlice;
    std::array<std::uint8_t, 16> key{};
    ciphers::AesBs<C> e(key);
    typename ciphers::AesBs<C>::State st{};
    C::reset();
    for (int i = 0; i < kGateSteps; ++i) e.encrypt_slices(st);
    return static_cast<double>(C::ops) / kGateSteps;
  }
};

struct ChaChaTraits {
  static constexpr std::size_t kKeyLen = 32, kBlockBytes = 64;
  template <typename W>
  using Engine = ciphers::ChaCha20Bs<W>;
  template <typename W>
  static ciphers::ChaCha20Bs<W> make(std::uint64_t seed,
                                     std::uint32_t counter0) {
    const auto p = ks::derive_ctr_params<kKeyLen>(seed);
    return ciphers::ChaCha20Bs<W>(p.key, p.nonce, counter0);
  }
  static double measure() {
    using C = bs::CountingSlice;
    std::array<std::uint8_t, 32> key{};
    std::array<std::uint8_t, 12> nonce{};
    ciphers::ChaCha20Bs<C> e(key, nonce);
    std::vector<std::uint8_t> out(64 * kGateSteps);  // kGateSteps @ 1 lane
    C::reset();
    e.fill(out);
    return static_cast<double>(C::ops) / kGateSteps;
  }
};

// Counter threads own contiguous block-aligned stream ranges, so each
// thread's engine is just the canonical engine seeked to its first block.
template <typename Traits>
std::uint32_t counter_thread_counter0(const GpuKernelConfig& cfg,
                                      std::size_t thread) {
  return static_cast<std::uint32_t>(thread * cfg.words_per_thread * 4 /
                                    Traits::kBlockBytes);
}

template <typename Traits>
AlgorithmDescriptor counter_descriptor(const char* base,
                                       double bits_per_step) {
  AlgorithmDescriptor d;
  d.base = base;
  d.cryptographic = true;
  d.partition = PartitionKind::kCounter;
  d.counter_block_bytes = Traits::kBlockBytes;
  d.bits_per_step = bits_per_step;
  d.measure_gate_ops = [] { return Traits::measure(); };
  d.make_stream = [](std::string name, std::size_t width, std::uint64_t seed) {
    std::unique_ptr<Generator> g;
    adapters::with_slice_width(width, [&]<typename W>() {
      using E = typename Traits::template Engine<W>;
      g = std::make_unique<adapters::CounterModeGen<W, E>>(
          std::move(name), Traits::template make<W>(seed, 0));
    });
    return g;
  };
  d.make_at_block = [](std::string name, std::size_t width,
                       std::uint64_t seed, std::uint64_t first_block) {
    std::unique_ptr<Generator> g;
    adapters::with_slice_width(width, [&]<typename W>() {
      using E = typename Traits::template Engine<W>;
      g = std::make_unique<adapters::CounterModeGen<W, E>>(
          std::move(name),
          Traits::template make<W>(seed,
                                   static_cast<std::uint32_t>(first_block)));
    });
    return g;
  };
  d.run_kernel = [name = std::string(base) + "_gpu_kernel"](
                     gpusim::Device& dev, const GpuKernelConfig& cfg) {
    if (cfg.words_per_thread * 4 % Traits::kBlockBytes != 0)
      throw std::invalid_argument(
          "run_gpu_kernel: counter-mode ciphers need words_per_thread * 4 "
          "divisible by the cipher block size so per-thread ranges are "
          "block-aligned");
    return detail::run_kernel_generic(dev, cfg, name, [&cfg](std::size_t t) {
      using E = typename Traits::template Engine<U32>;
      return CounterKernelEngine<E>{Traits::template make<U32>(
          cfg.seed, counter_thread_counter0<Traits>(cfg, t))};
    });
  };
  d.kernel_word = [](const GpuKernelConfig& cfg, std::size_t thread,
                     std::size_t w) {
    using E = typename Traits::template Engine<U32>;
    CounterKernelEngine<E> e{Traits::template make<U32>(
        cfg.seed, counter_thread_counter0<Traits>(cfg, thread))};
    std::uint32_t out = 0;
    for (std::size_t i = 0; i <= w; ++i) out = e.next_word();
    return out;
  };
  return d;
}

}  // namespace

const std::vector<AlgorithmDescriptor>& algorithm_descriptors() {
  static const std::vector<AlgorithmDescriptor> table = [] {
    std::vector<AlgorithmDescriptor> d;
    d.push_back(lane_descriptor<MickeyTraits>("mickey", true));
    d.push_back(lane_descriptor<GrainTraits>("grain", true));
    d.push_back(lane_descriptor<TriviumTraits>("trivium", true));
    d.push_back(counter_descriptor<AesCtrTraits>("aes-ctr", 128.0));
    d.push_back(lane_descriptor<A51Traits>("a51", false));
    d.push_back(counter_descriptor<ChaChaTraits>("chacha20", 512.0));
    return d;
  }();
  return table;
}

const AlgorithmDescriptor* find_descriptor(std::string_view base) {
  for (const auto& d : algorithm_descriptors())
    if (d.base == base) return &d;
  return nullptr;
}

std::pair<const AlgorithmDescriptor*, std::size_t> find_bitsliced(
    std::string_view name) {
  for (const auto& d : algorithm_descriptors())
    if (const std::size_t w = adapters::bs_width(name, d.base + "-bs"))
      return {&d, w};
  return {nullptr, 0};
}

}  // namespace bsrng::core
