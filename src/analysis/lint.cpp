#include "analysis/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bsrng::analysis {

namespace {

bool ident_char(char c) {
  return (std::isalnum(static_cast<unsigned char>(c)) != 0) || c == '_';
}

// True when src[pos..] starts with `token` and the preceding character is
// not part of an identifier (so `time(` does not match `strftime(`).
bool token_at(std::string_view src, std::size_t pos, std::string_view token) {
  if (src.compare(pos, token.size(), token) != 0) return false;
  return pos == 0 || !ident_char(src[pos - 1]);
}

std::size_t line_of(std::string_view src, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(src.begin(), src.begin() + static_cast<long>(pos),
                            '\n'));
}

std::string line_text(std::string_view src, std::size_t pos) {
  std::size_t b = src.rfind('\n', pos);
  b = b == std::string_view::npos ? 0 : b + 1;
  std::size_t e = src.find('\n', pos);
  if (e == std::string_view::npos) e = src.size();
  std::string_view line = src.substr(b, e - b);
  while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
    line.remove_prefix(1);
  while (!line.empty() && (line.back() == ' ' || line.back() == '\r'))
    line.remove_suffix(1);
  return std::string(line);
}

// Lines carrying `// bsrng-lint: allow(rule)` (or allow(*)) suppress that
// rule on that line.  Scanned on the *raw* source — the marker lives in a
// comment, which stripping erases.
bool suppressed(std::string_view raw, std::size_t line,
                std::string_view rule) {
  std::size_t b = 0;
  for (std::size_t l = 1; l < line; ++l) {
    b = raw.find('\n', b);
    if (b == std::string_view::npos) return false;
    ++b;
  }
  std::size_t e = raw.find('\n', b);
  if (e == std::string_view::npos) e = raw.size();
  const std::string_view text = raw.substr(b, e - b);
  const std::size_t mark = text.find("bsrng-lint: allow(");
  if (mark == std::string_view::npos) return false;
  const std::string_view args = text.substr(mark + 18);
  const std::size_t close = args.find(')');
  if (close == std::string_view::npos) return false;
  const std::string_view what = args.substr(0, close);
  return what == "*" || what == rule;
}

// Does the first template argument of an unordered container name a pointer
// type?  `pos` points just past the '<'.  Scans at angle-bracket depth 0 up
// to the ',' or matching '>'.
bool pointer_key_arg(std::string_view src, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '<') ++depth;
    else if (c == '>') {
      if (depth == 0) return false;
      --depth;
    } else if (c == ',' && depth == 0) {
      return false;
    } else if (c == '*' && depth == 0) {
      return true;
    }
  }
  return false;
}

struct Rule {
  const char* name;
  const char* token;
};

constexpr Rule kCallRules[] = {
    {"rand-call", "rand("},
    {"rand-call", "srand("},
    {"rand-call", "random("},
    {"random-device", "random_device"},
    {"wall-clock", "time("},
    {"wall-clock", "system_clock"},
};

constexpr std::string_view kUnorderedTokens[] = {"unordered_map<",
                                                 "unordered_set<"};

bool lintable_file(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

std::string LintFinding::to_string() const {
  std::ostringstream os;
  os << file << ":" << line << ": [" << rule << "] " << excerpt;
  return os.str();
}

std::string strip_comments_and_strings(std::string_view src) {
  std::string out(src);
  std::size_t i = 0;
  const auto blank_until = [&](std::size_t end) {
    for (; i < end && i < out.size(); ++i)
      if (out[i] != '\n') out[i] = ' ';
  };
  while (i < out.size()) {
    const char c = out[i];
    if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
      std::size_t e = src.find('\n', i);
      blank_until(e == std::string_view::npos ? out.size() : e);
    } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
      std::size_t e = src.find("*/", i + 2);
      blank_until(e == std::string_view::npos ? out.size() : e + 2);
    } else if (c == 'R' && i + 1 < out.size() && out[i + 1] == '"' &&
               (i == 0 || !ident_char(out[i - 1]))) {
      const std::size_t open = src.find('(', i + 2);
      if (open == std::string_view::npos) {
        ++i;
        continue;
      }
      std::string closer(")");
      closer.append(src.substr(i + 2, open - (i + 2)));
      closer.push_back('"');
      std::size_t e = src.find(closer, open + 1);
      blank_until(e == std::string_view::npos ? out.size()
                                              : e + closer.size());
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t e = i + 1;
      while (e < out.size() && out[e] != quote) {
        if (out[e] == '\\' && e + 1 < out.size()) ++e;
        ++e;
      }
      blank_until(e < out.size() ? e + 1 : out.size());
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<LintFinding> lint_source(std::string_view file,
                                     std::string_view source) {
  std::vector<LintFinding> findings;
  const std::string stripped = strip_comments_and_strings(source);
  const auto report = [&](std::size_t pos, const char* rule) {
    const std::size_t line = line_of(stripped, pos);
    if (suppressed(source, line, rule)) return;
    findings.push_back(
        {std::string(file), line, rule, line_text(source, pos)});
  };

  for (const Rule& r : kCallRules)
    for (std::size_t pos = stripped.find(r.token);
         pos != std::string::npos; pos = stripped.find(r.token, pos + 1))
      if (token_at(stripped, pos, r.token)) report(pos, r.name);

  for (const std::string_view tok : kUnorderedTokens)
    for (std::size_t pos = stripped.find(tok); pos != std::string::npos;
         pos = stripped.find(tok, pos + 1))
      if (token_at(stripped, pos, tok) &&
          pointer_key_arg(stripped, pos + tok.size()))
        report(pos, "pointer-keyed");

  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              return a.line < b.line;
            });
  return findings;
}

std::vector<LintFinding> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path path(p);
    if (fs::is_regular_file(path)) {
      files.push_back(path.string());
    } else if (fs::is_directory(path)) {
      std::vector<std::string> dir_files;
      for (const auto& entry : fs::recursive_directory_iterator(path))
        if (entry.is_regular_file() && lintable_file(entry.path()))
          dir_files.push_back(entry.path().string());
      // recursive_directory_iterator order is filesystem-dependent; sort
      // for stable report order (the lint practices what it preaches).
      std::sort(dir_files.begin(), dir_files.end());
      files.insert(files.end(), dir_files.begin(), dir_files.end());
    } else {
      throw std::runtime_error("lint: no such file or directory: " + p);
    }
  }

  std::vector<LintFinding> findings;
  for (const std::string& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) throw std::runtime_error("lint: cannot read " + f);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    auto file_findings = lint_source(f, source);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::vector<std::string> default_lint_roots(std::string_view repo_root) {
  namespace fs = std::filesystem;
  std::vector<std::string> roots;
  for (const char* sub : {"src/core", "src/ciphers", "src/bitslice",
                          "src/lfsr", "src/fault", "src/stream"}) {
    fs::path p = fs::path(repo_root) / sub;
    roots.push_back(p.string());
  }
  return roots;
}

}  // namespace bsrng::analysis
