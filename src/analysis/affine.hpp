// affine.hpp — affine address expressions over kernel symbols.
//
// Every memory access a bsrng virtual-GPU kernel makes is an affine function
// of the launch symbols: the block index, the thread index within the block,
// and the counters of the (statically bounded) loops enclosing the access —
//   addr = c0 + c_b * block + c_t * thread + sum_i c_i * v_i.
// That is the property GPUVerify-style verifiers exploit: with data-free
// affine addresses, race freedom, bounds and coalescing become arithmetic on
// the coefficients rather than facts about one execution.  This header is
// the expression algebra; model.hpp builds kernel access programs out of it
// and static_analyzer.hpp discharges the proof obligations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <span>
#include <string>
#include <vector>

namespace bsrng::analysis {

// Well-known symbol ids.  Loop variables are allocated from kFirstLoopVar
// upward by the model that owns them.
inline constexpr int kVarBlock = 0;
inline constexpr int kVarThread = 1;
inline constexpr int kFirstLoopVar = 2;

struct AffineTerm {
  int var = 0;
  std::int64_t coeff = 0;
};

// c0 + sum(coeff * var).  Terms are kept sorted by var id with no zero or
// duplicate coefficients, so structural comparison is canonical.
struct AffineExpr {
  std::int64_t c0 = 0;
  std::vector<AffineTerm> terms;

  static AffineExpr constant(std::int64_t c) { return AffineExpr{c, {}}; }
  static AffineExpr var(int id, std::int64_t coeff = 1) {
    AffineExpr e;
    if (coeff != 0) e.terms.push_back({id, coeff});
    return e;
  }
  static AffineExpr block(std::int64_t coeff = 1) {
    return var(kVarBlock, coeff);
  }
  static AffineExpr thread(std::int64_t coeff = 1) {
    return var(kVarThread, coeff);
  }

  std::int64_t coeff(int id) const {
    for (const AffineTerm& t : terms)
      if (t.var == id) return t.coeff;
    return 0;
  }

  AffineExpr& add_term(int id, std::int64_t coeff_delta) {
    if (coeff_delta == 0) return *this;
    auto it = std::lower_bound(
        terms.begin(), terms.end(), id,
        [](const AffineTerm& t, int v) { return t.var < v; });
    if (it != terms.end() && it->var == id) {
      it->coeff += coeff_delta;
      if (it->coeff == 0) terms.erase(it);
    } else {
      terms.insert(it, {id, coeff_delta});
    }
    return *this;
  }

  friend AffineExpr operator+(AffineExpr a, const AffineExpr& b) {
    a.c0 += b.c0;
    for (const AffineTerm& t : b.terms) a.add_term(t.var, t.coeff);
    return a;
  }
  friend AffineExpr operator+(AffineExpr a, std::int64_t c) {
    a.c0 += c;
    return a;
  }
  friend AffineExpr operator-(AffineExpr a, const AffineExpr& b) {
    a.c0 -= b.c0;
    for (const AffineTerm& t : b.terms) a.add_term(t.var, -t.coeff);
    return a;
  }
  friend AffineExpr operator*(AffineExpr a, std::int64_t k) {
    a.c0 *= k;
    if (k == 0) {
      a.terms.clear();
      return a;
    }
    for (AffineTerm& t : a.terms) t.coeff *= k;
    return a;
  }

  bool operator==(const AffineExpr& o) const {
    if (c0 != o.c0 || terms.size() != o.terms.size()) return false;
    for (std::size_t i = 0; i < terms.size(); ++i)
      if (terms[i].var != o.terms[i].var ||
          terms[i].coeff != o.terms[i].coeff)
        return false;
    return true;
  }

  // Evaluate with env[var] giving each symbol's value.
  std::int64_t eval(std::span<const std::int64_t> env) const {
    std::int64_t v = c0;
    for (const AffineTerm& t : terms)
      v += t.coeff * env[static_cast<std::size_t>(t.var)];
    return v;
  }

  std::string to_string() const {
    std::string s = std::to_string(c0);
    for (const AffineTerm& t : terms) {
      s += t.coeff >= 0 ? " + " : " - ";
      s += std::to_string(std::abs(t.coeff));
      s += t.var == kVarBlock    ? "*b"
           : t.var == kVarThread ? "*t"
                                 : "*v" + std::to_string(t.var);
    }
    return s;
  }
};

// One symbol's value range: the half-open integer interval [begin, end) with
// stride `step` (loop counters; thread/block ranges use step 1).
struct VarRange {
  int var = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;  // exclusive; empty when end <= begin
  std::int64_t step = 1;

  bool empty() const { return end <= begin; }
  std::int64_t last() const {  // largest attained value
    return begin + ((end - 1 - begin) / step) * step;
  }
};

// Sound over-approximation of an affine expression's value set over a box of
// variable ranges: the stride interval {lo, lo + gcd, lo + 2*gcd, ... , hi}.
// Used both to prove bounds (true set is a subset) and to prove two access
// sets disjoint (if the stride intervals of the difference never contain 0,
// the true sets never collide).
struct StrideInterval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::int64_t gcd = 0;  // 0 means the single value lo (== hi)

  bool contains(std::int64_t x) const {
    if (x < lo || x > hi) return false;
    if (gcd == 0) return x == lo;
    return (x - lo) % gcd == 0;
  }
};

// Bound `expr` over `box` (each var in box contributes its range; variables
// of the expression missing from the box are taken as the single value 0).
inline StrideInterval bound_affine(const AffineExpr& expr,
                                   std::span<const VarRange> box) {
  StrideInterval si{expr.c0, expr.c0, 0};
  for (const AffineTerm& t : expr.terms) {
    const VarRange* r = nullptr;
    for (const VarRange& vr : box)
      if (vr.var == t.var) {
        r = &vr;
        break;
      }
    if (r == nullptr || r->empty()) continue;  // symbol fixed at 0
    const std::int64_t a = t.coeff * r->begin;
    const std::int64_t b = t.coeff * r->last();
    si.lo += std::min(a, b);
    si.hi += std::max(a, b);
    if (r->last() != r->begin)
      si.gcd = std::gcd(si.gcd, std::abs(t.coeff * r->step));
  }
  return si;
}

}  // namespace bsrng::analysis
