#include "analysis/model.hpp"

#include <stdexcept>

#include "core/descriptor.hpp"

namespace bsrng::analysis {

namespace {

// Symbolic kernel_out_index: where word w of a thread lands in global
// memory, as an affine expression over (block, thread-in-block, w).  Mirrors
// core::kernel_out_index for global thread id b * T + t:
//   coalesced:  w * blocks * T + b * T + t
//   per-thread: (b * T + t) * words_per_thread + w
AffineExpr out_index_expr(const core::GpuKernelConfig& cfg,
                          const AffineExpr& w) {
  const auto T = static_cast<std::int64_t>(cfg.threads_per_block);
  const auto wpt = static_cast<std::int64_t>(cfg.words_per_thread);
  const auto stride = static_cast<std::int64_t>(cfg.blocks) * T;
  if (cfg.coalesced_layout)
    return w * stride + AffineExpr::block(T) + AffineExpr::thread();
  return AffineExpr::block(T * wpt) + AffineExpr::thread(wpt) + w;
}

}  // namespace

KernelModel model_descriptor_kernel(std::string_view algorithm,
                                    const core::GpuKernelConfig& cfg,
                                    std::size_t global_words) {
  const core::AlgorithmDescriptor* desc = core::find_descriptor(algorithm);
  if (desc == nullptr) desc = core::find_bitsliced(algorithm).first;
  if (desc == nullptr)
    throw std::invalid_argument("model_descriptor_kernel: unknown algorithm " +
                                std::string(algorithm));
  if (cfg.blocks == 0 || cfg.threads_per_block == 0 ||
      cfg.words_per_thread == 0)
    throw std::invalid_argument(
        "model_descriptor_kernel: blocks, threads_per_block and "
        "words_per_thread must be nonzero");
  if (cfg.use_shared_staging && cfg.staging_words == 0)
    throw std::invalid_argument(
        "model_descriptor_kernel: staging_words must be nonzero when shared "
        "staging is enabled");
  if (desc->partition == core::PartitionKind::kCounter &&
      cfg.words_per_thread * 4 % desc->counter_block_bytes != 0)
    throw std::invalid_argument(
        "model_descriptor_kernel: counter-mode ciphers need "
        "words_per_thread * 4 divisible by the cipher block size");

  KernelModel m;
  m.name = desc->base + "_gpu_kernel";
  m.blocks = cfg.blocks;
  m.threads_per_block = cfg.threads_per_block;
  m.shared_words =
      cfg.use_shared_staging ? cfg.threads_per_block * cfg.staging_words : 0;
  m.global_words = global_words;

  const auto T = static_cast<std::int64_t>(cfg.threads_per_block);
  if (!cfg.use_shared_staging) {
    const int w = m.fresh_var();
    m.stmts.push_back(Stmt::loop(
        w, 0, static_cast<std::int64_t>(cfg.words_per_thread),
        {Stmt::global_store(out_index_expr(cfg, AffineExpr::var(w)))}));
    return m;
  }

  // §4.5 staging: rounds are unrolled (their count and the ragged final
  // chunk are geometry constants); the per-round stage and flush loops stay
  // symbolic so their footprints carry loop-variable coefficients.
  for (std::size_t w0 = 0; w0 < cfg.words_per_thread;
       w0 += cfg.staging_words) {
    const auto chunk = static_cast<std::int64_t>(
        std::min(cfg.staging_words, cfg.words_per_thread - w0));
    const int i = m.fresh_var();
    m.stmts.push_back(Stmt::loop(
        i, 0, chunk,
        {Stmt::shared_store(AffineExpr::var(i, T) + AffineExpr::thread())}));
    const int j = m.fresh_var();
    // Flush iteration j: the shared load executes before the global store
    // (the store consumes the loaded value).
    m.stmts.push_back(Stmt::loop(
        j, 0, chunk,
        {Stmt::shared_load(AffineExpr::var(j, T) + AffineExpr::thread()),
         Stmt::global_store(out_index_expr(
             cfg, AffineExpr::var(j) + static_cast<std::int64_t>(w0)))}));
  }
  return m;
}

}  // namespace bsrng::analysis
