#include "analysis/static_analyzer.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <deque>
#include <sstream>
#include <utility>

#include "gpusim/memmodel.hpp"

namespace bsrng::analysis {

namespace {

// ---------------------------------------------------------------------------
// Flat view for the affine layer: every access with its enclosing loop box
// and statically assigned barrier epoch.  Only exact for uniform control
// flow (no If/Exit, barriers outside loops); the exhaustive layer handles
// the rest.
// ---------------------------------------------------------------------------

struct FlatAccess {
  Space space = Space::kGlobal;
  MemOp op = MemOp::kStore;
  AffineExpr addr;
  std::vector<VarRange> box;  // enclosing loops, outermost first
  std::uint64_t epoch = 0;
};

bool flatten(const std::vector<Stmt>& stmts, std::vector<VarRange>& box,
             bool in_loop, std::uint64_t& epoch,
             std::vector<FlatAccess>& out) {
  for (const Stmt& s : stmts) {
    switch (s.kind) {
      case Stmt::Kind::kAccess:
        out.push_back({s.space, s.op, s.addr, box, epoch});
        break;
      case Stmt::Kind::kLoop: {
        if (s.end <= s.begin) break;  // zero-trip: no accesses happen
        box.push_back({s.var, s.begin, s.end, s.step});
        const bool ok = flatten(s.body, box, /*in_loop=*/true, epoch, out);
        box.pop_back();
        if (!ok) return false;
        break;
      }
      case Stmt::Kind::kBarrier:
        // A barrier inside a loop gives iteration-dependent epochs; the
        // static epoch labelling below would be wrong, so bail out.
        if (in_loop) return false;
        ++epoch;
        break;
      case Stmt::Kind::kIf:
      case Stmt::Kind::kExit:
        return false;  // thread-dependent control flow
    }
  }
  return true;
}

// Box of one access extended with the block/thread ranges — the full
// quantifier prefix of its footprint.
std::vector<VarRange> full_box(const FlatAccess& a, const KernelModel& m) {
  std::vector<VarRange> box = a.box;
  box.push_back({kVarBlock, 0, static_cast<std::int64_t>(m.blocks), 1});
  box.push_back(
      {kVarThread, 0, static_cast<std::int64_t>(m.threads_per_block), 1});
  return box;
}

// Proves addr in [0, bound) for every block/thread/iteration, by interval
// bounds of the affine form.  (Never refutes: an out-of-range interval may
// still miss the bound through stride gaps — the trace decides then.)
bool prove_in_bounds(const FlatAccess& a, const KernelModel& m,
                     std::uint64_t bound) {
  const StrideInterval si = bound_affine(a.addr, full_box(a, m));
  return si.lo >= 0 && si.hi < static_cast<std::int64_t>(bound);
}

// Proves that accesses a and b never touch the same shared word from two
// distinct threads, for any pair of iteration vectors.  Requires equal
// thread coefficients (the common case: footprints that translate with the
// thread id); solves  a.addr(t1, va) - b.addr(t2, vb) = 0  by checking, for
// every nonzero thread offset d = t1 - t2, whether the affine difference's
// stride interval can reach -c_t * d.  Self-pairs (a == b) are meaningful:
// the rename gives the two instances independent iteration spaces.
bool prove_disjoint_across_threads(const FlatAccess& a, const FlatAccess& b,
                                   const KernelModel& m) {
  const std::int64_t ct = a.addr.coeff(kVarThread);
  if (ct != b.addr.coeff(kVarThread)) return false;  // inconclusive

  constexpr int kRenameOffset = 1 << 20;
  AffineExpr diff;
  diff.c0 = a.addr.c0 - b.addr.c0;
  for (const AffineTerm& t : a.addr.terms)
    if (t.var != kVarThread) diff.add_term(t.var, t.coeff);
  for (const AffineTerm& t : b.addr.terms) {
    if (t.var == kVarThread) continue;
    // Both threads live in the same block, so the block symbol is shared
    // (not renamed); loop variables quantify independently per instance.
    diff.add_term(t.var == kVarBlock ? t.var : t.var + kRenameOffset,
                  -t.coeff);
  }
  std::vector<VarRange> box = a.box;
  for (const VarRange& r : b.box)
    box.push_back({r.var + kRenameOffset, r.begin, r.end, r.step});
  box.push_back({kVarBlock, 0, static_cast<std::int64_t>(m.blocks), 1});

  const StrideInterval si = bound_affine(diff, box);
  const auto T = static_cast<std::int64_t>(m.threads_per_block);
  for (std::int64_t d = -(T - 1); d <= T - 1; ++d) {
    if (d == 0) continue;
    if (si.contains(-ct * d)) return false;  // possible collision
  }
  return true;
}

// Proves every word `load` reads was stored earlier by the *same* thread:
// an earlier store statement with an identical iteration box whose address
// expression matches under positional loop-variable renaming.
bool prove_covered_by_own_store(const FlatAccess& load, std::size_t load_pos,
                                const std::vector<FlatAccess>& accesses) {
  for (std::size_t s = 0; s < load_pos; ++s) {
    const FlatAccess& st = accesses[s];
    if (st.space != Space::kShared || st.op != MemOp::kStore) continue;
    if (st.box.size() != load.box.size()) continue;
    bool boxes_match = true;
    for (std::size_t i = 0; i < st.box.size() && boxes_match; ++i)
      boxes_match = st.box[i].begin == load.box[i].begin &&
                    st.box[i].end == load.box[i].end &&
                    st.box[i].step == load.box[i].step;
    if (!boxes_match) continue;
    AffineExpr renamed;
    renamed.c0 = load.addr.c0;
    bool renamable = true;
    for (const AffineTerm& t : load.addr.terms) {
      if (t.var == kVarBlock || t.var == kVarThread) {
        renamed.add_term(t.var, t.coeff);
        continue;
      }
      std::size_t pos = load.box.size();
      for (std::size_t i = 0; i < load.box.size(); ++i)
        if (load.box[i].var == t.var) {
          pos = i;
          break;
        }
      if (pos == load.box.size()) {
        renamable = false;
        break;
      }
      renamed.add_term(st.box[pos].var, t.coeff);
    }
    if (renamable && renamed == st.addr) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Exhaustive layer: trace the model's address stream through the dynamic
// checker's own shadow machinery (BlockSanitizer + WarpAccessRecorder), so
// classification, dedup, report order and transaction counting are the
// dynamic sanitizer's semantics by construction — just fed modeled
// addresses instead of executed ones.
// ---------------------------------------------------------------------------

struct TraceResult {
  std::vector<gpusim::CheckReport> reports;
  std::uint64_t findings = 0;
  gpusim::MemStats stats;
  std::uint64_t warp_slots = 0;
  std::size_t bank_max_degree = 0;
};

// One thread's concrete execution, materialized as a flat event list by
// walking the model with the thread's (block, thread) binding.  Replaying
// event lists lets the trace honour barrier semantics: all of a block's
// epoch-e accesses are fed to the sanitizer before any epoch-(e+1) access,
// exactly as a synchronized launch interleaves them.  Barrier-free kernels
// degenerate to thread-sequential order, matching sequential launches.
struct Event {
  bool barrier = false;
  Space space = Space::kGlobal;
  MemOp op = MemOp::kStore;
  std::int64_t addr = 0;
};

void collect_events(const std::vector<Stmt>& stmts,
                    std::vector<std::int64_t>& env, bool& exited,
                    std::vector<Event>& out) {
  for (const Stmt& s : stmts) {
    if (exited) return;
    switch (s.kind) {
      case Stmt::Kind::kAccess:
        out.push_back({false, s.space, s.op, s.addr.eval(env)});
        break;
      case Stmt::Kind::kLoop:
        for (std::int64_t v = s.begin; v < s.end && !exited; v += s.step) {
          env[static_cast<std::size_t>(s.var)] = v;
          collect_events(s.body, env, exited, out);
        }
        break;
      case Stmt::Kind::kBarrier: {
        Event e;
        e.barrier = true;
        out.push_back(e);
        break;
      }
      case Stmt::Kind::kIf:
        if (s.cond.eval(env)) collect_events(s.body, env, exited, out);
        break;
      case Stmt::Kind::kExit:
        exited = true;
        return;
    }
  }
}

struct ThreadReplay {
  std::vector<Event> events;
  std::size_t pos = 0;
  std::uint64_t epoch = 0;
  std::uint64_t op_slot = 0;    // global accesses (coalescing lockstep id)
  std::uint64_t op_seq = 0;     // all memory ops (report `slot` field)
  std::uint64_t shared_slot = 0;  // shared accesses (bank lockstep id)
};

// Per-warp bank histogram: bank_hits[shared_slot][bank] = lanes touching it.
using BankHits = std::vector<std::array<std::uint16_t, gpusim::kWarpSize>>;

void replay_access(const Event& e, std::size_t t, ThreadReplay& tr,
                   gpusim::BlockSanitizer& san,
                   gpusim::WarpAccessRecorder& warp, BankHits& banks) {
  const auto addr = static_cast<std::size_t>(
      static_cast<std::uint64_t>(e.addr));  // negative wraps to huge: OOB
  if (e.space == Space::kGlobal) {
    // Mirror ThreadCtx: the warp recorder sees the access before the
    // bounds check (requests count suppressed accesses too).
    warp.record(tr.op_slot++, static_cast<std::uint64_t>(addr) * 4, 4);
    if (e.op == MemOp::kLoad)
      san.on_global_load(t, tr.epoch, addr, tr.op_seq++);
    else
      san.on_global_store(t, tr.epoch, addr, tr.op_seq++);
  } else {
    warp.record_shared(1);
    const bool ok = e.op == MemOp::kLoad
                        ? san.on_shared_load(t, tr.epoch, addr, tr.op_seq++)
                        : san.on_shared_store(t, tr.epoch, addr, tr.op_seq++);
    if (ok) {  // suppressed (OOB) accesses touch no bank
      if (banks.size() <= tr.shared_slot) banks.resize(tr.shared_slot + 1);
      ++banks[tr.shared_slot][addr % gpusim::kWarpSize];
    }
    ++tr.shared_slot;
  }
}

TraceResult trace(const KernelModel& m, std::size_t max_reports) {
  TraceResult res;
  const std::size_t T = m.threads_per_block;
  const std::size_t warps_per_block =
      (T + gpusim::kWarpSize - 1) / gpusim::kWarpSize;
  const auto env_size =
      std::max<std::size_t>(static_cast<std::size_t>(m.next_var), 2);

  for (std::size_t b = 0; b < m.blocks; ++b) {
    std::deque<gpusim::WarpAccessRecorder> warps;
    std::vector<BankHits> bank_hits(warps_per_block);
    std::vector<std::uint64_t> warp_max_slot(warps_per_block, 0);
    for (std::size_t w = 0; w < warps_per_block; ++w)
      warps.emplace_back(std::min(gpusim::kWarpSize, T - w * gpusim::kWarpSize));
    gpusim::BlockSanitizer san(m.name, b, T, m.shared_words, m.global_words,
                               max_reports);

    std::vector<ThreadReplay> threads(T);
    for (std::size_t t = 0; t < T; ++t) {
      std::vector<std::int64_t> env(env_size, 0);
      env[kVarBlock] = static_cast<std::int64_t>(b);
      env[kVarThread] = static_cast<std::int64_t>(t);
      bool exited = false;
      collect_events(m.stmts, env, exited, threads[t].events);
    }

    // Epoch-phased replay: each pass advances every thread to just past its
    // next barrier (or to completion), so sanitizer epochs are monotonic
    // per word, as in a synchronized launch.
    bool pending = true;
    while (pending) {
      pending = false;
      for (std::size_t t = 0; t < T; ++t) {
        ThreadReplay& tr = threads[t];
        while (tr.pos < tr.events.size()) {
          const Event& e = tr.events[tr.pos++];
          if (e.barrier) {
            ++tr.epoch;
            break;
          }
          replay_access(e, t, tr, san, warps[t / gpusim::kWarpSize],
                        bank_hits[t / gpusim::kWarpSize]);
        }
        if (tr.pos < tr.events.size()) pending = true;
      }
    }

    for (std::size_t t = 0; t < T; ++t) {
      san.on_thread_exit(t, threads[t].epoch);
      warp_max_slot[t / gpusim::kWarpSize] = std::max(
          warp_max_slot[t / gpusim::kWarpSize], threads[t].op_slot);
    }

    san.finalize();
    res.findings += san.total_findings();
    auto reports = san.take_reports();
    res.reports.insert(res.reports.end(),
                       std::make_move_iterator(reports.begin()),
                       std::make_move_iterator(reports.end()));
    for (std::size_t w = 0; w < warps_per_block; ++w) {
      warps[w].finalize();
      res.stats += warps[w].stats();
      res.warp_slots += warp_max_slot[w];
      for (const auto& hits : bank_hits[w])
        for (const std::uint16_t lanes : hits)
          res.bank_max_degree = std::max<std::size_t>(res.bank_max_degree,
                                                      lanes);
    }
  }
  res.stats.check_findings = res.findings;
  return res;
}

// Findings per obligation category, for the verdict assembly.
std::size_t count_category(const std::vector<gpusim::CheckReport>& reports,
                           std::initializer_list<gpusim::CheckKind> kinds) {
  std::size_t n = 0;
  for (const auto& r : reports)
    for (const gpusim::CheckKind k : kinds)
      if (r.kind == k) ++n;
  return n;
}

Obligation make_obligation(const char* name, bool affine_proven,
                           std::string affine_detail,
                           std::size_t trace_findings) {
  Obligation o;
  o.name = name;
  if (affine_proven && trace_findings == 0) {
    o.proven = true;
    o.method = ProofMethod::kAffine;
    o.detail = std::move(affine_detail);
  } else if (affine_proven) {
    // Should be impossible: the affine layer claimed a proof the exhaustive
    // trace refuted.  Trust the witness and surface the inconsistency.
    o.proven = false;
    o.method = ProofMethod::kExhaustive;
    o.detail = "affine proof contradicted by exhaustive trace (analyzer bug)";
  } else {
    o.proven = trace_findings == 0;
    o.method = ProofMethod::kExhaustive;
    o.detail = o.proven
                   ? "decided by exhaustive trace (no affine form applied)"
                   : std::to_string(trace_findings) + " witness(es) in trace";
  }
  return o;
}

}  // namespace

const char* proof_method_name(ProofMethod m) noexcept {
  return m == ProofMethod::kAffine ? "affine" : "exhaustive";
}

const Obligation* StaticAnalysis::obligation(std::string_view name) const {
  for (const Obligation& o : obligations)
    if (o.name == name) return &o;
  return nullptr;
}

std::string StaticAnalysis::summary() const {
  std::ostringstream os;
  std::size_t proven = 0;
  for (const Obligation& o : obligations) proven += o.proven ? 1 : 0;
  os << "kernel '" << kernel << "': "
     << (clean() ? "CLEAN" : "FINDINGS") << " (" << proven << "/"
     << obligations.size() << " obligations proven)\n";
  for (const Obligation& o : obligations)
    os << "  " << o.name << ": " << (o.proven ? "proven" : "REFUTED") << " ["
       << proof_method_name(o.method) << "] " << o.detail << "\n";
  os << "  coalescing: " << coalescing.global_transactions
     << " transactions / " << coalescing.warp_slots << " warp slots (tpa "
     << coalescing.transactions_per_access() << ", efficiency "
     << coalescing.efficiency() << ")\n";
  os << "  banks: " << banks.shared_accesses
     << " shared accesses, max degree " << banks.max_degree
     << (banks.conflict_free() ? " (conflict-free)" : " (CONFLICTS)") << "\n";
  for (const StaticReport& f : findings)
    os << "  !! " << f.finding.to_string() << "\n";
  return os.str();
}

StaticAnalysis analyze(const KernelModel& model,
                       std::size_t max_reports_per_block) {
  StaticAnalysis out;
  out.kernel = model.name;

  // --- affine layer -------------------------------------------------------
  std::vector<FlatAccess> flat;
  bool uniform = true;
  {
    std::vector<VarRange> box;
    std::uint64_t epoch = 0;
    uniform = flatten(model.stmts, box, /*in_loop=*/false, epoch, flat);
    if (!uniform) flat.clear();
  }

  bool shared_oob_proven = uniform;
  bool global_oob_proven = uniform;
  bool race_proven = uniform;
  bool uninit_proven = uniform;
  std::size_t shared_n = 0, global_n = 0, pairs_checked = 0, loads_n = 0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    const FlatAccess& a = flat[i];
    if (a.space == Space::kShared) {
      ++shared_n;
      shared_oob_proven =
          shared_oob_proven && prove_in_bounds(a, model, model.shared_words);
      if (a.op == MemOp::kLoad) {
        ++loads_n;
        uninit_proven =
            uninit_proven && prove_covered_by_own_store(a, i, flat);
      }
      for (std::size_t j = i; j < flat.size(); ++j) {
        const FlatAccess& b = flat[j];
        if (b.space != Space::kShared || b.epoch != a.epoch) continue;
        if (a.op == MemOp::kLoad && b.op == MemOp::kLoad) continue;
        ++pairs_checked;
        race_proven =
            race_proven && prove_disjoint_across_threads(a, b, model);
      }
    } else {
      ++global_n;
      global_oob_proven =
          global_oob_proven && prove_in_bounds(a, model, model.global_words);
    }
  }

  // --- exhaustive layer ---------------------------------------------------
  const TraceResult tr = trace(model, max_reports_per_block);
  out.findings.reserve(tr.reports.size());
  for (const auto& r : tr.reports)
    out.findings.push_back({r, ProofMethod::kExhaustive});

  out.coalescing.global_requests = tr.stats.global_requests;
  out.coalescing.global_transactions = tr.stats.global_transactions;
  out.coalescing.global_bytes = tr.stats.global_bytes;
  out.coalescing.warp_slots = tr.warp_slots;
  out.banks.shared_accesses = tr.stats.shared_accesses;
  out.banks.max_degree = tr.bank_max_degree;

  using CK = gpusim::CheckKind;
  out.obligations.push_back(make_obligation(
      "shared-oob", shared_oob_proven,
      std::to_string(shared_n) + " shared access statement(s) within [0, " +
          std::to_string(model.shared_words) + ") by interval bounds",
      count_category(tr.reports, {CK::kSharedOutOfBounds})));
  out.obligations.push_back(make_obligation(
      "global-oob", global_oob_proven,
      std::to_string(global_n) + " global access statement(s) within [0, " +
          std::to_string(model.global_words) + ") by interval bounds",
      count_category(tr.reports, {CK::kGlobalOutOfBounds})));
  out.obligations.push_back(make_obligation(
      "shared-race-freedom", race_proven,
      std::to_string(pairs_checked) +
          " same-epoch statement pair(s) thread-disjoint by stride/gcd",
      count_category(tr.reports, {CK::kSharedRaceRaw, CK::kSharedRaceWar,
                                  CK::kSharedRaceWaw})));
  out.obligations.push_back(make_obligation(
      "uninit-shared-read-freedom", uninit_proven,
      std::to_string(loads_n) +
          " shared load statement(s) covered by an earlier same-thread store",
      count_category(tr.reports, {CK::kUninitSharedRead})));
  out.obligations.push_back(make_obligation(
      "barrier-uniformity", uniform, "uniform control flow, static epochs",
      count_category(tr.reports, {CK::kBarrierDivergence})));
  return out;
}

StaticAnalysis analyze_descriptor_kernel(std::string_view algorithm,
                                         const core::GpuKernelConfig& cfg) {
  const std::size_t words =
      cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
  return analyze(model_descriptor_kernel(algorithm, cfg, words));
}

bool same_finding(const gpusim::CheckReport& a,
                  const gpusim::CheckReport& b) noexcept {
  return a.kind == b.kind && a.kernel == b.kernel && a.block == b.block &&
         a.thread == b.thread && a.other_thread == b.other_thread &&
         a.epoch == b.epoch && a.address == b.address && a.slot == b.slot;
}

}  // namespace bsrng::analysis
