// model.hpp — KernelModel: a data-free access program for one kernel launch.
//
// A KernelModel is the bridge between real kernel code and the static
// analyzer: the *memory behaviour* of a kernel — every shared/global
// load/store address as an affine expression (affine.hpp), loop structure
// with static bounds, barriers, and thread-dependent control flow (guards /
// early exits) — with all data computation erased.  Because every bsrng
// kernel's addresses are data-independent, the model captures the complete
// set of possible access interleavings of the launch, which is what makes
// the analyzer a decision procedure rather than a sampler.
//
// model_descriptor_kernel() derives the model of core/gpu_kernel_impl.hpp's
// run_kernel_generic for a given algorithm + GpuKernelConfig straight from
// the kernel_out_index / staging-layout equations; tests build models of the
// seeded-bug kernels by hand to cross-validate against the dynamic checker.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/affine.hpp"
#include "core/gpu_kernel.hpp"

namespace bsrng::analysis {

enum class Space : std::uint8_t { kShared, kGlobal };
enum class MemOp : std::uint8_t { kLoad, kStore };

// Affine condition on the launch symbols; guards model thread-dependent
// control flow (divergent branches, ragged per-thread loop trip counts).
struct Cond {
  enum class Cmp : std::uint8_t { kLt, kGe, kEq, kNe, kModEq };
  AffineExpr lhs;
  Cmp cmp = Cmp::kLt;
  std::int64_t rhs = 0;
  std::int64_t mod = 1;  // kModEq: lhs % mod == rhs (mod > 0)

  bool eval(std::span<const std::int64_t> env) const {
    const std::int64_t v = lhs.eval(env);
    switch (cmp) {
      case Cmp::kLt: return v < rhs;
      case Cmp::kGe: return v >= rhs;
      case Cmp::kEq: return v == rhs;
      case Cmp::kNe: return v != rhs;
      case Cmp::kModEq: return ((v % mod) + mod) % mod == rhs;
    }
    return false;
  }
};

struct Stmt {
  enum class Kind : std::uint8_t {
    kAccess,   // one shared/global load/store at an affine address
    kLoop,     // for (var = begin; var < end; var += step) body
    kBarrier,  // full-block barrier (advances the thread's epoch)
    kIf,       // execute body iff cond holds for this thread
    kExit,     // the thread returns from the kernel here
  };

  Kind kind = Kind::kAccess;
  // kAccess:
  Space space = Space::kGlobal;
  MemOp op = MemOp::kStore;
  AffineExpr addr;
  // kLoop:
  int var = -1;
  std::int64_t begin = 0, end = 0, step = 1;
  // kIf:
  Cond cond;
  // kLoop / kIf:
  std::vector<Stmt> body;

  static Stmt access(Space space, MemOp op, AffineExpr addr) {
    Stmt s;
    s.kind = Kind::kAccess;
    s.space = space;
    s.op = op;
    s.addr = std::move(addr);
    return s;
  }
  static Stmt shared_load(AffineExpr a) {
    return access(Space::kShared, MemOp::kLoad, std::move(a));
  }
  static Stmt shared_store(AffineExpr a) {
    return access(Space::kShared, MemOp::kStore, std::move(a));
  }
  static Stmt global_load(AffineExpr a) {
    return access(Space::kGlobal, MemOp::kLoad, std::move(a));
  }
  static Stmt global_store(AffineExpr a) {
    return access(Space::kGlobal, MemOp::kStore, std::move(a));
  }
  static Stmt loop(int var, std::int64_t begin, std::int64_t end,
                   std::vector<Stmt> body, std::int64_t step = 1) {
    Stmt s;
    s.kind = Kind::kLoop;
    s.var = var;
    s.begin = begin;
    s.end = end;
    s.step = step;
    s.body = std::move(body);
    return s;
  }
  static Stmt barrier() {
    Stmt s;
    s.kind = Kind::kBarrier;
    return s;
  }
  static Stmt guarded(Cond cond, std::vector<Stmt> body) {
    Stmt s;
    s.kind = Kind::kIf;
    s.cond = std::move(cond);
    s.body = std::move(body);
    return s;
  }
  static Stmt exit() {
    Stmt s;
    s.kind = Kind::kExit;
    return s;
  }
};

// One launch's access program.  Geometry is concrete (a launch has concrete
// geometry); addresses stay symbolic in block/thread/loop vars.
struct KernelModel {
  std::string name = "kernel";
  std::size_t blocks = 1;
  std::size_t threads_per_block = 1;
  std::size_t shared_words = 0;
  std::size_t global_words = 0;
  std::vector<Stmt> stmts;
  int next_var = kFirstLoopVar;  // loop-variable id allocator

  int fresh_var() { return next_var++; }
};

// The access model of run_kernel_generic (the one §4.5 kernel body every
// descriptor cipher instantiates) for this algorithm and geometry, derived
// from the same kernel_out_index / staging-layout equations the kernel
// executes.  `global_words` sizes the global bounds obligation (the device
// memory the launch would run against); tests/tools typically pass the
// launch's exact footprint blocks * threads_per_block * words_per_thread.
// Throws std::invalid_argument for the same geometry violations
// run_gpu_kernel rejects (unknown algorithm, zero dims, counter alignment).
KernelModel model_descriptor_kernel(std::string_view algorithm,
                                    const core::GpuKernelConfig& cfg,
                                    std::size_t global_words);

}  // namespace bsrng::analysis
