// lint.hpp — repo-wide determinism lint.
//
// BSRNG's reproducibility contract (ROADMAP north star: bit-exact streams
// for a given seed across backends and thread counts) dies quietly the day a
// nondeterministic source sneaks into generation code.  This lint scans the
// generation-critical trees (src/core, src/ciphers, src/bitslice, src/lfsr)
// for the classic offenders:
//
//   rand-call         libc rand()/srand()/random() — hidden global state
//   random-device     std::random_device — entropy that differs per run
//   wall-clock        time(...) / std::chrono::system_clock — time-seeded
//                     behaviour (monotonic steady_clock timing is fine and
//                     deliberately not flagged)
//   pointer-keyed     std::unordered_{map,set} keyed on a pointer type —
//                     iteration order follows allocation addresses (ASLR)
//
// Comments and string/char literals are stripped before matching (with
// newlines preserved so line numbers survive), and a finding can be
// acknowledged in place with `// bsrng-lint: allow(<rule>)` on the same
// line.  bsrng_staticcheck --lint drives this in CI.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bsrng::analysis {

struct LintFinding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string excerpt;  // the offending source line, trimmed

  std::string to_string() const;
};

// Replace comments and string/char literal *contents* with spaces, keeping
// every newline, so token matching cannot fire inside text and reported
// line numbers match the original. Handles //, /* */, "...", '...' (with
// escapes) and R"delim(...)delim" raw strings.  Exposed for tests.
std::string strip_comments_and_strings(std::string_view src);

// Lint one in-memory source buffer (`file` is used for report paths only).
std::vector<LintFinding> lint_source(std::string_view file,
                                     std::string_view source);

// Lint every .hpp/.cpp/.h/.cc file under `paths` (files or directories,
// walked in sorted order for stable output).  Findings are ordered by
// file then line.  Throws std::runtime_error for a path that does not
// exist.
std::vector<LintFinding> lint_paths(const std::vector<std::string>& paths);

// The generation-critical subtrees the determinism contract covers,
// relative to a repo root: src/core, src/ciphers, src/bitslice, src/lfsr,
// src/fault (fault schedules must be as deterministic as the streams they
// disturb).
std::vector<std::string> default_lint_roots(std::string_view repo_root);

}  // namespace bsrng::analysis
