// static_analyzer.hpp — static proofs over KernelModel access programs.
//
// Companion to the dynamic gpusim compute-sanitizer (gpusim/sanitizer.hpp):
// where the sanitizer shadows the accesses of one *execution*, the analyzer
// decides the same properties for *every* execution of a launch, because a
// KernelModel's addresses are data-independent affine forms.  Per launch it
// proves or refutes
//   (a) shared-memory RAW/WAR/WAW race freedom per barrier epoch,
//   (b) shared and global out-of-bounds freedom,
//   (c) uninitialised-shared-read freedom,
//   (d) barrier uniformity (no divergent arrival counts),
// and additionally *quantifies*
//   (e) per-warp global coalescing — predicted transactions, requests and
//       transactions-per-access under the memmodel 128-byte-segment rule,
//   (f) shared-memory bank-conflict degree (32 word-interleaved banks).
//
// Two proof layers, belt and braces:
//   * affine  — interval/stride-gcd reasoning on the access equations:
//     closed-form proofs quantified over all blocks, threads and loop
//     iterations (the GPUVerify-style thread-parametric argument);
//   * exhaustive — a data-free trace of the model through the *same*
//     BlockSanitizer / WarpAccessRecorder shadow logic the dynamic checker
//     uses.  Since the model is data-independent and the geometry finite,
//     the trace is a decision procedure, and its findings carry coordinates
//     (block/thread/word/epoch/op) that match the dynamic sanitizer's
//     reports bit for bit — in thread-sequential order for barrier-free
//     kernels (the sequential launch interleaving), and in barrier-
//     synchronized epoch phases for kernels with barriers.
// Refutations always come from the exhaustive layer (which produces exact
// witnesses); obligations record which layer proved them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/model.hpp"
#include "gpusim/sanitizer.hpp"

namespace bsrng::analysis {

enum class ProofMethod : std::uint8_t {
  kAffine,      // closed-form over the affine access equations
  kExhaustive,  // data-free trace of the full (finite) launch
};

const char* proof_method_name(ProofMethod m) noexcept;

// One refutation.  `finding` carries the same coordinate scheme as the
// dynamic checker's CheckReport, so static and dynamic verdicts diff
// directly (see same_finding).
struct StaticReport {
  gpusim::CheckReport finding;
  ProofMethod method = ProofMethod::kExhaustive;
};

// One proof obligation's verdict.
struct Obligation {
  std::string name;  // "shared-oob" | "global-oob" | "shared-race-freedom" |
                     // "uninit-shared-read-freedom" | "barrier-uniformity"
  bool proven = false;
  ProofMethod method = ProofMethod::kExhaustive;
  std::string detail;
};

// Predicted global-memory traffic under the gpusim memmodel rules: a warp's
// lockstep accesses cost one transaction per distinct 128-byte segment.
struct CoalescingSummary {
  std::uint64_t global_requests = 0;
  std::uint64_t global_transactions = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t warp_slots = 0;  // warp-wide lockstep access issues

  // Mean transactions per warp-wide access: 1.0 is a perfect burst, 32.0 a
  // fully scattered warp.
  double transactions_per_access() const {
    return warp_slots == 0 ? 0.0
                           : static_cast<double>(global_transactions) /
                                 static_cast<double>(warp_slots);
  }
  // memmodel's efficiency: minimum possible segments / predicted segments.
  double efficiency() const {
    if (global_transactions == 0) return 1.0;
    const std::uint64_t ideal =
        (global_bytes + gpusim::kSegmentBytes - 1) / gpusim::kSegmentBytes;
    return static_cast<double>(ideal) /
           static_cast<double>(global_transactions);
  }
  bool fully_coalesced() const {
    const std::uint64_t ideal =
        (global_bytes + gpusim::kSegmentBytes - 1) / gpusim::kSegmentBytes;
    return global_transactions == ideal;
  }
};

// Shared-memory bank pressure: banks are word-interleaved (bank = word index
// mod 32); degree is the worst-case number of lanes of one warp hitting the
// same bank in one lockstep shared access.
struct BankConflictSummary {
  std::uint64_t shared_accesses = 0;
  std::size_t max_degree = 0;  // 0 when the kernel has no shared traffic
  bool conflict_free() const { return max_degree <= 1; }
};

struct StaticAnalysis {
  std::string kernel;
  std::vector<StaticReport> findings;  // empty <=> all obligations proven
  std::vector<Obligation> obligations;
  CoalescingSummary coalescing;
  BankConflictSummary banks;

  bool clean() const { return findings.empty(); }
  const Obligation* obligation(std::string_view name) const;
  // Human-readable multi-line verdict block (used by bsrng_staticcheck).
  std::string summary() const;
};

// Analyze one launch model.  `max_reports_per_block` mirrors
// LaunchConfig::max_check_reports so stored report lists line up with a
// dynamic checked launch (all refutations are counted either way — a clean
// verdict never depends on the cap).
StaticAnalysis analyze(const KernelModel& model,
                       std::size_t max_reports_per_block = 64);

// Convenience: model_descriptor_kernel + analyze, with global_words set to
// the launch's exact footprint (so the bounds proof is against the tightest
// legal device allocation).
StaticAnalysis analyze_descriptor_kernel(std::string_view algorithm,
                                         const core::GpuKernelConfig& cfg);

// True when two reports name the same hazard at the same coordinates
// (kind, kernel, block, thread, other_thread, epoch, address, op slot) —
// the static/dynamic diff predicate.
bool same_finding(const gpusim::CheckReport& a,
                  const gpusim::CheckReport& b) noexcept;

}  // namespace bsrng::analysis
