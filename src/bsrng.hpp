// bsrng.hpp — the single-header public facade of the BSRNG library.
//
// Downstream users include this one header (cf. cuRAND's single host-API
// header, the baseline the paper benchmarks against) and get the whole
// public surface under the top-level `bsrng` namespace:
//
//   generation   Generator, make_generator / try_make_generator,
//                algorithm_exists, list_algorithms / find_algorithm,
//                AlgorithmInfo (with .partition_spec(seed))
//   addressing   StreamRef (tenant → stream → shard substream tree),
//                StreamRequest, StreamCheckpoint + serialize_checkpoint /
//                parse_checkpoint (O(1) resumable positions)
//   sharding     StreamEngine, StreamEngineConfig, PartitionSpec,
//                PartitionKind, multi_device_aes_ctr / multi_device_mickey
//   measurement  ThroughputReport, WorkerStat, measure_throughput
//   telemetry    telemetry::MetricsRegistry, the process-global
//                telemetry::metrics() registry, MetricsSnapshot JSON export
//   self-test    nist::fips140_2 FIPS 140-2 battery (the fast accept/reject
//                gate for generated streams)
//   serving      net::Server / net::Client / net::Session — the bsrngd
//                RNG-as-a-service layer (length-prefixed TCP protocol,
//                resumable per-tenant sessions, /metrics scraping)
//
// Error convention: make_generator and partition_spec throw
// std::invalid_argument for unknown algorithm names; try_make_generator
// returns nullptr and algorithm_exists/find_algorithm probe without
// throwing.  Nothing else in this surface throws for user input.
//
//   #include "bsrng.hpp"
//
//   auto gen = bsrng::make_generator("mickey-bs512", 42);
//   bsrng::StreamEngine engine({.workers = 4});
//   bsrng::telemetry::metrics().set_enabled(true);
#pragma once

#include "core/descriptor.hpp"
#include "core/generator.hpp"
#include "core/gpu_kernel.hpp"
#include "core/multi_device.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "core/throughput.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "nist/fips140.hpp"
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"
#include "telemetry/metrics.hpp"

namespace bsrng {

// Generation.
using core::Generator;
using core::make_generator;
using core::try_make_generator;
using core::algorithm_exists;
using core::AlgorithmInfo;
using core::list_algorithms;
using core::find_algorithm;
using core::gate_ops_per_step;

// Substream addressing: the canonical way to name a stream position.
// StreamRef{0,0,0} (the default) is the historical root stream, so
// StreamRequest{algo, seed} is a drop-in for the old (algo, seed) calls.
using stream::StreamRef;
using stream::derive_child;
using stream::StreamCheckpoint;
using stream::serialize_checkpoint;
using stream::parse_checkpoint;
using stream::checkpoint_digest;
using core::StreamRequest;

// Sharding.
using core::PartitionKind;
using core::PartitionSpec;
using core::partition_spec;
using core::StreamEngine;
using core::StreamEngineConfig;
using core::multi_device_aes_ctr;
using core::multi_device_mickey;
using core::multi_device_generate;
using core::MultiDeviceReport;

// Algorithm descriptors (the single source of truth behind the registry,
// StreamEngine sharding, and the gpusim kernels).
using core::AlgorithmDescriptor;
using core::algorithm_descriptors;
using core::find_descriptor;
using core::find_bitsliced;

// Virtual-GPU kernels: every bitsliced cipher on gpusim, byte-identical to
// the host stream (gpusim is a backend, not a demo).
using core::GpuKernelConfig;
using core::GpuKernelResult;
using core::run_gpu_kernel;
using core::kernel_word;
using core::kernel_out_index;
using core::kernel_stream_word;
using core::kernel_equivalent_algorithm;

// Measurement.
using core::ThroughputReport;
using core::ThroughputResult;
using core::WorkerStat;
using core::measure_throughput;

// Telemetry lives in bsrng::telemetry (metrics(), MetricsRegistry,
// MetricsSnapshot, Counter/Gauge/Histogram) — already a sub-namespace of
// bsrng, re-exported here by inclusion.

// Serving lives in bsrng::net (Server/ServerConfig/ServerStats, Client,
// Session, and the wire protocol) — the bsrngd daemon and bsrng_loadgen
// are thin CLIs over these.

}  // namespace bsrng
