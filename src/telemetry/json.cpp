#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace bsrng::telemetry {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double d) {
  if (!std::isfinite(d)) return "0";
  // Integral values print without an exponent or fraction — bench records
  // (bytes, workers) stay greppable and exact.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  return buf;
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: return json_number(num_);
    case Kind::kString: return '"' + json_escape(str_) + '"';
    case Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      return out + ']';
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += '"' + json_escape(k) + "\":" + v.dump();
      }
      return out + '}';
    }
  }
  return "null";
}

namespace {

// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  std::optional<JsonValue> parse() {
    auto v = value();
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<JsonValue> value() {
    skip_ws();
    if (pos_ >= s_.size()) return std::nullopt;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': {
        auto str = string();
        if (!str) return std::nullopt;
        return JsonValue(std::move(*str));
      }
      case 't': return literal("true") ? std::optional(JsonValue(true))
                                       : std::nullopt;
      case 'f': return literal("false") ? std::optional(JsonValue(false))
                                        : std::nullopt;
      case 'n': return literal("null") ? std::optional(JsonValue())
                                       : std::nullopt;
      default: return number();
    }
  }

  std::optional<JsonValue> number() {
    const char* begin = s_.data() + pos_;
    const char* end = s_.data() + s_.size();
    double d = 0;
    const auto [ptr, ec] = std::from_chars(begin, end, d);
    if (ec != std::errc{} || ptr == begin) return std::nullopt;
    pos_ += static_cast<std::size_t>(ptr - begin);
    return JsonValue(d);
  }

  std::optional<std::string> string() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = s_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return std::nullopt;
            }
            // Basic-multilingual-plane only (enough for our own output).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<JsonValue> array() {
    if (!consume('[')) return std::nullopt;
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    for (;;) {
      auto v = value();
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      if (consume(']')) return JsonValue(std::move(arr));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<JsonValue> object() {
    if (!consume('{')) return std::nullopt;
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    for (;;) {
      skip_ws();
      auto key = string();
      if (!key) return std::nullopt;
      if (!consume(':')) return std::nullopt;
      auto v = value();
      if (!v) return std::nullopt;
      obj.emplace(std::move(*key), std::move(*v));
      if (consume('}')) return JsonValue(std::move(obj));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace bsrng::telemetry
