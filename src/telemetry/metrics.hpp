// metrics.hpp — lock-cheap observability for the generation hot paths.
//
// Design constraints (DESIGN.md §9):
//   * Instrumentation is compiled in unconditionally; a *disabled* registry
//     must cost one relaxed atomic load + a predictable branch per site
//     (<2% on bench_stream_engine), so production code never needs an
//     #ifdef build flavor.
//   * Updates are wait-free relaxed atomics — no mutex on any hot path.
//     Metric *creation* (name lookup) takes a mutex once per site; callers
//     cache the returned reference (stable for the registry's lifetime).
//   * Snapshots are weakly consistent: concurrent updates may or may not be
//     included, but every counter value read is one that existed (no torn
//     reads).  That is the standard Prometheus-style contract.
//
// Metric kinds:
//   Counter   — monotonic u64 (bytes generated, tasks claimed, CAS retries).
//   Gauge     — last-written double (queue depth, most-recent Gbit/s).
//   Histogram — fixed upper-bound buckets + sum + count (task latencies,
//               per-job throughput).  Bounds are chosen at creation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bsrng::telemetry {

class MetricsRegistry;

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  void observe(double v) noexcept {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
    }
  }

  // Upper bounds; bucket i counts observations <= bounds[i], the final
  // bucket (index bounds.size()) is the +inf overflow.
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  // Default bounds for second-scale latencies: 1 us .. ~100 s, decade steps
  // with a 1-3 split (Prometheus-style).
  static std::span<const double> default_latency_bounds();

 private:
  friend class MetricsRegistry;
  Histogram(const std::atomic<bool>* enabled, std::span<const double> bounds)
      : enabled_(enabled), bounds_(bounds.begin(), bounds.end()),
        buckets_(bounds.size() + 1) {}
  const std::atomic<bool>* enabled_;
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric's state at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  // counter (exact up to 2^53) or gauge reading
  // Histogram only:
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
};

struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* find(std::string_view name) const;

  // {"metrics":[{"name":...,"kind":"counter","value":...}, ...]}
  std::string to_json() const;
  // Inverse of to_json; nullopt on malformed input.  Exact for counters,
  // counts and buckets; doubles round-trip through %.17g.
  static std::optional<MetricsSnapshot> from_json(std::string_view json);
};

// Named metric store.  get-or-create accessors return references that stay
// valid for the registry's lifetime; asking for an existing name with a
// different kind throws std::invalid_argument.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(
      std::string_view name,
      std::span<const double> bounds = Histogram::default_latency_bounds());

  // Zero every registered metric (metrics stay registered; references stay
  // valid).  Test/bench convenience, not a hot-path call.
  void reset();

  MetricsSnapshot snapshot() const;
  std::string to_json() const { return snapshot().to_json(); }

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(std::string_view name, MetricKind kind,
               std::span<const double> bounds = {});

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  // guards the map only, never the metric values
  std::vector<std::pair<std::string, Entry>> entries_;  // sorted by name
};

// Process-global registry used by the built-in instrumentation (StreamEngine,
// ThreadPool, multi_device, gpusim::Device).  Starts disabled unless the
// BSRNG_TELEMETRY environment variable is truthy (not ""/"0").
MetricsRegistry& metrics();

}  // namespace bsrng::telemetry
