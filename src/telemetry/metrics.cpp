#include "telemetry/metrics.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace bsrng::telemetry {

namespace {

constexpr std::array<double, 15> kLatencyBounds = {
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  1e2};

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::optional<MetricKind> kind_from_name(std::string_view s) {
  if (s == "counter") return MetricKind::kCounter;
  if (s == "gauge") return MetricKind::kGauge;
  if (s == "histogram") return MetricKind::kHistogram;
  return std::nullopt;
}

}  // namespace

std::span<const double> Histogram::default_latency_bounds() {
  return kLatencyBounds;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind,
                                               std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& e, std::string_view n) { return e.first < n; });
  if (it != entries_.end() && it->first == name) {
    if (it->second.kind != kind)
      throw std::invalid_argument("metric '" + std::string(name) +
                                  "' already registered as " +
                                  kind_name(it->second.kind));
    return it->second;
  }
  Entry e;
  e.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e.counter.reset(new Counter(&enabled_));
      break;
    case MetricKind::kGauge:
      e.gauge.reset(new Gauge(&enabled_));
      break;
    case MetricKind::kHistogram:
      e.histogram.reset(new Histogram(&enabled_, bounds));
      break;
  }
  return entries_.insert(it, {std::string(name), std::move(e)})->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  return *entry(name, MetricKind::kHistogram, bounds).histogram;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->v_.store(0, std::memory_order_relaxed);
        break;
      case MetricKind::kGauge:
        e.gauge->v_.store(0.0, std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram:
        for (auto& b : e.histogram->buckets_)
          b.store(0, std::memory_order_relaxed);
        e.histogram->count_.store(0, std::memory_order_relaxed);
        e.histogram->sum_.store(0.0, std::memory_order_relaxed);
        break;
    }
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        v.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        v.value = e.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *e.histogram;
        v.count = h.count();
        v.sum = h.sum();
        v.bounds = h.bounds();
        v.buckets.resize(v.bounds.size() + 1);
        for (std::size_t i = 0; i < v.buckets.size(); ++i)
          v.buckets[i] = h.bucket(i);
        break;
      }
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const auto& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

std::string MetricsSnapshot::to_json() const {
  JsonValue::Array arr;
  for (const auto& m : metrics) {
    JsonValue::Object o;
    o.emplace("name", JsonValue(m.name));
    o.emplace("kind", JsonValue(kind_name(m.kind)));
    if (m.kind == MetricKind::kHistogram) {
      o.emplace("count", JsonValue(m.count));
      o.emplace("sum", JsonValue(m.sum));
      JsonValue::Array bounds, buckets;
      for (const double b : m.bounds) bounds.emplace_back(b);
      for (const std::uint64_t c : m.buckets) buckets.emplace_back(c);
      o.emplace("bounds", JsonValue(std::move(bounds)));
      o.emplace("buckets", JsonValue(std::move(buckets)));
    } else {
      o.emplace("value", JsonValue(m.value));
    }
    arr.emplace_back(std::move(o));
  }
  JsonValue::Object root;
  root.emplace("metrics", JsonValue(std::move(arr)));
  return JsonValue(std::move(root)).dump();
}

std::optional<MetricsSnapshot> MetricsSnapshot::from_json(
    std::string_view json) {
  const auto doc = json_parse(json);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* arr = doc->find("metrics");
  if (arr == nullptr || !arr->is_array()) return std::nullopt;
  MetricsSnapshot snap;
  for (const JsonValue& item : arr->as_array()) {
    if (!item.is_object()) return std::nullopt;
    const JsonValue* name = item.find("name");
    const JsonValue* kind = item.find("kind");
    if (name == nullptr || !name->is_string() || kind == nullptr ||
        !kind->is_string())
      return std::nullopt;
    const auto k = kind_from_name(kind->as_string());
    if (!k) return std::nullopt;
    MetricValue v;
    v.name = name->as_string();
    v.kind = *k;
    if (*k == MetricKind::kHistogram) {
      const JsonValue* count = item.find("count");
      const JsonValue* sum = item.find("sum");
      const JsonValue* bounds = item.find("bounds");
      const JsonValue* buckets = item.find("buckets");
      if (count == nullptr || !count->is_number() || sum == nullptr ||
          !sum->is_number() || bounds == nullptr || !bounds->is_array() ||
          buckets == nullptr || !buckets->is_array())
        return std::nullopt;
      if (buckets->as_array().size() != bounds->as_array().size() + 1)
        return std::nullopt;
      v.count = static_cast<std::uint64_t>(count->as_number());
      v.sum = sum->as_number();
      for (const JsonValue& b : bounds->as_array()) {
        if (!b.is_number()) return std::nullopt;
        v.bounds.push_back(b.as_number());
      }
      for (const JsonValue& b : buckets->as_array()) {
        if (!b.is_number()) return std::nullopt;
        v.buckets.push_back(static_cast<std::uint64_t>(b.as_number()));
      }
    } else {
      const JsonValue* value = item.find("value");
      if (value == nullptr || !value->is_number()) return std::nullopt;
      v.value = value->as_number();
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;
}

MetricsRegistry& metrics() {
  static MetricsRegistry* reg = [] {
    auto* r = new MetricsRegistry;
    const char* env = std::getenv("BSRNG_TELEMETRY");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0'))
      r->set_enabled(true);
    return r;
  }();
  return *reg;
}

}  // namespace bsrng::telemetry
