// json.hpp — minimal JSON value model, writer helpers and parser.
//
// The telemetry layer emits machine-readable snapshots (MetricsRegistry::
// to_json) and the bench harness emits BENCH_*.json perf records; both need
// a dependency-free way to produce valid JSON, and the round-trip tests and
// the CI schema checker (tools/bench_json_check) need to read it back.  This
// is deliberately a small strict subset: UTF-8 pass-through, no comments, no
// trailing commas, numbers as double.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bsrng::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  // std::map keeps object keys ordered, which makes emitted JSON and
  // round-trip comparisons deterministic.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), num_(d) {}
  JsonValue(std::uint64_t u)
      : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  JsonValue(int i) : kind_(Kind::kNumber), num_(i) {}
  JsonValue(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : kind_(Kind::kString), str_(s) {}
  JsonValue(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  JsonValue(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool as_bool() const noexcept { return bool_; }
  double as_number() const noexcept { return num_; }
  const std::string& as_string() const noexcept { return str_; }
  const Array& as_array() const noexcept { return arr_; }
  const Object& as_object() const noexcept { return obj_; }
  Array& as_array() noexcept { return arr_; }
  Object& as_object() noexcept { return obj_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  // Serialize (compact, stable key order for objects).
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

// Escape `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

// Format a double the way JSON expects (shortest round-trippable form; no
// NaN/Inf — those serialize as 0 since JSON cannot represent them).
std::string json_number(double d);

// Parse a complete JSON document.  Returns nullopt on any syntax error or
// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace bsrng::telemetry
