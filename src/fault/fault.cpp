#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "core/keyschedule.hpp"

namespace bsrng::fault {
namespace {

// Clamp a probability to Q0.32.  rate >= 1 maps to 2^32, which fire()
// compares as "always" (a 32-bit draw is strictly below it).
std::uint64_t rate_to_q32(double rate) {
  if (!(rate > 0.0)) return 0;
  if (rate >= 1.0) return 1ull << 32;
  return static_cast<std::uint64_t>(std::ldexp(rate, 32));
}

}  // namespace

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool FaultPoint::fire() noexcept {
  if (!armed_->load(std::memory_order_relaxed)) return false;
  const std::uint64_t n = hits_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t q = rate_q32_.load(std::memory_order_relaxed);
  if (q == 0) return false;
  // Decision n of this point, O(1)-seeked off the pinned splitmix schedule.
  core::keyschedule::SeedStream s(salt_.load(std::memory_order_relaxed));
  s.skip_words(n);
  const bool hit = (s.next_word() >> 32) < q;
  if (hit) fired_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void FaultRegistry::apply_config_locked(FaultPoint& p) const {
  p.salt_.store(seed_ ^ fnv1a64(p.name_), std::memory_order_relaxed);
  double rate = default_rate_;
  for (const auto& [name, r] : overrides_)
    if (name == p.name_) rate = r;
  p.rate_q32_.store(rate_to_q32(rate), std::memory_order_relaxed);
}

void FaultRegistry::arm(std::uint64_t seed, double default_rate) {
  const std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  default_rate_ = default_rate;
  for (const auto& p : points_) apply_config_locked(*p);
  armed_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::arm_point(std::string_view name, double rate) {
  FaultPoint& p = point(name);
  const std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(overrides_,
                [&](const auto& kv) { return kv.first == p.name_; });
  overrides_.emplace_back(p.name_, rate);
  apply_config_locked(p);
}

void FaultRegistry::clear() {
  armed_.store(false, std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(mu_);
  overrides_.clear();
  default_rate_ = 0.0;
  for (const auto& p : points_) {
    apply_config_locked(*p);
    p->hits_.store(0, std::memory_order_relaxed);
    p->fired_.store(0, std::memory_order_relaxed);
  }
}

void FaultRegistry::reset_counts() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& p : points_) {
    p->hits_.store(0, std::memory_order_relaxed);
    p->fired_.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t FaultRegistry::seed() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

FaultPoint& FaultRegistry::point(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), name,
      [](const auto& p, std::string_view n) { return p->name_ < n; });
  if (it != points_.end() && (*it)->name_ == name) return **it;
  auto p = std::make_unique<FaultPoint>(std::string(name), &armed_);
  apply_config_locked(*p);
  return **points_.insert(it, std::move(p));
}

std::vector<FaultRegistry::PointStats> FaultRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointStats> out;
  out.reserve(points_.size());
  for (const auto& p : points_) {
    const std::uint64_t q = p->rate_q32_.load(std::memory_order_relaxed);
    out.push_back({p->name_, std::ldexp(static_cast<double>(q), -32),
                   p->hits(), p->fired()});
  }
  return out;
}

std::uint64_t FaultRegistry::total_fired() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& p : points_) total += p->fired();
  return total;
}

FaultRegistry& faults() {
  static FaultRegistry& reg = *[] {
    auto* r = new FaultRegistry();
    if (const char* env = std::getenv("BSRNG_FAULTS"); env && *env) {
      char* end = nullptr;
      const std::uint64_t seed = std::strtoull(env, &end, 0);
      double rate = 0.01;
      if (end && *end == ':') rate = std::strtod(end + 1, nullptr);
      r->arm(seed, rate);
    }
    return r;
  }();
  return reg;
}

}  // namespace bsrng::fault
