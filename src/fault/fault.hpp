// fault.hpp — deterministic, seeded fault injection.
//
// Every layer of the serving path compiles named injection points in
// permanently (`faults().point("net.server.read_reset")`), gated by the same
// relaxed-atomic-flag pattern as telemetry: while the registry is disarmed a
// FaultPoint::fire() call costs one relaxed load and a predictable branch,
// so the points can live on hot paths (pool task dispatch, recv/send shims)
// without a build-time switch.
//
// The fault *schedule* is a pure function of (registry seed, point name,
// per-point hit index) through the pinned splitmix64 keyschedule — never
// wall-clock time or rand(), which the determinism lint enforces over
// src/fault.  Hit n at point p fires iff
//
//     salt   = seed XOR fnv1a64(p)
//     draw   = SeedStream(salt).skip_words(n).next_word()
//     fires  = (draw >> 32) < rate_q32          // rate in Q0.32 fixed point
//
// so two processes armed with the same seed and rates observe the identical
// fire/no-fire decision at the identical hit index of every point,
// independent of thread interleaving at *other* points.  Hit indices only
// advance while armed: a disarm/re-arm cycle resumes the schedule where it
// left off, and reset_counts() rewinds it for exact replay.
//
// tests/fault/fault_test.cpp pins the decision function against a local
// re-derivation so a schedule change is a deliberate, visible break.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bsrng::fault {

// Thrown by FaultPoint::maybe_throw when the schedule fires.  Carries the
// point name so tests and retry layers can tell injected failures from real
// ones.
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(std::string point)
      : std::runtime_error("injected fault at " + point),
        point_(std::move(point)) {}
  const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

// One named injection point.  Obtained once (and cached, telemetry-style)
// via FaultRegistry::point(); fire() is then lock-free.
class FaultPoint {
 public:
  FaultPoint(std::string name, const std::atomic<bool>* armed)
      : name_(std::move(name)), armed_(armed) {}
  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  // True iff the deterministic schedule says this hit fails.  Disarmed cost:
  // one relaxed load + branch.
  bool fire() noexcept;

  // fire() that throws InjectedFault(name) instead of returning true.
  void maybe_throw() {
    if (fire()) throw InjectedFault(name_);
  }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  friend class FaultRegistry;

  std::string name_;
  const std::atomic<bool>* armed_;           // registry's master switch
  std::atomic<std::uint64_t> salt_{0};       // seed ^ fnv1a64(name)
  std::atomic<std::uint64_t> rate_q32_{0};   // fire probability in Q0.32
  std::atomic<std::uint64_t> hits_{0};       // armed arrivals (schedule pos)
  std::atomic<std::uint64_t> fired_{0};
};

class FaultRegistry {
 public:
  struct PointStats {
    std::string name;
    double rate = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
  };

  FaultRegistry() = default;
  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  // Arm every point (current and future) with `default_rate`, seeding the
  // schedule.  Per-point overrides installed via arm_point survive.
  void arm(std::uint64_t seed, double default_rate);
  // Override one point's rate (creates it if needed).  Usable before or
  // after arm(); the override persists across arm() calls until clear().
  void arm_point(std::string_view name, double rate);
  // Stop firing everywhere.  Hit counters (schedule positions) are kept so a
  // re-arm resumes the schedule; see reset_counts().
  void disarm() noexcept { armed_.store(false, std::memory_order_relaxed); }
  // Disarm, drop overrides, and zero every hit/fired counter.
  void clear();
  // Rewind every point's schedule position and fired count to zero.
  void reset_counts();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  std::uint64_t seed() const;

  // Get-or-create; the reference stays valid for the registry's lifetime so
  // callers cache it in a static handle struct (telemetry idiom).
  FaultPoint& point(std::string_view name);

  std::vector<PointStats> snapshot() const;
  // Total injected faults across all points (loadgen's `faults_injected`).
  std::uint64_t total_fired() const;

 private:
  void apply_config_locked(FaultPoint& p) const;

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::uint64_t seed_ = 0;                              // guarded by mu_
  double default_rate_ = 0.0;                           // guarded by mu_
  std::vector<std::pair<std::string, double>> overrides_;  // guarded by mu_
  // Name-sorted; unique_ptr keeps FaultPoint addresses stable.
  std::vector<std::unique_ptr<FaultPoint>> points_;     // guarded by mu_
};

// The process registry.  First use honors BSRNG_FAULTS="<seed>[:<rate>]"
// (rate defaults to 0.01) so daemons can be armed from the environment.
FaultRegistry& faults();

// The schedule's name hash, exposed so tests can re-derive decisions.
std::uint64_t fnv1a64(std::string_view s) noexcept;

}  // namespace bsrng::fault
