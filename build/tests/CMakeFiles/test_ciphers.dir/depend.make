# Empty dependencies file for test_ciphers.
# This may be replaced when dependencies are built.
