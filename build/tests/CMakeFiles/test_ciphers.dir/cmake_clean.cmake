file(REMOVE_RECURSE
  "CMakeFiles/test_ciphers.dir/ciphers/aes_test.cpp.o"
  "CMakeFiles/test_ciphers.dir/ciphers/aes_test.cpp.o.d"
  "CMakeFiles/test_ciphers.dir/ciphers/extension_ciphers_test.cpp.o"
  "CMakeFiles/test_ciphers.dir/ciphers/extension_ciphers_test.cpp.o.d"
  "CMakeFiles/test_ciphers.dir/ciphers/stream_ciphers_test.cpp.o"
  "CMakeFiles/test_ciphers.dir/ciphers/stream_ciphers_test.cpp.o.d"
  "test_ciphers"
  "test_ciphers.pdb"
  "test_ciphers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
