# Empty compiler generated dependencies file for test_nist.
# This may be replaced when dependencies are built.
