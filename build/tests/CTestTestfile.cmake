# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitslice[1]_include.cmake")
include("/root/repo/build/tests/test_lfsr[1]_include.cmake")
include("/root/repo/build/tests/test_crc[1]_include.cmake")
include("/root/repo/build/tests/test_ciphers[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_nist[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
