file(REMOVE_RECURSE
  "CMakeFiles/bench_crc_ablation.dir/bench_crc_ablation.cpp.o"
  "CMakeFiles/bench_crc_ablation.dir/bench_crc_ablation.cpp.o.d"
  "bench_crc_ablation"
  "bench_crc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
