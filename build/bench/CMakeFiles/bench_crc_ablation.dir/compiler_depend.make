# Empty compiler generated dependencies file for bench_crc_ablation.
# This may be replaced when dependencies are built.
