file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_normalized.dir/bench_fig11_normalized.cpp.o"
  "CMakeFiles/bench_fig11_normalized.dir/bench_fig11_normalized.cpp.o.d"
  "bench_fig11_normalized"
  "bench_fig11_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
