# Empty dependencies file for bench_fig11_normalized.
# This may be replaced when dependencies are built.
