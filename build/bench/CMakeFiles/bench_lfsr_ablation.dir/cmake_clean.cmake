file(REMOVE_RECURSE
  "CMakeFiles/bench_lfsr_ablation.dir/bench_lfsr_ablation.cpp.o"
  "CMakeFiles/bench_lfsr_ablation.dir/bench_lfsr_ablation.cpp.o.d"
  "bench_lfsr_ablation"
  "bench_lfsr_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lfsr_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
