# Empty compiler generated dependencies file for bench_lfsr_ablation.
# This may be replaced when dependencies are built.
