file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_ablation.dir/bench_memory_ablation.cpp.o"
  "CMakeFiles/bench_memory_ablation.dir/bench_memory_ablation.cpp.o.d"
  "bench_memory_ablation"
  "bench_memory_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
