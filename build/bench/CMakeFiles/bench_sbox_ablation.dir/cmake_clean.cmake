file(REMOVE_RECURSE
  "CMakeFiles/bench_sbox_ablation.dir/bench_sbox_ablation.cpp.o"
  "CMakeFiles/bench_sbox_ablation.dir/bench_sbox_ablation.cpp.o.d"
  "bench_sbox_ablation"
  "bench_sbox_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbox_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
