# Empty dependencies file for bench_sbox_ablation.
# This may be replaced when dependencies are built.
