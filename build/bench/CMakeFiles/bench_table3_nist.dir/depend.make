# Empty dependencies file for bench_table3_nist.
# This may be replaced when dependencies are built.
