file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nist.dir/bench_table3_nist.cpp.o"
  "CMakeFiles/bench_table3_nist.dir/bench_table3_nist.cpp.o.d"
  "bench_table3_nist"
  "bench_table3_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
