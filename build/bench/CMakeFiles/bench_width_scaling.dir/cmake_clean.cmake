file(REMOVE_RECURSE
  "CMakeFiles/bench_width_scaling.dir/bench_width_scaling.cpp.o"
  "CMakeFiles/bench_width_scaling.dir/bench_width_scaling.cpp.o.d"
  "bench_width_scaling"
  "bench_width_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_width_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
