# Empty compiler generated dependencies file for bench_width_scaling.
# This may be replaced when dependencies are built.
