file(REMOVE_RECURSE
  "CMakeFiles/bsrng_crc.dir/crc/crc32.cpp.o"
  "CMakeFiles/bsrng_crc.dir/crc/crc32.cpp.o.d"
  "CMakeFiles/bsrng_crc.dir/crc/crc8.cpp.o"
  "CMakeFiles/bsrng_crc.dir/crc/crc8.cpp.o.d"
  "libbsrng_crc.a"
  "libbsrng_crc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_crc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
