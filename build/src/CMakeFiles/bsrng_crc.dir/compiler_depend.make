# Empty compiler generated dependencies file for bsrng_crc.
# This may be replaced when dependencies are built.
