file(REMOVE_RECURSE
  "libbsrng_crc.a"
)
