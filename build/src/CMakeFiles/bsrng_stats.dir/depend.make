# Empty dependencies file for bsrng_stats.
# This may be replaced when dependencies are built.
