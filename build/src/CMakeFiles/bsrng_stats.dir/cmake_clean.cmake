file(REMOVE_RECURSE
  "CMakeFiles/bsrng_stats.dir/stats/berlekamp_massey.cpp.o"
  "CMakeFiles/bsrng_stats.dir/stats/berlekamp_massey.cpp.o.d"
  "CMakeFiles/bsrng_stats.dir/stats/fft.cpp.o"
  "CMakeFiles/bsrng_stats.dir/stats/fft.cpp.o.d"
  "CMakeFiles/bsrng_stats.dir/stats/gf2matrix.cpp.o"
  "CMakeFiles/bsrng_stats.dir/stats/gf2matrix.cpp.o.d"
  "CMakeFiles/bsrng_stats.dir/stats/special.cpp.o"
  "CMakeFiles/bsrng_stats.dir/stats/special.cpp.o.d"
  "libbsrng_stats.a"
  "libbsrng_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
