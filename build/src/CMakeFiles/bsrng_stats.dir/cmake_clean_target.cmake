file(REMOVE_RECURSE
  "libbsrng_stats.a"
)
