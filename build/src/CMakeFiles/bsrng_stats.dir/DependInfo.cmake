
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/berlekamp_massey.cpp" "src/CMakeFiles/bsrng_stats.dir/stats/berlekamp_massey.cpp.o" "gcc" "src/CMakeFiles/bsrng_stats.dir/stats/berlekamp_massey.cpp.o.d"
  "/root/repo/src/stats/fft.cpp" "src/CMakeFiles/bsrng_stats.dir/stats/fft.cpp.o" "gcc" "src/CMakeFiles/bsrng_stats.dir/stats/fft.cpp.o.d"
  "/root/repo/src/stats/gf2matrix.cpp" "src/CMakeFiles/bsrng_stats.dir/stats/gf2matrix.cpp.o" "gcc" "src/CMakeFiles/bsrng_stats.dir/stats/gf2matrix.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/CMakeFiles/bsrng_stats.dir/stats/special.cpp.o" "gcc" "src/CMakeFiles/bsrng_stats.dir/stats/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
