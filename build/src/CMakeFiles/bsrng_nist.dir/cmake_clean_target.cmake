file(REMOVE_RECURSE
  "libbsrng_nist.a"
)
