file(REMOVE_RECURSE
  "CMakeFiles/bsrng_nist.dir/nist/complexity.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/complexity.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/entropy.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/entropy.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/excursions.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/excursions.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/fips140.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/fips140.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/frequency.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/frequency.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/rank.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/rank.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/runs.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/runs.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/spectral.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/spectral.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/suite.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/suite.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/templates.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/templates.cpp.o.d"
  "CMakeFiles/bsrng_nist.dir/nist/universal.cpp.o"
  "CMakeFiles/bsrng_nist.dir/nist/universal.cpp.o.d"
  "libbsrng_nist.a"
  "libbsrng_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
