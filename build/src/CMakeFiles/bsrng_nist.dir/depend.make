# Empty dependencies file for bsrng_nist.
# This may be replaced when dependencies are built.
