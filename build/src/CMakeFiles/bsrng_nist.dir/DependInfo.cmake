
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nist/complexity.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/complexity.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/complexity.cpp.o.d"
  "/root/repo/src/nist/entropy.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/entropy.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/entropy.cpp.o.d"
  "/root/repo/src/nist/excursions.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/excursions.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/excursions.cpp.o.d"
  "/root/repo/src/nist/fips140.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/fips140.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/fips140.cpp.o.d"
  "/root/repo/src/nist/frequency.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/frequency.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/frequency.cpp.o.d"
  "/root/repo/src/nist/rank.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/rank.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/rank.cpp.o.d"
  "/root/repo/src/nist/runs.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/runs.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/runs.cpp.o.d"
  "/root/repo/src/nist/spectral.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/spectral.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/spectral.cpp.o.d"
  "/root/repo/src/nist/suite.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/suite.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/suite.cpp.o.d"
  "/root/repo/src/nist/templates.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/templates.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/templates.cpp.o.d"
  "/root/repo/src/nist/universal.cpp" "src/CMakeFiles/bsrng_nist.dir/nist/universal.cpp.o" "gcc" "src/CMakeFiles/bsrng_nist.dir/nist/universal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
