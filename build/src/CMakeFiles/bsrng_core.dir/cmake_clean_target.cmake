file(REMOVE_RECURSE
  "libbsrng_core.a"
)
