file(REMOVE_RECURSE
  "CMakeFiles/bsrng_core.dir/core/generator.cpp.o"
  "CMakeFiles/bsrng_core.dir/core/generator.cpp.o.d"
  "CMakeFiles/bsrng_core.dir/core/gpu_kernel.cpp.o"
  "CMakeFiles/bsrng_core.dir/core/gpu_kernel.cpp.o.d"
  "CMakeFiles/bsrng_core.dir/core/multi_device.cpp.o"
  "CMakeFiles/bsrng_core.dir/core/multi_device.cpp.o.d"
  "CMakeFiles/bsrng_core.dir/core/registry.cpp.o"
  "CMakeFiles/bsrng_core.dir/core/registry.cpp.o.d"
  "CMakeFiles/bsrng_core.dir/core/throughput.cpp.o"
  "CMakeFiles/bsrng_core.dir/core/throughput.cpp.o.d"
  "libbsrng_core.a"
  "libbsrng_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
