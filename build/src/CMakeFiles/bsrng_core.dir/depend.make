# Empty dependencies file for bsrng_core.
# This may be replaced when dependencies are built.
