# Empty compiler generated dependencies file for bsrng_core.
# This may be replaced when dependencies are built.
