
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/generator.cpp" "src/CMakeFiles/bsrng_core.dir/core/generator.cpp.o" "gcc" "src/CMakeFiles/bsrng_core.dir/core/generator.cpp.o.d"
  "/root/repo/src/core/gpu_kernel.cpp" "src/CMakeFiles/bsrng_core.dir/core/gpu_kernel.cpp.o" "gcc" "src/CMakeFiles/bsrng_core.dir/core/gpu_kernel.cpp.o.d"
  "/root/repo/src/core/multi_device.cpp" "src/CMakeFiles/bsrng_core.dir/core/multi_device.cpp.o" "gcc" "src/CMakeFiles/bsrng_core.dir/core/multi_device.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/bsrng_core.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/bsrng_core.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/throughput.cpp" "src/CMakeFiles/bsrng_core.dir/core/throughput.cpp.o" "gcc" "src/CMakeFiles/bsrng_core.dir/core/throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_ciphers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_gpusim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
