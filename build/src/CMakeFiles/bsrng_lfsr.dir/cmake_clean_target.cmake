file(REMOVE_RECURSE
  "libbsrng_lfsr.a"
)
