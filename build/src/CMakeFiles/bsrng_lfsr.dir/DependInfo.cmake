
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lfsr/bitsliced_lfsr.cpp" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/bitsliced_lfsr.cpp.o" "gcc" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/bitsliced_lfsr.cpp.o.d"
  "/root/repo/src/lfsr/jump.cpp" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/jump.cpp.o" "gcc" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/jump.cpp.o.d"
  "/root/repo/src/lfsr/polynomial.cpp" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/polynomial.cpp.o" "gcc" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/polynomial.cpp.o.d"
  "/root/repo/src/lfsr/scalar_lfsr.cpp" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/scalar_lfsr.cpp.o" "gcc" "src/CMakeFiles/bsrng_lfsr.dir/lfsr/scalar_lfsr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
