file(REMOVE_RECURSE
  "CMakeFiles/bsrng_lfsr.dir/lfsr/bitsliced_lfsr.cpp.o"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/bitsliced_lfsr.cpp.o.d"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/jump.cpp.o"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/jump.cpp.o.d"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/polynomial.cpp.o"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/polynomial.cpp.o.d"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/scalar_lfsr.cpp.o"
  "CMakeFiles/bsrng_lfsr.dir/lfsr/scalar_lfsr.cpp.o.d"
  "libbsrng_lfsr.a"
  "libbsrng_lfsr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_lfsr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
