# Empty compiler generated dependencies file for bsrng_lfsr.
# This may be replaced when dependencies are built.
