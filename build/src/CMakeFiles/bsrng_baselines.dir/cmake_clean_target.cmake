file(REMOVE_RECURSE
  "libbsrng_baselines.a"
)
