file(REMOVE_RECURSE
  "CMakeFiles/bsrng_baselines.dir/baselines/middle_square.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/middle_square.cpp.o.d"
  "CMakeFiles/bsrng_baselines.dir/baselines/minstd.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/minstd.cpp.o.d"
  "CMakeFiles/bsrng_baselines.dir/baselines/modern.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/modern.cpp.o.d"
  "CMakeFiles/bsrng_baselines.dir/baselines/mt19937.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/mt19937.cpp.o.d"
  "CMakeFiles/bsrng_baselines.dir/baselines/philox.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/philox.cpp.o.d"
  "CMakeFiles/bsrng_baselines.dir/baselines/xorshift.cpp.o"
  "CMakeFiles/bsrng_baselines.dir/baselines/xorshift.cpp.o.d"
  "libbsrng_baselines.a"
  "libbsrng_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
