
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/middle_square.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/middle_square.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/middle_square.cpp.o.d"
  "/root/repo/src/baselines/minstd.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/minstd.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/minstd.cpp.o.d"
  "/root/repo/src/baselines/modern.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/modern.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/modern.cpp.o.d"
  "/root/repo/src/baselines/mt19937.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/mt19937.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/mt19937.cpp.o.d"
  "/root/repo/src/baselines/philox.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/philox.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/philox.cpp.o.d"
  "/root/repo/src/baselines/xorshift.cpp" "src/CMakeFiles/bsrng_baselines.dir/baselines/xorshift.cpp.o" "gcc" "src/CMakeFiles/bsrng_baselines.dir/baselines/xorshift.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
