# Empty dependencies file for bsrng_baselines.
# This may be replaced when dependencies are built.
