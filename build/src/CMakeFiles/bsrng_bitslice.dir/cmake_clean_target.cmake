file(REMOVE_RECURSE
  "libbsrng_bitslice.a"
)
