file(REMOVE_RECURSE
  "CMakeFiles/bsrng_bitslice.dir/bitslice/bitbuf.cpp.o"
  "CMakeFiles/bsrng_bitslice.dir/bitslice/bitbuf.cpp.o.d"
  "CMakeFiles/bsrng_bitslice.dir/bitslice/transpose.cpp.o"
  "CMakeFiles/bsrng_bitslice.dir/bitslice/transpose.cpp.o.d"
  "libbsrng_bitslice.a"
  "libbsrng_bitslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_bitslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
