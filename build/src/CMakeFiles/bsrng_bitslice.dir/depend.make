# Empty dependencies file for bsrng_bitslice.
# This may be replaced when dependencies are built.
