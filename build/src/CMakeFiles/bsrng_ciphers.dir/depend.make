# Empty dependencies file for bsrng_ciphers.
# This may be replaced when dependencies are built.
