
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ciphers/a51_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/a51_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/a51_bs.cpp.o.d"
  "/root/repo/src/ciphers/a51_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/a51_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/a51_ref.cpp.o.d"
  "/root/repo/src/ciphers/aes_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/aes_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/aes_bs.cpp.o.d"
  "/root/repo/src/ciphers/aes_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/aes_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/aes_ref.cpp.o.d"
  "/root/repo/src/ciphers/chacha_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_bs.cpp.o.d"
  "/root/repo/src/ciphers/chacha_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_ref.cpp.o.d"
  "/root/repo/src/ciphers/grain_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/grain_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/grain_bs.cpp.o.d"
  "/root/repo/src/ciphers/grain_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/grain_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/grain_ref.cpp.o.d"
  "/root/repo/src/ciphers/mickey_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_bs.cpp.o.d"
  "/root/repo/src/ciphers/mickey_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_ref.cpp.o.d"
  "/root/repo/src/ciphers/trivium_bs.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_bs.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_bs.cpp.o.d"
  "/root/repo/src/ciphers/trivium_ref.cpp" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_ref.cpp.o" "gcc" "src/CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_ref.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_lfsr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
