file(REMOVE_RECURSE
  "CMakeFiles/bsrng_ciphers.dir/ciphers/a51_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/a51_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/a51_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/a51_ref.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/aes_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/aes_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/aes_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/aes_ref.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/chacha_ref.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/grain_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/grain_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/grain_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/grain_ref.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/mickey_ref.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_bs.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_bs.cpp.o.d"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_ref.cpp.o"
  "CMakeFiles/bsrng_ciphers.dir/ciphers/trivium_ref.cpp.o.d"
  "libbsrng_ciphers.a"
  "libbsrng_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
