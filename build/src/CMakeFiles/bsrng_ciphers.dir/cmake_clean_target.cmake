file(REMOVE_RECURSE
  "libbsrng_ciphers.a"
)
