file(REMOVE_RECURSE
  "libbsrng_gpusim.a"
)
