file(REMOVE_RECURSE
  "CMakeFiles/bsrng_gpusim.dir/gpusim/catalog.cpp.o"
  "CMakeFiles/bsrng_gpusim.dir/gpusim/catalog.cpp.o.d"
  "CMakeFiles/bsrng_gpusim.dir/gpusim/device.cpp.o"
  "CMakeFiles/bsrng_gpusim.dir/gpusim/device.cpp.o.d"
  "CMakeFiles/bsrng_gpusim.dir/gpusim/memmodel.cpp.o"
  "CMakeFiles/bsrng_gpusim.dir/gpusim/memmodel.cpp.o.d"
  "libbsrng_gpusim.a"
  "libbsrng_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
