# Empty dependencies file for bsrng_gpusim.
# This may be replaced when dependencies are built.
