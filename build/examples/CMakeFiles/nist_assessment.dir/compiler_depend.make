# Empty compiler generated dependencies file for nist_assessment.
# This may be replaced when dependencies are built.
