file(REMOVE_RECURSE
  "CMakeFiles/nist_assessment.dir/nist_assessment.cpp.o"
  "CMakeFiles/nist_assessment.dir/nist_assessment.cpp.o.d"
  "nist_assessment"
  "nist_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nist_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
