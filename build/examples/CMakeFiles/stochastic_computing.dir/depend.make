# Empty dependencies file for stochastic_computing.
# This may be replaced when dependencies are built.
