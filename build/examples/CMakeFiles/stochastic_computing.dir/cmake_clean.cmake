file(REMOVE_RECURSE
  "CMakeFiles/stochastic_computing.dir/stochastic_computing.cpp.o"
  "CMakeFiles/stochastic_computing.dir/stochastic_computing.cpp.o.d"
  "stochastic_computing"
  "stochastic_computing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stochastic_computing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
