# Empty dependencies file for bsrng_cli.
# This may be replaced when dependencies are built.
