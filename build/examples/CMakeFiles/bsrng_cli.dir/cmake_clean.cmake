file(REMOVE_RECURSE
  "CMakeFiles/bsrng_cli.dir/bsrng_cli.cpp.o"
  "CMakeFiles/bsrng_cli.dir/bsrng_cli.cpp.o.d"
  "bsrng_cli"
  "bsrng_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsrng_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
