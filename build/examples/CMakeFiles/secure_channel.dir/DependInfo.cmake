
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_channel.cpp" "examples/CMakeFiles/secure_channel.dir/secure_channel.cpp.o" "gcc" "examples/CMakeFiles/secure_channel.dir/secure_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bsrng_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_crc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_ciphers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_lfsr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_nist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_bitslice.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsrng_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
