# Empty compiler generated dependencies file for crc_checker.
# This may be replaced when dependencies are built.
