file(REMOVE_RECURSE
  "CMakeFiles/crc_checker.dir/crc_checker.cpp.o"
  "CMakeFiles/crc_checker.dir/crc_checker.cpp.o.d"
  "crc_checker"
  "crc_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crc_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
