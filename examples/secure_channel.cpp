// secure_channel — the paper's §5.4 two-way communication scenario:
// "the same output sequence of random bits could be generated identically
// in a single GPU sequentially ... handy in two-way communication where the
// sequence should be reconstructed at the receiver."
//
// The sender encrypts with a keystream produced by FOUR parallel devices;
// the receiver, owning only one device, regenerates the identical keystream
// sequentially and decrypts.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/multi_device.hpp"

int main() {
  const std::string message =
      "BSRNG: bitsliced PRNGs make one machine feel like a datacenter.";
  std::vector<std::uint8_t> plaintext(message.begin(), message.end());

  const std::vector<std::uint8_t> key(16, 0x5C);
  const std::vector<std::uint8_t> nonce{0x5c, 0x3a, 0xff, 0x01, 0x02, 0x03,
                                        0x04, 0x05, 0x06, 0x07, 0x08, 0x09};

  // Sender: 4 "devices" (threads) generate the keystream in parallel.
  std::vector<std::uint8_t> ks_sender(plaintext.size());
  const auto rep =
      bsrng::core::multi_device_aes_ctr(key, nonce, 4, ks_sender);
  std::printf("sender: keystream from %zu devices (modeled speedup %.2fx)\n",
              rep.workers, rep.modeled_speedup());

  std::vector<std::uint8_t> ciphertext(plaintext.size());
  for (std::size_t i = 0; i < plaintext.size(); ++i)
    ciphertext[i] = plaintext[i] ^ ks_sender[i];
  std::printf("wire:   ");
  for (std::size_t i = 0; i < 24; ++i) std::printf("%02x", ciphertext[i]);
  std::printf("...\n");

  // Receiver: one device regenerates the identical keystream sequentially.
  std::vector<std::uint8_t> ks_receiver(plaintext.size());
  bsrng::core::multi_device_aes_ctr(key, nonce, 1, ks_receiver,
                                    /*parallel=*/false);
  if (ks_receiver != ks_sender) {
    std::printf("FATAL: keystreams diverged — §5.4 property violated\n");
    return 1;
  }

  std::vector<std::uint8_t> decrypted(ciphertext.size());
  for (std::size_t i = 0; i < ciphertext.size(); ++i)
    decrypted[i] = ciphertext[i] ^ ks_receiver[i];
  std::printf("receiver decrypted: %s\n",
              std::string(decrypted.begin(), decrypted.end()).c_str());
  std::printf("keystream reconstruction: identical across device counts OK\n");

  // The same property for the MICKEY bitsliced stream.
  std::vector<std::uint8_t> m2(4096), m3(4096);
  bsrng::core::multi_device_mickey(7, 2, m2);
  bsrng::core::multi_device_mickey(7, 2, m3, /*parallel=*/false);
  std::printf("mickey multi-device determinism: %s\n",
              m2 == m3 ? "OK" : "FAILED");
  return m2 == m3 ? 0 : 1;
}
