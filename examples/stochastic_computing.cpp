// stochastic_computing — the paper's other §1 motivation: "stochastic
// computing" consumes enormous volumes of random bits, encoding numbers as
// bit-stream probabilities.  Multiplication of unipolar stochastic numbers
// is a single AND gate per bit — and with bitsliced generators, 512 ANDs
// happen per machine word.
//
// Demonstrates: encode x and y as Bernoulli streams driven by BSRNG
// keystreams, multiply with AND, scale addition with a MUX, and compare the
// decoded results against exact arithmetic.
#include <cmath>
#include <cstdio>

#include "bitslice/slice.hpp"
#include "core/registry.hpp"

namespace bs = bsrng::bitslice;

namespace {

// Encode probability p as a Bernoulli bit per position, using 16 random
// bits per decision (compare against a threshold).
class StochasticEncoder {
 public:
  explicit StochasticEncoder(const char* algo, std::uint64_t seed)
      : gen_(bsrng::core::make_generator(algo, seed)) {}

  bool sample(double p) {
    std::uint8_t b[2];
    gen_->fill(b);
    const auto r = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
    return r < static_cast<std::uint16_t>(p * 65536.0);
  }

 private:
  std::unique_ptr<bsrng::core::Generator> gen_;
};

}  // namespace

int main() {
  const double x = 0.65, y = 0.35, z = 0.80;
  const std::size_t n = 200000;

  StochasticEncoder ex("trivium-bs512", 1), ey("grain-bs512", 2),
      ez("mickey-bs512", 3), esel("aes-ctr-bs64", 4);

  std::size_t ones_mul = 0, ones_add = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const bool bx = ex.sample(x), by = ey.sample(y), bz = ez.sample(z);
    // Unipolar multiply: AND.
    ones_mul += bx && by;
    // Scaled add (x + z) / 2: MUX with a fair selector.
    ones_add += esel.sample(0.5) ? bx : bz;
  }

  const double mul = static_cast<double>(ones_mul) / static_cast<double>(n);
  const double add = static_cast<double>(ones_add) / static_cast<double>(n);
  std::printf("stochastic computing with BSRNG streams (%zu-bit streams)\n",
              n);
  std::printf("x*y       : exact %.4f   stochastic %.4f   |err| %.4f\n",
              x * y, mul, std::abs(mul - x * y));
  std::printf("(x+z)/2   : exact %.4f   stochastic %.4f   |err| %.4f\n",
              (x + z) / 2, add, std::abs(add - (x + z) / 2));

  const bool ok = std::abs(mul - x * y) < 0.01 &&
                  std::abs(add - (x + z) / 2) < 0.01;
  std::printf("%s (tolerance 0.01 at n=%zu; error ~ 1/sqrt(n))\n",
              ok ? "OK" : "FAILED", n);
  return ok ? 0 : 1;
}
