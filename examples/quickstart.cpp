// quickstart — the 60-second tour of the BSRNG public API.
//
//   $ ./quickstart [algorithm] [seed]
//
// Creates a generator by name (default: the paper's flagship, bitsliced
// MICKEY 2.0 at the host's widest lane count), draws some values, and
// measures bulk throughput against the cuRAND-style baseline.
#include <cstdio>
#include <cstdlib>

#include "core/registry.hpp"
#include "core/throughput.hpp"

int main(int argc, char** argv) {
  const char* algo = argc > 1 ? argv[1] : "mickey-bs512";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;

  auto gen = bsrng::core::make_generator(algo, seed);
  std::printf("generator: %s (%zu parallel lanes), seed %llu\n",
              std::string(gen->name()).c_str(), gen->lanes(),
              static_cast<unsigned long long>(seed));

  // Raw bytes.
  std::uint8_t bytes[32];
  gen->fill(bytes);
  std::printf("bytes:     ");
  for (const auto b : bytes) std::printf("%02x", b);
  std::printf("\n");

  // Typed draws.
  std::printf("u64:       %016llx\n",
              static_cast<unsigned long long>(gen->next_u64()));
  std::printf("doubles:   ");
  for (int i = 0; i < 4; ++i) std::printf("%.6f ", gen->next_double());
  std::printf("\n");

  // Bulk throughput, head-to-head with the cuRAND-default algorithm.
  auto baseline = bsrng::core::make_generator("mt19937", seed);
  const auto ours = bsrng::core::measure_throughput(*gen, 64ull << 20);
  const auto ref = bsrng::core::measure_throughput(*baseline, 64ull << 20);
  std::printf("throughput: %-14s %7.2f Gbit/s\n",
              std::string(gen->name()).c_str(), ours.gbps());
  std::printf("            %-14s %7.2f Gbit/s (conventional baseline)\n",
              "mt19937", ref.gbps());
  std::printf("speedup:    %.2fx\n", ours.gbps() / ref.gbps());

  std::printf("\nAvailable algorithms:\n");
  for (const auto& a : bsrng::core::list_algorithms())
    std::printf("  %-16s %-10s lanes=%-4zu%s\n", a.name.c_str(),
                a.family.c_str(), a.lanes,
                a.cryptographic ? "  [CSPRNG]" : "");
  return 0;
}
