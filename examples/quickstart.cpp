// quickstart — the 60-second tour of the BSRNG public API.
//
//   $ ./quickstart [algorithm] [seed]
//
// Creates a generator by name (default: the paper's flagship, bitsliced
// MICKEY 2.0 at the host's widest lane count), draws some values, measures
// bulk throughput against the cuRAND-style baseline, and dumps the
// telemetry the run produced.  Everything here comes from the single
// umbrella header.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bsrng.hpp"

int main(int argc, char** argv) {
  const char* algo = argc > 1 ? argv[1] : "mickey-bs512";
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 42;

  auto gen = bsrng::try_make_generator(algo, seed);
  if (!gen) {
    std::fprintf(stderr, "unknown algorithm: %s (try one of the names "
                 "below)\n", algo);
    for (const auto& a : bsrng::list_algorithms())
      std::fprintf(stderr, "  %s\n", a.name.c_str());
    return 2;
  }
  std::printf("generator: %s (%zu parallel lanes), seed %llu\n",
              std::string(gen->name()).c_str(), gen->lanes(),
              static_cast<unsigned long long>(seed));

  // Raw bytes.
  std::uint8_t bytes[32];
  gen->fill(bytes);
  std::printf("bytes:     ");
  for (const auto b : bytes) std::printf("%02x", b);
  std::printf("\n");

  // Typed draws.
  std::printf("u64:       %016llx\n",
              static_cast<unsigned long long>(gen->next_u64()));
  std::printf("doubles:   ");
  for (int i = 0; i < 4; ++i) std::printf("%.6f ", gen->next_double());
  std::printf("\n");

  // Bulk throughput, head-to-head with the cuRAND-default algorithm —
  // generated through the StreamEngine with telemetry on, so the metrics
  // dump below shows what the engine recorded.
  bsrng::telemetry::metrics().set_enabled(true);
  bsrng::StreamEngine engine({.workers = 4});
  std::vector<std::uint8_t> buf(64u << 20);
  const auto ours = engine.generate(bsrng::StreamRequest{algo, seed}, buf);
  const auto ref = engine.generate(bsrng::StreamRequest{"mt19937", seed}, buf);
  std::printf("throughput: %-14s %7.2f Gbit/s (4 workers)\n", algo,
              ours.gbps());
  std::printf("            %-14s %7.2f Gbit/s (conventional baseline)\n",
              "mt19937", ref.gbps());
  std::printf("speedup:    %.2fx\n", ours.gbps() / ref.gbps());

  std::printf("\nAvailable algorithms:\n");
  for (const auto& a : bsrng::list_algorithms())
    std::printf("  %-16s %-10s lanes=%-4zu%s\n", a.name.c_str(),
                a.family.c_str(), a.lanes,
                a.cryptographic ? "  [CSPRNG]" : "");

  std::printf("\nTelemetry (JSON snapshot of this run):\n%s\n",
              bsrng::telemetry::metrics().to_json().c_str());
  return 0;
}
