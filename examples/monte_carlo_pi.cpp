// monte_carlo_pi — the paper's opening motivation: "High-performance random
// number generation ... is a vital necessity in ... Monte Carlo simulation"
// (§1).  Estimates pi by dart-throwing with several of the library's
// generators and reports error convergence (~ 1/sqrt(N)) plus the rate at
// which each generator feeds the simulation.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/registry.hpp"

namespace {

struct Row {
  std::size_t samples;
  double estimate;
  double error;
  double msamples_per_sec;
};

Row estimate_pi(bsrng::core::Generator& gen, std::size_t samples) {
  std::size_t inside = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < samples; ++i) {
    const double x = gen.next_double();
    const double y = gen.next_double();
    inside += x * x + y * y <= 1.0;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double est =
      4.0 * static_cast<double>(inside) / static_cast<double>(samples);
  return {samples, est, std::abs(est - M_PI),
          static_cast<double>(samples) / secs / 1e6};
}

}  // namespace

int main() {
  const std::vector<const char*> generators = {
      "mickey-bs512", "grain-bs512", "trivium-bs512", "aes-ctr-bs256",
      "philox",       "mt19937",     "middle-square"};

  std::printf("%-16s %10s %10s %10s %12s\n", "generator", "samples",
              "pi-hat", "abs error", "Msamples/s");
  for (const char* name : generators) {
    auto gen = bsrng::core::make_generator(name, 20260706);
    for (const std::size_t n : {100000ull, 1000000ull, 4000000ull}) {
      const Row r = estimate_pi(*gen, n);
      std::printf("%-16s %10zu %10.6f %10.6f %12.2f\n", name, r.samples,
                  r.estimate, r.error, r.msamples_per_sec);
    }
  }
  std::printf(
      "\nNote: middle-square (von Neumann 1949, paper §2.1) is included as\n"
      "the historical counterexample — watch its estimate stall as the\n"
      "generator collapses into a short cycle.\n");
  return 0;
}
