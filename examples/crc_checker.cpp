// crc_checker — the paper's §4.2 CRC application on realistic data: verify a
// batch of 512 network frames with the bitsliced CRC-32 (one lane per
// frame), cross-check against the conventional table-driven CRC, and report
// the fully parallel vs sequential work ratio.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "crc/crc32.hpp"
#include "crc/crc8.hpp"
#include "bitslice/transpose.hpp"

namespace bs = bsrng::bitslice;
namespace crc = bsrng::crc;

int main() {
  constexpr std::size_t kLanes = bs::lane_count<bs::SliceV512>;  // 512 frames
  constexpr std::size_t kFrameBytes = 256;

  // Forge a batch of frames (e.g. Ethernet-sized payload chunks).
  std::mt19937_64 rng(1);
  std::vector<std::vector<std::uint8_t>> frames(
      kLanes, std::vector<std::uint8_t>(kFrameBytes));
  for (auto& f : frames)
    for (auto& b : f) b = static_cast<std::uint8_t>(rng());
  // Corrupt two frames to show detection.
  frames[17][100] ^= 0x40;
  frames[300][3] ^= 0x01;

  // Expected CRCs of the *uncorrupted* payloads (sender side).
  auto pristine = frames;
  pristine[17][100] ^= 0x40;
  pristine[300][3] ^= 0x01;
  std::vector<std::uint32_t> expected(kLanes);
  for (std::size_t j = 0; j < kLanes; ++j)
    expected[j] = crc::crc32_table(pristine[j]);

  // Receiver: all 512 frames checksummed in lockstep, one bit column per
  // clock (Fig. 6's structure at 512 lanes).  The row-major frames are
  // converted to column-major once with the block transpose (§4.1's data
  // representation change happens at the boundary, not in the loop).
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::vector<std::uint64_t>> rows(kLanes);
  for (std::size_t j = 0; j < kLanes; ++j) {
    rows[j].assign((kFrameBytes * 8 + 63) / 64, 0);
    for (std::size_t b = 0; b < kFrameBytes; ++b)
      rows[j][b / 8] |= std::uint64_t{frames[j][b]} << (8 * (b % 8));
  }
  std::vector<bs::SliceV512> columns;
  bs::interleave<bs::SliceV512>(rows, kFrameBytes * 8, columns);
  crc::Crc32Sliced<bs::SliceV512> sliced;
  for (const auto& in : columns) sliced.step(in);
  const double sliced_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::size_t bad = 0;
  for (std::size_t j = 0; j < kLanes; ++j) {
    const std::uint32_t got = sliced.lane_crc(j);
    if (got != expected[j]) {
      std::printf("frame %3zu CORRUPT: crc %08x != expected %08x\n", j, got,
                  expected[j]);
      ++bad;
    }
  }
  std::printf("%zu/%zu frames corrupt (expected 2)\n", bad, kLanes);

  // Sequential bit-serial baseline for the same work (Fig. 5's structure).
  const auto t1 = std::chrono::steady_clock::now();
  std::size_t bad_seq = 0;
  for (std::size_t j = 0; j < kLanes; ++j)
    bad_seq += crc::crc32_bitwise(frames[j]) != expected[j];
  const double serial_secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
          .count();

  std::printf("bitsliced: %.3f ms   bit-serial x%zu: %.3f ms   (%.1fx)\n",
              sliced_secs * 1e3, kLanes, serial_secs * 1e3,
              serial_secs / sliced_secs);
  return bad == 2 && bad_seq == 2 ? 0 : 1;
}
