// bsrng_cli — command-line front end: generate keystream bytes to stdout
// (pipe into dieharder/PractRand/files) or self-test a generator.
//
//   bsrng_cli list
//   bsrng_cli gen <algorithm> <bytes> [seed]     # raw bytes to stdout
//   bsrng_cli fips <algorithm> [seed]            # FIPS 140-2 battery
//   bsrng_cli info <algorithm>                   # lanes / gate cost
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bsrng.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bsrng_cli list\n"
               "       bsrng_cli gen  <algorithm> <bytes> [seed]\n"
               "       bsrng_cli fips <algorithm> [seed]\n"
               "       bsrng_cli info <algorithm>\n");
  return 2;
}

int unknown_algorithm(const std::string& algo) {
  std::fprintf(stderr,
               "unknown algorithm: %s (run `bsrng_cli list` for names)\n",
               algo.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    for (const auto& a : bsrng::list_algorithms())
      std::printf("%-18s %-10s lanes=%-4zu gate-ops/bit=%.3f%s\n",
                  a.name.c_str(), a.family.c_str(), a.lanes,
                  a.gate_ops_per_bit, a.cryptographic ? " CSPRNG" : "");
    return 0;
  }

  if (argc < 3) return usage();
  const std::string algo = argv[2];

  if (cmd == "gen") {
    if (argc < 4) return usage();
    const std::uint64_t total = std::strtoull(argv[3], nullptr, 0);
    const std::uint64_t seed =
        argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 1;
    auto gen = bsrng::try_make_generator(algo, seed);
    if (!gen) return unknown_algorithm(algo);
    std::vector<std::uint8_t> buf(1 << 16);
    std::uint64_t remaining = total;
    while (remaining > 0) {
      const std::size_t n = remaining < buf.size()
                                ? static_cast<std::size_t>(remaining)
                                : buf.size();
      gen->fill(std::span(buf.data(), n));
      if (std::fwrite(buf.data(), 1, n, stdout) != n) {
        std::perror("fwrite");
        return 1;
      }
      remaining -= n;
    }
    return 0;
  }

  if (cmd == "fips") {
    const std::uint64_t seed =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 1;
    auto gen = bsrng::try_make_generator(algo, seed);
    if (!gen) return unknown_algorithm(algo);
    std::vector<std::uint8_t> bytes(bsrng::nist::kFips140SampleBits / 8);
    gen->fill(bytes);
    bsrng::bitslice::BitBuf bits;
    bits.append_bytes(bytes);
    const auto r = bsrng::nist::fips140_2(bits);
    std::printf("%s: %s\n", algo.c_str(), r.summary().c_str());
    return r.all_passed() ? 0 : 1;
  }

  if (cmd == "info") {
    const auto info = bsrng::find_algorithm(algo);
    if (!info) return unknown_algorithm(algo);
    std::printf("name:          %s\nfamily:        %s\nlanes:         %zu\n"
                "cryptographic: %s\ngate-ops/bit:  %.4f\npartition:     %s\n",
                info->name.c_str(), info->family.c_str(), info->lanes,
                info->cryptographic ? "yes" : "no", info->gate_ops_per_bit,
                info->partition == bsrng::PartitionKind::kCounter
                    ? "counter"
                    : info->partition == bsrng::PartitionKind::kLaneSlice
                          ? "lane-slice"
                          : "sequential");
    return 0;
  }

  return usage();
}
