// nist_assessment — reproduce the paper's Table 3 (E4): run the NIST SP
// 800-22 suite against a generator and print the mean P-value / proportion /
// verdict rows.
//
//   $ ./nist_assessment [algorithm] [streams] [stream_kbits]
//
// The paper's protocol is 1000 streams x 1 Mbit on bitsliced MICKEY; the
// defaults here are scaled down to finish in a couple of minutes on one CPU
// core (pass larger values to match the paper exactly).
#include <cstdio>
#include <cstdlib>

#include "bsrng.hpp"
#include "nist/suite.hpp"

int main(int argc, char** argv) {
  const char* algo = argc > 1 ? argv[1] : "mickey-bs512";
  const std::size_t streams =
      argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 40;
  const std::size_t kbits =
      argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 256;

  auto gen = bsrng::try_make_generator(algo, 0xB5F1A6);
  if (!gen) {
    std::fprintf(stderr,
                 "unknown algorithm: %s (see `bsrng_cli list` for names)\n",
                 algo);
    return 2;
  }
  bsrng::nist::SuiteConfig cfg;
  cfg.num_streams = streams;
  cfg.stream_bits = kbits * 1024;
  cfg.run_slow_tests = true;

  std::printf(
      "NIST SP 800-22 on %s: %zu streams x %zu kbit (alpha = %.2f, minimum "
      "pass proportion %.4f)\n\n",
      algo, streams, kbits, cfg.alpha,
      bsrng::nist::min_pass_proportion(streams, cfg.alpha));

  const auto rows = bsrng::nist::run_suite(
      [&](std::span<std::uint8_t> out) { gen->fill(out); }, cfg);
  std::fputs(bsrng::nist::format_table3(rows).c_str(), stdout);

  bool all = true;
  for (const auto& r : rows) all &= r.success;
  std::printf("\noverall: %s\n", all ? "Success (cf. paper Table 3)"
                                     : "FAILURE — see rows above");
  return all ? 0 : 1;
}
