// E5b — StreamEngine: pooled sharded generation for every registered
// algorithm.  Wall-clock speedup needs more than one host core (see
// EXPERIMENTS.md E5); the work-balance model (sum/max of per-worker busy
// time) carries the §5.4 scaling claim, and the partition column shows which
// sharding law each family uses (counter seek, lane slices, or the
// sequential fallback).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace co = bsrng::core;

namespace {

constexpr std::size_t kBytes = 1u << 22;

const char* partition_name(co::PartitionKind k) {
  switch (k) {
    case co::PartitionKind::kCounter:
      return "counter";
    case co::PartitionKind::kLaneSlice:
      return "lane-slice";
    case co::PartitionKind::kSequential:
      return "sequential";
  }
  return "?";
}

void print_engine_table(bsrng::bench::JsonWriter& json) {
  std::printf("\n=== StreamEngine sharded generation (%zu MiB/algo) ===\n",
              kBytes >> 20);
  std::printf("%-16s %-11s %10s %10s %16s %10s\n", "algorithm", "partition",
              "1w GB/s", "4w GB/s", "4w modeled spdup", "identical");

  // One engine per worker count, shared across every algorithm — the pool is
  // constructed once and reused (the engine's whole point).
  co::StreamEngine one({.workers = 1});
  co::StreamEngine four({.workers = 4});

  std::vector<std::uint8_t> reference(kBytes), out(kBytes);
  for (const auto& a : co::list_algorithms()) {
    // Keep the printout honest but bounded: scalar bit-at-a-time references
    // take minutes at 4 MiB; they are covered by the test suite instead.
    if (a.family == "reference" && a.name != "chacha20-ref") continue;
    co::make_generator(a.name, 42)->fill(reference);
    const auto r1 = one.generate(co::StreamRequest{a.name, 42}, out);
    const bool ok1 = out == reference;
    const auto r4 = four.generate(co::StreamRequest{a.name, 42}, out);
    const bool ok4 = out == reference;
    std::printf("%-16s %-11s %10.3f %10.3f %16.2f %10s\n", a.name.c_str(),
                partition_name(a.partition), r1.gbps(), r4.gbps(),
                r4.modeled_speedup(), ok1 && ok4 ? "yes" : "NO");
    json.add({a.name, a.lanes, 1, r1.bytes, r1.wall_seconds, r1.gbps()});
    json.add({a.name, a.lanes, 4, r4.bytes, r4.wall_seconds, r4.gbps()});
  }
  std::printf(
      "\nmodeled speedup is the work-balance bound (sum/max of per-worker\n"
      "busy seconds); sequential-partition algorithms stay at 1.0 by\n"
      "construction.  Identity against the direct single-generator stream\n"
      "is asserted for every row.\n");
}

void BM_EngineGenerate(benchmark::State& state, const std::string& algo) {
  co::StreamEngine engine(
      {.workers = static_cast<std::size_t>(state.range(0))});
  std::vector<std::uint8_t> out(1u << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.generate(co::StreamRequest{algo, 7}, out));
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_EngineGenerate, aes_ctr_bs512, "aes-ctr-bs512")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_EngineGenerate, chacha20_bs512, "chacha20-bs512")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_EngineGenerate, mickey_bs512, "mickey-bs512")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_EngineGenerate, trivium_bs512, "trivium-bs512")
    ->Arg(1)
    ->Arg(4);
BENCHMARK_CAPTURE(BM_EngineGenerate, philox, "philox")->Arg(1)->Arg(4);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_stream_engine", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_engine_table(json);
  return 0;
}
