// E9 — §5.2 ablation: "the peak AES performance is limited ... mainly caused
// by the complex bitsliced S-box."  Quantifies the bitsliced S-box's gate
// cost (vs the table lookup conventional code uses) and its throughput
// across lane widths.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_json.hpp"
#include "bitslice/gatecount.hpp"
#include "ciphers/aes_bs.hpp"
#include "ciphers/aes_ref.hpp"

namespace bs = bsrng::bitslice;
namespace ci = bsrng::ciphers;

namespace {

void BM_SboxTableLookup(benchmark::State& state) {
  std::mt19937_64 rng(1);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (auto _ : state) {
    for (auto& b : data) b = ci::aes::kSbox[b];
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

template <typename W>
void BM_SboxBitsliced(benchmark::State& state) {
  std::mt19937_64 rng(2);
  W s[8];
  for (auto& x : s) {
    x = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < bs::lane_count<W>; ++j)
      bs::SliceTraits<W>::set_lane(x, j, rng() & 1u);
  }
  for (auto _ : state) {
    ci::AesBs<W>::sbox8(s);
    benchmark::DoNotOptimize(s);
  }
  // One sbox8 call substitutes lane_count bytes.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bs::lane_count<W>));
}

// Timed bitsliced S-box rate per width: one sbox8 call substitutes
// lane_count bytes, so the byte rate is the substitution throughput.
template <typename W>
void record_sbox_rate(bsrng::bench::JsonWriter& json, const char* label) {
  using Clock = std::chrono::steady_clock;
  std::mt19937_64 rng(2);
  W s[8];
  for (auto& x : s) {
    x = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < bs::lane_count<W>; ++j)
      bs::SliceTraits<W>::set_lane(x, j, rng() & 1u);
  }
  constexpr std::size_t kReps = 1u << 16;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kReps; ++i) ci::AesBs<W>::sbox8(s);
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  benchmark::DoNotOptimize(s);
  const std::uint64_t bytes = kReps * bs::lane_count<W>;
  json.add({label, bs::lane_count<W>, 1, bytes, secs,
            secs > 0 ? static_cast<double>(bytes) * 8.0 / secs / 1e9 : 0.0});
}

void print_gate_audit() {
  using C = bs::CountingSlice;
  C s[8] = {};
  C::reset();
  ci::AesBs<C>::sbox8(s);
  const auto sbox_gates = C::ops;

  C a[8] = {}, b[8] = {}, out[8] = {};
  C::reset();
  ci::AesBs<C>::gf_mul8(a, b, out);
  const auto mul_gates = C::ops;
  C::reset();
  ci::AesBs<C>::gf_sq8(a, out);
  const auto sq_gates = C::ops;

  std::printf("\n=== bitsliced AES S-box gate audit ===\n");
  std::printf("GF(2^8) multiply circuit: %llu gates\n",
              static_cast<unsigned long long>(mul_gates));
  std::printf("GF(2^8) squaring (linear): %llu gates\n",
              static_cast<unsigned long long>(sq_gates));
  std::printf("full S-box (x^254 chain + affine): %llu gates\n",
              static_cast<unsigned long long>(sbox_gates));
  std::printf("per AES round: 16 S-boxes = %llu gates; ShiftRows = 0;\n",
              static_cast<unsigned long long>(16 * sbox_gates));
  std::printf(
      "reference point: the Boyar-Peralta depth-optimized network needs 113\n"
      "gates per S-box — our derivable inversion circuit trades ~%.0fx the\n"
      "gates for testable correctness, amplifying the paper's observed\n"
      "stream-vs-block cipher gap (Fig. 10, AES bars).\n",
      static_cast<double>(sbox_gates) / 113.0);
}

}  // namespace

BENCHMARK(BM_SboxTableLookup);
BENCHMARK_TEMPLATE(BM_SboxBitsliced, bs::SliceU32);
BENCHMARK_TEMPLATE(BM_SboxBitsliced, bs::SliceU64);
BENCHMARK_TEMPLATE(BM_SboxBitsliced, bs::SliceV256);
BENCHMARK_TEMPLATE(BM_SboxBitsliced, bs::SliceV512);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_sbox_ablation", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_gate_audit();
  record_sbox_rate<bs::SliceU32>(json, "aes-sbox-bs32");
  record_sbox_rate<bs::SliceV256>(json, "aes-sbox-bs256");
  record_sbox_rate<bs::SliceV512>(json, "aes-sbox-bs512");
  return 0;
}
