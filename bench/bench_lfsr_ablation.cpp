// E6 — §4.3 ablation: the naive row-major LFSR farm (Fig. 7: one register +
// shift/mask per instance) vs the bitsliced column-major LFSR (Fig. 8:
// register renaming, k full-width XORs) at several polynomial degrees and
// lane widths, plus the exact gate-count identity the paper argues from.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "bitslice/slice.hpp"
#include "core/registry.hpp"
#include "lfsr/bitsliced_lfsr.hpp"
#include "lfsr/polynomial.hpp"
#include "lfsr/scalar_lfsr.hpp"

namespace bs = bsrng::bitslice;
namespace lf = bsrng::lfsr;

namespace {

// Naive Fig. 7 configuration: `lanes` independent scalar LFSRs, each paying
// shift+mask per clock.
void BM_NaiveLfsrFarm(benchmark::State& state) {
  const unsigned degree = static_cast<unsigned>(state.range(0));
  const std::size_t lanes = static_cast<std::size_t>(state.range(1));
  const auto poly = lf::primitive_polynomial(degree);
  std::vector<lf::FibonacciLfsr> farm;
  for (std::size_t j = 0; j < lanes; ++j)
    farm.emplace_back(poly, 0x12345 + j);
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (auto& l : farm) acc ^= l.step64();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes) * 64);  // bits
}

template <typename W>
void BM_BitslicedLfsr(benchmark::State& state) {
  const unsigned degree = static_cast<unsigned>(state.range(0));
  lf::BitslicedLfsr<W> l(lf::primitive_polynomial(degree), 99u);
  for (auto _ : state) {
    W acc = bs::SliceTraits<W>::zero();
    for (int i = 0; i < 64; ++i) acc ^= l.step();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 *
                          static_cast<std::int64_t>(bs::lane_count<W>));
}

// Direct timed run of the Fig. 8 column LFSR at full host width, recorded
// as JSON alongside the gate identity (one record per degree).
template <typename W>
void record_bitsliced_rate(bsrng::bench::JsonWriter& json, unsigned degree,
                           const char* label) {
  using Clock = std::chrono::steady_clock;
  lf::BitslicedLfsr<W> l(lf::primitive_polynomial(degree), 99u);
  constexpr std::size_t kSteps = 1u << 16;  // bits per lane
  W acc = bs::SliceTraits<W>::zero();
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kSteps; ++i) acc ^= l.step();
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  benchmark::DoNotOptimize(acc);
  const std::uint64_t bytes = kSteps * bs::lane_count<W> / 8;
  json.add({label, bs::lane_count<W>, 1, bytes, secs,
            secs > 0 ? static_cast<double>(bytes) * 8.0 / secs / 1e9 : 0.0});
}

void print_gate_identity(bsrng::bench::JsonWriter& json) {
  std::printf("\n=== §4.3 operation-count identity ===\n");
  std::printf("%-8s %6s %28s %24s\n", "degree", "taps k", "naive (32 x k XOR + shifts)",
              "bitsliced (k wide XOR)");
  for (const unsigned n : {20u, 32u, 64u}) {
    const auto poly = lf::primitive_polynomial(n);
    const unsigned k = poly.tap_count();
    const double measured =
        bsrng::core::gate_ops_per_step("lfsr" + std::to_string(n));
    std::printf("%-8u %6u %28u %24.0f\n", n, k, 32 * k, measured);
  }
  std::printf("(measured column = CountingSlice gate audit of one clock)\n");
  record_bitsliced_rate<bs::SliceV512>(json, 20, "lfsr20-bs512");
  record_bitsliced_rate<bs::SliceV512>(json, 32, "lfsr32-bs512");
  record_bitsliced_rate<bs::SliceV512>(json, 64, "lfsr64-bs512");
}

}  // namespace

BENCHMARK(BM_NaiveLfsrFarm)
    ->Args({20, 32})
    ->Args({32, 32})
    ->Args({64, 32})
    ->Args({20, 512})
    ->Args({64, 512});
BENCHMARK_TEMPLATE(BM_BitslicedLfsr, bs::SliceU32)->Arg(20)->Arg(32)->Arg(64);
BENCHMARK_TEMPLATE(BM_BitslicedLfsr, bs::SliceV512)->Arg(20)->Arg(32)->Arg(64);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_lfsr_ablation", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_gate_identity(json);
  return 0;
}
