// E8 — §4.5 ablation on the virtual GPU: shared-memory output staging and
// coalesced global writes vs naive per-thread strided stores, measured in
// modeled memory transactions (the quantity real GPUs bill for).
//
// Kernel shape mirrors the paper's: each GPU thread produces one 32-bit
// word per cycle (32 bitsliced lanes) and must land `kSteps` words in
// global memory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "baselines/xorshift.hpp"
#include "bench_json.hpp"
#include "core/descriptor.hpp"
#include "core/gpu_kernel.hpp"
#include "core/thread_pool.hpp"
#include "gpusim/device.hpp"

namespace an = bsrng::analysis;
namespace gs = bsrng::gpusim;

namespace {

constexpr std::size_t kBlocks = 4;
constexpr std::size_t kThreads = 64;  // per block
constexpr std::size_t kSteps = 256;   // words produced per thread

std::size_t total_words() { return kBlocks * kThreads * kSteps; }

// With BSRNG_GPUSIM_CHECK set, every launch above ran under the sanitizer;
// surface any findings next to the ablation numbers they would invalidate.
void print_check_reports(const gs::Device& dev, const char* label) {
  for (const auto& r : dev.check_reports())
    std::printf("  !! %s: %s\n", label, r.to_string().c_str());
}

// Static prediction for one ablation variant: the hand-written kernels
// above share their address structure with the generic descriptor kernel
// body (addresses are algorithm-independent), so model_descriptor_kernel
// with the matching geometry predicts their transaction counts exactly.
an::CoalescingSummary predict_traffic(bool use_staging,
                                      std::size_t staging_words,
                                      bool coalesced) {
  bsrng::core::GpuKernelConfig cfg;
  cfg.blocks = kBlocks;
  cfg.threads_per_block = kThreads;
  cfg.words_per_thread = kSteps;
  cfg.use_shared_staging = use_staging;
  cfg.staging_words = use_staging ? staging_words : 16;
  cfg.coalesced_layout = coalesced;
  return an::analyze_descriptor_kernel("mickey", cfg).coalescing;
}

// (a) Naive: each thread owns a contiguous region; at every step the warp's
// 32 stores are kSteps*4 bytes apart — worst-case scatter.
gs::MemStats run_strided(gs::Device& dev) {
  return dev.launch({.blocks = kBlocks, .threads_per_block = kThreads},
                    [](gs::ThreadCtx& ctx) {
                      bsrng::baselines::Xorshift32 gen(
                          static_cast<std::uint32_t>(ctx.global_thread_id() + 1));
                      const std::size_t base = ctx.global_thread_id() * kSteps;
                      for (std::size_t i = 0; i < kSteps; ++i)
                        ctx.global_store(base + i, gen.next());
                    });
}

// (b) Coalesced direct: at step i the warp stores to consecutive words.
gs::MemStats run_coalesced(gs::Device& dev) {
  return dev.launch({.blocks = kBlocks, .threads_per_block = kThreads},
                    [](gs::ThreadCtx& ctx) {
                      bsrng::baselines::Xorshift32 gen(
                          static_cast<std::uint32_t>(ctx.global_thread_id() + 1));
                      const std::size_t stride = kBlocks * kThreads;
                      for (std::size_t i = 0; i < kSteps; ++i)
                        ctx.global_store(i * stride + ctx.global_thread_id(),
                                         gen.next());
                    });
}

// (c) §4.5 staging: accumulate `staging` words per thread in shared memory,
// then flush the block's buffer with coalesced bursts.
gs::MemStats run_staged(gs::Device& dev, std::size_t staging) {
  return dev.launch(
      {.blocks = kBlocks, .threads_per_block = kThreads,
       .shared_bytes = kThreads * staging * 4},
      [staging](gs::ThreadCtx& ctx) {
        bsrng::baselines::Xorshift32 gen(
            static_cast<std::uint32_t>(ctx.global_thread_id() + 1));
        const std::size_t stride = kBlocks * kThreads;
        for (std::size_t round = 0; round < kSteps / staging; ++round) {
          for (std::size_t i = 0; i < staging; ++i)
            ctx.shared_store(i * ctx.block_dim() + ctx.thread_idx(),
                             gen.next());
          // Flush: burst b is a warp-wide store to consecutive words.
          for (std::size_t b = 0; b < staging; ++b)
            ctx.global_store((round * staging + b) * stride +
                                 ctx.global_thread_id(),
                             ctx.shared_load(b * ctx.block_dim() +
                                             ctx.thread_idx()));
        }
      });
}

void print_ablation(bsrng::bench::JsonWriter& json) {
  std::printf("\n=== §4.5 memory-path ablation (modeled transactions) ===\n");
  std::printf("grid: %zu blocks x %zu threads, %zu words/thread, %zu KiB total\n",
              kBlocks, kThreads, kSteps, total_words() * 4 / 1024);
  std::printf("%-34s %14s %14s %12s %12s\n", "variant", "transactions",
              "predicted", "efficiency", "shared ops");
  // Each variant owns its Device, so the sweep runs on the shared pool
  // (bsrng::core::ThreadPool) and the rows print in order afterwards.
  struct Variant {
    std::string label;
    std::function<gs::MemStats(gs::Device&)> run;
    an::CoalescingSummary predicted;
    gs::MemStats stats;
    std::vector<std::string> findings;
  };
  std::vector<Variant> variants;
  variants.push_back({"naive per-thread regions (strided)", run_strided,
                      predict_traffic(false, 0, false), {}, {}});
  variants.push_back({"coalesced direct store", run_coalesced,
                      predict_traffic(false, 0, true), {}, {}});
  for (const std::size_t staging : {4u, 16u, 64u, 256u}) {
    char label[64];
    std::snprintf(label, sizeof label, "shared staging, %3zu words/thread",
                  staging);
    variants.push_back({label,
                        [staging](gs::Device& dev) {
                          return run_staged(dev, staging);
                        },
                        predict_traffic(true, staging, true),
                        {},
                        {}});
  }
  bsrng::core::ThreadPool pool(bsrng::core::ThreadPool::default_workers());
  pool.run_indexed(variants.size(), [&](std::size_t, std::size_t i) {
    gs::Device dev(total_words());
    variants[i].stats = variants[i].run(dev);
    for (const auto& r : dev.check_reports())
      variants[i].findings.push_back(r.to_string());
  });
  for (const auto& v : variants) {
    std::printf("%-34s %14llu %14llu %12.3f %12llu%s\n", v.label.c_str(),
                static_cast<unsigned long long>(v.stats.global_transactions),
                static_cast<unsigned long long>(
                    v.predicted.global_transactions),
                v.stats.coalescing_efficiency(),
                static_cast<unsigned long long>(v.stats.shared_accesses),
                v.predicted.global_transactions ==
                        v.stats.global_transactions
                    ? ""
                    : "  !! prediction mismatch");
    for (const auto& f : v.findings)
      std::printf("  !! %s: %s\n", v.label.c_str(), f.c_str());
  }
  // The same ablation on the real §4.4 kernels: every bitsliced cipher in
  // the descriptor table runs on the virtual GPU (each simulated thread owns
  // a 32-lane engine, or a block-aligned counter range for aes-ctr /
  // chacha20).
  for (const auto& desc : bsrng::core::algorithm_descriptors()) {
    std::printf("\n--- real %s kernel (gpu_kernel) ---\n", desc.base.c_str());
    bsrng::core::GpuKernelConfig cfg;
    cfg.blocks = 2;
    cfg.threads_per_block = 64;
    cfg.words_per_thread = 64;  // 256 B/thread: a multiple of both counter
                                // block sizes (16 and 64 bytes)
    cfg.staging_words = 16;
    const std::size_t words =
        cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
    const auto row = [&](const char* label) {
      using Clock = std::chrono::steady_clock;
      const an::CoalescingSummary predicted =
          an::analyze_descriptor_kernel(desc.base, cfg).coalescing;
      gs::Device dev(words);
      const auto t0 = Clock::now();
      const auto r = bsrng::core::run_gpu_kernel(dev, desc.base, cfg);
      const double secs =
          std::chrono::duration<double>(Clock::now() - t0).count();
      std::printf("%-34s %14llu %14llu %12.3f %12llu%s\n", label,
                  static_cast<unsigned long long>(r.stats.global_transactions),
                  static_cast<unsigned long long>(
                      predicted.global_transactions),
                  r.stats.coalescing_efficiency(),
                  static_cast<unsigned long long>(r.stats.shared_accesses),
                  predicted.global_transactions == r.stats.global_transactions
                      ? ""
                      : "  !! prediction mismatch");
      print_check_reports(dev, label);
      // Simulated-GPU wall rate: one record per cipher x kernel variant;
      // workers is the simulated thread count of the launch.  Predicted vs
      // measured transactions ride along for --json coalescing diffs.
      bsrng::bench::JsonRecord rec{
          desc.base + "-bs32 " + label, 32,
          cfg.blocks * cfg.threads_per_block, r.bytes, secs,
          secs > 0 ? static_cast<double>(r.bytes) * 8.0 / secs / 1e9 : 0.0,
          "gpusim"};
      rec.transactions_predicted =
          static_cast<std::int64_t>(predicted.global_transactions);
      rec.transactions_measured =
          static_cast<std::int64_t>(r.stats.global_transactions);
      rec.tpa_predicted = predicted.transactions_per_access();
      json.add(std::move(rec));
    };
    row("staged + coalesced (paper §4.5)");
    cfg.use_shared_staging = false;
    row("direct coalesced");
    cfg.coalesced_layout = false;
    row("direct per-thread regions");
  }

  std::printf(
      "\nshape: strided costs ~32x the transactions of the coalesced and\n"
      "staged paths (one 128B segment per 4B lane store); staging keeps the\n"
      "coalesced transaction count while batching flushes — the paper's\n"
      "\"intermediate access to Shared Memory decreases the run-time\n"
      "considerably compared to direct write access\" effect (§4.5).\n");
}

void BM_StridedKernel(benchmark::State& state) {
  gs::Device dev(total_words());
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_strided(dev));
  }
}

void BM_StagedKernel(benchmark::State& state) {
  gs::Device dev(total_words());
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_staged(dev, 16));
  }
}

}  // namespace

BENCHMARK(BM_StridedKernel)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StagedKernel)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_memory_ablation", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_ablation(json);
  return 0;
}
