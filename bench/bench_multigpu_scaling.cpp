// E5 — §5.4 multi-GPU scaling: the paper reports 1.92x on two GTX 1080 Ti
// with degradation expected at 4-8 GPUs, and bit-identical sequence
// reconstruction.  Devices here are host threads (the paper drives each GPU
// from one OpenMP thread); with a single host core the wall-clock column is
// flat, so the work-balance model (sum/max of per-device busy time) carries
// the scaling claim — both are printed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/multi_device.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace co = bsrng::core;

namespace {

constexpr std::size_t kBytes = 4u << 20;

void print_scaling(bsrng::bench::JsonWriter& json,
                   const std::vector<std::string>& algos) {
  const std::vector<std::uint8_t> key(16, 0x42), nonce(12, 0x17);
  std::vector<std::uint8_t> reference(kBytes), out(kBytes);
  co::multi_device_aes_ctr(key, nonce, 1, reference, /*parallel=*/false);

  std::printf("\n=== §5.4 multi-device scaling (AES-CTR, %zu MiB) ===\n",
              kBytes >> 20);
  std::printf("%-9s %12s %12s %12s %16s %10s\n", "devices", "wall s",
              "max-dev s", "sum-dev s", "modeled speedup", "identical");
  for (const std::size_t d : {1u, 2u, 4u, 8u}) {
    const auto rep = co::multi_device_aes_ctr(key, nonce, d, out);
    std::printf("%-9zu %12.4f %12.4f %12.4f %16.2f %10s\n", d,
                rep.wall_seconds, rep.max_worker_seconds,
                rep.sum_worker_seconds, rep.modeled_speedup(),
                out == reference ? "yes" : "NO");
    json.add({"aes-ctr-bs32", 32, d, rep.bytes, rep.wall_seconds,
              rep.gbps()});
  }

  std::printf("\n=== §5.4 multi-device MICKEY (lane-partitioned) ===\n");
  std::printf("%-9s %12s %16s %10s\n", "devices", "wall s", "modeled speedup",
              "identical");
  std::vector<std::uint8_t> mref(1u << 20), mout(1u << 20);
  co::multi_device_mickey(99, 4, mref, /*parallel=*/false);
  for (const std::size_t d : {4u}) {
    const auto rep = co::multi_device_mickey(99, d, mout);
    std::printf("%-9zu %12.4f %16.2f %10s\n", d, rep.wall_seconds,
                rep.modeled_speedup(), mout == mref ? "yes" : "NO");
    json.add({"mickey-bs32", 32, d, rep.bytes, rep.wall_seconds,
              rep.gbps()});
  }
  // Any registered algorithm through the descriptor-driven entry point:
  // multi_device_generate shards per the algorithm's own PartitionSpec, and
  // reconstruction stays bit-identical to the single-generator stream for
  // every device count.  `--algos` picks the registry names swept here.
  std::printf("\n=== §5.4 multi_device_generate (any algorithm, 1 MiB) ===\n");
  std::printf("%-16s %-9s %12s %16s %10s\n", "algorithm", "devices", "wall s",
              "modeled speedup", "identical");
  std::vector<std::uint8_t> gout(1u << 20), gref(1u << 20);
  for (const std::string& algo : algos) {
    co::make_generator(algo, 5)->fill(gref);
    const std::size_t width = co::find_algorithm(algo)->lanes;
    for (const std::size_t d : {1u, 2u, 4u}) {
      const auto rep = co::multi_device_generate(algo, 5, d, gout);
      std::printf("%-16s %-9zu %12.4f %16.2f %10s\n", algo.c_str(), d,
                  rep.wall_seconds, rep.modeled_speedup(),
                  gout == gref ? "yes" : "NO");
      json.add({algo, width, d, rep.bytes, rep.wall_seconds, rep.gbps()});
    }
  }

  // The same partitioning through the general engine: multi_device_* are now
  // thin wrappers over StreamEngine, so this section shows the engine's
  // chunked scheduling (256 KiB claims) against the wrappers' one-chunk-per-
  // device layout on identical work.
  std::printf("\n=== StreamEngine chunked scheduling (same stream) ===\n");
  std::printf("%-9s %12s %12s %16s %10s\n", "workers", "wall s", "sum-work s",
              "modeled speedup", "identical");
  for (const std::size_t w : {1u, 2u, 4u, 8u}) {
    co::StreamEngine engine({.workers = w, .chunk_bytes = 256u << 10});
    const auto rep = engine.generate(co::StreamRequest{"aes-ctr-bs32", 7}, out);
    std::vector<std::uint8_t> direct(out.size());
    co::make_generator("aes-ctr-bs32", 7)->fill(direct);
    std::printf("%-9zu %12.4f %12.4f %16.2f %10s\n", w, rep.wall_seconds,
                rep.sum_worker_seconds, rep.modeled_speedup(),
                out == direct ? "yes" : "NO");
    json.add({"aes-ctr-bs32", 32, w, rep.bytes, rep.wall_seconds,
              rep.gbps()});
  }

  std::printf(
      "\npaper anchor: 1.92x on two GPUs; our modeled 2-device speedup is the\n"
      "work-balance bound (~2.0) minus partition overhead — wall time needs\n"
      "more than one host core to show it (this host: see nproc note in\n"
      "EXPERIMENTS.md E5).  Reconstruction identity holds for every D.\n");
}

void BM_MultiDeviceAesCtr(benchmark::State& state) {
  const std::vector<std::uint8_t> key(16, 1), nonce(12, 2);
  std::vector<std::uint8_t> out(1u << 20);
  const auto d = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(co::multi_device_aes_ctr(key, nonce, d, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(out.size()));
}

}  // namespace

BENCHMARK(BM_MultiDeviceAesCtr)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_multigpu_scaling", &argc, argv);
  // Default sweep: one lane-sliced and one counter-mode family, plus the
  // scalar philox counter baseline — each partition kind exercised once.
  const std::vector<std::string> algos = bsrng::bench::split_csv(
      bsrng::bench::take_flag(&argc, argv, "algos",
                              "mickey-bs128,chacha20-bs64,philox"));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_scaling(json, algos);
  return 0;
}
