// E7 — §4.2 ablation: CRC-8/CRC-32 over many streams — bit-serial (Fig. 5),
// table-driven (conventional software), and bitsliced (Fig. 6, one lane per
// stream, including the boundary transpose cost).
#include <benchmark/benchmark.h>

#include <chrono>
#include <random>
#include <vector>

#include "bench_json.hpp"
#include "bitslice/transpose.hpp"
#include "crc/crc32.hpp"
#include "crc/crc8.hpp"

namespace bs = bsrng::bitslice;
namespace crc = bsrng::crc;

namespace {

constexpr std::size_t kFrameBytes = 128;

std::vector<std::vector<std::uint8_t>> make_frames(std::size_t n) {
  std::mt19937_64 rng(7);
  std::vector<std::vector<std::uint8_t>> frames(
      n, std::vector<std::uint8_t>(kFrameBytes));
  for (auto& f : frames)
    for (auto& b : f) b = static_cast<std::uint8_t>(rng());
  return frames;
}

void BM_Crc32BitSerial(benchmark::State& state) {
  const auto frames = make_frames(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const auto& f : frames) acc ^= crc::crc32_bitwise(f);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kFrameBytes);
}

void BM_Crc32Table(benchmark::State& state) {
  const auto frames = make_frames(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (const auto& f : frames) acc ^= crc::crc32_table(f);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kFrameBytes);
}

template <typename W>
void BM_Crc32Bitsliced(benchmark::State& state) {
  constexpr std::size_t L = bs::lane_count<W>;
  const auto frames = make_frames(L);
  // Row-major packing (u64 words) once per frame set.
  std::vector<std::vector<std::uint64_t>> rows(L);
  for (std::size_t j = 0; j < L; ++j) {
    rows[j].assign(kFrameBytes / 8, 0);
    for (std::size_t b = 0; b < kFrameBytes; ++b)
      rows[j][b / 8] |= std::uint64_t{frames[j][b]} << (8 * (b % 8));
  }
  for (auto _ : state) {
    // Boundary transpose + lockstep CRC (both counted, as in real use).
    std::vector<W> columns;
    bs::interleave<W>(rows, kFrameBytes * 8, columns);
    crc::Crc32Sliced<W> sliced;
    for (const auto& in : columns) sliced.step(in);
    std::uint32_t acc = 0;
    for (std::size_t j = 0; j < L; ++j) acc ^= sliced.lane_crc(j);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(L) * kFrameBytes);
}

void BM_Crc8Bitwise(benchmark::State& state) {
  const auto frames = make_frames(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::uint8_t acc = 0;
    for (const auto& f : frames) acc ^= crc::crc8_bitwise(f);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * kFrameBytes);
}

template <typename W>
void BM_Crc8Bitsliced(benchmark::State& state) {
  constexpr std::size_t L = bs::lane_count<W>;
  const auto frames = make_frames(L);
  std::vector<std::vector<std::uint64_t>> rows(L);
  for (std::size_t j = 0; j < L; ++j) {
    rows[j].assign(kFrameBytes / 8, 0);
    for (std::size_t b = 0; b < kFrameBytes; ++b)
      for (int bit = 0; bit < 8; ++bit)  // MSB-first bit order for CRC-8
        rows[j][(b * 8 + static_cast<std::size_t>(7 - bit)) / 64] |=
            std::uint64_t{(frames[j][b] >> bit) & 1u}
            << ((b * 8 + static_cast<std::size_t>(7 - bit)) % 64);
  }
  for (auto _ : state) {
    std::vector<W> columns;
    bs::interleave<W>(rows, kFrameBytes * 8, columns);
    crc::Crc8Sliced<W> sliced;
    for (const auto& in : columns) sliced.step(in);
    std::uint8_t acc = 0;
    for (std::size_t j = 0; j < L; ++j) acc ^= sliced.lane_crc(j);
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(L) * kFrameBytes);
}

// Direct timed CRC-32 over one frame set per width (transpose included, as
// in the Google Benchmark cases above), recorded as JSON.
template <typename W>
void record_crc32_rate(bsrng::bench::JsonWriter& json, const char* label) {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t L = bs::lane_count<W>;
  const auto frames = make_frames(L);
  std::vector<std::vector<std::uint64_t>> rows(L);
  for (std::size_t j = 0; j < L; ++j) {
    rows[j].assign(kFrameBytes / 8, 0);
    for (std::size_t b = 0; b < kFrameBytes; ++b)
      rows[j][b / 8] |= std::uint64_t{frames[j][b]} << (8 * (b % 8));
  }
  constexpr std::size_t kReps = 256;
  std::uint32_t acc = 0;
  const auto t0 = Clock::now();
  for (std::size_t rep = 0; rep < kReps; ++rep) {
    std::vector<W> columns;
    bs::interleave<W>(rows, kFrameBytes * 8, columns);
    crc::Crc32Sliced<W> sliced;
    for (const auto& in : columns) sliced.step(in);
    for (std::size_t j = 0; j < L; ++j) acc ^= sliced.lane_crc(j);
  }
  const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
  benchmark::DoNotOptimize(acc);
  const std::uint64_t bytes = kReps * L * kFrameBytes;
  json.add({label, L, 1, bytes, secs,
            secs > 0 ? static_cast<double>(bytes) * 8.0 / secs / 1e9 : 0.0});
}

}  // namespace

BENCHMARK(BM_Crc32BitSerial)->Arg(64)->Arg(512);
BENCHMARK(BM_Crc32Table)->Arg(64)->Arg(512);
BENCHMARK_TEMPLATE(BM_Crc32Bitsliced, bs::SliceU32);
BENCHMARK_TEMPLATE(BM_Crc32Bitsliced, bs::SliceV256);
BENCHMARK_TEMPLATE(BM_Crc32Bitsliced, bs::SliceV512);
BENCHMARK(BM_Crc8Bitwise)->Arg(64)->Arg(512);
BENCHMARK_TEMPLATE(BM_Crc8Bitsliced, bs::SliceU32);
BENCHMARK_TEMPLATE(BM_Crc8Bitsliced, bs::SliceV512);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_crc_ablation", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  record_crc32_rate<bs::SliceU32>(json, "crc32-bs32");
  record_crc32_rate<bs::SliceV256>(json, "crc32-bs256");
  record_crc32_rate<bs::SliceV512>(json, "crc32-bs512");
  return 0;
}
