// E1 — Fig. 10: throughput of the bitsliced CSPRNGs vs the cuRAND-class
// baseline on the paper's six GPUs (Table 2 catalog), regenerated from
// (a) measured CPU throughput of the same kernels and (b) the gate-count
// projection model (DESIGN.md §2).  Also prints Table 2 itself (E3).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/descriptor.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "core/throughput.hpp"
#include "gpusim/catalog.hpp"

namespace co = bsrng::core;
namespace gs = bsrng::gpusim;

namespace {

void BM_Fill(benchmark::State& state, const std::string& algo) {
  auto gen = co::make_generator(algo, 1);
  std::vector<std::uint8_t> buf(1 << 16);
  for (auto _ : state) {
    gen->fill(buf);
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

// All CPU measurements below run through one shared StreamEngine (single
// worker: the column is per-device throughput) instead of each row spinning
// up its own measurement loop.
double measured_gbps(co::StreamEngine& engine, const std::string& algo,
                     std::span<std::uint8_t> buf,
                     bsrng::bench::JsonWriter& json) {
  engine.generate(co::StreamRequest{algo, 1}, buf);  // warm-up
  const auto rep = engine.generate(co::StreamRequest{algo, 1}, buf);
  json.add({algo, co::find_algorithm(algo)->lanes, 1, rep.bytes,
            rep.wall_seconds, rep.gbps()});
  return rep.gbps();
}

void print_figure10(bsrng::bench::JsonWriter& json,
                    const std::vector<std::string>& only) {
  co::StreamEngine engine({.workers = 1});
  std::vector<std::uint8_t> buf(8u << 20);
  // Per-bit gate cost at the paper's W = 32 (one GPU thread = 32 lanes).
  // Rows come straight from the descriptor table; `--algos mickey,grain`
  // restricts the sweep to the named cipher bases.
  struct Algo {
    std::string label;
    std::string counter;    // gate_ops_per_step key (the descriptor base)
    double bits_per_step;   // slice bits produced per counted step
    std::string cpu_name;   // measured CPU kernel (widest lanes)
  };
  std::vector<Algo> algos;
  for (const auto& d : co::algorithm_descriptors()) {
    if (!only.empty() &&
        std::find(only.begin(), only.end(), d.base) == only.end())
      continue;
    algos.push_back({d.base + " (bitsliced)", d.base, d.bits_per_step,
                     d.base + "-bs512"});
  }

  std::printf("\n=== Table 2: GPU platforms (paper, verbatim) ===\n");
  std::printf("%-14s %10s %10s %10s\n", "GPU", "SP GFLOPS", "DP GFLOPS",
              "BW GB/s");
  for (const auto& g : gs::device_catalog())
    std::printf("%-14s %10.0f %10.0f %10.0f\n", g.name.c_str(), g.sp_gflops,
                g.dp_gflops, g.mem_bw_gbs);

  std::printf("\n=== Fig. 10: projected throughput (Gbit/s) per device ===\n");
  std::printf("model: util * min(SP_peak/2 / gate_ops_per_bit, BW/bytes_per_bit)\n");
  std::printf("%-22s", "algorithm (ops/bit)");
  for (const auto& g : gs::device_catalog())
    std::printf(" %12s", g.name.c_str());
  std::printf(" %12s\n", "CPU measured");

  for (const auto& a : algos) {
    const double ops_bit =
        co::gate_ops_per_step(a.counter) / (32.0 * a.bits_per_step);
    std::printf("%-15s (%5.1f)", a.label.c_str(), ops_bit);
    for (const auto& g : gs::device_catalog()) {
      const double gbps = gs::project_throughput_gbps(
          g, gs::ProjectionParams{.gate_ops_per_bit = ops_bit});
      std::printf(" %12.1f", gbps);
    }
    std::printf(" %12.2f\n", measured_gbps(engine, a.cpu_name, buf, json));
  }

  // cuRAND-class baseline: empirically memory-utilization-bound; the paper's
  // own numbers imply ~40% of peak write bandwidth (2080 Ti: ~1.94 Tb/s).
  std::printf("%-22s", "cuRAND-class (mem-bound)");
  for (const auto& g : gs::device_catalog())
    std::printf(" %12.1f", 0.40 * g.mem_bw_gbs * 8.0);
  std::printf(" %12.2f\n", measured_gbps(engine, "mt19937", buf, json));

  std::printf(
      "\npaper anchors: MICKEY 2.72 Tb/s on GTX 2080 Ti, 2.90 Tb/s on V100;\n"
      "40%% over cuRAND.  See EXPERIMENTS.md E1 for the shape comparison and\n"
      "the spec-faithful-MICKEY gate-cost discrepancy discussion.\n");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fill, mickey_bs512, "mickey-bs512");
BENCHMARK_CAPTURE(BM_Fill, grain_bs512, "grain-bs512");
BENCHMARK_CAPTURE(BM_Fill, trivium_bs512, "trivium-bs512");
BENCHMARK_CAPTURE(BM_Fill, aes_ctr_bs512, "aes-ctr-bs512");
BENCHMARK_CAPTURE(BM_Fill, mt19937, "mt19937");
BENCHMARK_CAPTURE(BM_Fill, xorwow, "xorwow");
BENCHMARK_CAPTURE(BM_Fill, philox, "philox");

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_fig10_throughput", &argc, argv);
  const std::vector<std::string> only =
      bsrng::bench::split_csv(bsrng::bench::take_flag(&argc, argv, "algos"));
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_figure10(json, only);
  return 0;
}
