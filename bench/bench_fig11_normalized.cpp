// E2 — Table 1 + Fig. 11: throughput normalized per GFLOPS of the executing
// device, comparing prior GPU PRNGs (the paper's Table 1 rows, verbatim)
// against this library's bitsliced generators (projected per device and
// measured on the host CPU).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "bench_json.hpp"
#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "gpusim/catalog.hpp"

namespace co = bsrng::core;
namespace gs = bsrng::gpusim;

namespace {

// One AVX-512 core: 2 FMA ports x 16 SP lanes x 2 flops ~ 64 flops/cycle.
// We read the cycle rate from a quick calibration of a dependency-free loop;
// to stay deterministic offline we assume a nominal 3 GHz => ~192 GFLOPS.
constexpr double kHostGflops = 192.0;

void BM_NormalizedFill(benchmark::State& state, const std::string& algo) {
  auto gen = co::make_generator(algo, 1);
  std::vector<std::uint8_t> buf(1 << 16);
  for (auto _ : state) {
    gen->fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void print_table1_fig11(bsrng::bench::JsonWriter& json) {
  struct PriorWork {
    const char* ref;
    int year;
    const char* gpu;
    double gflops;
    const char* method;
    double gbps;
  };
  // Table 1 of the paper, verbatim.
  const std::vector<PriorWork> prior = {
      {"[20]", 2008, "8800 GTX", 345.6, "RapidMind", 26.0},
      {"[33]", 2008, "7800 GTX", 20.6, "CA-PRNG", 0.41},
      {"[21]", 2009, "T10P", 622.1, "ParkMiller", 35.0},
      {"[12]", 2010, "S1070", 2488.3, "N/A", 4.98},
      {"[31]", 2011, "GTX 480", 1344.96, "xorgensGP", 527.5},
      {"[10]", 2013, "GTX 480", 1344.96, "GASPRNG", 37.4},
  };

  std::printf("\n=== Table 1: prior GPU PRNGs (paper, verbatim) ===\n");
  std::printf("%-6s %-5s %-10s %10s %-12s %10s %16s\n", "Ref", "Year", "GPU",
              "GFLOPS", "Method", "Gbps", "Gbps/GFLOPS");
  for (const auto& p : prior)
    std::printf("%-6s %-5d %-10s %10.1f %-12s %10.2f %16.4f\n", p.ref, p.year,
                p.gpu, p.gflops, p.method, p.gbps, p.gbps / p.gflops);

  std::printf("\n=== Fig. 11: normalized throughput of this work ===\n");
  std::printf("%-26s %10s %16s\n", "configuration", "Gbps", "Gbps/GFLOPS");
  // Projected rows: bitsliced kernels on the paper's devices.
  struct Ours {
    const char* label;
    const char* counter;
    double bits_per_step;
  };
  for (const Ours o : {Ours{"grain-bs / Tesla V100", "grain", 1},
                       Ours{"grain-bs / GTX 2080 Ti", "grain", 1},
                       Ours{"trivium-bs / Tesla V100", "trivium", 1},
                       Ours{"mickey-bs / Tesla V100", "mickey", 1},
                       Ours{"aes-ctr-bs / Tesla V100", "aes-ctr", 128}}) {
    const std::string label = o.label;
    const auto slash = label.find(" / ");
    const auto& gpu = gs::find_device(label.substr(slash + 3));
    const double ops_bit =
        co::gate_ops_per_step(o.counter) / (32.0 * o.bits_per_step);
    const double gbps = gs::project_throughput_gbps(
        gpu, gs::ProjectionParams{.gate_ops_per_bit = ops_bit});
    std::printf("%-26s %10.1f %16.4f   (projected)\n", o.label, gbps,
                gs::normalized_gbps_per_gflops(gpu, gbps));
  }
  // Measured rows on the host CPU core.
  for (const char* algo : {"mickey-bs512", "grain-bs512", "trivium-bs512",
                           "aes-ctr-bs512", "mt19937"}) {
    auto gen = co::make_generator(algo, 1);
    const auto m = co::measure_throughput(*gen, 8ull << 20);
    std::printf("%-26s %10.2f %16.4f   (measured, 1 CPU core @ ~%d GFLOPS)\n",
                (std::string(algo) + " / host").c_str(), m.gbps(),
                m.gbps() / kHostGflops, static_cast<int>(kHostGflops));
    json.add({algo, gen->lanes(), 1, m.bytes, m.seconds, m.gbps()});
  }
  // Devices with high BW-per-FLOP favor cheap kernels most: show the best
  // normalized configuration (Trivium on the GTX 480) explicitly.
  {
    const auto& gtx480 = gs::find_device("GTX 480");
    const double ops_bit = co::gate_ops_per_step("trivium") / 32.0;
    const double gbps = gs::project_throughput_gbps(
        gtx480, gs::ProjectionParams{.gate_ops_per_bit = ops_bit});
    std::printf("%-26s %10.1f %16.4f   (projected)\n",
                "trivium-bs / GTX 480", gbps,
                gs::normalized_gbps_per_gflops(gtx480, gbps));
  }
  std::printf(
      "\nshape check: the cheapest bitsliced kernel (Trivium) exceeds the\n"
      "best prior normalized row (xorgensGP, 0.3922 Gbps/GFLOPS); Grain\n"
      "lands at ~0.14 and spec-faithful MICKEY/AES trail — the per-cipher\n"
      "discussion is in EXPERIMENTS.md E2.\n");
}

}  // namespace

BENCHMARK_CAPTURE(BM_NormalizedFill, grain_bs512, "grain-bs512");
BENCHMARK_CAPTURE(BM_NormalizedFill, trivium_bs512, "trivium-bs512");

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_fig11_normalized", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_table1_fig11(json);
  return 0;
}
