// E10 — §4.1 "full SIMD datapath utilization": the same bitsliced kernels at
// every lane width the host offers.  The paper's argument predicts
// throughput ~ linear in W (until the state outgrows the register/L1
// budget); this bench measures where that holds on the CPU substitute.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/registry.hpp"
#include "core/throughput.hpp"

namespace co = bsrng::core;

namespace {

void BM_Width(benchmark::State& state, const std::string& algo) {
  auto gen = co::make_generator(algo, 3);
  std::vector<std::uint8_t> buf(1 << 16);
  for (auto _ : state) {
    gen->fill(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(buf.size()));
}

void print_scaling_table(bsrng::bench::JsonWriter& json) {
  std::printf("\n=== lane-width scaling (measured Gbit/s, 1 CPU core) ===\n");
  std::printf("%-10s", "cipher");
  for (const int w : {32, 64, 128, 256, 512}) std::printf(" %8s", ("W=" + std::to_string(w)).c_str());
  std::printf(" %14s\n", "512/32 ratio");
  for (const char* cipher :
       {"mickey", "grain", "trivium", "aes-ctr", "a51", "chacha20"}) {
    std::printf("%-10s", cipher);
    double first = 0, last = 0;
    for (const int w : {32, 64, 128, 256, 512}) {
      const std::string name =
          std::string(cipher) + "-bs" + std::to_string(w);
      auto gen = co::make_generator(name, 3);
      const auto m = co::measure_throughput(*gen, 4ull << 20);
      if (w == 32) first = m.gbps();
      last = m.gbps();
      std::printf(" %8.3f", m.gbps());
      json.add({name, static_cast<std::size_t>(w), 1, m.bytes, m.seconds,
                m.gbps()});
    }
    std::printf(" %13.1fx\n", last / first);
  }
  std::printf(
      "\nideal §4.1 scaling is 16x from W=32 to W=512; deviations show where\n"
      "the engine's working set leaves registers (see EXPERIMENTS.md E10).\n");
}

}  // namespace

BENCHMARK_CAPTURE(BM_Width, grain_bs32, "grain-bs32");
BENCHMARK_CAPTURE(BM_Width, grain_bs512, "grain-bs512");
BENCHMARK_CAPTURE(BM_Width, trivium_bs32, "trivium-bs32");
BENCHMARK_CAPTURE(BM_Width, trivium_bs512, "trivium-bs512");

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_width_scaling", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_scaling_table(json);
  return 0;
}
