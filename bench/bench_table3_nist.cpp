// E4 — Table 3: NIST SP 800-22 on the bitsliced MICKEY keystream.
//
// The paper runs 1000 streams x 1 Mbit; this bench runs a time-bounded
// scaled-down protocol (the full protocol is available via
// examples/nist_assessment with explicit arguments) and contrasts the
// all-pass CSPRNG with a generator the suite must reject.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.hpp"
#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "nist/suite.hpp"

namespace {

void run_and_print(const char* algo, std::size_t streams, std::size_t bits,
                   bsrng::bench::JsonWriter& json) {
  auto gen = bsrng::core::make_generator(algo, 0xB5F1A6);
  // Record the keystream rate the suite consumes (generation only, not the
  // statistical tests themselves).
  {
    auto rate_gen = bsrng::core::make_generator(algo, 0xB5F1A6);
    const auto m = bsrng::core::measure_throughput(*rate_gen, 1u << 20);
    json.add({algo, rate_gen->lanes(), 1, m.bytes, m.seconds, m.gbps()});
  }
  bsrng::nist::SuiteConfig cfg;
  cfg.num_streams = streams;
  cfg.stream_bits = bits;
  cfg.run_slow_tests = true;
  const auto rows = bsrng::nist::run_suite(
      [&](std::span<std::uint8_t> out) { gen->fill(out); }, cfg);
  std::printf("\n=== Table 3 protocol on %s: %zu streams x %zu kbit ===\n",
              algo, streams, bits / 1024);
  std::fputs(bsrng::nist::format_table3(rows).c_str(), stdout);
}

void BM_NistFrequencyThroughput(benchmark::State& state) {
  auto gen = bsrng::core::make_generator("mickey-bs512", 1);
  std::vector<std::uint8_t> bytes(1 << 14);
  for (auto _ : state) {
    gen->fill(bytes);
    bsrng::bitslice::BitBuf bits;
    bits.append_bytes(bytes);
    benchmark::DoNotOptimize(bsrng::nist::frequency_test(bits));
  }
}

}  // namespace

BENCHMARK(BM_NistFrequencyThroughput)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  bsrng::bench::JsonWriter json("bench_table3_nist", &argc, argv);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_and_print("mickey-bs512", 24, 128 * 1024, json);
  run_and_print("middle-square", 12, 128 * 1024, json);  // must FAIL
  std::printf(
      "\npaper anchor: Table 3 reports Success on all 12 rows for MICKEY\n"
      "(1000 x 1 Mbit, alpha = 0.01); middle-square is the §2.1 historical\n"
      "generator and is expected to fail — the suite discriminates.\n");
  return 0;
}
