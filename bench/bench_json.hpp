// bench_json.hpp — machine-readable results for the bench_* binaries.
//
// Every bench accepts `--json <path>` (or `--json=<path>`) and, when given,
// writes a JSON array of records alongside its human-readable tables:
//
//   [{"algorithm": "mickey-bs512", "backend": "host",
//     "bench": "bench_stream_engine", "bytes": 4194304, "gbps": 12.3,
//     "seconds": 0.0027, "width": 512, "workers": 4}, ...]
//
// The flag is stripped from argc/argv *before* benchmark::Initialize runs
// (Google Benchmark aborts on flags it does not know).  Records come from
// the benches' own table measurements, so `--benchmark_filter=NONE` still
// produces a full file — that is what the CI smoke run does.  The schema is
// validated by tools/bench_json_check.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace bsrng::bench {

// Scan argv for `--<name> <value>` / `--<name>=<value>`, strip the flag (so
// benchmark::Initialize never sees it — same convention as JsonWriter) and
// return the value, or `def` when the flag is absent.
inline std::string take_flag(int* argc, char** argv, const std::string& name,
                             std::string def = {}) {
  std::string out = std::move(def);
  const std::string bare = "--" + name, prefixed = bare + "=";
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    const std::string arg = argv[r];
    if (arg == bare && r + 1 < *argc) {
      out = argv[++r];
    } else if (arg.rfind(prefixed, 0) == 0) {
      out = arg.substr(prefixed.size());
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  argv[w] = nullptr;
  return out;
}

// "a,b,c" -> {"a", "b", "c"}; empty input -> empty list.
inline std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size() && !s.empty()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// One measured configuration.  `width` is the lane count of the generator
// (1 for scalar baselines, 0 when lanes are not meaningful for the row).
// `backend` records where the stream was produced: "host" for CPU
// generators/StreamEngine rows, "gpusim" for virtual-GPU kernel rows.
struct JsonRecord {
  std::string algorithm;
  std::size_t width = 0;
  std::size_t workers = 1;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  double gbps = 0.0;
  std::string backend = "host";

  // Optional coalescing-diff fields (gpusim rows of bench_memory_ablation):
  // the static analyzer's predicted transaction count / transactions-per-
  // warp-access next to the cost model's measured count, so a predicted-vs-
  // measured regression shows up in a --json diff.  Negative means "not
  // applicable" and the key is omitted from the record.
  std::int64_t transactions_predicted = -1;
  std::int64_t transactions_measured = -1;
  double tpa_predicted = -1.0;
};

class JsonWriter {
 public:
  // Scans argv for `--json <path>` / `--json=<path>`, removes the flag, and
  // updates *argc so benchmark::Initialize never sees it.
  JsonWriter(std::string bench, int* argc, char** argv)
      : bench_(std::move(bench)) {
    int w = 1;
    for (int r = 1; r < *argc; ++r) {
      const std::string arg = argv[r];
      if (arg == "--json" && r + 1 < *argc) {
        path_ = argv[++r];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      } else {
        argv[w++] = argv[r];
      }
    }
    *argc = w;
    argv[w] = nullptr;
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  ~JsonWriter() { write(); }

  bool enabled() const { return !path_.empty(); }

  void add(JsonRecord r) { records_.push_back(std::move(r)); }

  // Serialize and write the file (idempotent; the destructor calls it too).
  void write() {
    if (path_.empty() || written_) return;
    written_ = true;
    telemetry::JsonValue::Array arr;
    arr.reserve(records_.size());
    for (const JsonRecord& r : records_) {
      telemetry::JsonValue::Object o;
      o.emplace("bench", telemetry::JsonValue(bench_));
      o.emplace("algorithm", telemetry::JsonValue(r.algorithm));
      o.emplace("backend", telemetry::JsonValue(r.backend));
      o.emplace("width", telemetry::JsonValue(static_cast<double>(r.width)));
      o.emplace("workers",
                telemetry::JsonValue(static_cast<double>(r.workers)));
      o.emplace("bytes", telemetry::JsonValue(static_cast<double>(r.bytes)));
      o.emplace("seconds", telemetry::JsonValue(r.seconds));
      o.emplace("gbps", telemetry::JsonValue(r.gbps));
      if (r.transactions_predicted >= 0)
        o.emplace("transactions_predicted",
                  telemetry::JsonValue(
                      static_cast<double>(r.transactions_predicted)));
      if (r.transactions_measured >= 0)
        o.emplace("transactions_measured",
                  telemetry::JsonValue(
                      static_cast<double>(r.transactions_measured)));
      if (r.tpa_predicted >= 0.0)
        o.emplace("tpa_predicted", telemetry::JsonValue(r.tpa_predicted));
      arr.emplace_back(std::move(o));
    }
    const std::string text = telemetry::JsonValue(std::move(arr)).dump();
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s for writing\n",
                   path_.c_str());
      return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::fprintf(stderr, "bench_json: wrote %zu records to %s\n",
                 records_.size(), path_.c_str());
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<JsonRecord> records_;
  bool written_ = false;
};

}  // namespace bsrng::bench
