// bench_json_check — validates the --json output of the bench_* binaries.
//
//   bench_json_check <file.json> [<file.json> ...]
//
// Each file must be a non-empty JSON array of records carrying exactly the
// schema the benches emit:
//
//   bench      string, non-empty
//   algorithm  string, non-empty
//   backend    string, non-empty ("host" or "gpusim")
//   width      number, non-negative integer
//   workers    number, positive integer
//   bytes      number, non-negative integer
//   seconds    number, >= 0, finite
//   gbps       number, >= 0, finite
//
// plus, optionally (gpusim coalescing-diff rows of bench_memory_ablation):
//
//   transactions_predicted  number, non-negative integer
//   transactions_measured   number, non-negative integer
//   tpa_predicted           number, >= 0, finite
//
// and, optionally (bsrng_loadgen throughput rows, backend "net"):
//
//   connections             number, positive integer
//   requests                number, non-negative integer
//   oracle_mismatches       number, non-negative integer
//   retries                 number, non-negative integer
//   reconnects              number, non-negative integer
//   faults_injected         number, non-negative integer
//   tenant                  number, positive integer (StreamRef spread)
//   stream                  number, positive integer (StreamRef spread)
//   checkpoint_resumes      number, non-negative integer
//
// Any other key fails validation.  Exit 0 when every file validates; 1
// with a per-record diagnostic
// otherwise.  CI runs this against the smoke-run artifacts and the soak
// job's loadgen records so a schema regression fails the build, not the
// downstream dashboard.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "telemetry/json.hpp"

namespace tel = bsrng::telemetry;

namespace {

bool fail(const char* file, std::size_t idx, const std::string& what) {
  std::fprintf(stderr, "%s: record %zu: %s\n", file, idx, what.c_str());
  return false;
}

bool check_string(const tel::JsonValue& rec, const char* file, std::size_t idx,
                  const char* key) {
  const tel::JsonValue* v = rec.find(key);
  if (v == nullptr) return fail(file, idx, std::string("missing key ") + key);
  if (!v->is_string() || v->as_string().empty())
    return fail(file, idx, std::string(key) + " must be a non-empty string");
  return true;
}

bool check_number(const tel::JsonValue& rec, const char* file, std::size_t idx,
                  const char* key, bool integral, double min,
                  bool optional = false) {
  const tel::JsonValue* v = rec.find(key);
  if (v == nullptr)
    return optional ? true
                    : fail(file, idx, std::string("missing key ") + key);
  if (!v->is_number())
    return fail(file, idx, std::string(key) + " must be a number");
  const double d = v->as_number();
  if (!std::isfinite(d) || d < min)
    return fail(file, idx, std::string(key) + " out of range");
  if (integral && d != std::floor(d))
    return fail(file, idx, std::string(key) + " must be an integer");
  return true;
}

bool check_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto doc = tel::json_parse(ss.str());
  if (!doc) {
    std::fprintf(stderr, "%s: not valid JSON\n", path);
    return false;
  }
  if (!doc->is_array()) {
    std::fprintf(stderr, "%s: top-level value must be an array\n", path);
    return false;
  }
  const auto& arr = doc->as_array();
  if (arr.empty()) {
    std::fprintf(stderr, "%s: record array is empty\n", path);
    return false;
  }
  bool ok = true;
  for (std::size_t i = 0; i < arr.size(); ++i) {
    const tel::JsonValue& rec = arr[i];
    if (!rec.is_object()) {
      ok = fail(path, i, "record must be an object");
      continue;
    }
    ok &= check_string(rec, path, i, "bench");
    ok &= check_string(rec, path, i, "algorithm");
    ok &= check_string(rec, path, i, "backend");
    ok &= check_number(rec, path, i, "width", /*integral=*/true, 0.0);
    ok &= check_number(rec, path, i, "workers", /*integral=*/true, 1.0);
    ok &= check_number(rec, path, i, "bytes", /*integral=*/true, 0.0);
    ok &= check_number(rec, path, i, "seconds", /*integral=*/false, 0.0);
    ok &= check_number(rec, path, i, "gbps", /*integral=*/false, 0.0);
    // Optional coalescing-diff keys (see bench_json.hpp): validated when
    // present, and their presence is the only growth the schema allows.
    ok &= check_number(rec, path, i, "transactions_predicted",
                       /*integral=*/true, 0.0, /*optional=*/true);
    ok &= check_number(rec, path, i, "transactions_measured",
                       /*integral=*/true, 0.0, /*optional=*/true);
    ok &= check_number(rec, path, i, "tpa_predicted", /*integral=*/false, 0.0,
                       /*optional=*/true);
    // Optional loadgen keys (bsrng_loadgen --json soak records).
    ok &= check_number(rec, path, i, "connections", /*integral=*/true, 1.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "requests", /*integral=*/true, 0.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "oracle_mismatches", /*integral=*/true,
                       0.0, /*optional=*/true);
    ok &= check_number(rec, path, i, "retries", /*integral=*/true, 0.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "reconnects", /*integral=*/true, 0.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "faults_injected", /*integral=*/true,
                       0.0, /*optional=*/true);
    // Optional substream-fabric keys (v2 StreamRef loadgen runs).
    ok &= check_number(rec, path, i, "tenant", /*integral=*/true, 1.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "stream", /*integral=*/true, 1.0,
                       /*optional=*/true);
    ok &= check_number(rec, path, i, "checkpoint_resumes", /*integral=*/true,
                       0.0, /*optional=*/true);
    std::size_t known = 8;
    for (const char* opt :
         {"transactions_predicted", "transactions_measured", "tpa_predicted",
          "connections", "requests", "oracle_mismatches", "retries",
          "reconnects", "faults_injected", "tenant", "stream",
          "checkpoint_resumes"})
      if (rec.find(opt) != nullptr) ++known;
    if (rec.as_object().size() != known)
      ok = fail(path, i, "record carries keys outside the schema");
  }
  if (ok)
    std::fprintf(stderr, "%s: %zu records OK\n", path, arr.size());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_check <file.json> [...]\n");
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok &= check_file(argv[i]);
  return ok ? 0 : 1;
}
