// bsrng_loadgen — concurrent load generator + byte oracle for bsrngd.
//
//   bsrng_loadgen --port N [--host ADDR] [--connections N] [--requests M]
//                 [--pipeline D] [--algos a,b,c] [--spans s1,s2,...]
//                 [--seed S] [--jump-every K] [--oracle-workers W]
//                 [--tenants T] [--streams U] [--resume-every K]
//                 [--time-limit SECONDS] [--json PATH]
//                 [--chaos SEED] [--chaos-rate R]
//
// Opens N concurrent connections (one poll loop, non-blocking sockets).
// Connection i drives tenant (algos[i % |algos|], S + i) with M pipelined
// kGenerate requests of rotating span sizes; every returned byte is checked
// against an in-process oracle — a local net::Session over a local
// StreamEngine, i.e. the same code path bsrngd itself serves from, seeded
// identically.  With --jump-every K every Kth request restarts the stream
// at half the cursor, exercising the server's out-of-order resume path.
//
// --tenants T / --streams U spread connections over the v2 substream tree:
// connection i addresses StreamRef {i % T, (i / T) % U, 0} via kGenerate2
// frames (the root ref {0,0,0} stays on v1 kGenerate, so T=U=1 is the
// historical v1 run and T*U > 1 produces a mixed-version workload).  The
// oracle is seeded with the DERIVED substream seed, so every compare also
// proves the server's fold law: v2 bytes == v1 bytes of the derived seed.
// --resume-every K turns every Kth request into a checkpoint/resume pair:
// a kCheckpoint frame whose blob is compared against the locally minted
// serialize_checkpoint (the format is deterministic), then a kResume
// carrying that blob in place of the explicit coordinates.
//
// --chaos SEED switches to the resilient mode: one ResilientClient per
// connection on its own thread, retrying every span through timeouts,
// resets, sheds, and server restarts until delivered — and arms the
// deterministic fault registry (src/fault) at --chaos-rate (default 0.02)
// so the client's own syscalls misbehave on the pinned splitmix64 schedule.
// Every expected byte is precomputed BEFORE arming (the oracle runs
// in-process and must not see injected faults), so the final comparison is
// exact: whatever the failure weather, the delivered stream must equal the
// oracle stream byte-for-byte.
//
// Exit status is 0 only when every connection completed every request with
// zero oracle mismatches and zero protocol errors — this is the soak-job
// and chaos-job gate.  --json writes per-algorithm throughput records in
// the bench_* schema (validated by tools/bench_json_check):
// bench/algorithm/backend ("net")/width/workers/bytes/seconds/gbps plus the
// loadgen extras connections, requests, oracle_mismatches, retries,
// reconnects, faults_injected.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"
#include "fault/fault.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/resilient_client.hpp"
#include "net/session.hpp"
#include "stream/checkpoint.hpp"
#include "stream/stream_ref.hpp"
#include "telemetry/json.hpp"

namespace core = bsrng::core;
namespace net = bsrng::net;
namespace tel = bsrng::telemetry;

namespace {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t connections = 64;
  std::size_t requests = 32;   // per connection
  std::size_t pipeline = 4;    // in-flight requests per connection
  std::vector<std::string> algos;
  std::vector<std::uint32_t> spans;
  std::uint64_t seed = 1;
  std::size_t jump_every = 0;  // 0 = strictly sequential offsets
  std::size_t oracle_workers = 2;
  std::size_t tenants = 1;       // v2 ref spreading: tenant axis
  std::size_t streams = 1;       // v2 ref spreading: stream axis
  std::size_t resume_every = 0;  // 0 = never checkpoint/resume
  double time_limit = 120.0;
  std::string json_path;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  double chaos_rate = 0.02;
};

struct InFlight {
  std::uint64_t offset = 0;
  std::uint32_t nbytes = 0;
  std::vector<std::uint8_t> expected;
  // false for a kCheckpoint mint riding ahead of its kResume: its answer is
  // a blob, not stream bytes, and it doesn't count toward done/bytes_ok.
  bool counts = true;
  bool is_resume = false;  // completed via kResume (checkpoint_resumes stat)
};

struct Conn {
  int fd = -1;
  std::size_t index = 0;
  std::string algorithm;
  std::uint64_t seed = 0;              // root seed on the wire
  bsrng::stream::StreamRef ref;        // substream this connection drives
  std::unique_ptr<net::Session> oracle;
  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;
  std::vector<std::uint8_t> rbuf;
  std::deque<InFlight> inflight;
  std::uint64_t cursor = 0;
  std::size_t sent = 0;
  std::size_t done = 0;
  std::uint64_t bytes_ok = 0;
  bool failed = false;
  bool finished = false;

  std::size_t pending_write() const { return wbuf.size() - wpos; }
};

// Per-algorithm aggregation for the summary and the --json records.
struct Agg {
  std::uint64_t bytes = 0;
  std::size_t connections = 0;
  std::size_t requests = 0;
};

// Cross-mode run totals feeding the summary line and the JSON records.
struct Totals {
  std::map<std::string, Agg> per_algo;
  std::uint64_t bytes = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t checkpoint_resumes = 0;
  std::size_t incomplete = 0;
  bool timed_out = false;
  double seconds = 0.0;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: bsrng_loadgen --port N [--host ADDR] [--connections N]\n"
      "       [--requests M] [--pipeline D] [--algos a,b,c] [--spans s,..]\n"
      "       [--seed S] [--jump-every K] [--oracle-workers W]\n"
      "       [--tenants T] [--streams U] [--resume-every K]\n"
      "       [--time-limit SECONDS] [--json PATH]\n"
      "       [--chaos SEED] [--chaos-rate R]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::size_t end = comma == std::string::npos ? s.size() : comma;
    if (end > start) out.push_back(s.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

int write_json(const Options& opt, const Totals& t) {
  tel::JsonValue::Array arr;
  const double faults_injected =
      static_cast<double>(bsrng::fault::faults().total_fired());
  for (const auto& [algo, agg] : t.per_algo) {
    const auto info = core::find_algorithm(algo);
    tel::JsonValue::Object o;
    o.emplace("bench", tel::JsonValue(std::string("bsrng_loadgen")));
    o.emplace("algorithm", tel::JsonValue(algo));
    o.emplace("backend", tel::JsonValue(std::string("net")));
    o.emplace("width",
              tel::JsonValue(static_cast<double>(info ? info->lanes : 0)));
    o.emplace("workers", tel::JsonValue(static_cast<double>(
                             std::max<std::size_t>(1, agg.connections))));
    o.emplace("bytes", tel::JsonValue(static_cast<double>(agg.bytes)));
    o.emplace("seconds", tel::JsonValue(t.seconds));
    o.emplace("gbps",
              tel::JsonValue(t.seconds > 0 ? static_cast<double>(agg.bytes) *
                                                 8.0 / t.seconds / 1e9
                                           : 0.0));
    o.emplace("connections",
              tel::JsonValue(static_cast<double>(agg.connections)));
    o.emplace("requests", tel::JsonValue(static_cast<double>(agg.requests)));
    o.emplace("oracle_mismatches",
              tel::JsonValue(static_cast<double>(t.mismatches)));
    o.emplace("retries", tel::JsonValue(static_cast<double>(t.retries)));
    o.emplace("reconnects",
              tel::JsonValue(static_cast<double>(t.reconnects)));
    o.emplace("faults_injected", tel::JsonValue(faults_injected));
    // v2 substream-fabric extras: how wide the StreamRef spread was and
    // how many requests completed via checkpoint/resume.
    o.emplace("tenant", tel::JsonValue(static_cast<double>(opt.tenants)));
    o.emplace("stream", tel::JsonValue(static_cast<double>(opt.streams)));
    o.emplace("checkpoint_resumes",
              tel::JsonValue(static_cast<double>(t.checkpoint_resumes)));
    arr.emplace_back(std::move(o));
  }
  const std::string text = tel::JsonValue(std::move(arr)).dump();
  std::FILE* f = std::fopen(opt.json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bsrng_loadgen: cannot write %s\n",
                 opt.json_path.c_str());
    return 1;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

// --- chaos mode ----------------------------------------------------------
// One thread per connection, each a ResilientClient fetching strictly
// sequential spans and comparing against a precomputed oracle prefix.

int run_chaos(const Options& opt, Totals& t) {
  // Precompute every expected byte BEFORE arming the fault registry: the
  // oracle shares this process, and an armed registry would inject faults
  // into the oracle engine's own pool.  Chaos offsets are sequential from
  // zero, so per tenant the expectation is just a stream prefix.
  core::StreamEngine oracle_engine(
      core::StreamEngineConfig{.workers = opt.oracle_workers});
  std::vector<std::vector<std::uint8_t>> expected(opt.connections);
  std::vector<std::vector<std::uint64_t>> offs(opt.connections);
  for (std::size_t i = 0; i < opt.connections; ++i) {
    std::uint64_t total = 0;
    offs[i].reserve(opt.requests + 1);
    for (std::size_t r = 0; r < opt.requests; ++r) {
      offs[i].push_back(total);
      total += opt.spans[(i + r) % opt.spans.size()];
    }
    offs[i].push_back(total);
    expected[i].resize(total);
    const bsrng::stream::StreamRef ref{i % opt.tenants,
                                       (i / opt.tenants) % opt.streams, 0};
    net::Session oracle(opt.algos[i % opt.algos.size()],
                        ref.derive_seed(opt.seed + i));
    oracle.serve(oracle_engine, 0, expected[i]);
  }

  bsrng::fault::faults().arm(opt.chaos_seed, opt.chaos_rate);
  std::printf("bsrng_loadgen: chaos armed, seed %llu rate %g\n",
              static_cast<unsigned long long>(opt.chaos_seed),
              opt.chaos_rate);
  std::fflush(stdout);

  struct Result {
    std::size_t done = 0;
    std::uint64_t bytes = 0;
    std::uint64_t mismatches = 0;
    net::ResilientClientStats stats;
    std::string error;
    bool timed_out = false;
  };
  std::vector<Result> results(opt.connections);

  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
               std::chrono::duration<double>(opt.time_limit));

  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  for (std::size_t i = 0; i < opt.connections; ++i) {
    threads.emplace_back([&, i] {
      Result& res = results[i];
      net::ResilientClientConfig cfg;
      cfg.host = opt.host;
      cfg.port = opt.port;
      cfg.connect_timeout_ms = 2000;
      cfg.request_timeout_ms = 10000;
      cfg.max_attempts = 64;
      cfg.backoff_base_ms = 1;
      cfg.backoff_cap_ms = 100;
      // Distinct per-thread jitter stream, still a pure function of the
      // chaos seed — no thread id, no clock.
      cfg.jitter_seed =
          opt.chaos_seed ^ (0x9E3779B97F4A7C15ull * (i + 1));
      net::ResilientClient rc(cfg);
      const std::string& algo = opt.algos[i % opt.algos.size()];
      const std::uint64_t seed = opt.seed + i;
      const bsrng::stream::StreamRef ref{
          i % opt.tenants, (i / opt.tenants) % opt.streams, 0};
      std::vector<std::uint8_t> buf;
      for (std::size_t r = 0; r < opt.requests; ++r) {
        if (std::chrono::steady_clock::now() > deadline) {
          res.timed_out = true;
          break;
        }
        const std::uint64_t off = offs[i][r];
        const std::size_t n = static_cast<std::size_t>(offs[i][r + 1] - off);
        buf.resize(n);
        try {
          rc.fetch(algo, seed, ref, off, buf);
        } catch (const std::exception& e) {
          res.error = e.what();
          break;
        }
        if (!std::equal(buf.begin(), buf.end(), expected[i].begin() + off)) {
          ++res.mismatches;
          std::fprintf(stderr,
                       "bsrng_loadgen: ORACLE MISMATCH conn %zu %s seed "
                       "%llu offset %llu nbytes %zu\n",
                       i, algo.c_str(), static_cast<unsigned long long>(seed),
                       static_cast<unsigned long long>(off), n);
        }
        res.bytes += n;
        ++res.done;
      }
      res.stats = rc.stats();
    });
  }
  for (std::thread& th : threads) th.join();
  t.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();

  for (std::size_t i = 0; i < opt.connections; ++i) {
    const Result& res = results[i];
    Agg& a = t.per_algo[opt.algos[i % opt.algos.size()]];
    a.bytes += res.bytes;
    a.connections += 1;
    a.requests += res.done;
    t.bytes += res.bytes;
    t.mismatches += res.mismatches;
    t.retries += res.stats.retries;
    t.reconnects += res.stats.reconnects;
    if (res.done != opt.requests) {
      ++t.incomplete;
      if (!res.error.empty()) {
        ++t.protocol_errors;
        std::fprintf(stderr, "bsrng_loadgen: conn %zu failed: %s\n", i,
                     res.error.c_str());
      }
      if (res.timed_out) t.timed_out = true;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bsrng_loadgen: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (arg == "--connections") opt.connections = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--requests") opt.requests = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--pipeline") opt.pipeline = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--algos") opt.algos = split_csv(next());
    else if (arg == "--spans") {
      for (const std::string& s : split_csv(next()))
        opt.spans.push_back(static_cast<std::uint32_t>(std::atoll(s.c_str())));
    } else if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(std::atoll(next()));
    else if (arg == "--jump-every") opt.jump_every = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--oracle-workers") opt.oracle_workers = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--tenants") opt.tenants = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--streams") opt.streams = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--resume-every") opt.resume_every = static_cast<std::size_t>(std::atoll(next()));
    else if (arg == "--time-limit") opt.time_limit = std::atof(next());
    else if (arg == "--json") opt.json_path = next();
    else if (arg == "--chaos") {
      opt.chaos = true;
      opt.chaos_seed =
          static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--chaos-rate") opt.chaos_rate = std::atof(next());
    else return usage();
  }
  if (opt.port == 0) return usage();
  if (opt.algos.empty())
    opt.algos = {"mickey-bs64", "grain-bs64",  "trivium-bs64",
                 "aes-ctr-bs64", "a51-bs64",   "chacha20-bs64"};
  if (opt.spans.empty()) opt.spans = {512, 4096, 1024, 65536, 256};
  if (opt.pipeline == 0) opt.pipeline = 1;
  if (opt.tenants == 0) opt.tenants = 1;
  if (opt.streams == 0) opt.streams = 1;
  for (const std::string& a : opt.algos)
    if (!core::algorithm_exists(a)) {
      std::fprintf(stderr, "bsrng_loadgen: unknown algorithm %s\n", a.c_str());
      return 2;
    }

  Totals totals;
  if (opt.chaos) {
    const int rc = run_chaos(opt, totals);
    if (rc != 0) return rc;
  } else {
  core::StreamEngine oracle_engine(
      core::StreamEngineConfig{.workers = opt.oracle_workers});

  std::vector<Conn> conns(opt.connections);
  std::uint64_t protocol_errors = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t checkpoint_resumes = 0;
  for (std::size_t i = 0; i < conns.size(); ++i) {
    Conn& c = conns[i];
    c.index = i;
    c.algorithm = opt.algos[i % opt.algos.size()];
    c.seed = opt.seed + i;
    c.ref = {i % opt.tenants, (i / opt.tenants) % opt.streams, 0};
    // Oracle at the DERIVED seed: the server folds the ref to exactly this
    // identity, so every byte compare proves the fold law end to end.
    c.oracle = std::make_unique<net::Session>(c.algorithm,
                                              c.ref.derive_seed(c.seed));
    c.fd = connect_to(opt.host, opt.port);
    if (c.fd < 0) {
      std::fprintf(stderr, "bsrng_loadgen: connect %zu failed: %s\n", i,
                   std::strerror(errno));
      return 1;
    }
  }

  const auto enqueue = [&](Conn& c) {
    std::uint64_t offset = c.cursor;
    if (opt.jump_every != 0 && c.sent != 0 &&
        c.sent % opt.jump_every == 0)
      offset = c.cursor / 2;  // deterministic back-seek: resume-path probe
    const std::uint32_t n =
        opt.spans[(c.index + c.sent) % opt.spans.size()];
    InFlight f;
    f.offset = offset;
    f.nbytes = n;
    f.expected.resize(n);
    c.oracle->serve(oracle_engine, offset, f.expected);
    const bool via_resume = opt.resume_every != 0 && c.sent > 0 &&
                            c.sent % opt.resume_every == 0;
    std::vector<std::uint8_t> frame;
    if (via_resume) {
      // Checkpoint/resume pair: the kCheckpoint answer must equal the
      // locally minted blob (the format is deterministic), and the kResume
      // riding behind it must serve the same bytes a kGenerate would.
      const std::vector<std::uint8_t> blob = bsrng::stream::
          serialize_checkpoint({c.algorithm, c.seed, c.ref, offset});
      InFlight mint;
      mint.offset = offset;
      mint.nbytes = static_cast<std::uint32_t>(blob.size());
      mint.expected = blob;
      mint.counts = false;
      frame = net::encode_checkpoint_request(
          {c.algorithm, c.seed, offset, 0, c.ref});
      c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
      c.inflight.push_back(std::move(mint));
      f.is_resume = true;
      frame = net::encode_resume(blob, n);
    } else if (c.ref.is_root()) {
      frame = net::encode_generate({c.algorithm, c.seed, offset, n});
    } else {
      frame = net::encode_generate2({c.algorithm, c.seed, offset, n, c.ref});
    }
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
    c.inflight.push_back(std::move(f));
    c.cursor = offset + n;
    ++c.sent;
  };
  for (Conn& c : conns)
    while (c.sent < opt.requests && c.inflight.size() < opt.pipeline)
      enqueue(c);

  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  std::vector<pollfd> pfds;
  std::vector<std::size_t> owner;
  std::size_t finished = 0;
  bool timed_out = false;
  while (finished < conns.size()) {
    if (elapsed() > opt.time_limit) {
      timed_out = true;
      break;
    }
    pfds.clear();
    owner.clear();
    for (Conn& c : conns) {
      if (c.finished) continue;
      short ev = 0;
      if (!c.inflight.empty()) ev |= POLLIN;
      if (c.pending_write() > 0) ev |= POLLOUT;
      pfds.push_back({c.fd, ev, 0});
      owner.push_back(c.index);
    }
    if (pfds.empty()) break;
    const int n = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 200);
    if (n < 0 && errno != EINTR) break;
    for (std::size_t p = 0; p < pfds.size(); ++p) {
      Conn& c = conns[owner[p]];
      const short re = pfds[p].revents;
      if (re == 0) continue;
      const auto fail_conn = [&](const char* why) {
        if (!c.failed) {
          std::fprintf(stderr, "bsrng_loadgen: conn %zu (%s): %s\n", c.index,
                       c.algorithm.c_str(), why);
          ++protocol_errors;
          c.failed = true;
        }
        ::close(c.fd);
        c.finished = true;
        ++finished;
      };
      if ((re & (POLLERR | POLLNVAL)) != 0) {
        fail_conn("socket error");
        continue;
      }
      if ((re & POLLOUT) != 0) {
        bool dead = false;
        while (c.pending_write() > 0) {
          const ssize_t w = ::send(c.fd, c.wbuf.data() + c.wpos,
                                   c.pending_write(), MSG_NOSIGNAL);
          if (w > 0) {
            c.wpos += static_cast<std::size_t>(w);
            continue;
          }
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (w < 0 && errno == EINTR) continue;
          dead = true;
          break;
        }
        if (c.wpos == c.wbuf.size()) {
          c.wbuf.clear();
          c.wpos = 0;
        }
        if (dead) {
          fail_conn("send failed");
          continue;
        }
      }
      if ((re & (POLLIN | POLLHUP)) != 0) {
        std::uint8_t buf[65536];
        bool eof = false;
        for (;;) {
          const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
          if (r > 0) {
            c.rbuf.insert(c.rbuf.end(), buf, buf + r);
            continue;
          }
          if (r == 0) {
            eof = true;
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR) continue;
          eof = true;
          break;
        }
        std::vector<std::uint8_t> body;
        bool broken = false;
        try {
          while (!c.inflight.empty() &&
                 net::extract_frame(c.rbuf, body, net::kMaxGenerateBytes + 64)) {
            const auto resp = net::decode_response(body);
            const InFlight& f = c.inflight.front();
            if (!resp || resp->status != net::Status::kOk ||
                resp->payload.size() != f.nbytes) {
              broken = true;
              break;
            }
            if (resp->payload != f.expected) {
              ++mismatches;
              std::fprintf(stderr,
                           "bsrng_loadgen: ORACLE MISMATCH conn %zu %s seed "
                           "%llu offset %llu nbytes %u%s\n",
                           c.index, c.algorithm.c_str(),
                           static_cast<unsigned long long>(c.seed),
                           static_cast<unsigned long long>(f.offset),
                           f.nbytes, f.counts ? "" : " (checkpoint blob)");
            }
            const bool counted = f.counts;
            if (counted) {
              c.bytes_ok += f.nbytes;
              if (f.is_resume) ++checkpoint_resumes;
            }
            c.inflight.pop_front();
            if (counted) {
              ++c.done;
              if (c.sent < opt.requests) enqueue(c);
            }
          }
        } catch (const std::exception&) {
          broken = true;
        }
        if (broken) {
          fail_conn("protocol error in response stream");
          continue;
        }
        if (c.done == opt.requests && c.inflight.empty() &&
            c.pending_write() == 0) {
          ::close(c.fd);
          c.finished = true;
          ++finished;
          continue;
        }
        if (eof) {
          fail_conn("server closed connection early");
          continue;
        }
      }
    }
  }
  totals.seconds = elapsed();
  totals.timed_out = timed_out;
  totals.mismatches = mismatches;
  totals.protocol_errors = protocol_errors;
  totals.checkpoint_resumes = checkpoint_resumes;
  for (const Conn& c : conns) {
    Agg& a = totals.per_algo[c.algorithm];
    a.bytes += c.bytes_ok;
    a.connections += 1;
    a.requests += c.done;
    totals.bytes += c.bytes_ok;
    if (c.done != opt.requests) ++totals.incomplete;
  }
  }  // !opt.chaos

  std::printf("bsrng_loadgen: %zu connections x %zu requests, %llu bytes in "
              "%.3f s (%.2f Gbit/s), %llu mismatches, %llu protocol errors, "
              "%zu incomplete, %llu retries, %llu reconnects, %llu "
              "checkpoint resumes, %llu faults injected%s\n",
              opt.connections, opt.requests,
              static_cast<unsigned long long>(totals.bytes), totals.seconds,
              totals.seconds > 0
                  ? static_cast<double>(totals.bytes) * 8.0 / totals.seconds /
                        1e9
                  : 0.0,
              static_cast<unsigned long long>(totals.mismatches),
              static_cast<unsigned long long>(totals.protocol_errors),
              totals.incomplete,
              static_cast<unsigned long long>(totals.retries),
              static_cast<unsigned long long>(totals.reconnects),
              static_cast<unsigned long long>(totals.checkpoint_resumes),
              static_cast<unsigned long long>(
                  bsrng::fault::faults().total_fired()),
              totals.timed_out ? " [TIME LIMIT]" : "");

  if (!opt.json_path.empty()) {
    const int rc = write_json(opt, totals);
    if (rc != 0) return rc;
  }

  const bool ok = !totals.timed_out && totals.incomplete == 0 &&
                  totals.mismatches == 0 && totals.protocol_errors == 0;
  return ok ? 0 : 1;
}
