// bsrng_staticcheck — static kernel-access verification + determinism lint.
//
//   bsrng_staticcheck sweep [--verbose]
//       Prove race/bounds/uninit/barrier obligations for every registered
//       cipher descriptor across a geometry lattice (blocks x threads x
//       words x staging depth, ragged staging tails, both output layouts).
//       Exits 1 on any refutation, and also when a geometry that promises
//       full coalescing (coalesced_layout with warp-multiple block size)
//       fails to achieve it or incurs shared-memory bank conflicts.
//
//   bsrng_staticcheck analyze <algorithm> [--blocks N] [--tpb N] [--wpt N]
//                     [--staging N] [--no-staging] [--strided]
//       Print the full obligation/coalescing/bank verdict for one launch.
//
//   bsrng_staticcheck lint [paths...]
//       Determinism lint over the generation-critical trees (default:
//       src/core src/ciphers src/bitslice src/lfsr under the current
//       directory).  Exits 1 when any banned nondeterminism source is found.
//
// CI runs `sweep` and `lint` in the static-analysis job.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/static_analyzer.hpp"
#include "core/descriptor.hpp"

namespace an = bsrng::analysis;
namespace core = bsrng::core;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bsrng_staticcheck sweep [--verbose]\n"
               "       bsrng_staticcheck analyze <algorithm> [--blocks N] "
               "[--tpb N] [--wpt N] [--staging N] [--no-staging] [--strided]\n"
               "       bsrng_staticcheck lint [paths...]\n");
  return 2;
}

std::size_t parse_size(const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "bsrng_staticcheck: bad number '%s'\n", s);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

std::string geometry_tag(const core::GpuKernelConfig& cfg) {
  std::string tag = "blocks=" + std::to_string(cfg.blocks) +
                    " tpb=" + std::to_string(cfg.threads_per_block) +
                    " wpt=" + std::to_string(cfg.words_per_thread);
  tag += cfg.use_shared_staging
             ? " staging=" + std::to_string(cfg.staging_words)
             : " staging=off";
  tag += cfg.coalesced_layout ? " layout=coalesced" : " layout=per-thread";
  return tag;
}

// One lattice point: verify the verdict and the performance promises the
// geometry makes.  Returns the number of violations (0 = pass).
int check_point(const std::string& base, const core::GpuKernelConfig& cfg,
                bool verbose) {
  const an::StaticAnalysis a = an::analyze_descriptor_kernel(base, cfg);
  int bad = 0;
  if (!a.clean()) {
    std::fprintf(stderr, "REFUTED %s %s\n%s", base.c_str(),
                 geometry_tag(cfg).c_str(), a.summary().c_str());
    ++bad;
  }
  for (const an::Obligation& o : a.obligations)
    if (!o.proven) {
      std::fprintf(stderr, "UNPROVEN %s %s: %s (%s)\n", base.c_str(),
                   geometry_tag(cfg).c_str(), o.name.c_str(),
                   o.detail.c_str());
      ++bad;
    }
  // The §4.5 promise: a coalesced layout with warp-aligned blocks moves
  // every byte in minimum-count 128B transactions, and staging through
  // shared memory is bank-conflict-free.
  const bool warp_aligned = cfg.threads_per_block % 32 == 0;
  if (cfg.coalesced_layout && warp_aligned) {
    if (!a.coalescing.fully_coalesced()) {
      std::fprintf(stderr, "NOT-COALESCED %s %s: %llu transactions\n",
                   base.c_str(), geometry_tag(cfg).c_str(),
                   static_cast<unsigned long long>(
                       a.coalescing.global_transactions));
      ++bad;
    }
    if (!a.banks.conflict_free()) {
      std::fprintf(stderr, "BANK-CONFLICT %s %s: degree %zu\n", base.c_str(),
                   geometry_tag(cfg).c_str(), a.banks.max_degree);
      ++bad;
    }
  }
  if (verbose && bad == 0)
    std::printf("ok %s %s (tpa %.3f, bank degree %zu)\n", base.c_str(),
                geometry_tag(cfg).c_str(),
                a.coalescing.transactions_per_access(), a.banks.max_degree);
  return bad;
}

int run_sweep(bool verbose) {
  // words_per_thread values are multiples of every counter cipher's block
  // granularity (aes-ctr 16B, chacha20 64B), so the whole lattice is legal
  // for all six descriptors.
  const std::size_t kBlocks[] = {1, 3};
  const std::size_t kTpb[] = {1, 8, 32, 33, 64};
  const std::size_t kWpt[] = {16, 48};
  const std::size_t kStaging[] = {0, 4, 7, 64};  // 0 = staging off; 7 vs 48
                                                 // gives a ragged tail; 64 >
                                                 // wpt clamps to one round
  int violations = 0;
  std::size_t points = 0;
  for (const core::AlgorithmDescriptor& d : core::algorithm_descriptors()) {
    for (const std::size_t blocks : kBlocks)
      for (const std::size_t tpb : kTpb)
        for (const std::size_t wpt : kWpt)
          for (const std::size_t staging : kStaging)
            for (const bool coalesced : {true, false}) {
              core::GpuKernelConfig cfg;
              cfg.blocks = blocks;
              cfg.threads_per_block = tpb;
              cfg.words_per_thread = wpt;
              cfg.use_shared_staging = staging != 0;
              cfg.staging_words = staging != 0 ? staging : 16;
              cfg.coalesced_layout = coalesced;
              violations += check_point(d.base, cfg, verbose);
              ++points;
            }
  }
  std::printf("bsrng_staticcheck: %zu launch geometries across %zu ciphers, "
              "%d violation(s)\n",
              points, core::algorithm_descriptors().size(), violations);
  return violations == 0 ? 0 : 1;
}

int run_analyze(int argc, char** argv) {
  if (argc < 1) return usage();
  const std::string base = argv[0];
  core::GpuKernelConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bsrng_staticcheck: %s needs a value\n",
                     argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--blocks") cfg.blocks = parse_size(next());
    else if (arg == "--tpb") cfg.threads_per_block = parse_size(next());
    else if (arg == "--wpt") cfg.words_per_thread = parse_size(next());
    else if (arg == "--staging") {
      cfg.staging_words = parse_size(next());
      cfg.use_shared_staging = true;
    } else if (arg == "--no-staging") cfg.use_shared_staging = false;
    else if (arg == "--strided") cfg.coalesced_layout = false;
    else return usage();
  }
  const an::StaticAnalysis a = an::analyze_descriptor_kernel(base, cfg);
  std::printf("%s", a.summary().c_str());
  return a.clean() ? 0 : 1;
}

int run_lint(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 0; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots = an::default_lint_roots(".");
  const std::vector<an::LintFinding> findings = an::lint_paths(roots);
  for (const an::LintFinding& f : findings)
    std::fprintf(stderr, "%s\n", f.to_string().c_str());
  std::printf("bsrng_staticcheck: lint over %zu root(s), %zu finding(s)\n",
              roots.size(), findings.size());
  return findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view mode = argv[1];
  try {
    if (mode == "sweep") {
      const bool verbose =
          argc > 2 && std::string_view(argv[2]) == "--verbose";
      return run_sweep(verbose);
    }
    if (mode == "analyze") return run_analyze(argc - 2, argv + 2);
    if (mode == "lint") return run_lint(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bsrng_staticcheck: %s\n", e.what());
    return 1;
  }
  return usage();
}
