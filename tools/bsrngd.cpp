// bsrngd — the BSRNG RNG-as-a-service daemon.
//
//   bsrngd [--port N] [--bind ADDR] [--workers N] [--numa N]
//          [--max-connections N] [--max-seek BYTES] [--telemetry]
//          [--idle-timeout MS] [--loris-timeout MS] [--shed-bytes N]
//          [--tenant-pending N] [--tenant-bps N] [--drain-ms MS]
//          [--chaos SEED] [--chaos-rate R]
//
// Serves every registered algorithm over the length-prefixed TCP protocol
// (src/net/protocol.hpp): a client names (algorithm, seed, offset, nbytes)
// and receives exactly those bytes of the canonical make_generator stream —
// the same bytes at any worker count, any connection interleaving, and
// across daemon restarts, because tenant identity is (algorithm, seed) and
// position is the client-held offset.  v2 clients address substreams with
// a (tenant, stream, shard) StreamRef and can checkpoint/resume positions
// (kCheckpoint/kResume); the served bytes are identical either way.
// --numa N forces N emulated NUMA nodes for the engine pool (0 = detect:
// BSRNG_NUMA_NODES env, then sysfs, then single node) — placement only;
// served bytes never change.  `--port 0` (the default) binds an
// ephemeral port; the chosen port is printed on stdout either way, so
// scripts can scrape it.  A plain `curl http://host:port/metrics` (any HTTP
// GET) returns the telemetry snapshot as JSON; --telemetry enables the
// process registry at startup (equivalent to BSRNG_TELEMETRY=1).
//
// Shutdown: SIGINT stops immediately (connections cut; clients resume by
// offset).  SIGTERM drains gracefully — the listener stops accepting,
// pending requests on every connection are served, quiet connections close,
// and after --drain-ms the stragglers are cut off too.
//
// --chaos SEED arms the deterministic fault-injection registry
// (src/fault/fault.hpp) across every compiled-in injection point at
// --chaos-rate (default 0.02): worker throws/stalls in the pool, engine
// allocation failures, and server-side syscall faults (short reads/writes,
// resets, dropped accepts).  The schedule is a pure function of SEED — two
// runs inject the identical fault sequence.  Equivalent to
// BSRNG_FAULTS="SEED:RATE" in the environment.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "fault/fault.hpp"
#include "net/server.hpp"
#include "telemetry/metrics.hpp"

namespace {

// 0 = run, 1 = stop now (SIGINT), 2 = drain then stop (SIGTERM).
volatile std::sig_atomic_t g_stop = 0;

void handle_int(int) { g_stop = 1; }
void handle_term(int) { g_stop = 2; }

int usage() {
  std::fprintf(stderr,
               "usage: bsrngd [--port N] [--bind ADDR] [--workers N]\n"
               "              [--numa N]\n"
               "              [--max-connections N] [--max-seek BYTES]\n"
               "              [--telemetry]\n"
               "              [--idle-timeout MS] [--loris-timeout MS]\n"
               "              [--shed-bytes N] [--tenant-pending N]\n"
               "              [--tenant-bps N] [--drain-ms MS]\n"
               "              [--chaos SEED] [--chaos-rate R]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bsrng::net::ServerConfig config;
  bool telemetry_on = false;
  bool chaos = false;
  std::uint64_t chaos_seed = 0;
  double chaos_rate = 0.02;
  int drain_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bsrngd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--bind") {
      config.bind_address = next();
    } else if (arg == "--workers") {
      config.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--numa") {
      // Force N emulated NUMA nodes for the engine pool (0 = detect).
      config.numa_nodes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-connections") {
      config.max_connections = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-seek") {
      // Forward-seek bound for lane-slice/sequential sessions; seeks past
      // it answer kSeekTooFar instead of stalling the event loop.
      config.max_seek_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else if (arg == "--idle-timeout") {
      config.idle_timeout_ms = std::atoi(next());
    } else if (arg == "--loris-timeout") {
      config.partial_frame_timeout_ms = std::atoi(next());
    } else if (arg == "--shed-bytes") {
      config.shed_queue_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--tenant-pending") {
      config.tenant_max_pending = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--tenant-bps") {
      config.tenant_bytes_per_sec =
          static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--drain-ms") {
      drain_ms = std::atoi(next());
    } else if (arg == "--chaos") {
      chaos = true;
      chaos_seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 0));
    } else if (arg == "--chaos-rate") {
      chaos_rate = std::atof(next());
    } else {
      return usage();
    }
  }
  if (telemetry_on) bsrng::telemetry::metrics().set_enabled(true);
  if (chaos) {
    bsrng::fault::faults().arm(chaos_seed, chaos_rate);
    std::printf("bsrngd: chaos armed, seed %llu rate %g\n",
                static_cast<unsigned long long>(chaos_seed), chaos_rate);
  }

  bsrng::net::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bsrngd: %s\n", e.what());
    return 1;
  }
  std::printf("bsrngd: listening on %s:%u\n", config.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_int);
  std::signal(SIGTERM, handle_term);
  while (g_stop == 0) {
    const timespec delay{0, 100 * 1000 * 1000};
    ::nanosleep(&delay, nullptr);
  }
  if (g_stop == 2) {
    std::printf("bsrngd: draining (deadline %d ms)\n", drain_ms);
    std::fflush(stdout);
    server.drain(drain_ms);
  } else {
    server.stop();
  }

  const bsrng::net::ServerStats s = server.stats();
  std::printf("bsrngd: served %llu requests, %llu bytes, %llu accepted "
              "connections, %llu bad frames, %llu sheds, %llu timeout "
              "closes\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.bytes_served),
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.bad_frames),
              static_cast<unsigned long long>(s.sheds),
              static_cast<unsigned long long>(s.idle_closed));
  if (chaos)
    std::printf("bsrngd: faults injected: %llu\n",
                static_cast<unsigned long long>(
                    bsrng::fault::faults().total_fired()));
  return 0;
}
