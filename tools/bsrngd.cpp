// bsrngd — the BSRNG RNG-as-a-service daemon.
//
//   bsrngd [--port N] [--bind ADDR] [--workers N] [--max-connections N]
//          [--max-seek BYTES] [--telemetry]
//
// Serves every registered algorithm over the length-prefixed TCP protocol
// (src/net/protocol.hpp): a client names (algorithm, seed, offset, nbytes)
// and receives exactly those bytes of the canonical make_generator stream —
// the same bytes at any worker count, any connection interleaving, and
// across daemon restarts, because tenant identity is (algorithm, seed) and
// position is the client-held offset.  `--port 0` (the default) binds an
// ephemeral port; the chosen port is printed on stdout either way, so
// scripts can scrape it.  A plain `curl http://host:port/metrics` (any HTTP
// GET) returns the telemetry snapshot as JSON; --telemetry enables the
// process registry at startup (equivalent to BSRNG_TELEMETRY=1).
//
// SIGINT/SIGTERM stop the daemon cleanly: the accept loop exits, every
// connection closes, and the StreamEngine pool drains — clients resume
// against the next instance by offset (tests/net/restart_determinism_test
// drives exactly that cycle in-process).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "net/server.hpp"
#include "telemetry/metrics.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = 1; }

int usage() {
  std::fprintf(stderr,
               "usage: bsrngd [--port N] [--bind ADDR] [--workers N]\n"
               "              [--max-connections N] [--max-seek BYTES]\n"
               "              [--telemetry]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bsrng::net::ServerConfig config;
  bool telemetry_on = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bsrngd: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (arg == "--bind") {
      config.bind_address = next();
    } else if (arg == "--workers") {
      config.workers = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-connections") {
      config.max_connections = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--max-seek") {
      // Forward-seek bound for lane-slice/sequential sessions; seeks past
      // it answer kSeekTooFar instead of stalling the event loop.
      config.max_seek_bytes = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--telemetry") {
      telemetry_on = true;
    } else {
      return usage();
    }
  }
  if (telemetry_on) bsrng::telemetry::metrics().set_enabled(true);

  bsrng::net::Server server(config);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bsrngd: %s\n", e.what());
    return 1;
  }
  std::printf("bsrngd: listening on %s:%u\n", config.bind_address.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  while (g_stop == 0) {
    const timespec delay{0, 100 * 1000 * 1000};
    ::nanosleep(&delay, nullptr);
  }
  server.stop();

  const bsrng::net::ServerStats s = server.stats();
  std::printf("bsrngd: served %llu requests, %llu bytes, %llu accepted "
              "connections, %llu bad frames\n",
              static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.bytes_served),
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.bad_frames));
  return 0;
}
