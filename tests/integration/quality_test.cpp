// Cross-module integration: statistical quality of every bitsliced CSPRNG
// through the NIST battery, inter-lane independence (§4.3: lanes must be
// "uncorrelated"), and end-to-end avalanche of the serialized streams.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "ciphers/grain_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "ciphers/trivium_bs.hpp"
#include "core/registry.hpp"
#include "nist/suite.hpp"

namespace bs = bsrng::bitslice;
namespace ni = bsrng::nist;

namespace {

bs::BitBuf stream_bits(const char* algo, std::size_t nbits,
                       std::uint64_t seed) {
  auto gen = bsrng::core::make_generator(algo, seed);
  std::vector<std::uint8_t> bytes(nbits / 8);
  gen->fill(bytes);
  bs::BitBuf bits;
  bits.append_bytes(bytes);
  return bits;
}

}  // namespace

// Every bitsliced CSPRNG's serialized stream passes the fast NIST battery.
class CsprngQuality : public ::testing::TestWithParam<const char*> {};

TEST_P(CsprngQuality, FastNistBatteryPasses) {
  const auto bits = stream_bits(GetParam(), 1 << 17, 0xA11CE);
  for (const auto& r :
       {ni::frequency_test(bits), ni::block_frequency_test(bits),
        ni::runs_test(bits), ni::longest_run_test(bits), ni::cusum_test(bits),
        ni::rank_test(bits), ni::approximate_entropy_test(bits, 8),
        ni::serial_test(bits, 11), ni::overlapping_template_test(bits)}) {
    EXPECT_TRUE(r.passed(0.0005))
        << GetParam() << " failed " << r.name << " p="
        << (r.p_values.empty() ? -1.0 : r.p_values.front());
  }
}

TEST_P(CsprngQuality, SpectralAndComplexityPass) {
  const auto bits = stream_bits(GetParam(), 1 << 16, 0xB0B);
  EXPECT_TRUE(ni::spectral_test(bits).passed(0.0005)) << GetParam();
  EXPECT_TRUE(ni::linear_complexity_test(bits).passed(0.0005)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllBitslicedCiphers, CsprngQuality,
                         ::testing::Values("mickey-bs32", "mickey-bs512",
                                           "grain-bs64", "grain-bs512",
                                           "trivium-bs128", "trivium-bs512",
                                           "aes-ctr-bs32", "aes-ctr-bs256"));

// §4.3: lanes of one engine must be statistically independent.  Pearson
// correlation of +/-1-mapped lane streams is ~N(0, 1/n) under independence;
// check a grid of lane pairs stays within 5 sigma.
template <typename Engine>
void check_lane_independence(Engine& engine, std::size_t nsteps) {
  constexpr std::size_t L = Engine::lanes;
  std::vector<std::vector<int>> lanes(L, std::vector<int>(nsteps));
  for (std::size_t t = 0; t < nsteps; ++t) {
    const auto z = engine.step();
    using W = std::remove_cv_t<std::remove_reference_t<decltype(z)>>;
    for (std::size_t j = 0; j < L; ++j)
      lanes[j][t] = bs::SliceTraits<W>::get_lane(z, j) ? 1 : -1;
  }
  const double bound = 5.0 / std::sqrt(static_cast<double>(nsteps));
  for (std::size_t a = 0; a < L; a += L / 8)
    for (std::size_t b = a + 1; b < L; b += L / 8 + 1) {
      double corr = 0;
      for (std::size_t t = 0; t < nsteps; ++t)
        corr += lanes[a][t] * lanes[b][t];
      corr /= static_cast<double>(nsteps);
      EXPECT_LT(std::abs(corr), bound) << "lanes " << a << "," << b;
    }
}

TEST(LaneIndependence, Mickey) {
  bsrng::ciphers::MickeyBs<bs::SliceU32> e(42);
  check_lane_independence(e, 1 << 14);
}

TEST(LaneIndependence, Grain) {
  bsrng::ciphers::GrainBs<bs::SliceU32> e(42);
  check_lane_independence(e, 1 << 14);
}

TEST(LaneIndependence, Trivium) {
  bsrng::ciphers::TriviumBs<bs::SliceU32> e(42);
  check_lane_independence(e, 1 << 14);
}

// End-to-end avalanche: one seed bit flip decorrelates the whole serialized
// stream (~50% bit difference).
TEST(SeedAvalanche, SerializedStreamsDecorrelate) {
  for (const char* algo :
       {"mickey-bs32", "grain-bs32", "trivium-bs32", "aes-ctr-bs32"}) {
    const auto a = stream_bits(algo, 1 << 14, 1000);
    const auto b = stream_bits(algo, 1 << 14, 1001);
    std::size_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) diff += a.get(i) != b.get(i);
    const double frac = static_cast<double>(diff) / static_cast<double>(a.size());
    EXPECT_GT(frac, 0.47) << algo;
    EXPECT_LT(frac, 0.53) << algo;
  }
}

// The serialized interleaved stream of a W-lane engine is itself a valid
// random stream at every width (width changes must not introduce structure).
TEST(WidthSerialization, AllWidthsPassFrequencyAndRuns) {
  for (const char* algo : {"grain-bs32", "grain-bs64", "grain-bs128",
                           "grain-bs256", "grain-bs512"}) {
    const auto bits = stream_bits(algo, 1 << 15, 77);
    EXPECT_TRUE(ni::frequency_test(bits).passed(0.001)) << algo;
    EXPECT_TRUE(ni::runs_test(bits).passed(0.001)) << algo;
    EXPECT_TRUE(ni::serial_test(bits, 10).passed(0.001)) << algo;
  }
}
