// gpusim sanitizer: seeded-bug kernels (missing-barrier race, off-by-one
// staging index, divergent early return, uninitialised shared read) must
// each be caught with a precise (block, thread, address, epoch) report, and
// every shipped kernel must come back clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/descriptor.hpp"
#include "core/gpu_kernel.hpp"
#include "gpusim/device.hpp"
#include "gpusim/sanitizer.hpp"

namespace gs = bsrng::gpusim;
namespace co = bsrng::core;

namespace {

std::size_t count_kind(const std::vector<gs::CheckReport>& reports,
                       gs::CheckKind kind) {
  return static_cast<std::size_t>(
      std::count_if(reports.begin(), reports.end(),
                    [&](const gs::CheckReport& r) { return r.kind == kind; }));
}

const gs::CheckReport* find_kind(const std::vector<gs::CheckReport>& reports,
                                 gs::CheckKind kind) {
  const auto it =
      std::find_if(reports.begin(), reports.end(),
                   [&](const gs::CheckReport& r) { return r.kind == kind; });
  return it == reports.end() ? nullptr : &*it;
}

}  // namespace

// --- seeded bug 1: missing-barrier race --------------------------------------

// Each thread publishes to its own staging slot, then — with no sync_block()
// in between — reads its neighbour's slot.  Sequential execution makes the
// detection deterministic: the neighbour load sees either a same-epoch
// foreign write (RAW) or is later overwritten by the slot's owner (WAR).
TEST(Sanitizer, MissingBarrierRaceIsFlagged) {
  gs::Device dev(8);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
       .check = true, .kernel_name = "missing_barrier"},
      [](gs::ThreadCtx& ctx) {
        ctx.shared_store(ctx.thread_idx(), 1);
        const std::size_t neighbor = (ctx.thread_idx() + 1) % ctx.block_dim();
        ctx.global_store(ctx.global_thread_id(), ctx.shared_load(neighbor));
      });
  const auto& reports = dev.check_reports();
  EXPECT_EQ(stats.check_findings, reports.size());
  // Threads 0..6 read slot t+1 before its owner writes it (an uninit read,
  // then a WAR when thread t+1 finally stores); thread 7 wraps to slot 0,
  // already written by thread 0 (RAW).
  EXPECT_EQ(count_kind(reports, gs::CheckKind::kUninitSharedRead), 7u);
  EXPECT_EQ(count_kind(reports, gs::CheckKind::kSharedRaceWar), 7u);
  ASSERT_EQ(count_kind(reports, gs::CheckKind::kSharedRaceRaw), 1u);
  const auto* raw = find_kind(reports, gs::CheckKind::kSharedRaceRaw);
  EXPECT_EQ(raw->kernel, "missing_barrier");
  EXPECT_EQ(raw->block, 0u);
  EXPECT_EQ(raw->thread, 7u);
  EXPECT_EQ(raw->other_thread, 0);
  EXPECT_EQ(raw->address, 0u);
  EXPECT_EQ(raw->epoch, 0u);
}

// The corrected kernel — same access pattern with a barrier between publish
// and read — must be clean, including in real-thread barrier mode.
TEST(Sanitizer, BarrierSeparatedNeighborExchangeIsClean) {
  gs::Device dev(8);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
       .barriers = true, .check = true, .kernel_name = "with_barrier"},
      [](gs::ThreadCtx& ctx) {
        ctx.shared_store(ctx.thread_idx(), 1);
        ctx.sync_block();
        const std::size_t neighbor = (ctx.thread_idx() + 1) % ctx.block_dim();
        ctx.global_store(ctx.global_thread_id(), ctx.shared_load(neighbor));
      });
  EXPECT_EQ(stats.check_findings, 0u);
  EXPECT_TRUE(dev.check_reports().empty());
}

// A genuinely concurrent unsynchronized publish/read must still be flagged
// (kind depends on interleaving, but some same-epoch shared race surfaces).
TEST(Sanitizer, ConcurrentRaceInBarrierModeIsFlagged) {
  gs::Device dev(8);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
       .barriers = true, .check = true, .kernel_name = "hot_race"},
      [](gs::ThreadCtx& ctx) {
        ctx.shared_store(ctx.thread_idx(), 1);
        const std::size_t neighbor = (ctx.thread_idx() + 1) % ctx.block_dim();
        ctx.global_store(ctx.global_thread_id(), ctx.shared_load(neighbor));
      });
  EXPECT_GT(stats.check_findings, 0u);
  std::size_t races = 0;
  for (const auto& r : dev.check_reports())
    races += (r.kind == gs::CheckKind::kSharedRaceRaw ||
              r.kind == gs::CheckKind::kSharedRaceWar ||
              r.kind == gs::CheckKind::kSharedRaceWaw ||
              r.kind == gs::CheckKind::kUninitSharedRead);
  EXPECT_EQ(races, stats.check_findings);
}

TEST(Sanitizer, SameThreadReuseAcrossEpochsIsClean) {
  gs::Device dev(4);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 4, .shared_bytes = 16,
       .barriers = true, .check = true, .kernel_name = "private_reuse"},
      [](gs::ThreadCtx& ctx) {
        for (std::uint32_t round = 0; round < 3; ++round) {
          ctx.shared_store(ctx.thread_idx(), round);
          (void)ctx.shared_load(ctx.thread_idx());
          ctx.sync_block();
        }
      });
  EXPECT_EQ(stats.check_findings, 0u);
}

// --- seeded bug 2: off-by-one staging index ----------------------------------

TEST(Sanitizer, OffByOneStagingIndexIsFlagged) {
  gs::Device dev(16);
  constexpr std::size_t kStagingWords = 4;
  const auto stats = dev.launch(
      {.blocks = 2, .threads_per_block = 4,
       .shared_bytes = kStagingWords * 4, .check = true,
       .kernel_name = "off_by_one"},
      [](gs::ThreadCtx& ctx) {
        // <= instead of <: the last store lands one past the buffer.
        for (std::size_t i = ctx.thread_idx(); i <= kStagingWords;
             i += ctx.block_dim())
          ctx.shared_store(i, 7);
      });
  const auto& reports = dev.check_reports();
  // Exactly one overflowing store per block, by the thread owning index 4.
  ASSERT_EQ(stats.check_findings, 2u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.kind, gs::CheckKind::kSharedOutOfBounds);
    EXPECT_EQ(r.kernel, "off_by_one");
    EXPECT_EQ(r.thread, 0u);  // 0, 4 stride: thread 0 reaches index 4
    EXPECT_EQ(r.address, kStagingWords);
  }
  EXPECT_EQ(reports[0].block, 0u);
  EXPECT_EQ(reports[1].block, 1u);
}

TEST(Sanitizer, GlobalOutOfBoundsIsFlaggedAndSuppressed) {
  gs::Device dev(4);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 4, .check = true,
       .kernel_name = "global_oob"},
      [](gs::ThreadCtx& ctx) {
        // Thread 3 stores past the 4-word device memory; the load of the
        // same bogus word must also be suppressed (and return 0).
        const std::size_t w = ctx.thread_idx() + 1;
        ctx.global_store(w, 1 + static_cast<std::uint32_t>(w));
        EXPECT_EQ(ctx.global_load(w), w < 4 ? 1 + w : 0);
      });
  ASSERT_EQ(stats.check_findings, 2u);  // one store + one load, thread 3
  for (const auto& r : dev.check_reports()) {
    EXPECT_EQ(r.kind, gs::CheckKind::kGlobalOutOfBounds);
    EXPECT_EQ(r.thread, 3u);
    EXPECT_EQ(r.address, 4u);
  }
}

// --- seeded bug 3: divergent early return ------------------------------------

TEST(Sanitizer, DivergentEarlyReturnIsFlaggedNotDeadlocked) {
  gs::Device dev(8);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
       .barriers = true, .check = true, .kernel_name = "early_return"},
      [](gs::ThreadCtx& ctx) {
        if (ctx.thread_idx() == 2) return;  // skips the barrier
        ctx.shared_store(ctx.thread_idx(), 1);
        ctx.sync_block();
      });
  ASSERT_EQ(stats.check_findings, 1u);
  const auto& r = dev.check_reports().front();
  EXPECT_EQ(r.kind, gs::CheckKind::kBarrierDivergence);
  EXPECT_EQ(r.kernel, "early_return");
  EXPECT_EQ(r.block, 0u);
  EXPECT_EQ(r.thread, 2u);
  EXPECT_EQ(r.epoch, 0u);    // the divergent thread's arrivals
  EXPECT_EQ(r.address, 1u);  // block-mates' arrival count
}

TEST(Sanitizer, MismatchedBarrierCountsAreFlagged) {
  gs::Device dev(4);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 4, .barriers = true, .check = true,
       .kernel_name = "extra_sync"},
      [](gs::ThreadCtx& ctx) {
        ctx.sync_block();
        if (ctx.thread_idx() % 2 == 0) ctx.sync_block();
      });
  // Threads 1 and 3 stop at one arrival while 0 and 2 reach two.
  ASSERT_EQ(stats.check_findings, 2u);
  for (const auto& r : dev.check_reports()) {
    EXPECT_EQ(r.kind, gs::CheckKind::kBarrierDivergence);
    EXPECT_EQ(r.thread % 2, 1u);
    EXPECT_EQ(r.epoch, 1u);
    EXPECT_EQ(r.address, 2u);
  }
}

// --- seeded bug 4: uninitialised shared read ---------------------------------

TEST(Sanitizer, UninitializedSharedReadIsFlagged) {
  gs::Device dev(4);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 4, .shared_bytes = 32,
       .check = true, .kernel_name = "uninit_read"},
      [](gs::ThreadCtx& ctx) {
        // Bug: reads staging slot block_dim()+t, but only slot t was written.
        ctx.shared_store(ctx.thread_idx(), 5);
        ctx.global_store(ctx.global_thread_id(),
                         ctx.shared_load(ctx.block_dim() + ctx.thread_idx()));
      });
  ASSERT_EQ(stats.check_findings, 4u);
  for (const auto& r : dev.check_reports()) {
    EXPECT_EQ(r.kind, gs::CheckKind::kUninitSharedRead);
    EXPECT_EQ(r.kernel, "uninit_read");
    EXPECT_EQ(r.address, 4 + r.thread);
  }
}

// --- report plumbing ---------------------------------------------------------

TEST(Sanitizer, ReportStorageIsCappedButFindingsAreCounted) {
  gs::Device dev(1);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 1, .check = true,
       .kernel_name = "oob_flood", .max_check_reports = 8},
      [](gs::ThreadCtx& ctx) {
        for (std::size_t i = 0; i < 100; ++i) ctx.global_store(1 + i, 0);
      });
  EXPECT_EQ(stats.check_findings, 100u);
  EXPECT_EQ(dev.check_reports().size(), 8u);
}

TEST(Sanitizer, ReportsAccumulateAcrossLaunchesAndClear) {
  gs::Device dev(1);
  const gs::LaunchConfig cfg{.blocks = 1, .threads_per_block = 1,
                             .check = true, .kernel_name = "oob_once"};
  const auto racy = [](gs::ThreadCtx& ctx) { ctx.global_store(9, 0); };
  dev.launch(cfg, racy);
  dev.launch(cfg, racy);
  EXPECT_EQ(dev.check_reports().size(), 2u);
  EXPECT_EQ(dev.total_stats().check_findings, 2u);
  dev.clear_check_reports();
  EXPECT_TRUE(dev.check_reports().empty());
}

// Per-launch report consumption: take_check_reports() drains exactly the
// reports accumulated since the previous drain, while the telemetry counter
// total_stats().check_findings keeps the running total — clearing or taking
// reports must never rewind it (that asymmetry is the documented contract,
// and bench/telemetry code depends on the counter surviving drains).
TEST(Sanitizer, TakeReportsDrainsPerLaunchWithoutRewindingTelemetry) {
  gs::Device dev(1);
  const gs::LaunchConfig cfg{.blocks = 1, .threads_per_block = 1,
                             .check = true, .kernel_name = "oob_once"};
  const auto oob = [](gs::ThreadCtx& ctx) { ctx.global_store(9, 0); };

  dev.launch(cfg, oob);
  const auto first = dev.take_check_reports();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].kernel, "oob_once");
  EXPECT_TRUE(dev.check_reports().empty());

  dev.launch(cfg, oob);
  const auto second = dev.take_check_reports();
  ASSERT_EQ(second.size(), 1u);  // only the second launch's report
  EXPECT_EQ(second[0].address, 9u);

  // The running findings counter is unaffected by draining...
  EXPECT_EQ(dev.total_stats().check_findings, 2u);
  // ...and by clear_check_reports(); only reset_stats() rewinds it.
  dev.launch(cfg, oob);
  dev.clear_check_reports();
  EXPECT_EQ(dev.total_stats().check_findings, 3u);
  dev.reset_stats();
  EXPECT_EQ(dev.total_stats().check_findings, 0u);
  EXPECT_TRUE(dev.take_check_reports().empty());
}

TEST(Sanitizer, ToStringNamesTheHazard) {
  gs::Device dev(1);
  dev.launch({.blocks = 1, .threads_per_block = 1, .check = true,
              .kernel_name = "pretty"},
             [](gs::ThreadCtx& ctx) { (void)ctx.global_load(42); });
  ASSERT_EQ(dev.check_reports().size(), 1u);
  const std::string s = dev.check_reports().front().to_string();
  EXPECT_NE(s.find("global-out-of-bounds"), std::string::npos);
  EXPECT_NE(s.find("'pretty'"), std::string::npos);
  EXPECT_NE(s.find("word 42"), std::string::npos);
}

TEST(Sanitizer, EnvFlagEnablesCheckingWithoutConfig) {
  ASSERT_EQ(setenv("BSRNG_GPUSIM_CHECK", "1", 1), 0);
  EXPECT_TRUE(gs::check_env_enabled());
  gs::Device dev(1);
  const auto stats =
      dev.launch({.blocks = 1, .threads_per_block = 1},
                 [](gs::ThreadCtx& ctx) { ctx.global_store(5, 0); });
  EXPECT_EQ(stats.check_findings, 1u);
  ASSERT_EQ(setenv("BSRNG_GPUSIM_CHECK", "off", 1), 0);
  EXPECT_FALSE(gs::check_env_enabled());
  ASSERT_EQ(unsetenv("BSRNG_GPUSIM_CHECK"), 0);
  gs::Device quiet(1);
  const auto off =
      quiet.launch({.blocks = 1, .threads_per_block = 1},
                   [](gs::ThreadCtx& ctx) { (void)ctx.global_load(0); });
  EXPECT_EQ(off.check_findings, 0u);
  EXPECT_TRUE(quiet.check_reports().empty());
}

// --- shipped kernels must be clean -------------------------------------------

TEST(Sanitizer, ShippedCipherKernelsReportZeroFindings) {
  for (const auto& desc : co::algorithm_descriptors()) {
    for (const bool staging : {true, false}) {
      for (const bool coalesced : {true, false}) {
        co::GpuKernelConfig cfg;
        cfg.blocks = 2;
        cfg.threads_per_block = 32;
        cfg.words_per_thread = 16;  // 64 B/thread: multiple of both counter
                                    // block sizes (16 and 64 bytes)
        cfg.staging_words = 4;
        cfg.use_shared_staging = staging;
        cfg.coalesced_layout = coalesced;
        cfg.check = true;
        gs::Device dev(cfg.blocks * cfg.threads_per_block *
                       cfg.words_per_thread);
        const auto res = co::run_gpu_kernel(dev, desc.base, cfg);
        EXPECT_EQ(res.stats.check_findings, 0u)
            << desc.base << " staging=" << staging
            << " coalesced=" << coalesced;
        for (const auto& r : dev.check_reports())
          ADD_FAILURE() << desc.base << ": " << r.to_string();
      }
    }
  }
}

// The bench_memory_ablation staging kernel (shared round-robin staging plus
// coalesced burst flush), checked across the staging depths the bench runs.
TEST(Sanitizer, MemoryAblationStagingConfigsReportZeroFindings) {
  constexpr std::size_t kBlocks = 2;
  constexpr std::size_t kThreads = 32;
  constexpr std::size_t kSteps = 64;
  for (const std::size_t staging : {4u, 16u, 64u}) {
    gs::Device dev(kBlocks * kThreads * kSteps);
    const auto stats = dev.launch(
        {.blocks = kBlocks, .threads_per_block = kThreads,
         .shared_bytes = kThreads * staging * 4, .check = true,
         .kernel_name = "ablation_staged"},
        [staging](gs::ThreadCtx& ctx) {
          const std::size_t stride = kBlocks * kThreads;
          for (std::size_t round = 0; round < kSteps / staging; ++round) {
            for (std::size_t i = 0; i < staging; ++i)
              ctx.shared_store(i * ctx.block_dim() + ctx.thread_idx(),
                               static_cast<std::uint32_t>(i));
            for (std::size_t b = 0; b < staging; ++b)
              ctx.global_store(
                  (round * staging + b) * stride + ctx.global_thread_id(),
                  ctx.shared_load(b * ctx.block_dim() + ctx.thread_idx()));
          }
        });
    EXPECT_EQ(stats.check_findings, 0u) << "staging=" << staging;
  }
}

// Checking must not perturb the keystream: same output with check on/off.
TEST(Sanitizer, CheckedLaunchProducesIdenticalKeystream) {
  co::GpuKernelConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 32;
  cfg.words_per_thread = 16;
  cfg.staging_words = 4;
  const std::size_t words =
      cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
  gs::Device plain(words), checked(words);
  co::run_gpu_kernel(plain, "mickey", cfg);
  cfg.check = true;
  co::run_gpu_kernel(checked, "mickey", cfg);
  for (std::size_t i = 0; i < words; ++i)
    ASSERT_EQ(plain.global_memory()[i], checked.global_memory()[i]) << i;
}
