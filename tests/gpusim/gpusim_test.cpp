// Virtual GPU: SIMT execution semantics, shared memory, barriers, the
// coalescing cost model, and the Table 2 device catalog.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "gpusim/catalog.hpp"
#include "gpusim/device.hpp"

namespace gs = bsrng::gpusim;

TEST(Device, GridShapeAndThreadIds) {
  gs::Device dev(8 * 16);
  std::vector<int> seen(8 * 16, 0);
  dev.launch({.blocks = 8, .threads_per_block = 16},
             [&](gs::ThreadCtx& ctx) {
               EXPECT_EQ(ctx.grid_dim(), 8u);
               EXPECT_EQ(ctx.block_dim(), 16u);
               EXPECT_LT(ctx.thread_idx(), 16u);
               EXPECT_LT(ctx.block_idx(), 8u);
               ++seen[ctx.global_thread_id()];
             });
  for (const int s : seen) EXPECT_EQ(s, 1);
}

TEST(Device, GlobalMemoryRoundTrip) {
  gs::Device dev(64);
  dev.launch({.blocks = 2, .threads_per_block = 32}, [](gs::ThreadCtx& ctx) {
    ctx.global_store(ctx.global_thread_id(),
                     static_cast<std::uint32_t>(ctx.global_thread_id() * 7));
  });
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_EQ(dev.global_memory()[i], i * 7);
}

TEST(Device, SharedMemoryIsPerBlock) {
  gs::Device dev(4);
  // Each block accumulates its thread count into shared[0] sequentially and
  // thread 0 of... last thread writes it out; blocks must not see each
  // other's shared memory.
  dev.launch({.blocks = 4, .threads_per_block = 8, .shared_bytes = 64},
             [](gs::ThreadCtx& ctx) {
               const std::uint32_t v = ctx.shared_load(0);
               ctx.shared_store(0, v + 1);
               if (ctx.thread_idx() == ctx.block_dim() - 1)
                 ctx.global_store(ctx.block_idx(), ctx.shared_load(0));
             });
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_EQ(dev.global_memory()[b], 8u) << "block " << b;
}

TEST(Device, BarrierModeSynchronizesBlockThreads) {
  gs::Device dev(16);
  // Every thread publishes to shared memory, barriers, then reads its
  // neighbor's slot — racy without a working barrier.
  dev.launch(
      {.blocks = 2, .threads_per_block = 8, .shared_bytes = 64,
       .barriers = true},
      [](gs::ThreadCtx& ctx) {
        ctx.shared_store(ctx.thread_idx(),
                         static_cast<std::uint32_t>(100 + ctx.thread_idx()));
        ctx.sync_block();
        const std::size_t neighbor = (ctx.thread_idx() + 1) % ctx.block_dim();
        ctx.global_store(ctx.global_thread_id(), ctx.shared_load(neighbor));
      });
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t t = 0; t < 8; ++t)
      EXPECT_EQ(dev.global_memory()[b * 8 + t], 100 + (t + 1) % 8);
}

TEST(Device, SyncWithoutBarrierModeThrows) {
  gs::Device dev(1);
  EXPECT_THROW(
      dev.launch({.blocks = 1, .threads_per_block = 1},
                 [](gs::ThreadCtx& ctx) { ctx.sync_block(); }),
      std::logic_error);
}

TEST(Device, RejectsEmptyGrid) {
  gs::Device dev(1);
  EXPECT_THROW(dev.launch({.blocks = 0, .threads_per_block = 1},
                          [](gs::ThreadCtx&) {}),
               std::invalid_argument);
}

// --- cost model --------------------------------------------------------------

TEST(MemModel, CoalescedWarpStoreIsOneTransactionPerSegment) {
  gs::Device dev(64);
  // 32 threads store 4B each to consecutive addresses = 128B = 1 segment.
  const auto stats = dev.launch({.blocks = 1, .threads_per_block = 32},
                                [](gs::ThreadCtx& ctx) {
                                  ctx.global_store(ctx.thread_idx(), 1);
                                });
  EXPECT_EQ(stats.global_requests, 32u);
  EXPECT_EQ(stats.global_transactions, 1u);
  EXPECT_NEAR(stats.coalescing_efficiency(), 1.0, 1e-9);
}

TEST(MemModel, StridedWarpStoreCostsOneTransactionPerThread) {
  gs::Device dev(32 * 32);
  // Stride of 32 words = 128 bytes: every lane hits its own segment.
  const auto stats = dev.launch({.blocks = 1, .threads_per_block = 32},
                                [](gs::ThreadCtx& ctx) {
                                  ctx.global_store(ctx.thread_idx() * 32, 1);
                                });
  EXPECT_EQ(stats.global_transactions, 32u);
  EXPECT_LT(stats.coalescing_efficiency(), 0.05);
}

TEST(MemModel, SlotsCoalesceIndependently) {
  gs::Device dev(256);
  // Two stores per thread: slot 0 coalesced, slot 1 strided.
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 32}, [](gs::ThreadCtx& ctx) {
        ctx.global_store(ctx.thread_idx(), 1);            // coalesced
        ctx.global_store(64 + ctx.thread_idx() * 32 % 192, 1);  // scattered
      });
  EXPECT_EQ(stats.global_requests, 64u);
  EXPECT_GT(stats.global_transactions, 1u + 4u);
}

TEST(MemModel, SharedAccessesAreCountedSeparately) {
  gs::Device dev(1);
  const auto stats = dev.launch(
      {.blocks = 1, .threads_per_block = 4, .shared_bytes = 16},
      [](gs::ThreadCtx& ctx) {
        ctx.shared_store(ctx.thread_idx(), 0);
        (void)ctx.shared_load(ctx.thread_idx());
      });
  EXPECT_EQ(stats.shared_accesses, 8u);
  EXPECT_EQ(stats.global_transactions, 0u);
}

TEST(MemModel, MultiWarpBlocksCoalescePerWarp) {
  gs::Device dev(128);
  // 64 threads (2 warps) consecutive stores: one segment per warp.
  const auto stats = dev.launch({.blocks = 1, .threads_per_block = 64},
                                [](gs::ThreadCtx& ctx) {
                                  ctx.global_store(ctx.thread_idx(), 1);
                                });
  EXPECT_EQ(stats.global_transactions, 2u);
}

// --- catalog -----------------------------------------------------------------

TEST(Catalog, ContainsTheSixPaperGpus) {
  const auto cat = gs::device_catalog();
  ASSERT_EQ(cat.size(), 6u);
  EXPECT_EQ(gs::find_device("Tesla V100").mem_bw_gbs, 900);
  EXPECT_EQ(gs::find_device("GTX 2080 Ti").sp_gflops, 11750);
  EXPECT_EQ(gs::find_device("GTX 480").sp_gflops, 1344);
  EXPECT_THROW(gs::find_device("RTX 9090"), std::out_of_range);
}

TEST(Catalog, ProjectionScalesWithComputeUntilMemoryBound) {
  const auto& v100 = gs::find_device("Tesla V100");
  gs::ProjectionParams cheap{.gate_ops_per_bit = 2.0};
  gs::ProjectionParams costly{.gate_ops_per_bit = 200.0};
  EXPECT_GT(gs::project_throughput_gbps(v100, cheap),
            gs::project_throughput_gbps(v100, costly));
  // With ~2 ops/bit the V100 compute limit (~3500 Gbps) exceeds its memory
  // limit (900 GB/s = 7200 Gbps)?  compute: 14028/2/2 = 3507 Gbps < 7200, so
  // compute-bound; with 0.02 ops/bit it must clip at the memory limit.
  gs::ProjectionParams trivial{.gate_ops_per_bit = 0.02};
  const double capped = gs::project_throughput_gbps(v100, trivial);
  EXPECT_NEAR(capped, 0.75 * 900 / 0.125, 1e-6);
}

TEST(Catalog, ProjectionPreservesDeviceOrdering) {
  // For the same kernel, a V100 must beat a GTX 1050 Ti (the Fig. 10 shape).
  gs::ProjectionParams p{.gate_ops_per_bit = 8.0};
  EXPECT_GT(gs::project_throughput_gbps(gs::find_device("Tesla V100"), p),
            gs::project_throughput_gbps(gs::find_device("GTX 2080 Ti"), p));
  EXPECT_GT(gs::project_throughput_gbps(gs::find_device("GTX 2080 Ti"), p),
            gs::project_throughput_gbps(gs::find_device("GTX 1050 Ti"), p));
}

TEST(Catalog, NormalizedMetricMatchesTable1Formula) {
  const auto& gpu = gs::find_device("GTX 480");
  // Table 1 row [31]: 527.5 Gbps on a 1344.96-GFLOPS GTX 480 = 0.3922.
  EXPECT_NEAR(gs::normalized_gbps_per_gflops(gpu, 527.5), 527.5 / 1344.0,
              1e-9);
  EXPECT_THROW(gs::project_throughput_gbps(
                   gpu, gs::ProjectionParams{.gate_ops_per_bit = 0.0}),
               std::invalid_argument);
}
