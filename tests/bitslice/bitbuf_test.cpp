#include "bitslice/bitbuf.hpp"

#include <gtest/gtest.h>

#include <random>

using bsrng::bitslice::BitBuf;

TEST(BitBuf, StartsEmpty) {
  BitBuf b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitBuf, PushBackAndGet) {
  BitBuf b;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool v : pattern) b.push_back(v);
  ASSERT_EQ(b.size(), 7u);
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(b.get(i), pattern[i]);
  EXPECT_EQ(b.count(), 4u);
}

TEST(BitBuf, PushAcrossWordBoundary) {
  BitBuf b;
  for (int i = 0; i < 130; ++i) b.push_back(i % 3 == 0);
  ASSERT_EQ(b.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(b.get(static_cast<std::size_t>(i)), i % 3 == 0);
}

TEST(BitBuf, AppendWordLsbFirst) {
  BitBuf b;
  b.append_word(0b1011, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(1));
  EXPECT_FALSE(b.get(2));
  EXPECT_TRUE(b.get(3));
}

TEST(BitBuf, AppendBytesAndToBytesRoundTrip) {
  std::mt19937_64 rng(11);
  std::vector<std::uint8_t> bytes(37);
  for (auto& x : bytes) x = static_cast<std::uint8_t>(rng());
  BitBuf b;
  b.append_bytes(bytes);
  ASSERT_EQ(b.size(), bytes.size() * 8);
  EXPECT_EQ(b.to_bytes(), bytes);
}

TEST(BitBuf, SetClearsAndSets) {
  BitBuf b(100);
  EXPECT_EQ(b.count(), 0u);
  b.set(99, true);
  b.set(0, true);
  EXPECT_EQ(b.count(), 2u);
  b.set(99, false);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_TRUE(b.get(0));
  EXPECT_FALSE(b.get(99));
}

TEST(BitBuf, ResizeMasksTail) {
  BitBuf b;
  for (int i = 0; i < 70; ++i) b.push_back(true);
  b.resize(65);
  EXPECT_EQ(b.size(), 65u);
  EXPECT_EQ(b.count(), 65u);
  b.resize(70);
  // Newly exposed bits must be zero, not stale ones.
  EXPECT_EQ(b.count(), 65u);
}

TEST(BitBuf, SliceExtractsRange) {
  BitBuf b;
  for (int i = 0; i < 200; ++i) b.push_back(i % 5 == 0);
  const BitBuf s = b.slice(63, 70);
  ASSERT_EQ(s.size(), 70u);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(s.get(i), (63 + i) % 5 == 0);
}

TEST(BitBuf, EqualityComparesContentAndLength) {
  BitBuf a, b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(i & 1);
    b.push_back(i & 1);
  }
  EXPECT_EQ(a, b);
  b.push_back(false);
  EXPECT_FALSE(a == b);
}

// Partial-word edges: sizes straddling the 64-bit word boundary must mask,
// count, slice, and round-trip through bytes correctly.
TEST(BitBuf, PartialWordEdgeSizes) {
  std::mt19937_64 rng(31);
  for (const std::size_t n : {63u, 64u, 65u, 127u, 128u, 129u}) {
    BitBuf b(n);
    std::vector<bool> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      expect[i] = rng() & 1u;
      b.set(i, expect[i]);
    }
    ASSERT_EQ(b.size(), n);
    std::size_t ones = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(b.get(i), expect[i]) << "n=" << n << " i=" << i;
      ones += expect[i];
    }
    EXPECT_EQ(b.count(), ones) << "n=" << n;

    // Bytes round-trip: re-appending to_bytes() and truncating reproduces b.
    const auto bytes = b.to_bytes();
    ASSERT_EQ(bytes.size(), (n + 7) / 8);
    BitBuf back;
    back.append_bytes(bytes);
    back.resize(n);
    EXPECT_EQ(back, b) << "n=" << n;
  }
}

TEST(BitBuf, SliceAcrossWordBoundaries) {
  std::mt19937_64 rng(32);
  BitBuf b(300);
  for (std::size_t i = 0; i < 300; ++i) b.set(i, rng() & 1u);
  // Slices chosen to start/end mid-word, exactly on words, and span several.
  const std::size_t cases[][2] = {{0, 63},   {0, 64},  {1, 64},   {63, 2},
                                  {63, 65},  {64, 64}, {100, 129}, {191, 65},
                                  {255, 45}};
  for (const auto& [pos, len] : cases) {
    const BitBuf s = b.slice(pos, len);
    ASSERT_EQ(s.size(), len) << "pos=" << pos;
    for (std::size_t i = 0; i < len; ++i)
      ASSERT_EQ(s.get(i), b.get(pos + i)) << "pos=" << pos << " i=" << i;
    // Tail past len must be masked so equality semantics hold.
    EXPECT_EQ(s, b.slice(pos, len));
  }
}
