#include "bitslice/transpose.hpp"

#include <gtest/gtest.h>

#include <random>

namespace bs = bsrng::bitslice;

namespace {

template <typename T, std::size_t N>
void naive_transpose(T (&m)[N]) {
  T out[N] = {};
  for (std::size_t i = 0; i < N; ++i)
    for (std::size_t j = 0; j < N; ++j)
      if ((m[i] >> j) & 1u) out[j] |= T{1} << i;
  for (std::size_t i = 0; i < N; ++i) m[i] = out[i];
}

}  // namespace

TEST(Transpose8, MatchesNaiveOnRandomMatrices) {
  std::mt19937_64 rng(1);
  for (int iter = 0; iter < 200; ++iter) {
    std::uint8_t a[8], b[8];
    for (int i = 0; i < 8; ++i) a[i] = b[i] = static_cast<std::uint8_t>(rng());
    bs::transpose8x8(a);
    naive_transpose(b);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(Transpose32, MatchesNaiveOnRandomMatrices) {
  std::mt19937_64 rng(2);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint32_t a[32], b[32];
    for (int i = 0; i < 32; ++i)
      a[i] = b[i] = static_cast<std::uint32_t>(rng());
    bs::transpose32x32(a);
    naive_transpose(b);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(Transpose64, MatchesNaiveOnRandomMatrices) {
  std::mt19937_64 rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::uint64_t a[64], b[64];
    for (int i = 0; i < 64; ++i) a[i] = b[i] = rng();
    bs::transpose64x64(a);
    naive_transpose(b);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], b[i]) << "row " << i;
  }
}

TEST(Transpose64, IsInvolution) {
  std::mt19937_64 rng(4);
  std::uint64_t a[64], orig[64];
  for (int i = 0; i < 64; ++i) orig[i] = a[i] = rng();
  bs::transpose64x64(a);
  bs::transpose64x64(a);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a[i], orig[i]);
}

TEST(Transpose32, SingleBitLandsTransposed) {
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; j += 7) {
      std::uint32_t m[32] = {};
      m[i] = 1u << j;
      bs::transpose32x32(m);
      for (int r = 0; r < 32; ++r)
        EXPECT_EQ(m[r], r == j ? (1u << i) : 0u);
    }
}

template <typename W>
class InterleaveTypes : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(InterleaveTypes, AllWidths);

// Property: interleave then deinterleave returns the original streams, for
// stream lengths that do and do not divide the 64-bit block size.
TYPED_TEST(InterleaveTypes, RoundTripAtAwkwardLengths) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(5);
  for (std::size_t nbits : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{200}, std::size_t{512}}) {
    std::vector<std::vector<std::uint64_t>> rows(
        L, std::vector<std::uint64_t>((nbits + 63) / 64));
    for (auto& r : rows) {
      for (auto& w : r) w = rng();
      if (nbits % 64 != 0) r.back() &= (std::uint64_t{1} << (nbits % 64)) - 1;
    }
    std::vector<TypeParam> slices;
    bs::interleave<TypeParam>(rows, nbits, slices);
    ASSERT_EQ(slices.size(), nbits);
    std::vector<std::vector<std::uint64_t>> back;
    bs::deinterleave<TypeParam>(slices, nbits, back);
    EXPECT_EQ(back, rows) << "nbits=" << nbits;
  }
}

// Property: slice t lane j equals bit t of stream j (the definition of the
// column-major representation).
TYPED_TEST(InterleaveTypes, SliceLaneSemantics) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  const std::size_t nbits = 100;
  std::mt19937_64 rng(6);
  std::vector<std::vector<std::uint64_t>> rows(
      L, std::vector<std::uint64_t>((nbits + 63) / 64));
  for (auto& r : rows) {
    for (auto& w : r) w = rng();
    r.back() &= (std::uint64_t{1} << (nbits % 64)) - 1;
  }
  std::vector<TypeParam> slices;
  bs::interleave<TypeParam>(rows, nbits, slices);
  for (std::size_t t = 0; t < nbits; ++t)
    for (std::size_t j = 0; j < L; ++j)
      EXPECT_EQ(bs::SliceTraits<TypeParam>::get_lane(slices[t], j),
                (rows[j][t / 64] >> (t % 64)) & 1u)
          << "t=" << t << " lane=" << j;
}

// Property: transpose is an involution — transpose(transpose(x)) == x — at
// every supported block size (8x8 and 32x32; 64x64 is covered above).
TEST(Transpose8, IsInvolution) {
  std::mt19937_64 rng(21);
  for (int iter = 0; iter < 200; ++iter) {
    std::uint8_t m[8], orig[8];
    for (int i = 0; i < 8; ++i) m[i] = orig[i] = static_cast<std::uint8_t>(rng());
    bs::transpose8x8(m);
    bs::transpose8x8(m);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(m[i], orig[i]) << "row " << i;
  }
}

TEST(Transpose32, IsInvolution) {
  std::mt19937_64 rng(22);
  for (int iter = 0; iter < 100; ++iter) {
    std::uint32_t m[32], orig[32];
    for (int i = 0; i < 32; ++i)
      m[i] = orig[i] = static_cast<std::uint32_t>(rng());
    bs::transpose32x32(m);
    bs::transpose32x32(m);
    for (int i = 0; i < 32; ++i) EXPECT_EQ(m[i], orig[i]) << "row " << i;
  }
}
