// Unit and property tests for the slice abstraction: every lane width must
// behave as W independent 1-bit processors (the bitslicing invariant, §4.1).
#include "bitslice/slice.hpp"

#include <gtest/gtest.h>

#include <random>

namespace bs = bsrng::bitslice;

template <typename W>
class SliceTypes : public ::testing::Test {};

using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(SliceTypes, AllWidths);

template <typename W>
W random_slice(std::mt19937_64& rng) {
  W s = bs::SliceTraits<W>::zero();
  for (std::size_t j = 0; j < bs::lane_count<W>; ++j)
    bs::SliceTraits<W>::set_lane(s, j, rng() & 1u);
  return s;
}

TYPED_TEST(SliceTypes, ZeroAndOnesLanes) {
  using T = bs::SliceTraits<TypeParam>;
  const TypeParam z = T::zero();
  const TypeParam o = T::ones();
  for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j) {
    EXPECT_FALSE(T::get_lane(z, j));
    EXPECT_TRUE(T::get_lane(o, j));
  }
}

TYPED_TEST(SliceTypes, SplatMatchesLaneBroadcast) {
  using T = bs::SliceTraits<TypeParam>;
  EXPECT_EQ(bs::splat<TypeParam>(false), T::zero());
  EXPECT_EQ(bs::splat<TypeParam>(true), T::ones());
}

TYPED_TEST(SliceTypes, SetGetLaneRoundTrip) {
  using T = bs::SliceTraits<TypeParam>;
  TypeParam s = T::zero();
  for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j) {
    T::set_lane(s, j, true);
    EXPECT_TRUE(T::get_lane(s, j));
    // Setting one lane must not disturb the others.
    for (std::size_t k = 0; k < bs::lane_count<TypeParam>; ++k)
      EXPECT_EQ(T::get_lane(s, k), k <= j) << "lane " << k;
  }
  for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j) {
    T::set_lane(s, j, false);
    EXPECT_FALSE(T::get_lane(s, j));
  }
}

// Property: bulk boolean operators equal the lane-by-lane scalar computation.
TYPED_TEST(SliceTypes, OperatorsAreLaneWise) {
  using T = bs::SliceTraits<TypeParam>;
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    const TypeParam a = random_slice<TypeParam>(rng);
    const TypeParam b = random_slice<TypeParam>(rng);
    const TypeParam c = random_slice<TypeParam>(rng);
    const TypeParam x = a ^ b, n = a & b, o = a | b, inv = ~a;
    const TypeParam m = bs::mux(c, a, b);
    const TypeParam an = bs::andnot(a, b);
    for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j) {
      const bool la = T::get_lane(a, j), lb = T::get_lane(b, j),
                 lc = T::get_lane(c, j);
      EXPECT_EQ(T::get_lane(x, j), la != lb);
      EXPECT_EQ(T::get_lane(n, j), la && lb);
      EXPECT_EQ(T::get_lane(o, j), la || lb);
      EXPECT_EQ(T::get_lane(inv, j), !la);
      EXPECT_EQ(T::get_lane(m, j), lc ? la : lb);
      EXPECT_EQ(T::get_lane(an, j), la && !lb);
    }
  }
}

TYPED_TEST(SliceTypes, PopcountMatchesLanes) {
  std::mt19937_64 rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const TypeParam a = random_slice<TypeParam>(rng);
    std::size_t expected = 0;
    for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j)
      expected += bs::SliceTraits<TypeParam>::get_lane(a, j);
    EXPECT_EQ(bs::popcount(a), expected);
  }
}

TYPED_TEST(SliceTypes, XorIsInvolutionAndDeMorgan) {
  std::mt19937_64 rng(9);
  for (int iter = 0; iter < 20; ++iter) {
    const TypeParam a = random_slice<TypeParam>(rng);
    const TypeParam b = random_slice<TypeParam>(rng);
    EXPECT_EQ((a ^ b) ^ b, a);
    EXPECT_EQ(~(a & b), ~a | ~b);
    EXPECT_EQ(~(a | b), ~a & ~b);
  }
}

TEST(SliceLaneCount, MatchesAdvertisedWidths) {
  static_assert(bs::lane_count<bs::SliceU32> == 32);
  static_assert(bs::lane_count<bs::SliceU64> == 64);
  static_assert(bs::lane_count<bs::SliceV128> == 128);
  static_assert(bs::lane_count<bs::SliceV256> == 256);
  static_assert(bs::lane_count<bs::SliceV512> == 512);
  SUCCEED();
}
