#include "lfsr/polynomial.hpp"

#include <gtest/gtest.h>

namespace lf = bsrng::lfsr;

TEST(PrimeFactors, SmallNumbers) {
  EXPECT_EQ(lf::prime_factors(1), (std::vector<std::uint64_t>{}));
  EXPECT_EQ(lf::prime_factors(2), (std::vector<std::uint64_t>{2}));
  EXPECT_EQ(lf::prime_factors(12), (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(lf::prime_factors(255), (std::vector<std::uint64_t>{3, 5, 17}));
}

TEST(PrimeFactors, MersenneNumbers) {
  // 2^11 - 1 = 23 * 89 (the classic non-prime Mersenne).
  EXPECT_EQ(lf::prime_factors((1u << 11) - 1),
            (std::vector<std::uint64_t>{23, 89}));
  // 2^31 - 1 is prime.
  EXPECT_EQ(lf::prime_factors((1ull << 31) - 1),
            (std::vector<std::uint64_t>{2147483647ull}));
  // 2^64 - 1 = 3 * 5 * 17 * 257 * 641 * 65537 * 6700417.
  EXPECT_EQ(lf::prime_factors(~std::uint64_t{0}),
            (std::vector<std::uint64_t>{3, 5, 17, 257, 641, 65537, 6700417}));
}

TEST(Gf2Arithmetic, MulmodKnownValues) {
  // In GF(2^3) mod x^3 + x + 1: x * x^2 = x^3 = x + 1 = 0b011.
  const lf::Gf2Poly p{0b011, 3};
  EXPECT_EQ(lf::gf2_mulmod(0b010, 0b100, p), 0b011u);
  // (x+1)(x^2+1) = x^3 + x^2 + x + 1 = (x+1) + x^2 + x + 1 = x^2.
  EXPECT_EQ(lf::gf2_mulmod(0b011, 0b101, p), 0b100u);
}

TEST(Gf2Arithmetic, PowmodFermat) {
  // a^(2^n - 1) = 1 for all nonzero a in GF(2^n) when p is irreducible.
  const lf::Gf2Poly p{0b011011, 6};  // x^6+x^4+x^3+x+1 (irreducible)
  ASSERT_TRUE(lf::is_irreducible(p));
  for (std::uint64_t a = 1; a < 64; ++a)
    EXPECT_EQ(lf::gf2_powmod(a, 63, p), 1u) << "a=" << a;
}

TEST(Irreducibility, KnownPolys) {
  EXPECT_TRUE(lf::is_irreducible({0b011, 3}));    // x^3+x+1
  EXPECT_TRUE(lf::is_irreducible({0b101, 3}));    // x^3+x^2+1
  EXPECT_FALSE(lf::is_irreducible({0b001, 3}));   // x^3+1 = (x+1)(x^2+x+1)
  EXPECT_FALSE(lf::is_irreducible({0b111, 3}));   // x^3+x^2+x+1, p(1)=0
  EXPECT_TRUE(lf::is_irreducible({0b00011011, 8}));  // AES poly x^8+x^4+x^3+x+1
}

TEST(Primitivity, AesPolyIsIrreducibleButNotPrimitive) {
  // The AES field polynomial is irreducible but x has order 51, not 255.
  const lf::Gf2Poly aes{0b00011011, 8};
  EXPECT_TRUE(lf::is_irreducible(aes));
  EXPECT_FALSE(lf::is_primitive(aes));
}

TEST(Primitivity, ClassicPrimitives) {
  EXPECT_TRUE(lf::is_primitive({0b011, 3}));                 // x^3+x+1
  EXPECT_TRUE(lf::is_primitive({(1u << 17) | 1u, 20}));      // x^20+x^17+1
  // x^16+x^15+x^13+x^4+1 (the classic maximal-length 16-bit tap set).
  EXPECT_TRUE(lf::is_primitive({(1u << 15) | (1u << 13) | (1u << 4) | 1u, 16}));
}

TEST(Primitivity, ReciprocalOfPrimitiveIsPrimitive) {
  // Reciprocal of x^20+x^17+1 is x^20+x^3+1.
  EXPECT_TRUE(lf::is_primitive({(1u << 3) | 1u, 20}));
}

// Property sweep: every polynomial the library hands out must be primitive.
class PrimitiveTable : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrimitiveTable, GeneratedPolyIsPrimitive) {
  const unsigned n = GetParam();
  const lf::Gf2Poly p = lf::primitive_polynomial(n);
  EXPECT_EQ(p.degree, n);
  EXPECT_TRUE(p.taps & 1u) << "a_0 must be 1";
  EXPECT_TRUE(lf::is_primitive(p)) << "degree " << n;
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, PrimitiveTable,
                         ::testing::Range(3u, 65u));

TEST(PrimitiveTable, RejectsOutOfRangeDegrees) {
  EXPECT_THROW(lf::primitive_polynomial(2), std::invalid_argument);
  EXPECT_THROW(lf::primitive_polynomial(65), std::invalid_argument);
}

TEST(TapPositions, MatchMask) {
  const lf::Gf2Poly p{(1u << 17) | 1u, 20};
  EXPECT_EQ(p.tap_positions(), (std::vector<unsigned>{0, 17}));
  EXPECT_EQ(p.tap_count(), 2u);
}
