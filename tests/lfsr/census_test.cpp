// Number-theoretic census tests: exhaustive counts of irreducible and
// primitive polynomials for small degrees must match the classical formulas
// — a whole-domain check of is_irreducible/is_primitive, far stronger than
// spot examples.
#include <gtest/gtest.h>

#include "lfsr/polynomial.hpp"

namespace lf = bsrng::lfsr;

namespace {
// Moebius function for the small arguments we need.
int moebius(unsigned n) {
  int m = 1;
  for (unsigned p = 2; p * p <= n; ++p) {
    if (n % p == 0) {
      n /= p;
      if (n % p == 0) return 0;  // squared factor
      m = -m;
    }
  }
  if (n > 1) m = -m;
  return m;
}

// Number of monic irreducible polynomials of degree n over GF(2):
//   (1/n) * sum_{d | n} mu(d) 2^{n/d}.
long expected_irreducible(unsigned n) {
  long sum = 0;
  for (unsigned d = 1; d <= n; ++d)
    if (n % d == 0) sum += moebius(d) * (1l << (n / d));
  return sum / static_cast<long>(n);
}

// Number of primitive polynomials of degree n: phi(2^n - 1) / n.
long expected_primitive(unsigned n) {
  std::uint64_t m = (1ull << n) - 1;
  std::uint64_t phi = m;
  for (const auto p : lf::prime_factors(m)) phi = phi / p * (p - 1);
  return static_cast<long>(phi / n);
}
}  // namespace

class PolyCensus : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolyCensus, IrreducibleAndPrimitiveCountsMatchTheory) {
  const unsigned n = GetParam();
  long irreducible = 0, primitive = 0;
  // Enumerate every polynomial x^n + ... + a_0 (all 2^n tap masks).
  for (std::uint64_t taps = 0; taps < (1ull << n); ++taps) {
    const lf::Gf2Poly p{taps, n};
    const bool irr = lf::is_irreducible(p);
    const bool prim = lf::is_primitive(p);
    irreducible += irr;
    primitive += prim;
    if (prim) {
      EXPECT_TRUE(irr) << "primitive must imply irreducible";
    }
  }
  EXPECT_EQ(irreducible, expected_irreducible(n)) << "degree " << n;
  EXPECT_EQ(primitive, expected_primitive(n)) << "degree " << n;
}

INSTANTIATE_TEST_SUITE_P(SmallDegrees, PolyCensus,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u));

TEST(PolyCensus, KnownCountsSpotCheck) {
  // Classical values: 3 irreducible of degree 4; 6 of degree 5 (all
  // primitive since 2^5-1 = 31 is prime); 9 of degree 6.
  EXPECT_EQ(expected_irreducible(4), 3);
  EXPECT_EQ(expected_irreducible(5), 6);
  EXPECT_EQ(expected_primitive(5), 6);
  EXPECT_EQ(expected_irreducible(6), 9);
}
