// Jump-ahead: matrix-power advancement must equal clocking, for scalar and
// bitsliced LFSRs, including jumps far beyond feasible clocking.
#include <gtest/gtest.h>

#include <random>

#include "lfsr/jump.hpp"

namespace lf = bsrng::lfsr;
namespace bs = bsrng::bitslice;

TEST(TransitionMatrix, ZeroStepsIsIdentity) {
  const auto poly = lf::primitive_polynomial(20);
  const lf::TransitionMatrix m(poly, 0);
  std::mt19937_64 rng(1);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t s = rng() & 0xFFFFF;
    EXPECT_EQ(m.apply(s), s);
  }
}

TEST(TransitionMatrix, OneStepMatchesClock) {
  for (const unsigned n : {8u, 20u, 33u, 64u}) {
    const auto poly = lf::primitive_polynomial(n);
    const lf::TransitionMatrix m(poly, 1);
    lf::FibonacciLfsr l(poly, 0x1357 % ((n >= 16 ? 0xFFFFull : (1ull << n) - 1)) + 1);
    const std::uint64_t expect_next = [&] {
      lf::FibonacciLfsr copy = l;
      copy.step();
      return copy.state();
    }();
    EXPECT_EQ(m.apply(l.state()), expect_next) << "degree " << n;
  }
}

class JumpSteps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JumpSteps, ScalarJumpEqualsClocking) {
  const std::uint64_t steps = GetParam();
  const auto poly = lf::primitive_polynomial(24);
  lf::FibonacciLfsr jumped(poly, 0xBEEF);
  lf::FibonacciLfsr clocked(poly, 0xBEEF);
  lf::jump(jumped, steps);
  for (std::uint64_t i = 0; i < steps; ++i) clocked.step();
  EXPECT_EQ(jumped.state(), clocked.state()) << "steps=" << steps;
}

INSTANTIATE_TEST_SUITE_P(SmallCounts, JumpSteps,
                         ::testing::Values(0, 1, 2, 7, 63, 64, 100, 1000,
                                           12345));

TEST(Jump, FullPeriodIsIdentity) {
  const auto poly = lf::primitive_polynomial(20);
  lf::FibonacciLfsr l(poly, 0xABCDE);
  const std::uint64_t start = l.state();
  lf::jump(l, (1ull << 20) - 1);
  EXPECT_EQ(l.state(), start);
}

TEST(Jump, HugeJumpsComposeAdditively) {
  // jump(a) then jump(b) == jump(a + b), with a + b ~ 2^50 (unclockable).
  const auto poly = lf::primitive_polynomial(48);
  lf::FibonacciLfsr x(poly, 0x123456789ull), y(poly, 0x123456789ull);
  const std::uint64_t a = (1ull << 49) + 12345, b = (1ull << 50) + 999;
  lf::jump(x, a);
  lf::jump(x, b);
  lf::jump(y, a + b);
  EXPECT_EQ(x.state(), y.state());
}

template <typename W>
class BitslicedJump : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(BitslicedJump, AllWidths);

TYPED_TEST(BitslicedJump, JumpMatchesClockingEveryLane) {
  const auto poly = lf::primitive_polynomial(31);
  lf::BitslicedLfsr<TypeParam> jumped(poly, 505u);
  lf::BitslicedLfsr<TypeParam> clocked(poly, 505u);
  const std::uint64_t steps = 777;
  lf::jump(jumped, steps);
  for (std::uint64_t i = 0; i < steps; ++i) clocked.step();
  for (std::size_t lane = 0; lane < bs::lane_count<TypeParam>; ++lane)
    ASSERT_EQ(jumped.lane_state(lane), clocked.lane_state(lane))
        << "lane " << lane;
}

TYPED_TEST(BitslicedJump, JumpedEngineContinuesCorrectly) {
  // After a jump the engine must keep stepping in sync with a clocked twin.
  const auto poly = lf::primitive_polynomial(20);
  lf::BitslicedLfsr<TypeParam> jumped(poly, 9u), clocked(poly, 9u);
  lf::jump(jumped, 500);
  for (int i = 0; i < 500; ++i) clocked.step();
  for (int i = 0; i < 100; ++i) ASSERT_EQ(jumped.step(), clocked.step());
}

TEST(Jump, DisjointSubstreamPartitioning) {
  // The §5.4 use case: D devices each jump to their own offset; device d's
  // first outputs equal the global stream at offset d * chunk.
  const auto poly = lf::primitive_polynomial(33);
  const std::uint64_t chunk = 10000;
  lf::FibonacciLfsr global(poly, 0xACE);
  std::vector<bool> stream;
  for (std::uint64_t i = 0; i < 4 * chunk; ++i) stream.push_back(global.step());
  for (std::uint64_t d = 0; d < 4; ++d) {
    lf::FibonacciLfsr dev(poly, 0xACE);
    lf::jump(dev, d * chunk);
    for (std::uint64_t i = 0; i < 32; ++i)
      ASSERT_EQ(dev.step(), stream[d * chunk + i]) << "device " << d;
  }
}

// Property: jump(n) == n sequential clocks for random n across many degrees
// (the earlier parameterized test pins one degree and fixed counts).
TEST(Jump, RandomStepCountsAcrossDegrees) {
  std::mt19937_64 rng(77);
  for (const unsigned degree : {8u, 17u, 24u, 33u, 48u, 64u}) {
    const auto poly = lf::primitive_polynomial(degree);
    const std::uint64_t mask =
        degree == 64 ? ~0ull : (1ull << degree) - 1;
    for (int trial = 0; trial < 8; ++trial) {
      const std::uint64_t seed = (rng() & mask) | 1u;
      const std::uint64_t steps = rng() % 4096;
      lf::FibonacciLfsr jumped(poly, seed);
      lf::FibonacciLfsr clocked(poly, seed);
      lf::jump(jumped, steps);
      for (std::uint64_t i = 0; i < steps; ++i) clocked.step();
      ASSERT_EQ(jumped.state(), clocked.state())
          << "degree=" << degree << " steps=" << steps << " seed=" << seed;
    }
  }
}
