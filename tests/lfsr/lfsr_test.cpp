// Scalar and bitsliced LFSR behaviour: maximal periods, cross-form
// consistency, and the central bitslicing equivalence property (§4.3).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "lfsr/bitsliced_lfsr.hpp"
#include "lfsr/polynomial.hpp"
#include "lfsr/scalar_lfsr.hpp"

namespace lf = bsrng::lfsr;
namespace bs = bsrng::bitslice;

TEST(FibonacciLfsr, RejectsBadArguments) {
  const lf::Gf2Poly p = lf::primitive_polynomial(8);
  EXPECT_THROW(lf::FibonacciLfsr(p, 0), std::invalid_argument);
  EXPECT_THROW(lf::FibonacciLfsr({0b10, 3}, 1), std::invalid_argument);
}

// Property: a primitive polynomial gives the full period 2^n - 1 (§2.2).
class MaximalPeriod : public ::testing::TestWithParam<unsigned> {};

TEST_P(MaximalPeriod, PrimitivePolyHitsFullCycle) {
  const unsigned n = GetParam();
  const lf::Gf2Poly p = lf::primitive_polynomial(n);
  EXPECT_EQ(lf::cycle_length(p, 1), (std::uint64_t{1} << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(SmallDegrees, MaximalPeriod,
                         ::testing::Values(3u, 5u, 8u, 11u, 16u, 18u, 20u));

TEST(MaximalPeriodNegative, NonPrimitiveIrreducibleFallsShort) {
  // AES poly: irreducible, order of x is 51, so the cycle is shorter.
  const lf::Gf2Poly aes{0b00011011, 8};
  EXPECT_LT(lf::cycle_length(aes, 1), 255u);
  EXPECT_EQ(255u % lf::cycle_length(aes, 1), 0u);  // divides 2^n - 1
}

TEST(GaloisLfsr, MaximalPeriodStateCycle) {
  const lf::Gf2Poly p = lf::primitive_polynomial(10);
  lf::GaloisLfsr g(p, 1);
  const std::uint64_t start = g.state();
  std::uint64_t n = 0;
  do {
    g.step();
    ++n;
  } while (g.state() != start);
  EXPECT_EQ(n, (1u << 10) - 1u);
}

TEST(FibonacciLfsr, OutputIsStageZero) {
  const lf::Gf2Poly p = lf::primitive_polynomial(12);
  lf::FibonacciLfsr l(p, 0xABC);
  for (int i = 0; i < 100; ++i) {
    const bool expect = l.state() & 1u;
    EXPECT_EQ(l.step(), expect);
  }
}

TEST(FibonacciLfsr, Step64PacksLsbFirst) {
  const lf::Gf2Poly p = lf::primitive_polynomial(20);
  lf::FibonacciLfsr a(p, 0x1234);
  lf::FibonacciLfsr b(p, 0x1234);
  const std::uint64_t w = a.step64();
  for (unsigned i = 0; i < 64; ++i)
    EXPECT_EQ((w >> i) & 1u, static_cast<std::uint64_t>(b.step())) << i;
}

// ---------------------------------------------------------------------------
// The core §4.3 claim: the bitsliced LFSR is bit-exact with W independent
// scalar LFSRs, at every lane width.
// ---------------------------------------------------------------------------
template <typename W>
class BitslicedEquivalence : public ::testing::Test {};

using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(BitslicedEquivalence, AllWidths);

TYPED_TEST(BitslicedEquivalence, MatchesScalarLanes) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  for (const unsigned degree : {20u, 33u, 64u}) {
    const lf::Gf2Poly p = lf::primitive_polynomial(degree);
    std::mt19937_64 rng(degree);
    std::vector<std::uint64_t> seeds(L);
    const std::uint64_t mask =
        degree == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << degree) - 1;
    for (auto& s : seeds)
      do s = rng() & mask;
      while (s == 0);

    lf::BitslicedLfsr<TypeParam> sliced(p, seeds);
    std::vector<lf::FibonacciLfsr> scalar;
    scalar.reserve(L);
    for (auto s : seeds) scalar.emplace_back(p, s);

    for (int t = 0; t < 300; ++t) {
      const TypeParam out = sliced.step();
      for (std::size_t j = 0; j < L; ++j)
        ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(out, j),
                  scalar[j].step())
            << "degree " << degree << " t=" << t << " lane=" << j;
    }
  }
}

TYPED_TEST(BitslicedEquivalence, LaneStateTracksScalarState) {
  const lf::Gf2Poly p = lf::primitive_polynomial(24);
  lf::BitslicedLfsr<TypeParam> sliced(p, 0xDEADBEEFull);
  std::vector<lf::FibonacciLfsr> scalar;
  for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j)
    scalar.emplace_back(p, sliced.lane_state(j));
  for (int t = 0; t < 100; ++t) {
    sliced.step();
    for (auto& s : scalar) s.step();
  }
  for (std::size_t j = 0; j < bs::lane_count<TypeParam>; ++j)
    EXPECT_EQ(sliced.lane_state(j), scalar[j].state()) << "lane " << j;
}

TEST(BitslicedLfsr, MasterSeedGivesDistinctNonzeroLanes) {
  const lf::Gf2Poly p = lf::primitive_polynomial(20);
  lf::BitslicedLfsr<bs::SliceU32> sliced(p, 42);
  std::set<std::uint64_t> states;
  for (std::size_t j = 0; j < 32; ++j) {
    const std::uint64_t s = sliced.lane_state(j);
    EXPECT_NE(s, 0u);
    states.insert(s);
  }
  EXPECT_EQ(states.size(), 32u) << "lane seeds must be uncorrelated/distinct";
}

TEST(BitslicedLfsr, RejectsBadSeeds) {
  const lf::Gf2Poly p = lf::primitive_polynomial(16);
  std::vector<std::uint64_t> seeds(32, 1);
  seeds[5] = 0;
  EXPECT_THROW((lf::BitslicedLfsr<bs::SliceU32>(p, seeds)),
               std::invalid_argument);
  seeds[5] = 1;
  seeds.pop_back();
  EXPECT_THROW((lf::BitslicedLfsr<bs::SliceU32>(p, seeds)),
               std::invalid_argument);
}

TEST(BitslicedLfsr, GenerateFillsSpan) {
  const lf::Gf2Poly p = lf::primitive_polynomial(20);
  lf::BitslicedLfsr<bs::SliceU32> a(p, 7), b(p, 7);
  std::vector<bs::SliceU32> block(257);
  a.generate(block);
  for (auto& s : block) EXPECT_EQ(s, b.step());
}

TEST(Splitmix64, KnownStreamIsDeterministic) {
  std::uint64_t s1 = 123, s2 = 123;
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(lf::splitmix64(s1), lf::splitmix64(s2));
  std::uint64_t s3 = 124;
  EXPECT_NE(lf::splitmix64(s3), [] {
    std::uint64_t s = 123;
    return lf::splitmix64(s);
  }());
}
