// CRC module: known check values, table/bitwise agreement, bitsliced
// equivalence across lane widths (§4.2), and the CRC linearity property.
#include <gtest/gtest.h>

#include <random>
#include <string_view>

#include "crc/crc32.hpp"
#include "crc/crc8.hpp"

namespace crc = bsrng::crc;
namespace bs = bsrng::bitslice;

namespace {
std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}
}  // namespace

TEST(Crc8, KnownCheckValue) {
  // CRC-8/SMBUS check value for "123456789" is 0xF4.
  EXPECT_EQ(crc::crc8_bitwise(bytes_of("123456789")), 0xF4);
  EXPECT_EQ(crc::crc8_table(bytes_of("123456789")), 0xF4);
}

TEST(Crc8, EmptyInputReturnsInit) {
  EXPECT_EQ(crc::crc8_bitwise({}, 0x07, 0x00), 0x00);
  EXPECT_EQ(crc::crc8_bitwise({}, 0x07, 0xAB), 0xAB);
}

TEST(Crc8, TableMatchesBitwiseOnRandomData) {
  std::mt19937_64 rng(1);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint8_t> data(1 + rng() % 100);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const auto poly = static_cast<std::uint8_t>(rng() | 1u);
    EXPECT_EQ(crc::crc8_bitwise(data, poly), crc::crc8_table(data, poly));
  }
}

TEST(Crc8, LinearityProperty) {
  // crc(a ^ b) = crc(a) ^ crc(b) ^ crc(0) for equal-length messages
  // (CRC with zero init is linear over GF(2)).
  std::mt19937_64 rng(2);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t n = 1 + rng() % 64;
    std::vector<std::uint8_t> a(n), b(n), x(n), zero(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::uint8_t>(rng());
      b[i] = static_cast<std::uint8_t>(rng());
      x[i] = a[i] ^ b[i];
    }
    EXPECT_EQ(crc::crc8_bitwise(x),
              crc::crc8_bitwise(a) ^ crc::crc8_bitwise(b) ^
                  crc::crc8_bitwise(zero));
  }
}

TEST(Crc32, KnownCheckValue) {
  // CRC-32/IEEE check value for "123456789" is 0xCBF43926.
  EXPECT_EQ(crc::crc32_bitwise(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc::crc32_table(bytes_of("123456789")), 0xCBF43926u);
}

TEST(Crc32, TableMatchesBitwise) {
  std::mt19937_64 rng(3);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::uint8_t> data(1 + rng() % 200);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    EXPECT_EQ(crc::crc32_bitwise(data), crc::crc32_table(data));
  }
}

// ---------------------------------------------------------------------------
// Bitsliced CRC equals the scalar CRC independently per lane, at all widths.
// ---------------------------------------------------------------------------
template <typename W>
class SlicedCrc : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(SlicedCrc, AllWidths);

TYPED_TEST(SlicedCrc, Crc8MatchesScalarPerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(4);
  const std::size_t nbytes = 23;
  std::vector<std::vector<std::uint8_t>> streams(L,
                                                 std::vector<std::uint8_t>(nbytes));
  for (auto& s : streams)
    for (auto& b : s) b = static_cast<std::uint8_t>(rng());

  crc::Crc8Sliced<TypeParam> sliced;
  // Feed bit t of every stream per clock: MSB-of-byte first to match the
  // scalar convention.
  for (std::size_t byte = 0; byte < nbytes; ++byte)
    for (int bit = 7; bit >= 0; --bit) {
      TypeParam in = bs::SliceTraits<TypeParam>::zero();
      for (std::size_t j = 0; j < L; ++j)
        bs::SliceTraits<TypeParam>::set_lane(in, j,
                                             (streams[j][byte] >> bit) & 1u);
      sliced.step(in);
    }
  for (std::size_t j = 0; j < L; ++j)
    EXPECT_EQ(sliced.lane_crc(j), crc::crc8_bitwise(streams[j])) << "lane " << j;
}

TYPED_TEST(SlicedCrc, Crc32MatchesScalarPerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(5);
  const std::size_t nbytes = 17;
  std::vector<std::vector<std::uint8_t>> streams(L,
                                                 std::vector<std::uint8_t>(nbytes));
  for (auto& s : streams)
    for (auto& b : s) b = static_cast<std::uint8_t>(rng());

  crc::Crc32Sliced<TypeParam> sliced;
  // Reflected CRC-32 consumes LSB-of-byte first.
  for (std::size_t byte = 0; byte < nbytes; ++byte)
    for (int bit = 0; bit < 8; ++bit) {
      TypeParam in = bs::SliceTraits<TypeParam>::zero();
      for (std::size_t j = 0; j < L; ++j)
        bs::SliceTraits<TypeParam>::set_lane(in, j,
                                             (streams[j][byte] >> bit) & 1u);
      sliced.step(in);
    }
  for (std::size_t j = 0; j < L; ++j)
    EXPECT_EQ(sliced.lane_crc(j), crc::crc32_bitwise(streams[j])) << "lane " << j;
}

TYPED_TEST(SlicedCrc, DistinctLanesGetDistinctCrcs) {
  // Sanity: the sliced engine must not mix lanes — W different inputs give
  // (with overwhelming probability) many distinct CRC-32s.
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  crc::Crc32Sliced<TypeParam> sliced;
  std::mt19937_64 rng(6);
  for (int t = 0; t < 256; ++t) {
    TypeParam in = bs::SliceTraits<TypeParam>::zero();
    for (std::size_t j = 0; j < L; ++j)
      bs::SliceTraits<TypeParam>::set_lane(in, j, rng() & 1u);
    sliced.step(in);
  }
  std::set<std::uint32_t> crcs;
  for (std::size_t j = 0; j < L; ++j) crcs.insert(sliced.lane_crc(j));
  EXPECT_GT(crcs.size(), L - L / 16);
}
