// Static analyzer cross-validation: the affine layer must prove every
// shipped descriptor kernel clean in closed form, the exhaustive layer must
// reproduce the dynamic sanitizer's findings *coordinate for coordinate* on
// the seeded-bug kernels from tests/gpusim/sanitizer_test.cpp, and the
// predicted coalescing/bank counters must equal the dynamic MemStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "core/descriptor.hpp"
#include "core/gpu_kernel.hpp"
#include "gpusim/device.hpp"

namespace an = bsrng::analysis;
namespace gs = bsrng::gpusim;
namespace co = bsrng::core;

namespace {

using an::AffineExpr;
using an::Cond;
using an::Stmt;

// Assert the static findings and a dynamic launch's reports are the same
// sequence (kind, block, thread, other_thread, epoch, address, slot) —
// valid when both sides are deterministic (sequential dynamic execution or
// finalize-only reports).
void expect_same_sequence(const an::StaticAnalysis& sa,
                          const std::vector<gs::CheckReport>& dynamic) {
  ASSERT_EQ(sa.findings.size(), dynamic.size());
  for (std::size_t i = 0; i < dynamic.size(); ++i) {
    EXPECT_TRUE(an::same_finding(sa.findings[i].finding, dynamic[i]))
        << "static:  " << sa.findings[i].finding.to_string() << "\n"
        << "dynamic: " << dynamic[i].to_string();
    EXPECT_EQ(sa.findings[i].method, an::ProofMethod::kExhaustive);
  }
}

std::size_t count_kind(const an::StaticAnalysis& sa, gs::CheckKind kind) {
  return static_cast<std::size_t>(std::count_if(
      sa.findings.begin(), sa.findings.end(),
      [&](const an::StaticReport& r) { return r.finding.kind == kind; }));
}

}  // namespace

// --- affine algebra ----------------------------------------------------------

TEST(Affine, BoundTracksIntervalAndStride) {
  // 3 + 8*i + t over i in [0,4), t in [0,8): lo 3, hi 3+24+7, gcd(8,1)=1.
  const AffineExpr e = AffineExpr::var(2, 8) + AffineExpr::thread() + 3;
  const std::vector<an::VarRange> box = {{2, 0, 4, 1}, {an::kVarThread, 0, 8, 1}};
  const an::StrideInterval si = an::bound_affine(e, box);
  EXPECT_EQ(si.lo, 3);
  EXPECT_EQ(si.hi, 34);
  EXPECT_EQ(si.gcd, 1);
}

TEST(Affine, StrideGapsExcludeValues) {
  // 8*i over i in [0,4): {0, 8, 16, 24}.
  const an::StrideInterval si =
      an::bound_affine(AffineExpr::var(2, 8), {{an::VarRange{2, 0, 4, 1}}});
  EXPECT_TRUE(si.contains(0));
  EXPECT_TRUE(si.contains(16));
  EXPECT_FALSE(si.contains(4));
  EXPECT_FALSE(si.contains(-8));
  EXPECT_FALSE(si.contains(32));
}

// --- seeded bug: missing-barrier race (sanitizer_test.cpp kernel) ------------

namespace {

// Model of the missing_barrier kernel: publish to slot t, then read slot
// (t + 1) % 8 with no barrier.  The modulus is piecewise affine: two guards.
an::KernelModel missing_barrier_model() {
  an::KernelModel m;
  m.name = "missing_barrier";
  m.blocks = 1;
  m.threads_per_block = 8;
  m.shared_words = 8;
  m.global_words = 8;
  m.stmts.push_back(Stmt::shared_store(AffineExpr::thread()));
  m.stmts.push_back(Stmt::guarded(
      Cond{AffineExpr::thread(), Cond::Cmp::kLt, 7},
      {Stmt::shared_load(AffineExpr::thread() + 1),
       Stmt::global_store(AffineExpr::thread())}));
  m.stmts.push_back(Stmt::guarded(
      Cond{AffineExpr::thread(), Cond::Cmp::kGe, 7},
      {Stmt::shared_load(AffineExpr::thread() + (1 - 8)),
       Stmt::global_store(AffineExpr::thread())}));
  return m;
}

}  // namespace

TEST(StaticAnalyzer, MissingBarrierRaceMatchesDynamicReportForReport) {
  const an::StaticAnalysis sa = an::analyze(missing_barrier_model());
  EXPECT_FALSE(sa.clean());
  EXPECT_EQ(count_kind(sa, gs::CheckKind::kUninitSharedRead), 7u);
  EXPECT_EQ(count_kind(sa, gs::CheckKind::kSharedRaceWar), 7u);
  EXPECT_EQ(count_kind(sa, gs::CheckKind::kSharedRaceRaw), 1u);
  EXPECT_FALSE(sa.obligation("shared-race-freedom")->proven);
  EXPECT_FALSE(sa.obligation("uninit-shared-read-freedom")->proven);
  EXPECT_TRUE(sa.obligation("shared-oob")->proven);
  EXPECT_TRUE(sa.obligation("barrier-uniformity")->proven);

  gs::Device dev(8);
  dev.launch({.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
              .check = true, .kernel_name = "missing_barrier"},
             [](gs::ThreadCtx& ctx) {
               ctx.shared_store(ctx.thread_idx(), 1);
               const std::size_t neighbor =
                   (ctx.thread_idx() + 1) % ctx.block_dim();
               ctx.global_store(ctx.global_thread_id(),
                                ctx.shared_load(neighbor));
             });
  expect_same_sequence(sa, dev.check_reports());
}

// The corrected kernel (barrier between publish and read) must verify clean
// — decided by the exhaustive layer because of the guards.
TEST(StaticAnalyzer, BarrierSeparatedNeighborExchangeVerifiesClean) {
  an::KernelModel m = missing_barrier_model();
  m.name = "with_barrier";
  m.stmts.insert(m.stmts.begin() + 1, Stmt::barrier());
  const an::StaticAnalysis sa = an::analyze(m);
  EXPECT_TRUE(sa.clean()) << sa.summary();
  for (const an::Obligation& o : sa.obligations) {
    EXPECT_TRUE(o.proven) << o.name;
    EXPECT_EQ(o.method, an::ProofMethod::kExhaustive) << o.name;
  }
}

// --- seeded bug: off-by-one staging index ------------------------------------

TEST(StaticAnalyzer, OffByOneStagingIndexMatchesDynamic) {
  // for (i = t; i <= 4; i += 4) shared_store(i): modeled as the maximal
  // trip count with the `<=` residue as a guard (thread-dependent trips are
  // exactly what the guard encodes).
  an::KernelModel m;
  m.name = "off_by_one";
  m.blocks = 2;
  m.threads_per_block = 4;
  m.shared_words = 4;
  m.global_words = 32;
  const int k = m.fresh_var();
  m.stmts.push_back(Stmt::loop(
      k, 0, 2,
      {Stmt::guarded(Cond{AffineExpr::thread() + AffineExpr::var(k, 4),
                          Cond::Cmp::kLt, 5},
                     {Stmt::shared_store(AffineExpr::thread() +
                                         AffineExpr::var(k, 4))})}));
  const an::StaticAnalysis sa = an::analyze(m);
  ASSERT_EQ(sa.findings.size(), 2u);
  EXPECT_FALSE(sa.obligation("shared-oob")->proven);

  gs::Device dev(32);
  dev.launch({.blocks = 2, .threads_per_block = 4, .shared_bytes = 16,
              .check = true, .kernel_name = "off_by_one"},
             [](gs::ThreadCtx& ctx) {
               for (std::size_t i = ctx.thread_idx(); i <= 4;
                    i += ctx.block_dim())
                 ctx.shared_store(i, 7);
             });
  expect_same_sequence(sa, dev.check_reports());
}

// --- seeded bug: global out-of-bounds ----------------------------------------

TEST(StaticAnalyzer, GlobalOutOfBoundsMatchesDynamic) {
  an::KernelModel m;
  m.name = "global_oob";
  m.blocks = 1;
  m.threads_per_block = 4;
  m.global_words = 4;
  m.stmts.push_back(Stmt::global_store(AffineExpr::thread() + 1));
  m.stmts.push_back(Stmt::global_load(AffineExpr::thread() + 1));
  const an::StaticAnalysis sa = an::analyze(m);
  ASSERT_EQ(sa.findings.size(), 2u);
  // Uniform control flow, but the interval [1, 4] leaves the bound: the
  // affine layer cannot prove it and the trace refutes it with witnesses.
  EXPECT_FALSE(sa.obligation("global-oob")->proven);
  EXPECT_EQ(sa.obligation("global-oob")->method,
            an::ProofMethod::kExhaustive);
  // No shared traffic at all: those obligations hold in closed form.
  EXPECT_TRUE(sa.obligation("shared-race-freedom")->proven);
  EXPECT_EQ(sa.obligation("shared-race-freedom")->method,
            an::ProofMethod::kAffine);

  gs::Device dev(4);
  dev.launch({.blocks = 1, .threads_per_block = 4, .check = true,
              .kernel_name = "global_oob"},
             [](gs::ThreadCtx& ctx) {
               const std::size_t w = ctx.thread_idx() + 1;
               ctx.global_store(w, 1);
               (void)ctx.global_load(w);
             });
  expect_same_sequence(sa, dev.check_reports());
}

// --- seeded bug: divergent early return --------------------------------------

TEST(StaticAnalyzer, DivergentEarlyReturnMatchesDynamic) {
  an::KernelModel m;
  m.name = "early_return";
  m.blocks = 1;
  m.threads_per_block = 8;
  m.shared_words = 8;
  m.global_words = 8;
  m.stmts.push_back(Stmt::guarded(
      Cond{AffineExpr::thread(), Cond::Cmp::kEq, 2}, {Stmt::exit()}));
  m.stmts.push_back(Stmt::shared_store(AffineExpr::thread()));
  m.stmts.push_back(Stmt::barrier());
  const an::StaticAnalysis sa = an::analyze(m);
  ASSERT_EQ(sa.findings.size(), 1u);
  EXPECT_EQ(sa.findings[0].finding.kind, gs::CheckKind::kBarrierDivergence);
  EXPECT_FALSE(sa.obligation("barrier-uniformity")->proven);

  gs::Device dev(8);
  dev.launch({.blocks = 1, .threads_per_block = 8, .shared_bytes = 32,
              .barriers = true, .check = true, .kernel_name = "early_return"},
             [](gs::ThreadCtx& ctx) {
               if (ctx.thread_idx() == 2) return;
               ctx.shared_store(ctx.thread_idx(), 1);
               ctx.sync_block();
             });
  expect_same_sequence(sa, dev.check_reports());
}

TEST(StaticAnalyzer, MismatchedBarrierCountsMatchDynamic) {
  an::KernelModel m;
  m.name = "extra_sync";
  m.blocks = 1;
  m.threads_per_block = 4;
  m.global_words = 4;
  m.stmts.push_back(Stmt::barrier());
  m.stmts.push_back(
      Stmt::guarded(Cond{AffineExpr::thread(), Cond::Cmp::kModEq, 0, 2},
                    {Stmt::barrier()}));
  const an::StaticAnalysis sa = an::analyze(m);
  ASSERT_EQ(sa.findings.size(), 2u);

  gs::Device dev(4);
  dev.launch({.blocks = 1, .threads_per_block = 4, .barriers = true,
              .check = true, .kernel_name = "extra_sync"},
             [](gs::ThreadCtx& ctx) {
               ctx.sync_block();
               if (ctx.thread_idx() % 2 == 0) ctx.sync_block();
             });
  expect_same_sequence(sa, dev.check_reports());
}

// --- seeded bug: uninitialised shared read -----------------------------------

TEST(StaticAnalyzer, UninitializedSharedReadMatchesDynamic) {
  an::KernelModel m;
  m.name = "uninit_read";
  m.blocks = 1;
  m.threads_per_block = 4;
  m.shared_words = 8;
  m.global_words = 4;
  m.stmts.push_back(Stmt::shared_store(AffineExpr::thread()));
  m.stmts.push_back(Stmt::shared_load(AffineExpr::thread() + 4));
  m.stmts.push_back(Stmt::global_store(AffineExpr::thread()));
  const an::StaticAnalysis sa = an::analyze(m);
  ASSERT_EQ(sa.findings.size(), 4u);
  // Uniform flow: race freedom and bounds hold in closed form even though
  // the uninit obligation is refuted.
  EXPECT_FALSE(sa.obligation("uninit-shared-read-freedom")->proven);
  EXPECT_TRUE(sa.obligation("shared-race-freedom")->proven);
  EXPECT_EQ(sa.obligation("shared-race-freedom")->method,
            an::ProofMethod::kAffine);
  EXPECT_TRUE(sa.obligation("shared-oob")->proven);
  EXPECT_EQ(sa.obligation("shared-oob")->method, an::ProofMethod::kAffine);

  gs::Device dev(4);
  dev.launch({.blocks = 1, .threads_per_block = 4, .shared_bytes = 32,
              .check = true, .kernel_name = "uninit_read"},
             [](gs::ThreadCtx& ctx) {
               ctx.shared_store(ctx.thread_idx(), 5);
               ctx.global_store(
                   ctx.global_thread_id(),
                   ctx.shared_load(ctx.block_dim() + ctx.thread_idx()));
             });
  expect_same_sequence(sa, dev.check_reports());
}

TEST(StaticAnalyzer, SameThreadReuseAcrossEpochsVerifiesClean) {
  // private_reuse: store/load slot t each round with a barrier per round.
  an::KernelModel m;
  m.name = "private_reuse";
  m.blocks = 1;
  m.threads_per_block = 4;
  m.shared_words = 4;
  m.global_words = 4;
  const int round = m.fresh_var();
  m.stmts.push_back(Stmt::loop(round, 0, 3,
                               {Stmt::shared_store(AffineExpr::thread()),
                                Stmt::shared_load(AffineExpr::thread()),
                                Stmt::barrier()}));
  const an::StaticAnalysis sa = an::analyze(m);
  EXPECT_TRUE(sa.clean()) << sa.summary();
  // Barrier inside a loop: epochs are iteration-dependent, so this one is
  // decided exhaustively.
  EXPECT_EQ(sa.obligation("shared-race-freedom")->method,
            an::ProofMethod::kExhaustive);
}

// --- shipped descriptor kernels: proven clean in closed form -----------------

TEST(StaticAnalyzer, ShippedKernelsProveCleanViaAffineLayer) {
  for (const auto& desc : co::algorithm_descriptors()) {
    for (const bool staging : {true, false}) {
      for (const bool coalesced : {true, false}) {
        co::GpuKernelConfig cfg;
        cfg.blocks = 2;
        cfg.threads_per_block = 32;
        cfg.words_per_thread = 16;
        cfg.staging_words = 4;
        cfg.use_shared_staging = staging;
        cfg.coalesced_layout = coalesced;
        const an::StaticAnalysis sa =
            an::analyze_descriptor_kernel(desc.base, cfg);
        EXPECT_TRUE(sa.clean())
            << desc.base << " staging=" << staging
            << " coalesced=" << coalesced << "\n" << sa.summary();
        for (const an::Obligation& o : sa.obligations) {
          EXPECT_TRUE(o.proven) << desc.base << " " << o.name;
          // The §4.5 kernel body is branch-free with no barriers: every
          // obligation must fall to the closed-form layer, not the trace.
          EXPECT_EQ(o.method, an::ProofMethod::kAffine)
              << desc.base << " " << o.name;
        }
      }
    }
  }
}

// Predicted traffic must equal the dynamic cost model's measurement for the
// identical launch — transactions, requests, bytes and shared accesses.
TEST(StaticAnalyzer, PredictedTrafficEqualsDynamicMemStats) {
  for (const auto& desc : co::algorithm_descriptors()) {
    for (const bool staging : {true, false}) {
      for (const bool coalesced : {true, false}) {
        co::GpuKernelConfig cfg;
        cfg.blocks = 2;
        cfg.threads_per_block = 32;
        cfg.words_per_thread = 16;
        cfg.staging_words = 4;
        cfg.use_shared_staging = staging;
        cfg.coalesced_layout = coalesced;
        const an::StaticAnalysis sa =
            an::analyze_descriptor_kernel(desc.base, cfg);
        gs::Device dev(cfg.blocks * cfg.threads_per_block *
                       cfg.words_per_thread);
        const auto res = co::run_gpu_kernel(dev, desc.base, cfg);
        EXPECT_EQ(sa.coalescing.global_transactions,
                  res.stats.global_transactions)
            << desc.base << " staging=" << staging
            << " coalesced=" << coalesced;
        EXPECT_EQ(sa.coalescing.global_requests, res.stats.global_requests)
            << desc.base;
        EXPECT_EQ(sa.coalescing.global_bytes, res.stats.global_bytes)
            << desc.base;
        EXPECT_EQ(sa.banks.shared_accesses, res.stats.shared_accesses)
            << desc.base;
        if (coalesced) {
          EXPECT_TRUE(sa.coalescing.fully_coalesced()) << desc.base;
          EXPECT_EQ(sa.coalescing.transactions_per_access(), 1.0)
              << desc.base;
        }
        if (staging) {
          EXPECT_TRUE(sa.banks.conflict_free()) << desc.base;
        }
      }
    }
  }
}

// Ragged geometries (non-warp-multiple blocks, staging depth not dividing
// words-per-thread) must still verify clean and agree with the dynamic run.
TEST(StaticAnalyzer, RaggedGeometriesVerifyCleanAndAgree) {
  co::GpuKernelConfig cfg;
  cfg.blocks = 3;
  cfg.threads_per_block = 33;
  cfg.words_per_thread = 48;
  cfg.staging_words = 7;  // 6 full rounds + ragged 6-word tail
  const an::StaticAnalysis sa = an::analyze_descriptor_kernel("grain", cfg);
  EXPECT_TRUE(sa.clean()) << sa.summary();
  gs::Device dev(cfg.blocks * cfg.threads_per_block * cfg.words_per_thread);
  cfg.check = true;
  const auto res = co::run_gpu_kernel(dev, "grain", cfg);
  EXPECT_EQ(res.stats.check_findings, 0u);
  EXPECT_EQ(sa.coalescing.global_transactions, res.stats.global_transactions);
  EXPECT_EQ(sa.banks.shared_accesses, res.stats.shared_accesses);
}

// Shrinking the modeled device allocation by one word must refute the
// bounds obligation with exactly one witness, and that witness's (block,
// thread, address) must be the owner of the highest kernel_out_index word —
// pinning the model's address equations to the layout function the real
// kernel executes.  (run_gpu_kernel rejects undersized devices up front, so
// the layout oracle is the dynamic reference here.)
TEST(StaticAnalyzer, UndersizedFootprintOobCoordinatesMatchOutIndexOracle) {
  for (const bool coalesced : {true, false}) {
    co::GpuKernelConfig cfg;
    cfg.blocks = 2;
    cfg.threads_per_block = 8;
    cfg.words_per_thread = 16;
    cfg.staging_words = 4;
    cfg.coalesced_layout = coalesced;
    const std::size_t words =
        cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
    const an::StaticAnalysis sa =
        an::analyze(an::model_descriptor_kernel("trivium", cfg, words - 1));
    ASSERT_EQ(sa.findings.size(), 1u) << "coalesced=" << coalesced;
    EXPECT_FALSE(sa.obligation("global-oob")->proven);
    const gs::CheckReport& r = sa.findings[0].finding;
    EXPECT_EQ(r.kind, gs::CheckKind::kGlobalOutOfBounds);
    EXPECT_EQ(r.address, words - 1);

    // Which (global thread, word) owns the out-of-range index?
    bool found = false;
    for (std::size_t gt = 0;
         gt < cfg.blocks * cfg.threads_per_block && !found; ++gt)
      for (std::size_t w = 0; w < cfg.words_per_thread && !found; ++w)
        if (co::kernel_out_index(cfg, gt, w) == words - 1) {
          EXPECT_EQ(r.block, gt / cfg.threads_per_block);
          EXPECT_EQ(r.thread, gt % cfg.threads_per_block);
          found = true;
        }
    EXPECT_TRUE(found);
  }
}

// --- performance metrics on hand-built patterns ------------------------------

TEST(StaticAnalyzer, ScatteredStoresPredictUncoalescedTraffic) {
  // Each lane stores 16 words (64 B) apart: 2 lanes per 128 B segment, so a
  // 32-lane warp needs 16 transactions per lockstep slot.
  an::KernelModel m;
  m.name = "scattered";
  m.blocks = 1;
  m.threads_per_block = 32;
  m.global_words = 512;
  m.stmts.push_back(Stmt::global_store(AffineExpr::thread(16)));
  const an::StaticAnalysis sa = an::analyze(m);
  EXPECT_TRUE(sa.clean());
  EXPECT_EQ(sa.coalescing.warp_slots, 1u);
  EXPECT_EQ(sa.coalescing.global_transactions, 16u);
  EXPECT_FALSE(sa.coalescing.fully_coalesced());
}

TEST(StaticAnalyzer, StridedSharedAccessPredictsBankConflicts) {
  // Stride-2 shared addressing: lanes t and t+16 collide on bank 2t % 32.
  an::KernelModel m;
  m.name = "bank_conflict";
  m.blocks = 1;
  m.threads_per_block = 32;
  m.shared_words = 64;
  m.global_words = 32;
  m.stmts.push_back(Stmt::shared_store(AffineExpr::thread(2)));
  const an::StaticAnalysis sa = an::analyze(m);
  EXPECT_TRUE(sa.clean());
  EXPECT_EQ(sa.banks.max_degree, 2u);
  EXPECT_FALSE(sa.banks.conflict_free());
}

// --- geometry validation and the diff predicate ------------------------------

TEST(StaticAnalyzer, RejectsSameGeometryViolationsAsRunGpuKernel) {
  co::GpuKernelConfig cfg;
  EXPECT_THROW(an::analyze_descriptor_kernel("nonesuch", cfg),
               std::invalid_argument);
  cfg.words_per_thread = 3;  // 12 B: not a multiple of AES's 16 B blocks
  EXPECT_THROW(an::analyze_descriptor_kernel("aes-ctr", cfg),
               std::invalid_argument);
  cfg = {};
  cfg.staging_words = 0;
  EXPECT_THROW(an::analyze_descriptor_kernel("mickey", cfg),
               std::invalid_argument);
}

TEST(StaticAnalyzer, SameFindingComparesAllCoordinates) {
  gs::CheckReport a;
  a.kind = gs::CheckKind::kSharedRaceRaw;
  a.kernel = "k";
  a.block = 1;
  a.thread = 2;
  a.other_thread = 3;
  a.epoch = 4;
  a.address = 5;
  a.slot = 6;
  gs::CheckReport b = a;
  EXPECT_TRUE(an::same_finding(a, b));
  b.address = 7;
  EXPECT_FALSE(an::same_finding(a, b));
  b = a;
  b.kind = gs::CheckKind::kSharedRaceWar;
  EXPECT_FALSE(an::same_finding(a, b));
}
