// Determinism lint: banned-source detection with comment/string stripping,
// token boundaries, in-place suppressions, and stable file ordering.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "analysis/lint.hpp"

namespace an = bsrng::analysis;

namespace {

std::size_t count_rule(const std::vector<an::LintFinding>& findings,
                       std::string_view rule) {
  std::size_t n = 0;
  for (const auto& f : findings) n += f.rule == rule ? 1 : 0;
  return n;
}

}  // namespace

TEST(LintStrip, CommentsAndStringsAreBlankedNewlinesKept) {
  const std::string src =
      "int a; // rand()\n"
      "/* time( spans\n"
      "   lines */ int b;\n"
      "const char* s = \"std::random_device\";\n"
      "char c = '\\'';\n";
  const std::string out = an::strip_comments_and_strings(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(out.find("rand("), std::string::npos);
  EXPECT_EQ(out.find("time("), std::string::npos);
  EXPECT_EQ(out.find("random_device"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(LintStrip, RawStringsAreBlanked) {
  const std::string src = "auto s = R\"x(call rand() here)x\"; int keep;";
  const std::string out = an::strip_comments_and_strings(src);
  EXPECT_EQ(out.find("rand("), std::string::npos);
  EXPECT_NE(out.find("int keep;"), std::string::npos);
}

TEST(LintRules, FlagsEachBannedSource) {
  const auto findings = an::lint_source("t.cpp",
                                        "int a = rand();\n"
                                        "srand(7);\n"
                                        "std::random_device rd;\n"
                                        "auto t = time(nullptr);\n"
                                        "using C = std::chrono::system_clock;\n"
                                        "std::unordered_map<Foo*, int> m;\n"
                                        "std::unordered_set<const Bar*> s;\n");
  EXPECT_EQ(count_rule(findings, "rand-call"), 2u);
  EXPECT_EQ(count_rule(findings, "random-device"), 1u);
  EXPECT_EQ(count_rule(findings, "wall-clock"), 2u);
  EXPECT_EQ(count_rule(findings, "pointer-keyed"), 2u);
  // Findings come back in line order with 1-based line numbers.
  ASSERT_EQ(findings.size(), 7u);
  for (std::size_t i = 0; i < findings.size(); ++i)
    EXPECT_EQ(findings[i].line, i + 1);
  EXPECT_NE(findings[0].to_string().find("t.cpp:1: [rand-call]"),
            std::string::npos);
}

TEST(LintRules, TokenBoundariesAvoidFalsePositives) {
  const auto findings = an::lint_source(
      "t.cpp",
      "strftime(buf, 9, fmt, tmv);\n"        // not time(
      "my_rand(x);\n"                        // not rand(
      "steady_clock::now();\n"               // monotonic timing is fine
      "std::unordered_map<int, Foo*> m;\n"   // pointer *value* is fine
      "trivium.clock(false, nullptr);\n");   // member named clock
  EXPECT_TRUE(findings.empty());
}

TEST(LintRules, QualifiedCallsAreStillFlagged) {
  const auto findings = an::lint_source("t.cpp", "int x = std::rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rand-call");
}

TEST(LintRules, SameLineSuppressionAcknowledgesFinding) {
  EXPECT_TRUE(an::lint_source(
                  "t.cpp",
                  "int a = rand();  // bsrng-lint: allow(rand-call)\n")
                  .empty());
  EXPECT_TRUE(an::lint_source("t.cpp",
                              "auto t = time(nullptr);  "
                              "// bsrng-lint: allow(*)\n")
                  .empty());
  // A suppression for a different rule does not apply.
  EXPECT_EQ(an::lint_source(
                "t.cpp",
                "int a = rand();  // bsrng-lint: allow(wall-clock)\n")
                .size(),
            1u);
}

TEST(LintPaths, WalksDirectoriesInSortedOrder) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "bsrng_lint_walk_test";
  fs::remove_all(root);
  fs::create_directories(root / "sub");
  const auto put = [](const fs::path& p, const char* text) {
    std::ofstream(p) << text;
  };
  put(root / "b.cpp", "int b = rand();\n");
  put(root / "a.hpp", "std::random_device rd;\n");
  put(root / "sub" / "c.cc", "auto t = time(nullptr);\n");
  put(root / "notes.txt", "rand( in prose is not code\n");

  const auto findings = an::lint_paths({root.string()});
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_NE(findings[0].file.find("a.hpp"), std::string::npos);
  EXPECT_NE(findings[1].file.find("b.cpp"), std::string::npos);
  EXPECT_NE(findings[2].file.find("c.cc"), std::string::npos);
  fs::remove_all(root);
}

TEST(LintPaths, MissingPathThrows) {
  EXPECT_THROW(an::lint_paths({"/nonexistent/bsrng/path"}),
               std::runtime_error);
}

TEST(LintPaths, DefaultRootsNameTheGenerationTrees) {
  const auto roots = an::default_lint_roots("/repo");
  ASSERT_EQ(roots.size(), 6u);
  EXPECT_EQ(roots[0], "/repo/src/core");
  EXPECT_EQ(roots[1], "/repo/src/ciphers");
  EXPECT_EQ(roots[2], "/repo/src/bitslice");
  EXPECT_EQ(roots[3], "/repo/src/lfsr");
  EXPECT_EQ(roots[4], "/repo/src/fault");
  // The substream fabric: checkpoint/serialization code is generation-
  // critical (a wall-clock read there would break restart determinism).
  EXPECT_EQ(roots[5], "/repo/src/stream");
}
