// Telemetry layer: metric semantics, enable/disable gating, JSON round-trip,
// concurrency exactness, and the built-in StreamEngine instrumentation.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/stream_engine.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace tel = bsrng::telemetry;

namespace {

TEST(Counter, AccumulatesWhenEnabled) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  tel::Counter& c = reg.counter("c");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Counter, DisabledRegistryIsNoOp) {
  tel::MetricsRegistry reg;
  tel::Counter& c = reg.counter("c");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
  reg.set_enabled(false);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Counter, SameNameSameInstance) {
  tel::MetricsRegistry reg;
  EXPECT_EQ(&reg.counter("x"), &reg.counter("x"));
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(Gauge, SetAndAdd) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  tel::Gauge& g = reg.gauge("g");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  reg.set_enabled(false);
  g.set(99.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Histogram, BucketPlacement) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  const double bounds[] = {1.0, 10.0, 100.0};
  tel::Histogram& h = reg.histogram("h", bounds);
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (inclusive upper bound)
  h.observe(5.0);    // bucket 1
  h.observe(1000.0); // overflow bucket
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1006.5);
}

TEST(Histogram, DefaultBoundsAreSortedAndNonEmpty) {
  const auto b = tel::Histogram::default_latency_bounds();
  ASSERT_FALSE(b.empty());
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_LT(b[i - 1], b[i]);
}

TEST(Registry, KindMismatchThrows) {
  tel::MetricsRegistry reg;
  reg.counter("m");
  EXPECT_THROW(reg.gauge("m"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("m"), std::invalid_argument);
}

TEST(Registry, ResetZeroesButKeepsReferencesValid) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  tel::Counter& c = reg.counter("c");
  tel::Histogram& h = reg.histogram("h");
  c.add(7);
  h.observe(0.5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  c.add(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Registry, ConcurrentIncrementsAreExact) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  tel::Counter& c = reg.counter("concurrent");
  tel::Histogram& h = reg.histogram("concurrent_h");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(1e-5);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Metric creation racing metric updates (the cached-handle pattern means
// creation happens on first touch from any thread).
TEST(Registry, ConcurrentCreationIsSafe) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        reg.counter("shared").add();
        reg.counter("own_" + std::to_string(t)).add();
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.counter("shared").value(), 800u);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(reg.counter("own_" + std::to_string(t)).value(), 100u);
}

TEST(Snapshot, FindAndSortOrder) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("b.count").add(3);
  reg.gauge("a.depth").set(1.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  EXPECT_EQ(snap.metrics[0].name, "a.depth");  // sorted by name
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  const auto* c = snap.find("b.count");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, tel::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(c->value, 3.0);
  EXPECT_EQ(snap.find("nope"), nullptr);
}

TEST(Snapshot, JsonRoundTrip) {
  tel::MetricsRegistry reg;
  reg.set_enabled(true);
  reg.counter("jobs").add(12345);
  reg.gauge("gbps").set(3.25);
  const double bounds[] = {0.001, 0.01, 0.1};
  tel::Histogram& h = reg.histogram("lat", bounds);
  h.observe(0.0005);
  h.observe(0.05);
  h.observe(5.0);

  const auto snap = reg.snapshot();
  const std::string json = snap.to_json();
  const auto back = tel::MetricsSnapshot::from_json(json);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->metrics.size(), snap.metrics.size());
  for (std::size_t i = 0; i < snap.metrics.size(); ++i) {
    const auto& a = snap.metrics[i];
    const auto& b = back->metrics[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_DOUBLE_EQ(a.value, b.value);
    EXPECT_EQ(a.count, b.count);
    EXPECT_DOUBLE_EQ(a.sum, b.sum);
    EXPECT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.buckets, b.buckets);
  }
  // Round-trip is a fixed point: serializing the parse reproduces the text.
  EXPECT_EQ(back->to_json(), json);
}

TEST(Snapshot, FromJsonRejectsMalformed) {
  EXPECT_FALSE(tel::MetricsSnapshot::from_json("").has_value());
  EXPECT_FALSE(tel::MetricsSnapshot::from_json("{}").has_value());
  EXPECT_FALSE(tel::MetricsSnapshot::from_json("{\"metrics\":3}").has_value());
  EXPECT_FALSE(
      tel::MetricsSnapshot::from_json("{\"metrics\":[{\"name\":\"x\"}]}")
          .has_value());
}

TEST(Json, ParserBasics) {
  const auto v = tel::json_parse(
      R"({"a": [1, 2.5, true, null, "sA"], "b": {"nested": -3e2}})");
  ASSERT_TRUE(v.has_value());
  const auto* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(a->as_array()[2].as_bool());
  EXPECT_TRUE(a->as_array()[3].is_null());
  EXPECT_EQ(a->as_array()[4].as_string(), "sA");
  EXPECT_DOUBLE_EQ(v->find("b")->find("nested")->as_number(), -300.0);
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_FALSE(tel::json_parse("").has_value());
  EXPECT_FALSE(tel::json_parse("{").has_value());
  EXPECT_FALSE(tel::json_parse("[1,]").has_value());
  EXPECT_FALSE(tel::json_parse("{} trailing").has_value());
  EXPECT_FALSE(tel::json_parse("nul").has_value());
}

TEST(Json, EscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\n\t\x01 d";
  tel::JsonValue::Object o;
  o.emplace("k", tel::JsonValue(nasty));
  const auto back = tel::json_parse(tel::JsonValue(std::move(o)).dump());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->find("k")->as_string(), nasty);
}

// The built-in instrumentation: generating through a StreamEngine with the
// global registry enabled must move the stream_engine.* metrics.
TEST(Instrumentation, StreamEngineCountsJobsAndBytes) {
  tel::MetricsRegistry& reg = tel::metrics();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();

  bsrng::core::StreamEngine engine({.workers = 2});
  std::vector<std::uint8_t> out(1u << 16);
  engine.generate({"aes-ctr-bs32", 7}, out);
  engine.generate({"mickey-bs32", 7}, out);

  const auto snap = reg.snapshot();
  const auto* jobs = snap.find("stream_engine.jobs");
  const auto* bytes = snap.find("stream_engine.bytes");
  const auto* tasks = snap.find("stream_engine.tasks");
  ASSERT_NE(jobs, nullptr);
  ASSERT_NE(bytes, nullptr);
  ASSERT_NE(tasks, nullptr);
  EXPECT_DOUBLE_EQ(jobs->value, 2.0);
  EXPECT_DOUBLE_EQ(bytes->value, 2.0 * (1u << 16));
  EXPECT_GE(tasks->value, 2.0);
  const auto* lat = snap.find("stream_engine.task_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->kind, tel::MetricKind::kHistogram);
  EXPECT_EQ(static_cast<double>(lat->count), tasks->value);

  reg.set_enabled(was_enabled);
}

// Pool metrics move too (claims cover every task exactly once per batch).
TEST(Instrumentation, ThreadPoolClaimsEveryTask) {
  tel::MetricsRegistry& reg = tel::metrics();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  reg.reset();

  bsrng::core::StreamEngine engine(
      {.workers = 4, .chunk_bytes = 4096, .parallel = true});
  std::vector<std::uint8_t> out(1u << 16);
  engine.generate({"aes-ctr-bs32", 7}, out);

  const auto snap = reg.snapshot();
  const auto* claims = snap.find("thread_pool.claims");
  const auto* tasks = snap.find("stream_engine.tasks");
  ASSERT_NE(claims, nullptr);
  ASSERT_NE(tasks, nullptr);
  EXPECT_DOUBLE_EQ(claims->value, tasks->value);
  const auto* depth = snap.find("thread_pool.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 0.0);  // drained after the batch

  reg.set_enabled(was_enabled);
}

}  // namespace
