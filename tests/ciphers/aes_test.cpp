// AES-128: FIPS-197 conformance for the scalar reference, exhaustive
// algebraic checks of the bitsliced GF(2^8) circuits, and bit-exact
// equivalence of the bitsliced cipher with the reference at all lane widths.
#include <gtest/gtest.h>

#include <random>

#include "ciphers/aes_bs.hpp"
#include "ciphers/aes_ref.hpp"

namespace ci = bsrng::ciphers;
namespace bs = bsrng::bitslice;

namespace {
std::vector<std::uint8_t> from_hex(std::string_view hex) {
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(std::string(hex.substr(i, 2)), nullptr, 16)));
  return out;
}
}  // namespace

TEST(AesSbox, KnownEntries) {
  // Spot values from the FIPS-197 S-box table.
  EXPECT_EQ(ci::aes::kSbox[0x00], 0x63);
  EXPECT_EQ(ci::aes::kSbox[0x01], 0x7C);
  EXPECT_EQ(ci::aes::kSbox[0x53], 0xED);
  EXPECT_EQ(ci::aes::kSbox[0xFF], 0x16);
}

TEST(AesSbox, IsAPermutationWithNoFixedPoints) {
  std::array<bool, 256> seen{};
  for (unsigned v = 0; v < 256; ++v) {
    EXPECT_FALSE(seen[ci::aes::kSbox[v]]);
    seen[ci::aes::kSbox[v]] = true;
    EXPECT_NE(ci::aes::kSbox[v], v);
  }
}

TEST(AesGf, MulMatchesKnownIdentities) {
  EXPECT_EQ(ci::aes::gf_mul(0x57, 0x83), 0xC1);  // FIPS-197 §4.2 example
  EXPECT_EQ(ci::aes::gf_mul(0x57, 0x13), 0xFE);
  for (unsigned a = 1; a < 256; ++a) {
    const auto inv = ci::aes::gf_inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(ci::aes::gf_mul(static_cast<std::uint8_t>(a), inv), 1u) << a;
  }
}

TEST(Aes128Ref, Fips197AppendixB) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = from_hex("3243f6a8885a308d313198a2e0370734");
  const auto expect = from_hex("3925841d02dc09fbdc118597196a0b32");
  ci::Aes128 aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out));
}

TEST(Aes128Ref, Fips197AppendixC) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  const auto expect = from_hex("69c4e0d86a7b0430d8cdb78070b4c55a");
  ci::Aes128 aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out));
}

TEST(Aes128Ref, CtrIsDeterministicAndCounterDisjoint) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f");
  ci::Aes128 aes(key);
  std::vector<std::uint8_t> nonce(12, 0xAB);
  std::vector<std::uint8_t> a(64), b(64);
  ci::aes_ctr_fill(aes, nonce, 0, a);
  ci::aes_ctr_fill(aes, nonce, 0, b);
  EXPECT_EQ(a, b);
  // Starting at counter 1 must reproduce the stream shifted by one block.
  std::vector<std::uint8_t> c(48);
  ci::aes_ctr_fill(aes, nonce, 1, c);
  EXPECT_TRUE(std::equal(c.begin(), c.end(), a.begin() + 16));
}

// ---------------------------------------------------------------------------
// Bitsliced circuits
// ---------------------------------------------------------------------------
template <typename W>
class AesBitsliced : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(AesBitsliced, AllWidths);

namespace {
// Pack one byte per lane into 8 slices.
template <typename W>
void pack_bytes(const std::vector<std::uint8_t>& lane_bytes, W out[8]) {
  for (int bit = 0; bit < 8; ++bit) {
    out[bit] = bs::SliceTraits<W>::zero();
    for (std::size_t j = 0; j < bs::lane_count<W>; ++j)
      bs::SliceTraits<W>::set_lane(out[bit], j, (lane_bytes[j] >> bit) & 1u);
  }
}
template <typename W>
std::uint8_t unpack_lane(const W in[8], std::size_t j) {
  std::uint8_t v = 0;
  for (int bit = 0; bit < 8; ++bit)
    v |= static_cast<std::uint8_t>(bs::SliceTraits<W>::get_lane(in[bit], j)
                                   << bit);
  return v;
}
}  // namespace

TYPED_TEST(AesBitsliced, GfMul8MatchesScalarExhaustively) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  // Sweep all 65536 (a, b) pairs, L at a time.
  std::vector<std::uint8_t> av(L), bv(L);
  for (unsigned base = 0; base < 65536; base += L) {
    for (std::size_t j = 0; j < L; ++j) {
      av[j] = static_cast<std::uint8_t>((base + j) >> 8);
      bv[j] = static_cast<std::uint8_t>(base + j);
    }
    TypeParam a[8], b[8], out[8];
    pack_bytes<TypeParam>(av, a);
    pack_bytes<TypeParam>(bv, b);
    ci::AesBs<TypeParam>::gf_mul8(a, b, out);
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(unpack_lane<TypeParam>(out, j), ci::aes::gf_mul(av[j], bv[j]))
          << "a=" << int{av[j]} << " b=" << int{bv[j]};
  }
}

TYPED_TEST(AesBitsliced, SboxCircuitMatchesTableExhaustively) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::vector<std::uint8_t> v(L);
  for (unsigned base = 0; base < 256; base += L) {
    for (std::size_t j = 0; j < L; ++j)
      v[j] = static_cast<std::uint8_t>((base + j) % 256);
    TypeParam s[8];
    pack_bytes<TypeParam>(v, s);
    ci::AesBs<TypeParam>::sbox8(s);
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(unpack_lane<TypeParam>(s, j), ci::aes::kSbox[v[j]]);
  }
}

TYPED_TEST(AesBitsliced, SquareMatchesScalar) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::vector<std::uint8_t> v(L);
  for (unsigned base = 0; base < 256; base += L) {
    for (std::size_t j = 0; j < L; ++j)
      v[j] = static_cast<std::uint8_t>((base + j) % 256);
    TypeParam s[8], out[8];
    pack_bytes<TypeParam>(v, s);
    ci::AesBs<TypeParam>::gf_sq8(s, out);
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(unpack_lane<TypeParam>(out, j), ci::aes::gf_mul(v[j], v[j]));
  }
}

TYPED_TEST(AesBitsliced, EncryptBlocksMatchesReference) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(99);
  // Shared key across lanes, random plaintext per lane.
  std::vector<std::uint8_t> key(16);
  for (auto& k : key) k = static_cast<std::uint8_t>(rng());
  ci::Aes128 ref(key);
  ci::AesBs<TypeParam> sliced(key);
  std::vector<typename ci::AesBs<TypeParam>::Block> in(L), out(L);
  for (auto& blk : in)
    for (auto& b : blk) b = static_cast<std::uint8_t>(rng());
  sliced.encrypt_blocks(in, out);
  for (std::size_t j = 0; j < L; ++j) {
    std::uint8_t expect[16];
    ref.encrypt_block(in[j].data(), expect);
    EXPECT_TRUE(std::equal(out[j].begin(), out[j].end(), expect))
        << "lane " << j;
  }
}

TYPED_TEST(AesBitsliced, PerLaneKeysAreIndependent) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(7);
  std::vector<typename ci::AesBs<TypeParam>::Block> keys(L), in(L), out(L);
  for (auto& k : keys)
    for (auto& b : k) b = static_cast<std::uint8_t>(rng());
  for (auto& blk : in)
    for (auto& b : blk) b = static_cast<std::uint8_t>(rng());
  ci::AesBs<TypeParam> sliced{
      std::span<const typename ci::AesBs<TypeParam>::Block>(keys)};
  sliced.encrypt_blocks(in, out);
  for (std::size_t j = 0; j < L; ++j) {
    ci::Aes128 ref(keys[j]);
    std::uint8_t expect[16];
    ref.encrypt_block(in[j].data(), expect);
    EXPECT_TRUE(std::equal(out[j].begin(), out[j].end(), expect))
        << "lane " << j;
  }
}

TYPED_TEST(AesBitsliced, CtrStreamMatchesScalarOracle) {
  const auto key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  std::vector<std::uint8_t> nonce(12);
  for (std::size_t i = 0; i < 12; ++i) nonce[i] = static_cast<std::uint8_t>(i);
  ci::Aes128 ref(key);
  ci::AesCtrBs<TypeParam> gen(key, nonce, /*counter0=*/5);

  // Ask for an awkward length spanning several batches.
  const std::size_t n = 16 * bs::lane_count<TypeParam> * 2 + 37;
  std::vector<std::uint8_t> got(n), expect(n);
  gen.fill(got);
  ci::aes_ctr_fill(ref, nonce, 5, expect);
  EXPECT_EQ(got, expect);

  // Continuation must pick up exactly where the stream left off.
  std::vector<std::uint8_t> got2(53), expect_all(n + 53);
  gen.fill(got2);
  ci::aes_ctr_fill(ref, nonce, 5, expect_all);
  EXPECT_TRUE(std::equal(got2.begin(), got2.end(), expect_all.begin() + static_cast<std::ptrdiff_t>(n)));
}

TEST(AesBsArguments, Rejected) {
  std::vector<std::uint8_t> short_key(15, 0);
  EXPECT_THROW(ci::AesBs<bs::SliceU32> a(short_key), std::invalid_argument);
  std::vector<std::uint8_t> key(16, 1), nonce(11, 0);
  EXPECT_THROW((ci::AesCtrBs<bs::SliceU32>(key, nonce)), std::invalid_argument);
}

// --- AES-192 / AES-256 (FIPS-197 Appendix C) --------------------------------

TEST(Aes192Ref, Fips197AppendixC2) {
  const auto key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  const auto expect = from_hex("dda97ca4864cdfe06eaf70a0ec0d7191");
  ci::Aes128 aes(key);
  EXPECT_EQ(aes.rounds(), 12u);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out));
}

TEST(Aes256Ref, Fips197AppendixC3) {
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const auto pt = from_hex("00112233445566778899aabbccddeeff");
  const auto expect = from_hex("8ea2b7ca516745bfeafc49904b496089");
  ci::Aes128 aes(key);
  EXPECT_EQ(aes.rounds(), 14u);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out));
}

TEST(AesRef, RejectsInvalidKeySizes) {
  std::vector<std::uint8_t> k(20, 0);
  EXPECT_THROW(ci::Aes128 a(k), std::invalid_argument);
}

TYPED_TEST(AesBitsliced, Aes256MatchesReference) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  const auto key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  ci::Aes128 ref(key);
  ci::AesBs<TypeParam> sliced(key);
  EXPECT_EQ(sliced.rounds(), 14u);
  std::mt19937_64 rng(256);
  std::vector<typename ci::AesBs<TypeParam>::Block> in(L), out(L);
  for (auto& blk : in)
    for (auto& b : blk) b = static_cast<std::uint8_t>(rng());
  sliced.encrypt_blocks(in, out);
  for (std::size_t j = 0; j < L; ++j) {
    std::uint8_t expect[16];
    ref.encrypt_block(in[j].data(), expect);
    EXPECT_TRUE(std::equal(out[j].begin(), out[j].end(), expect))
        << "lane " << j;
  }
}

TYPED_TEST(AesBitsliced, Aes192MatchesReference) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  const auto key =
      from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
  ci::Aes128 ref(key);
  ci::AesBs<TypeParam> sliced(key);
  EXPECT_EQ(sliced.rounds(), 12u);
  std::mt19937_64 rng(192);
  std::vector<typename ci::AesBs<TypeParam>::Block> in(L), out(L);
  for (auto& blk : in)
    for (auto& b : blk) b = static_cast<std::uint8_t>(rng());
  sliced.encrypt_blocks(in, out);
  for (std::size_t j = 0; j < L; ++j) {
    std::uint8_t expect[16];
    ref.encrypt_block(in[j].data(), expect);
    EXPECT_TRUE(std::equal(out[j].begin(), out[j].end(), expect))
        << "lane " << j;
  }
}
