// MICKEY 2.0, Grain v1, Trivium: structural invariants of the scalar
// references and bit-exact reference<->bitsliced equivalence at every lane
// width (the §4.4 correctness claim).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <set>

#include "ciphers/a51_bs.hpp"
#include "ciphers/a51_ref.hpp"
#include "ciphers/chacha_bs.hpp"
#include "ciphers/chacha_ref.hpp"
#include "ciphers/grain_bs.hpp"
#include "ciphers/grain_ref.hpp"
#include "ciphers/mickey_bs.hpp"
#include "ciphers/mickey_ref.hpp"
#include "ciphers/trivium_bs.hpp"
#include "ciphers/trivium_ref.hpp"

namespace ci = bsrng::ciphers;
namespace bs = bsrng::bitslice;

namespace {
template <std::size_t N>
std::array<std::uint8_t, N> rand_bytes(std::mt19937_64& rng) {
  std::array<std::uint8_t, N> a;
  for (auto& b : a) b = static_cast<std::uint8_t>(rng());
  return a;
}
}  // namespace

// ---------------------------------------------------------------------------
// Scalar reference sanity
// ---------------------------------------------------------------------------

TEST(MickeyRef, TablesAreConsistentWithSpecTapList) {
  // RTAPS from the MICKEY 2.0 spec prose; must equal the packed R_MASK.
  const std::vector<unsigned> rtaps = {
      0,  1,  3,  4,  5,  6,  9,  12, 13, 16, 19, 20, 21, 22, 25, 28, 37,
      38, 41, 42, 45, 46, 50, 52, 54, 56, 58, 60, 61, 63, 64, 65, 66, 67,
      71, 72, 79, 80, 81, 82, 87, 88, 89, 90, 91, 92, 94, 95, 96, 97};
  for (std::size_t i = 0; i < 100; ++i) {
    const bool in_list =
        std::find(rtaps.begin(), rtaps.end(), i) != rtaps.end();
    EXPECT_EQ(ci::mickey::table_bit(ci::mickey::kRMask, i), in_list) << i;
  }
}

TEST(MickeyRef, RejectsBadKeyIvSizes) {
  std::vector<std::uint8_t> key(10, 1), iv(4, 2);
  EXPECT_NO_THROW(ci::MickeyRef(key, iv));
  std::vector<std::uint8_t> short_key(9, 1);
  EXPECT_THROW(ci::MickeyRef(short_key, iv), std::invalid_argument);
  std::vector<std::uint8_t> long_iv(11, 0);
  EXPECT_THROW(ci::MickeyRef(key, long_iv), std::invalid_argument);
}

TEST(MickeyRef, DeterministicAndKeySensitive) {
  std::vector<std::uint8_t> key(10, 0x42), iv(10, 0x24);
  ci::MickeyRef a(key, iv), b(key, iv);
  for (int i = 0; i < 200; ++i) ASSERT_EQ(a.step(), b.step());
  key[3] ^= 0x01;  // single key bit flip
  ci::MickeyRef c(key, iv);
  ci::MickeyRef d({std::vector<std::uint8_t>(10, 0x42)}, iv);
  int diff = 0;
  for (int i = 0; i < 512; ++i) diff += c.step() != d.step();
  // Avalanche: roughly half the bits should differ.
  EXPECT_GT(diff, 512 / 4);
  EXPECT_LT(diff, 3 * 512 / 4);
}

TEST(MickeyRef, IvSensitive) {
  std::vector<std::uint8_t> key(10, 0x11), iv1(8, 0), iv2(8, 0);
  iv2[7] ^= 0x80;
  ci::MickeyRef a(key, iv1), b(key, iv2);
  int diff = 0;
  for (int i = 0; i < 512; ++i) diff += a.step() != b.step();
  EXPECT_GT(diff, 512 / 4);
}

TEST(MickeyRef, OutputIsBalanced) {
  std::vector<std::uint8_t> key(10, 0x37), iv(10, 0x73);
  ci::MickeyRef m(key, iv);
  int ones = 0;
  const int n = 1 << 14;
  for (int i = 0; i < n; ++i) ones += m.step();
  EXPECT_NEAR(ones, n / 2, 4 * std::sqrt(n / 4.0));  // ~4 sigma
}

TEST(GrainRef, InitializationFillsLfsrTailWithOnes) {
  // White-box: before clocking, s64..s79 are 1.  After 160 clocks the state
  // must have diffused: the keystream from the all-zero key/IV is not
  // constant.
  std::vector<std::uint8_t> key(10, 0), iv(8, 0);
  ci::GrainRef g(key, iv);
  int ones = 0;
  for (int i = 0; i < 256; ++i) ones += g.step();
  EXPECT_GT(ones, 64);
  EXPECT_LT(ones, 192);
}

TEST(GrainRef, KeyAvalanche) {
  std::mt19937_64 rng(5);
  const auto key = rand_bytes<10>(rng);
  const auto iv = rand_bytes<8>(rng);
  auto key2 = key;
  key2[0] ^= 1;
  ci::GrainRef a(key, iv), b(key2, iv);
  int diff = 0;
  for (int i = 0; i < 512; ++i) diff += a.step() != b.step();
  EXPECT_GT(diff, 512 / 4);
  EXPECT_LT(diff, 3 * 512 / 4);
}

TEST(TriviumRef, StateAfterLoadMatchesSpecLayout) {
  // White-box check of the load map via a probe cipher with 0 init rounds is
  // not exposed; instead verify determinism + key/IV sensitivity.
  std::mt19937_64 rng(6);
  const auto key = rand_bytes<10>(rng);
  const auto iv = rand_bytes<10>(rng);
  ci::TriviumRef a(key, iv), b(key, iv);
  for (int i = 0; i < 300; ++i) ASSERT_EQ(a.step(), b.step());
  auto iv2 = iv;
  iv2[9] ^= 0x40;
  ci::TriviumRef c(key, iv2);
  ci::TriviumRef d(key, iv);
  int diff = 0;
  for (int i = 0; i < 512; ++i) diff += c.step() != d.step();
  EXPECT_GT(diff, 512 / 4);
  EXPECT_LT(diff, 3 * 512 / 4);
}

TEST(StreamCipherRefs, Step32PacksLsbFirst) {
  std::mt19937_64 rng(7);
  const auto key = rand_bytes<10>(rng);
  const auto iv = rand_bytes<8>(rng);
  ci::GrainRef a(key, iv), b(key, iv);
  const std::uint32_t w = a.step32();
  for (unsigned i = 0; i < 32; ++i)
    EXPECT_EQ((w >> i) & 1u, static_cast<std::uint32_t>(b.step()));
}

// ---------------------------------------------------------------------------
// Reference <-> bitsliced equivalence (typed over lane widths)
// ---------------------------------------------------------------------------
template <typename W>
class SlicedCiphers : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(SlicedCiphers, AllWidths);

TYPED_TEST(SlicedCiphers, MickeyMatchesReferencePerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(11);
  std::vector<typename ci::MickeyBs<TypeParam>::KeyBytes> keys(L);
  std::vector<typename ci::MickeyBs<TypeParam>::IvBytes> ivs(L);
  for (auto& k : keys) k = rand_bytes<10>(rng);
  for (auto& v : ivs) v = rand_bytes<10>(rng);

  ci::MickeyBs<TypeParam> sliced(keys, ivs, 80);
  std::vector<ci::MickeyRef> refs;
  refs.reserve(L);
  for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);

  for (int t = 0; t < 256; ++t) {
    const TypeParam z = sliced.step();
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
          << "t=" << t << " lane=" << j;
  }
}

TYPED_TEST(SlicedCiphers, MickeyShortIvMatchesReference) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(12);
  std::vector<typename ci::MickeyBs<TypeParam>::KeyBytes> keys(L);
  std::vector<typename ci::MickeyBs<TypeParam>::IvBytes> ivs(L);
  for (auto& k : keys) k = rand_bytes<10>(rng);
  for (auto& v : ivs) v = rand_bytes<10>(rng);

  const std::size_t iv_bits = 32;
  ci::MickeyBs<TypeParam> sliced(keys, ivs, iv_bits);
  std::vector<ci::MickeyRef> refs;
  for (std::size_t j = 0; j < L; ++j)
    refs.emplace_back(keys[j],
                      std::span<const std::uint8_t>(ivs[j]).first(iv_bits / 8));
  for (int t = 0; t < 128; ++t) {
    const TypeParam z = sliced.step();
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step());
  }
}

TYPED_TEST(SlicedCiphers, GrainMatchesReferencePerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(13);
  std::vector<typename ci::GrainBs<TypeParam>::KeyBytes> keys(L);
  std::vector<typename ci::GrainBs<TypeParam>::IvBytes> ivs(L);
  for (auto& k : keys) k = rand_bytes<10>(rng);
  for (auto& v : ivs) v = rand_bytes<8>(rng);

  ci::GrainBs<TypeParam> sliced(keys, ivs);
  std::vector<ci::GrainRef> refs;
  refs.reserve(L);
  for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);

  for (int t = 0; t < 256; ++t) {
    const TypeParam z = sliced.step();
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
          << "t=" << t << " lane=" << j;
  }
}

TYPED_TEST(SlicedCiphers, TriviumMatchesReferencePerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(14);
  std::vector<typename ci::TriviumBs<TypeParam>::KeyBytes> keys(L);
  std::vector<typename ci::TriviumBs<TypeParam>::IvBytes> ivs(L);
  for (auto& k : keys) k = rand_bytes<10>(rng);
  for (auto& v : ivs) v = rand_bytes<10>(rng);

  ci::TriviumBs<TypeParam> sliced(keys, ivs);
  std::vector<ci::TriviumRef> refs;
  refs.reserve(L);
  for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);

  for (int t = 0; t < 256; ++t) {
    const TypeParam z = sliced.step();
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
          << "t=" << t << " lane=" << j;
  }
}

TYPED_TEST(SlicedCiphers, MasterSeedEnginesAreDeterministic) {
  ci::MickeyBs<TypeParam> a(12345), b(12345);
  ci::GrainBs<TypeParam> c(999), d(999);
  ci::TriviumBs<TypeParam> e(7), f(7);
  for (int t = 0; t < 64; ++t) {
    ASSERT_EQ(a.step(), b.step());
    ASSERT_EQ(c.step(), d.step());
    ASSERT_EQ(e.step(), f.step());
  }
}

TYPED_TEST(SlicedCiphers, MasterSeedLanesAreDistinct) {
  ci::MickeyBs<TypeParam> m(42);
  // Collect 64 output bits per lane; all lanes must differ pairwise for the
  // "uncorrelated parallel instances" requirement (§4.3) to be plausible.
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::vector<std::uint64_t> sig(L, 0);
  for (int t = 0; t < 64; ++t) {
    const TypeParam z = m.step();
    for (std::size_t j = 0; j < L; ++j)
      sig[j] |= std::uint64_t{bs::SliceTraits<TypeParam>::get_lane(z, j)} << t;
  }
  std::set<std::uint64_t> uniq(sig.begin(), sig.end());
  EXPECT_EQ(uniq.size(), L);
}

// ---------------------------------------------------------------------------
// Randomized-seed differential: master-seed bitsliced engines vs per-lane
// scalar references, at every width.  The per-lane parameters come from the
// exported derive_*_lane_params helpers — the same derivation StreamEngine's
// lane-slice sharding relies on, so these tests pin both the cipher
// equivalence (§4.4) and the sharding contract (§5.4).
// ---------------------------------------------------------------------------

namespace {
constexpr int kRandomSeeds = 16;
constexpr int kDiffSteps = 64;

std::uint64_t nth_seed(std::mt19937_64& rng) { return rng(); }
}  // namespace

TYPED_TEST(SlicedCiphers, MickeyRandomSeedsMatchPerLaneReferences) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(101);
  for (int s = 0; s < kRandomSeeds; ++s) {
    const std::uint64_t seed = nth_seed(rng);
    std::vector<typename ci::MickeyBs<TypeParam>::KeyBytes> keys(L);
    std::vector<typename ci::MickeyBs<TypeParam>::IvBytes> ivs(L);
    ci::derive_mickey_lane_params(seed, keys, ivs);
    ci::MickeyBs<TypeParam> sliced(seed);
    std::vector<ci::MickeyRef> refs;
    refs.reserve(L);
    for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);
    for (int t = 0; t < kDiffSteps; ++t) {
      const TypeParam z = sliced.step();
      for (std::size_t j = 0; j < L; ++j)
        ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
            << "seed=" << seed << " t=" << t << " lane=" << j;
    }
  }
}

TYPED_TEST(SlicedCiphers, GrainRandomSeedsMatchPerLaneReferences) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(102);
  for (int s = 0; s < kRandomSeeds; ++s) {
    const std::uint64_t seed = nth_seed(rng);
    std::vector<typename ci::GrainBs<TypeParam>::KeyBytes> keys(L);
    std::vector<typename ci::GrainBs<TypeParam>::IvBytes> ivs(L);
    ci::derive_grain_lane_params(seed, keys, ivs);
    ci::GrainBs<TypeParam> sliced(seed);
    std::vector<ci::GrainRef> refs;
    refs.reserve(L);
    for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);
    for (int t = 0; t < kDiffSteps; ++t) {
      const TypeParam z = sliced.step();
      for (std::size_t j = 0; j < L; ++j)
        ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
            << "seed=" << seed << " t=" << t << " lane=" << j;
    }
  }
}

TYPED_TEST(SlicedCiphers, TriviumRandomSeedsMatchPerLaneReferences) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(103);
  for (int s = 0; s < kRandomSeeds; ++s) {
    const std::uint64_t seed = nth_seed(rng);
    std::vector<typename ci::TriviumBs<TypeParam>::KeyBytes> keys(L);
    std::vector<typename ci::TriviumBs<TypeParam>::IvBytes> ivs(L);
    ci::derive_trivium_lane_params(seed, keys, ivs);
    ci::TriviumBs<TypeParam> sliced(seed);
    std::vector<ci::TriviumRef> refs;
    refs.reserve(L);
    for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], ivs[j]);
    for (int t = 0; t < kDiffSteps; ++t) {
      const TypeParam z = sliced.step();
      for (std::size_t j = 0; j < L; ++j)
        ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
            << "seed=" << seed << " t=" << t << " lane=" << j;
    }
  }
}

TYPED_TEST(SlicedCiphers, A51RandomSeedsMatchPerLaneReferences) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(104);
  for (int s = 0; s < kRandomSeeds; ++s) {
    const std::uint64_t seed = nth_seed(rng);
    std::vector<typename ci::A51Bs<TypeParam>::KeyBytes> keys(L);
    std::vector<std::uint32_t> frames(L);
    ci::derive_a51_lane_params(seed, keys, frames);
    ci::A51Bs<TypeParam> sliced(seed);
    std::vector<ci::A51Ref> refs;
    refs.reserve(L);
    for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], frames[j]);
    for (int t = 0; t < kDiffSteps; ++t) {
      const TypeParam z = sliced.step();
      for (std::size_t j = 0; j < L; ++j)
        ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
            << "seed=" << seed << " t=" << t << " lane=" << j;
    }
  }
}

TYPED_TEST(SlicedCiphers, ChaChaRandomKeysMatchReferenceStream) {
  // ChaCha's lanes are counter offsets of ONE (key, nonce) stream, so the
  // differential is fill-vs-fill: bitsliced output at width W must equal the
  // scalar RFC 8439 stream byte-for-byte, from a random counter origin.
  std::mt19937_64 rng(105);
  for (int s = 0; s < kRandomSeeds; ++s) {
    const auto key = rand_bytes<32>(rng);
    const auto nonce = rand_bytes<12>(rng);
    const auto counter0 = static_cast<std::uint32_t>(rng() & 0xFFFF);
    const std::size_t n = 512 + static_cast<std::size_t>(rng() % 997);
    ci::ChaCha20Bs<TypeParam> sliced(key, nonce, counter0);
    ci::ChaCha20Ref ref(key, nonce, counter0);
    std::vector<std::uint8_t> a(n), b(n);
    sliced.fill(a);
    ref.fill(b);
    ASSERT_EQ(a, b) << "chacha differential, trial " << s << " n=" << n;
  }
}

TEST(SlicedCipherArguments, Rejected) {
  std::vector<ci::MickeyBs<bs::SliceU32>::KeyBytes> keys(31);
  std::vector<ci::MickeyBs<bs::SliceU32>::IvBytes> ivs(31);
  EXPECT_THROW((ci::MickeyBs<bs::SliceU32>(keys, ivs, 80)),
               std::invalid_argument);
  std::vector<ci::MickeyBs<bs::SliceU32>::KeyBytes> keys32(32);
  std::vector<ci::MickeyBs<bs::SliceU32>::IvBytes> ivs32(32);
  EXPECT_THROW((ci::MickeyBs<bs::SliceU32>(keys32, ivs32, 81)),
               std::invalid_argument);
  EXPECT_THROW((ci::MickeyBs<bs::SliceU32>(keys32, ivs32, 88)),
               std::invalid_argument);
}
