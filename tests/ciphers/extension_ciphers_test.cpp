// Extension ciphers: A5/1 (majority-clocked LFSRs) and ChaCha20 (ARX) —
// spec vectors where published, reference<->bitsliced equivalence at every
// lane width, and the bitsliced ARX adder circuit.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "ciphers/a51_bs.hpp"
#include "ciphers/a51_ref.hpp"
#include "ciphers/chacha_bs.hpp"
#include "ciphers/chacha_ref.hpp"

namespace ci = bsrng::ciphers;
namespace bs = bsrng::bitslice;

namespace {
template <std::size_t N>
std::array<std::uint8_t, N> rand_bytes(std::mt19937_64& rng) {
  std::array<std::uint8_t, N> a;
  for (auto& b : a) b = static_cast<std::uint8_t>(rng());
  return a;
}
}  // namespace

// --- A5/1 --------------------------------------------------------------------

TEST(A51Ref, RejectsBadArguments) {
  std::vector<std::uint8_t> key(8, 1);
  EXPECT_NO_THROW(ci::A51Ref(key, 0x134));
  std::vector<std::uint8_t> short_key(7, 1);
  EXPECT_THROW(ci::A51Ref(short_key, 0), std::invalid_argument);
  EXPECT_THROW(ci::A51Ref(key, 1u << 22), std::invalid_argument);
}

TEST(A51Ref, DeterministicAndFrameSensitive) {
  std::vector<std::uint8_t> key{0x12, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF};
  ci::A51Ref a(key, 0x134), b(key, 0x134), c(key, 0x135);
  int diff = 0;
  for (int i = 0; i < 228; ++i) {
    const bool bit = a.step();
    ASSERT_EQ(bit, b.step());
    diff += bit != c.step();
  }
  EXPECT_GT(diff, 228 / 4);  // different frame => decorrelated keystream
}

TEST(A51Ref, MajorityRuleClocksTwoOrThreeRegisters) {
  // White-box: across steps, the register states change in exactly the
  // stop/go pattern (at least two registers move per clock).
  std::vector<std::uint8_t> key(8, 0x5A);
  ci::A51Ref a(key, 77);
  for (int i = 0; i < 200; ++i) {
    const auto r1 = a.r1(), r2 = a.r2(), r3 = a.r3();
    a.step();
    const int moved = (a.r1() != r1) + (a.r2() != r2) + (a.r3() != r3);
    ASSERT_GE(moved, 2) << "step " << i;
  }
}

TEST(A51Ref, KeystreamIsBalanced) {
  std::vector<std::uint8_t> key{1, 2, 3, 4, 5, 6, 7, 8};
  ci::A51Ref a(key, 0);
  int ones = 0;
  const int n = 1 << 14;
  for (int i = 0; i < n; ++i) ones += a.step();
  EXPECT_NEAR(ones, n / 2, 4 * std::sqrt(n / 4.0));
}

template <typename W>
class A51Sliced : public ::testing::Test {};
using AllWidths = ::testing::Types<bs::SliceU32, bs::SliceU64, bs::SliceV128,
                                   bs::SliceV256, bs::SliceV512>;
TYPED_TEST_SUITE(A51Sliced, AllWidths);

TYPED_TEST(A51Sliced, MatchesReferencePerLane) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(51);
  std::vector<typename ci::A51Bs<TypeParam>::KeyBytes> keys(L);
  std::vector<std::uint32_t> frames(L);
  for (auto& k : keys) k = rand_bytes<8>(rng);
  for (auto& f : frames)
    f = static_cast<std::uint32_t>(rng()) & ((1u << 22) - 1);

  ci::A51Bs<TypeParam> sliced(keys, frames);
  std::vector<ci::A51Ref> refs;
  refs.reserve(L);
  for (std::size_t j = 0; j < L; ++j) refs.emplace_back(keys[j], frames[j]);

  for (int t = 0; t < 228; ++t) {
    const TypeParam z = sliced.step();
    for (std::size_t j = 0; j < L; ++j)
      ASSERT_EQ(bs::SliceTraits<TypeParam>::get_lane(z, j), refs[j].step())
          << "t=" << t << " lane=" << j;
  }
}

TEST(A51Sliced, MasterSeedIsDeterministic) {
  ci::A51Bs<bs::SliceU32> a(9), b(9);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.step(), b.step());
}

// --- ChaCha20 ----------------------------------------------------------------

TEST(ChaCha20Ref, Rfc8439QuarterRoundExample) {
  // RFC 8439 §2.1.1.
  std::uint32_t a = 0x11111111, b = 0x01020304, c = 0x9b8d6f43, d = 0x01234567;
  ci::ChaCha20Ref::quarter_round(a, b, c, d);
  EXPECT_EQ(a, 0xea2a92f4u);
  EXPECT_EQ(b, 0xcb1cf8ceu);
  EXPECT_EQ(c, 0x4581472eu);
  EXPECT_EQ(d, 0x5881c4bbu);
}

TEST(ChaCha20Ref, Rfc8439BlockFunctionExample) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, counter 1.
  std::array<std::uint32_t, 8> key;
  for (std::size_t i = 0; i < 8; ++i)
    key[i] = static_cast<std::uint32_t>(4 * i) |
             (static_cast<std::uint32_t>(4 * i + 1) << 8) |
             (static_cast<std::uint32_t>(4 * i + 2) << 16) |
             (static_cast<std::uint32_t>(4 * i + 3) << 24);
  const std::array<std::uint32_t, 3> nonce = {0x09000000, 0x4a000000,
                                              0x00000000};
  std::uint8_t out[64];
  ci::ChaCha20Ref::block(key, nonce, 1, out);
  const std::uint8_t expect[16] = {0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b,
                                   0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f,
                                   0xa3, 0x20, 0x71, 0xc4};
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], expect[i]) << i;
  // Tail of the keystream block per the RFC listing (...e8 a2 50 3c 4e).
  EXPECT_EQ(out[60], 0xa2);
  EXPECT_EQ(out[61], 0x50);
  EXPECT_EQ(out[62], 0x3c);
  EXPECT_EQ(out[63], 0x4e);
}

TEST(ChaCha20Ref, FillIsContinuousAcrossBlocks) {
  std::vector<std::uint8_t> key(32, 7), nonce(12, 9);
  ci::ChaCha20Ref a(key, nonce), b(key, nonce);
  std::vector<std::uint8_t> whole(200), parts(200);
  a.fill(whole);
  b.fill(std::span(parts.data(), 63));
  b.fill(std::span(parts.data() + 63, 137));
  EXPECT_EQ(parts, whole);
}

template <typename W>
class ChaChaSliced : public ::testing::Test {};
TYPED_TEST_SUITE(ChaChaSliced, AllWidths);

TYPED_TEST(ChaChaSliced, Add32MatchesScalarAddition) {
  constexpr std::size_t L = bs::lane_count<TypeParam>;
  std::mt19937_64 rng(32);
  std::vector<std::uint32_t> av(L), bv(L);
  for (std::size_t j = 0; j < L; ++j) {
    av[j] = static_cast<std::uint32_t>(rng());
    bv[j] = static_cast<std::uint32_t>(rng());
  }
  typename ci::ChaCha20Bs<TypeParam>::Word a, b;
  for (int bit = 0; bit < 32; ++bit) {
    a[static_cast<std::size_t>(bit)] = bs::SliceTraits<TypeParam>::zero();
    b[static_cast<std::size_t>(bit)] = bs::SliceTraits<TypeParam>::zero();
    for (std::size_t j = 0; j < L; ++j) {
      bs::SliceTraits<TypeParam>::set_lane(a[static_cast<std::size_t>(bit)], j,
                                           (av[j] >> bit) & 1u);
      bs::SliceTraits<TypeParam>::set_lane(b[static_cast<std::size_t>(bit)], j,
                                           (bv[j] >> bit) & 1u);
    }
  }
  ci::ChaCha20Bs<TypeParam>::add32(a, b);
  for (std::size_t j = 0; j < L; ++j) {
    std::uint32_t got = 0;
    for (int bit = 0; bit < 32; ++bit)
      got |= static_cast<std::uint32_t>(bs::SliceTraits<TypeParam>::get_lane(
                 a[static_cast<std::size_t>(bit)], j))
             << bit;
    EXPECT_EQ(got, av[j] + bv[j]) << "lane " << j;
  }
}

TYPED_TEST(ChaChaSliced, Rotl32IsGateFreeRenaming) {
  std::mt19937_64 rng(33);
  typename ci::ChaCha20Bs<TypeParam>::Word a;
  std::uint32_t v = static_cast<std::uint32_t>(rng());
  for (int bit = 0; bit < 32; ++bit)
    a[static_cast<std::size_t>(bit)] = bs::splat<TypeParam>((v >> bit) & 1u);
  ci::ChaCha20Bs<TypeParam>::rotl32(a, 7);
  const std::uint32_t expect = std::rotl(v, 7);
  for (int bit = 0; bit < 32; ++bit)
    EXPECT_EQ(bs::SliceTraits<TypeParam>::get_lane(
                  a[static_cast<std::size_t>(bit)], 0),
              (expect >> bit) & 1u);
}

TYPED_TEST(ChaChaSliced, StreamMatchesReferenceOracle) {
  std::mt19937_64 rng(34);
  std::vector<std::uint8_t> key(32), nonce(12);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng());
  for (auto& b : nonce) b = static_cast<std::uint8_t>(rng());
  ci::ChaCha20Ref ref(key, nonce, /*counter0=*/3);
  ci::ChaCha20Bs<TypeParam> sliced(key, nonce, /*counter0=*/3);
  const std::size_t n = 64 * bs::lane_count<TypeParam> + 37;
  std::vector<std::uint8_t> expect(n), got(n);
  ref.fill(expect);
  sliced.fill(got);
  EXPECT_EQ(got, expect);
  // Continuation across batches.
  std::vector<std::uint8_t> expect2(101), got2(101);
  ref.fill(expect2);
  sliced.fill(got2);
  EXPECT_EQ(got2, expect2);
}

TEST(ChaChaGateAudit, ArxCostsDwarfLfsrCiphers) {
  using C = bs::CountingSlice;
  typename ci::ChaCha20Bs<C>::Word a{}, b{};
  C::reset();
  ci::ChaCha20Bs<C>::add32(a, b);
  const auto add_gates = C::ops;
  EXPECT_GE(add_gates, 150u);  // ripple-carry: ~5 gates x 31 stages
  EXPECT_LE(add_gates, 170u);
  C::reset();
  ci::ChaCha20Bs<C>::rotl32(a, 12);
  EXPECT_EQ(C::ops, 0u) << "rotation must be pure renaming";
}
