// gpusim is a backend, not a demo: for every bitsliced cipher in the
// descriptor table, the words a virtual-GPU kernel launch lands in global
// memory are the SAME canonical stream the host generators and the
// StreamEngine produce for that seed — byte for byte, in both memory
// layouts, with the sanitizer watching.  kernel_stream_word/kernel_out_index
// give the (thread, word) -> (stream position, memory position) bijection
// used to line the two up.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static_analyzer.hpp"
#include "core/descriptor.hpp"
#include "core/gpu_kernel.hpp"
#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace an = bsrng::analysis;
namespace co = bsrng::core;
namespace gs = bsrng::gpusim;

namespace {

co::GpuKernelConfig cross_cfg() {
  co::GpuKernelConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 2;  // T = 4 threads -> 128 lanes for lane ciphers
  cfg.words_per_thread = 32;  // 128 B/thread: multiple of both counter block
                              // sizes (16 and 64 bytes)
  cfg.staging_words = 8;
  cfg.seed = 11;
  cfg.check = true;
  return cfg;
}

std::size_t total_words(const co::GpuKernelConfig& cfg) {
  return cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
}

// Undo the output layout: byte 4*s+k of the canonical stream, where s runs
// over stream positions in order.
std::vector<std::uint8_t> reconstruct_stream(const gs::Device& dev,
                                             const std::string& algo,
                                             const co::GpuKernelConfig& cfg) {
  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  std::vector<std::uint8_t> bytes(total_words(cfg) * 4);
  for (std::size_t t = 0; t < threads; ++t)
    for (std::size_t w = 0; w < cfg.words_per_thread; ++w) {
      const std::size_t s = co::kernel_stream_word(algo, cfg, t, w);
      const std::uint32_t v =
          dev.global_memory()[co::kernel_out_index(cfg, t, w)];
      for (std::size_t k = 0; k < 4; ++k)
        bytes[4 * s + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  return bytes;
}

}  // namespace

TEST(CrossBackend, KernelMemoryIsTheCanonicalStream) {
  for (const auto& desc : co::algorithm_descriptors()) {
    for (const bool coalesced : {true, false}) {
      auto cfg = cross_cfg();
      cfg.coalesced_layout = coalesced;
      const std::string equiv = co::kernel_equivalent_algorithm(desc.base, cfg);
      ASSERT_FALSE(equiv.empty()) << desc.base;

      gs::Device dev(total_words(cfg));
      const auto res = co::run_gpu_kernel(dev, desc.base, cfg);
      EXPECT_EQ(res.stats.check_findings, 0u) << desc.base;
      for (const auto& r : dev.check_reports())
        ADD_FAILURE() << desc.base << ": " << r.to_string();
      const auto gpu_bytes = reconstruct_stream(dev, desc.base, cfg);

      // The same prefix from the plain host generator...
      std::vector<std::uint8_t> host(gpu_bytes.size());
      co::make_generator(equiv, cfg.seed)->fill(host);
      EXPECT_EQ(gpu_bytes, host)
          << desc.base << " vs " << equiv << " coalesced=" << coalesced;

      // ...and from the worker-pool engine (exercises the PartitionSpec
      // sharding path on the identical derivation).
      std::vector<std::uint8_t> engine_out(gpu_bytes.size());
      co::StreamEngine engine({.workers = 3});
      engine.generate({equiv, cfg.seed}, engine_out);
      EXPECT_EQ(gpu_bytes, engine_out)
          << desc.base << " vs engine " << equiv
          << " coalesced=" << coalesced;
    }
  }
}

// Static counterpart of the dynamic clean-run assertions above: the same
// geometry must also *prove* clean (every obligation, both layouts), so a
// future kernel-layout change that only races under an unexercised
// interleaving still fails this suite.
TEST(CrossBackend, StaticAnalyzerProvesCrossBackendGeometryClean) {
  for (const auto& desc : co::algorithm_descriptors()) {
    for (const bool coalesced : {true, false}) {
      auto cfg = cross_cfg();
      cfg.coalesced_layout = coalesced;
      const an::StaticAnalysis sa =
          an::analyze_descriptor_kernel(desc.base, cfg);
      EXPECT_TRUE(sa.clean())
          << desc.base << " coalesced=" << coalesced << "\n" << sa.summary();
      for (const an::Obligation& o : sa.obligations)
        EXPECT_TRUE(o.proven)
            << desc.base << " coalesced=" << coalesced << ": " << o.name;
    }
  }
}

TEST(CrossBackend, StreamWordMapIsABijection) {
  const auto cfg = cross_cfg();
  const std::size_t words = total_words(cfg);
  for (const char* algo : {"mickey", "chacha20"}) {
    std::vector<bool> seen(words, false);
    for (std::size_t t = 0; t < cfg.blocks * cfg.threads_per_block; ++t)
      for (std::size_t w = 0; w < cfg.words_per_thread; ++w) {
        const std::size_t s = co::kernel_stream_word(algo, cfg, t, w);
        ASSERT_LT(s, words) << algo;
        ASSERT_FALSE(seen[s]) << algo << " duplicate stream word " << s;
        seen[s] = true;
      }
  }
}

TEST(CrossBackend, OracleAgreesWithTheHostGeneratorDirectly) {
  // kernel_word (the per-(thread, word) oracle) is itself the canonical
  // stream read through the bijection — no device involved.
  const auto cfg = cross_cfg();
  for (const auto& desc : co::algorithm_descriptors()) {
    const std::string equiv = co::kernel_equivalent_algorithm(desc.base, cfg);
    std::vector<std::uint8_t> host(total_words(cfg) * 4);
    co::make_generator(equiv, cfg.seed)->fill(host);
    for (const std::size_t t : {0ul, 1ul, 3ul}) {
      for (const std::size_t w : {0ul, 7ul, 31ul}) {
        const std::size_t s = co::kernel_stream_word(desc.base, cfg, t, w);
        std::uint32_t expect = 0;
        for (std::size_t k = 0; k < 4; ++k)
          expect |= static_cast<std::uint32_t>(host[4 * s + k]) << (8 * k);
        EXPECT_EQ(co::kernel_word(desc.base, cfg, t, w), expect)
            << desc.base << " t=" << t << " w=" << w;
      }
    }
  }
}
