// core/keyschedule.hpp — the single splitmix64 seed-expansion schedule.
// The exact byte output is pinned here: every generator family, the
// StreamEngine lane shards and the gpusim kernels reproduce each other only
// because they all draw from this one stream, so a change to these bytes is
// a deliberate, visible break of every canonical stream in the library.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ciphers/a51_bs.hpp"
#include "ciphers/grain_bs.hpp"
#include "ciphers/mickey_bs.hpp"
#include "ciphers/trivium_bs.hpp"
#include "core/keyschedule.hpp"

namespace ks = bsrng::core::keyschedule;
namespace ci = bsrng::ciphers;

TEST(Keyschedule, WordStreamIsPinned) {
  // splitmix64 draws for seed 42, fixed forever.
  ks::SeedStream s(42);
  EXPECT_EQ(s.next_word(), 0xbdd732262feb6e95ull);
  EXPECT_EQ(s.next_word(), 0x28efe333b266f103ull);
  EXPECT_EQ(s.next_word(), 0x47526757130f9f52ull);
  EXPECT_EQ(s.next_word(), 0x581ce1ff0e4ae394ull);
}

TEST(Keyschedule, ByteFillIsPinnedAndTruncatesTheTrailingWord) {
  // 20 bytes = two full words plus a half word whose high bytes are
  // discarded (the next draw starts from a fresh word).
  const std::array<std::uint8_t, 20> expect = {
      0x95, 0x6e, 0xeb, 0x2f, 0x26, 0x32, 0xd7, 0xbd, 0x03, 0xf1,
      0x66, 0xb2, 0x33, 0xe3, 0xef, 0x28, 0x52, 0x9f, 0x0f, 0x13};
  ks::SeedStream s(42);
  EXPECT_EQ(s.bytes<20>(), expect);
  // The 20-byte fill consumed 3 words; the stream continues at word 4.
  EXPECT_EQ(s.next_word(), 0x581ce1ff0e4ae394ull);
}

TEST(Keyschedule, WordsForBytes) {
  EXPECT_EQ(ks::words_for_bytes(0), 0u);
  EXPECT_EQ(ks::words_for_bytes(1), 1u);
  EXPECT_EQ(ks::words_for_bytes(8), 1u);
  EXPECT_EQ(ks::words_for_bytes(9), 2u);
  EXPECT_EQ(ks::words_for_bytes(16), 2u);
}

TEST(Keyschedule, SkipWordsEqualsReplay) {
  for (const std::uint64_t n : {0ull, 1ull, 5ull, 1000ull}) {
    ks::SeedStream skipped(977), replayed(977);
    skipped.skip_words(n);
    for (std::uint64_t i = 0; i < n; ++i) replayed.next_word();
    EXPECT_EQ(skipped.next_word(), replayed.next_word()) << n;
  }
  // O(1) seek far beyond anything replayable: state after n draws is
  // seed + n*gamma, so two half-skips compose.
  ks::SeedStream a(13), b(13);
  a.skip_words(3u << 20);
  b.skip_words(1u << 20);
  b.skip_words(2u << 20);
  EXPECT_EQ(a.next_word(), b.next_word());
}

TEST(Keyschedule, DeriveBytesMatchesSeedStream) {
  // The historical registry helper draws from the same schedule.
  std::uint64_t x = 42;
  const auto key = ks::derive_bytes<16>(x);
  const auto nonce = ks::derive_bytes<12>(x);
  ks::SeedStream s(42);
  EXPECT_EQ(key, s.bytes<16>());
  EXPECT_EQ(nonce, s.bytes<12>());
}

TEST(Keyschedule, CtrParamsArePinned) {
  const auto p = ks::derive_ctr_params<16>(42);
  const std::array<std::uint8_t, 16> key = {0x95, 0x6e, 0xeb, 0x2f, 0x26,
                                            0x32, 0xd7, 0xbd, 0x03, 0xf1,
                                            0x66, 0xb2, 0x33, 0xe3, 0xef,
                                            0x28};
  const std::array<std::uint8_t, 12> nonce = {0x52, 0x9f, 0x0f, 0x13,
                                              0x57, 0x67, 0x52, 0x47,
                                              0x94, 0xe3, 0x4a, 0x0e};
  EXPECT_EQ(p.key, key);
  EXPECT_EQ(p.nonce, nonce);
}

namespace {

// first_lane must be a pure seek: deriving lanes [f, f+n) directly equals
// the [f, f+n) slice of a full-front derivation.  This is the property the
// lane-range PartitionSpec shards and the gpusim kernels rely on.
template <typename Key, typename Iv, typename Derive>
void expect_lane_seek(Derive derive) {
  constexpr std::size_t kLanes = 96, kFirst = 32, kCount = 32;
  std::vector<Key> all_keys(kLanes), sub_keys(kCount);
  std::vector<Iv> all_ivs(kLanes), sub_ivs(kCount);
  derive(std::uint64_t{7}, std::span(all_keys), std::span(all_ivs),
         std::size_t{0});
  derive(std::uint64_t{7}, std::span(sub_keys), std::span(sub_ivs), kFirst);
  for (std::size_t j = 0; j < kCount; ++j) {
    EXPECT_EQ(sub_keys[j], all_keys[kFirst + j]) << j;
    EXPECT_EQ(sub_ivs[j], all_ivs[kFirst + j]) << j;
  }
}

}  // namespace

TEST(Keyschedule, FirstLaneSeeksTheMickeySchedule) {
  expect_lane_seek<std::array<std::uint8_t, 10>, std::array<std::uint8_t, 10>>(
      [](auto... a) { ci::derive_mickey_lane_params(a...); });
}

TEST(Keyschedule, FirstLaneSeeksTheGrainSchedule) {
  expect_lane_seek<std::array<std::uint8_t, 10>, std::array<std::uint8_t, 8>>(
      [](auto... a) { ci::derive_grain_lane_params(a...); });
}

TEST(Keyschedule, FirstLaneSeeksTheTriviumSchedule) {
  expect_lane_seek<std::array<std::uint8_t, 10>, std::array<std::uint8_t, 10>>(
      [](auto... a) { ci::derive_trivium_lane_params(a...); });
}

TEST(Keyschedule, FirstLaneSeeksTheA51Schedule) {
  constexpr std::size_t kLanes = 96, kFirst = 32, kCount = 32;
  std::vector<std::array<std::uint8_t, ci::A51Ref::kKeyBytes>> all_keys(
      kLanes),
      sub_keys(kCount);
  std::vector<std::uint32_t> all_frames(kLanes), sub_frames(kCount);
  ci::derive_a51_lane_params(7, all_keys, all_frames);
  ci::derive_a51_lane_params(7, sub_keys, sub_frames, kFirst);
  for (std::size_t j = 0; j < kCount; ++j) {
    EXPECT_EQ(sub_keys[j], all_keys[kFirst + j]) << j;
    EXPECT_EQ(sub_frames[j], all_frames[kFirst + j]) << j;
  }
}
