// numa_test.cpp — NUMA topology discovery and the placement-never-changes-
// bytes contract (src/core/numa.*, ThreadPool integration).
#include "core/numa.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"

namespace co = bsrng::core;

TEST(NumaCpulist, ParsesRangesAndSingles) {
  EXPECT_EQ(co::parse_cpulist("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(co::parse_cpulist("5"), (std::vector<int>{5}));
  EXPECT_EQ(co::parse_cpulist("0-0"), (std::vector<int>{0}));
  EXPECT_EQ(co::parse_cpulist("0-1\n"), (std::vector<int>{0, 1}));
}

TEST(NumaCpulist, RejectsJunk) {
  EXPECT_TRUE(co::parse_cpulist("").empty());
  EXPECT_TRUE(co::parse_cpulist("abc").empty());
  EXPECT_TRUE(co::parse_cpulist("3-1").empty());   // inverted range
  EXPECT_TRUE(co::parse_cpulist("1,,2").empty());
  EXPECT_TRUE(co::parse_cpulist("1-2-3").empty());
  // The 1<<20 CPU bound keeps a hostile sysfs from allocating the world.
  EXPECT_TRUE(co::parse_cpulist("0-99999999").empty());
}

TEST(NumaTopology, SingleNodeFallback) {
  const co::NumaTopology t = co::NumaTopology::single_node();
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_FALSE(t.emulated_only());
  EXPECT_EQ(t.node_of_worker(0), 0u);
  EXPECT_EQ(t.node_of_worker(17), 0u);
}

TEST(NumaTopology, EmulationGivesNodeIdentitiesWithoutPinning) {
  const co::NumaTopology t = co::NumaTopology::emulated(4);
  EXPECT_EQ(t.node_count(), 4u);
  EXPECT_TRUE(t.emulated_only());
  for (const co::NumaNode& n : t.nodes()) EXPECT_TRUE(n.cpus.empty());
  // Round-robin placement law.
  for (std::size_t w = 0; w < 16; ++w)
    EXPECT_EQ(t.node_of_worker(w), w % 4);
  // emulated(1) and emulated(0) degrade to a plain single node.
  EXPECT_EQ(co::NumaTopology::emulated(1).node_count(), 1u);
  EXPECT_FALSE(co::NumaTopology::emulated(1).emulated_only());
  EXPECT_EQ(co::NumaTopology::emulated(0).node_count(), 1u);
}

TEST(NumaTopology, EnvOverrideDrivesDetect) {
  // The TSan CI leg pins BSRNG_NUMA_NODES for the whole binary; restore
  // whatever was set so this test does not strip the override from the
  // suites that run after it.
  const char* prior = ::getenv("BSRNG_NUMA_NODES");
  const std::string saved = prior ? prior : "";

  ::setenv("BSRNG_NUMA_NODES", "3", 1);
  EXPECT_EQ(co::NumaTopology::detect().node_count(), 3u);
  EXPECT_TRUE(co::NumaTopology::detect().emulated_only());
  // Junk / out-of-range values fall through to real detection (>= 1 node).
  for (const char* bad : {"", "0", "abc", "4x", "1025", "-2"}) {
    ::setenv("BSRNG_NUMA_NODES", bad, 1);
    EXPECT_GE(co::NumaTopology::detect().node_count(), 1u) << bad;
    EXPECT_FALSE(co::NumaTopology::detect().emulated_only()) << bad;
  }

  if (prior)
    ::setenv("BSRNG_NUMA_NODES", saved.c_str(), 1);
  else
    ::unsetenv("BSRNG_NUMA_NODES");
}

TEST(NumaTopology, FakeSysfsRootParses) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "bsrng_numa_test_sysfs";
  fs::remove_all(root);
  fs::create_directories(root / "node0");
  fs::create_directories(root / "node1");
  std::ofstream(root / "node0" / "cpulist") << "0-1\n";
  std::ofstream(root / "node1" / "cpulist") << "2-3\n";
  const co::NumaTopology t = co::NumaTopology::from_sysfs(root.string());
  ASSERT_EQ(t.node_count(), 2u);
  EXPECT_FALSE(t.emulated_only());
  EXPECT_EQ(t.nodes()[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(t.nodes()[1].cpus, (std::vector<int>{2, 3}));
  fs::remove_all(root);
}

TEST(NumaTopology, MissingSysfsFallsBackToSingleNode) {
  const co::NumaTopology t =
      co::NumaTopology::from_sysfs("/nonexistent/bsrng/sysfs");
  EXPECT_EQ(t.node_count(), 1u);
}

TEST(NumaPool, PoolReportsTopologyAndScratch) {
  co::ThreadPool pool(6, co::NumaTopology::emulated(3));
  EXPECT_EQ(pool.topology().node_count(), 3u);
  for (std::size_t w = 0; w < 6; ++w) EXPECT_EQ(pool.node_of(w), w % 3);
  // Per-worker scratch pairs exist and are distinct buffers.
  auto& a = pool.scratch(0, 0);
  auto& b = pool.scratch(0, 1);
  auto& c = pool.scratch(1, 0);
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &c);
  a.resize(128, 0xAB);
  EXPECT_EQ(pool.scratch(0, 0).size(), 128u);
}
