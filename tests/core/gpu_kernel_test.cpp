// The reconstructed §4.4/§4.5 MICKEY GPU kernel: functional correctness
// against the host-side oracle, layout/staging invariance of the produced
// keystream, and the §4.5 memory-traffic claims in the cost model.
#include <gtest/gtest.h>

#include "core/gpu_kernel.hpp"

namespace co = bsrng::core;
namespace gs = bsrng::gpusim;

namespace {
co::GpuKernelConfig small_cfg() {
  co::GpuKernelConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 32;
  cfg.words_per_thread = 16;
  cfg.staging_words = 4;
  cfg.seed = 7;
  return cfg;
}

std::size_t total_words(const co::GpuKernelConfig& cfg) {
  return cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
}
}  // namespace

TEST(MickeyGpuKernel, OutputMatchesHostOracle) {
  const auto cfg = small_cfg();
  gs::Device dev(total_words(cfg));
  const auto res = co::run_mickey_gpu_kernel(dev, cfg);
  EXPECT_EQ(res.bytes, total_words(cfg) * 4);
  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  // Spot-check a grid of (thread, word) positions against the oracle.
  for (const std::size_t t : {0ul, 1ul, 31ul, 32ul, 63ul}) {
    for (const std::size_t w : {0ul, 1ul, 15ul}) {
      EXPECT_EQ(dev.global_memory()[w * threads + t],
                co::mickey_kernel_word(cfg.seed, t, w))
          << "t=" << t << " w=" << w;
    }
  }
}

TEST(MickeyGpuKernel, StagingAndLayoutDoNotChangeTheKeystream) {
  auto cfg = small_cfg();
  gs::Device staged(total_words(cfg)), direct(total_words(cfg)),
      strided(total_words(cfg));
  co::run_mickey_gpu_kernel(staged, cfg);
  cfg.use_shared_staging = false;
  co::run_mickey_gpu_kernel(direct, cfg);
  cfg.coalesced_layout = false;
  co::run_mickey_gpu_kernel(strided, cfg);

  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  for (std::size_t t = 0; t < threads; ++t)
    for (std::size_t w = 0; w < cfg.words_per_thread; ++w) {
      const auto v = staged.global_memory()[w * threads + t];
      EXPECT_EQ(v, direct.global_memory()[w * threads + t]);
      EXPECT_EQ(v, strided.global_memory()[t * cfg.words_per_thread + w]);
    }
}

TEST(MickeyGpuKernel, CoalescedLayoutCutsTransactions32x) {
  auto cfg = small_cfg();
  cfg.use_shared_staging = false;
  cfg.words_per_thread = 64;  // make strides exceed a 128B segment
  gs::Device coal(total_words(cfg)), strided(total_words(cfg));
  const auto a = co::run_mickey_gpu_kernel(coal, cfg);
  cfg.coalesced_layout = false;
  const auto b = co::run_mickey_gpu_kernel(strided, cfg);
  EXPECT_EQ(a.stats.global_requests, b.stats.global_requests);
  EXPECT_EQ(b.stats.global_transactions, 32 * a.stats.global_transactions);
  EXPECT_NEAR(a.stats.coalescing_efficiency(), 1.0, 1e-9);
}

TEST(MickeyGpuKernel, StagingAddsSharedTrafficOnly) {
  auto cfg = small_cfg();
  gs::Device staged(total_words(cfg)), direct(total_words(cfg));
  const auto a = co::run_mickey_gpu_kernel(staged, cfg);
  cfg.use_shared_staging = false;
  const auto b = co::run_mickey_gpu_kernel(direct, cfg);
  EXPECT_EQ(a.stats.global_transactions, b.stats.global_transactions);
  EXPECT_GT(a.stats.shared_accesses, 0u);
  EXPECT_EQ(b.stats.shared_accesses, 0u);
}

TEST(MickeyGpuKernel, RejectsBadConfigs) {
  auto cfg = small_cfg();
  gs::Device tiny(8);
  EXPECT_THROW(co::run_mickey_gpu_kernel(tiny, cfg), std::invalid_argument);
  gs::Device dev(total_words(cfg));
  cfg.staging_words = 5;  // does not divide words_per_thread
  EXPECT_THROW(co::run_mickey_gpu_kernel(dev, cfg), std::invalid_argument);
}

TEST(MickeyGpuKernel, ThreadsProduceDistinctStreams) {
  const auto cfg = small_cfg();
  gs::Device dev(total_words(cfg));
  co::run_mickey_gpu_kernel(dev, cfg);
  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  std::set<std::uint32_t> first_words;
  for (std::size_t t = 0; t < threads; ++t)
    first_words.insert(dev.global_memory()[t]);
  EXPECT_GT(first_words.size(), threads - 2);
}
