// The generalized §4.4/§4.5 GPU kernel: every bitsliced cipher in the
// descriptor table runs on the virtual device, matches the host-side
// kernel_word oracle, keeps the keystream invariant under layout/staging
// choices (including ragged staging tails), and reproduces the §4.5
// memory-traffic claims in the cost model.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/descriptor.hpp"
#include "core/gpu_kernel.hpp"

namespace co = bsrng::core;
namespace gs = bsrng::gpusim;

namespace {

co::GpuKernelConfig small_cfg() {
  co::GpuKernelConfig cfg;
  cfg.blocks = 2;
  cfg.threads_per_block = 32;
  cfg.words_per_thread = 16;  // 64 B/thread: multiple of both counter block
                              // sizes (16 and 64 bytes)
  cfg.staging_words = 4;
  cfg.seed = 7;
  return cfg;
}

std::size_t total_words(const co::GpuKernelConfig& cfg) {
  return cfg.blocks * cfg.threads_per_block * cfg.words_per_thread;
}

std::vector<std::string> cipher_bases() {
  std::vector<std::string> out;
  for (const auto& d : co::algorithm_descriptors()) out.push_back(d.base);
  return out;
}

}  // namespace

TEST(GpuKernel, EveryCipherMatchesHostOracle) {
  const auto cfg = small_cfg();
  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  for (const std::string& algo : cipher_bases()) {
    gs::Device dev(total_words(cfg));
    const auto res = co::run_gpu_kernel(dev, algo, cfg);
    EXPECT_EQ(res.bytes, total_words(cfg) * 4);
    // Spot-check a grid of (thread, word) positions against the oracle.
    for (const std::size_t t : {0ul, 1ul, 31ul, 32ul, 63ul}) {
      for (const std::size_t w : {0ul, 1ul, 15ul}) {
        EXPECT_EQ(dev.global_memory()[w * threads + t],
                  co::kernel_word(algo, cfg, t, w))
            << algo << " t=" << t << " w=" << w;
      }
    }
  }
}

TEST(GpuKernel, AcceptsBsAliasNames) {
  const auto cfg = small_cfg();
  gs::Device base(total_words(cfg)), alias(total_words(cfg));
  co::run_gpu_kernel(base, "mickey", cfg);
  co::run_gpu_kernel(alias, "mickey-bs256", cfg);
  for (std::size_t i = 0; i < total_words(cfg); ++i)
    ASSERT_EQ(base.global_memory()[i], alias.global_memory()[i]) << i;
}

TEST(GpuKernel, StagingAndLayoutDoNotChangeTheKeystream) {
  for (const std::string& algo : cipher_bases()) {
    auto cfg = small_cfg();
    gs::Device staged(total_words(cfg)), direct(total_words(cfg)),
        strided(total_words(cfg));
    co::run_gpu_kernel(staged, algo, cfg);
    cfg.use_shared_staging = false;
    co::run_gpu_kernel(direct, algo, cfg);
    cfg.coalesced_layout = false;
    co::run_gpu_kernel(strided, algo, cfg);

    const std::size_t threads = cfg.blocks * cfg.threads_per_block;
    for (std::size_t t = 0; t < threads; ++t)
      for (std::size_t w = 0; w < cfg.words_per_thread; ++w) {
        const auto v = staged.global_memory()[w * threads + t];
        EXPECT_EQ(v, direct.global_memory()[w * threads + t]) << algo;
        EXPECT_EQ(v, strided.global_memory()[t * cfg.words_per_thread + w])
            << algo;
      }
  }
}

TEST(GpuKernel, RaggedStagingTailProducesTheSameKeystream) {
  // staging_words no longer has to divide words_per_thread: the final round
  // flushes a short chunk.  16 = 3*5 + 1 exercises the one-word tail.
  auto cfg = small_cfg();
  cfg.staging_words = 5;
  gs::Device ragged(total_words(cfg));
  co::run_gpu_kernel(ragged, "grain", cfg);
  cfg.use_shared_staging = false;
  gs::Device direct(total_words(cfg));
  co::run_gpu_kernel(direct, "grain", cfg);
  for (std::size_t i = 0; i < total_words(cfg); ++i)
    ASSERT_EQ(ragged.global_memory()[i], direct.global_memory()[i]) << i;
}

TEST(GpuKernel, KernelOutIndexDescribesBothLayouts) {
  auto cfg = small_cfg();
  const std::size_t threads = cfg.blocks * cfg.threads_per_block;
  EXPECT_EQ(co::kernel_out_index(cfg, 3, 5), 5 * threads + 3);
  cfg.coalesced_layout = false;
  EXPECT_EQ(co::kernel_out_index(cfg, 3, 5), 3 * cfg.words_per_thread + 5);
}

TEST(GpuKernel, CoalescedLayoutCutsTransactions32x) {
  auto cfg = small_cfg();
  cfg.use_shared_staging = false;
  cfg.words_per_thread = 64;  // make strides exceed a 128B segment
  gs::Device coal(total_words(cfg)), strided(total_words(cfg));
  const auto a = co::run_gpu_kernel(coal, "mickey", cfg);
  cfg.coalesced_layout = false;
  const auto b = co::run_gpu_kernel(strided, "mickey", cfg);
  EXPECT_EQ(a.stats.global_requests, b.stats.global_requests);
  EXPECT_EQ(b.stats.global_transactions, 32 * a.stats.global_transactions);
  EXPECT_NEAR(a.stats.coalescing_efficiency(), 1.0, 1e-9);
}

TEST(GpuKernel, StagingAddsSharedTrafficOnly) {
  auto cfg = small_cfg();
  gs::Device staged(total_words(cfg)), direct(total_words(cfg));
  const auto a = co::run_gpu_kernel(staged, "chacha20", cfg);
  cfg.use_shared_staging = false;
  const auto b = co::run_gpu_kernel(direct, "chacha20", cfg);
  EXPECT_EQ(a.stats.global_transactions, b.stats.global_transactions);
  EXPECT_GT(a.stats.shared_accesses, 0u);
  EXPECT_EQ(b.stats.shared_accesses, 0u);
}

TEST(GpuKernel, RejectsBadConfigs) {
  auto cfg = small_cfg();
  gs::Device tiny(8);
  EXPECT_THROW(co::run_gpu_kernel(tiny, "mickey", cfg), std::invalid_argument);
  gs::Device dev(total_words(cfg));
  EXPECT_THROW(co::run_gpu_kernel(dev, "no-such-cipher", cfg),
               std::invalid_argument);
  EXPECT_THROW(co::run_gpu_kernel(dev, "mt19937", cfg), std::invalid_argument);
  cfg.staging_words = 0;  // staging enabled but no staging buffer
  EXPECT_THROW(co::run_gpu_kernel(dev, "mickey", cfg), std::invalid_argument);
  cfg = small_cfg();
  cfg.blocks = 0;
  EXPECT_THROW(co::run_gpu_kernel(dev, "mickey", cfg), std::invalid_argument);
  // Counter-mode threads own contiguous block-aligned ranges, so
  // words_per_thread*4 must be a multiple of the cipher block size.
  cfg = small_cfg();
  cfg.words_per_thread = 15;  // 60 B: not a multiple of 16 or 64
  gs::Device odd(total_words(cfg));
  EXPECT_THROW(co::run_gpu_kernel(odd, "aes-ctr", cfg), std::invalid_argument);
  EXPECT_THROW(co::run_gpu_kernel(odd, "chacha20", cfg),
               std::invalid_argument);
  co::run_gpu_kernel(odd, "mickey", cfg);  // lane-sliced: any wpt is fine
}

TEST(GpuKernel, ThreadsProduceDistinctStreams) {
  const auto cfg = small_cfg();
  for (const std::string& algo : cipher_bases()) {
    gs::Device dev(total_words(cfg));
    co::run_gpu_kernel(dev, algo, cfg);
    const std::size_t threads = cfg.blocks * cfg.threads_per_block;
    std::set<std::uint32_t> first_words;
    for (std::size_t t = 0; t < threads; ++t)
      first_words.insert(dev.global_memory()[t]);
    EXPECT_GT(first_words.size(), threads - 2) << algo;
  }
}

TEST(GpuKernel, EquivalentAlgorithmNamesTheCanonicalStream) {
  auto cfg = small_cfg();
  cfg.blocks = 2;
  cfg.threads_per_block = 2;  // T = 4 threads
  EXPECT_EQ(co::kernel_equivalent_algorithm("mickey", cfg), "mickey-bs128");
  EXPECT_EQ(co::kernel_equivalent_algorithm("aes-ctr", cfg), "aes-ctr-bs32");
  EXPECT_EQ(co::kernel_equivalent_algorithm("chacha20", cfg),
            "chacha20-bs32");
  cfg.threads_per_block = 3;  // 6 threads -> 192 lanes: not a registered width
  EXPECT_EQ(co::kernel_equivalent_algorithm("grain", cfg), "");
}
