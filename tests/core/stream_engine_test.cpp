// stream_engine_test.cpp — the tentpole determinism property: for EVERY
// registered algorithm, StreamEngine output is byte-identical to a direct
// single-generator Generator::fill, for every worker count and for odd span
// sizes that straddle block/row boundaries.  This is the paper's §5.4
// reconstruction claim ("the same output sequence ... generated identically
// in a single GPU sequentially") generalized from 2 algorithms to the whole
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace co = bsrng::core;

namespace {

constexpr std::uint64_t kSeed = 0xB5126'2024ull;

// The big span deliberately ends 7 bytes short of 1 MiB so it is not a
// multiple of any block (16, 64) or row (W/8) size.  The TSan CI leg
// shrinks it via BSRNG_STREAM_TEST_BIG to keep instrumented runtime sane.
std::size_t big_size() {
  if (const char* env = std::getenv("BSRNG_STREAM_TEST_BIG")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return (1u << 20) - 7;
}

std::vector<std::size_t> span_sizes() { return {1, 31, 4095, big_size()}; }

class StreamEngineDeterminism : public ::testing::TestWithParam<std::string> {
};

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& a : co::list_algorithms()) names.push_back(a.name);
  return names;
}

}  // namespace

TEST_P(StreamEngineDeterminism, MatchesDirectFillForEveryWorkerCount) {
  const std::string name = GetParam();
  const std::size_t big = big_size();

  // One canonical stream per algorithm, generated the trusted way.
  std::vector<std::uint8_t> reference(big);
  co::make_generator(name, kSeed)->fill(reference);

  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    co::StreamEngine engine({.workers = workers});
    for (const std::size_t n : span_sizes()) {
      std::vector<std::uint8_t> out(n, 0xAA);
      const auto rep = engine.generate({name, kSeed}, out);
      ASSERT_TRUE(std::equal(out.begin(), out.end(), reference.begin()))
          << name << " diverges from the direct stream with " << workers
          << " workers at span size " << n;
      EXPECT_EQ(rep.workers, workers);
      EXPECT_EQ(rep.bytes, n) << name;
    }
  }
}

TEST_P(StreamEngineDeterminism, InlineModeAndContiguousChunksAgree) {
  // chunk_bytes == 0 (one contiguous chunk per worker, the multi-device
  // layout) and parallel == false (inline execution) must both reproduce
  // the canonical stream too.
  const std::string name = GetParam();
  const std::size_t n = 65536 - 3;
  std::vector<std::uint8_t> reference(n);
  co::make_generator(name, kSeed)->fill(reference);

  co::StreamEngine contiguous({.workers = 3, .chunk_bytes = 0});
  co::StreamEngine inline_eng(
      {.workers = 3, .chunk_bytes = 1u << 12, .parallel = false});
  std::vector<std::uint8_t> a(n), b(n);
  contiguous.generate({name, kSeed}, a);
  inline_eng.generate({name, kSeed}, b);
  EXPECT_EQ(a, reference) << name;
  EXPECT_EQ(b, reference) << name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StreamEngineDeterminism,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& pinfo) {
                           std::string s = pinfo.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(StreamEngine, UnknownAlgorithmThrows) {
  co::StreamEngine engine({.workers = 2});
  std::vector<std::uint8_t> out(16);
  EXPECT_THROW(engine.generate({"not-a-generator", 1}, out),
               std::invalid_argument);
  EXPECT_THROW(co::partition_spec("not-a-generator", 1),
               std::invalid_argument);
}

TEST(StreamEngine, EmptySpanIsTrivial) {
  co::StreamEngine engine({.workers = 4});
  const auto rep = engine.generate({"aes-ctr-bs32", 7}, {});
  EXPECT_EQ(rep.bytes, 0u);
  EXPECT_EQ(rep.workers, 4u);
}

TEST(StreamEngine, ReportAccountsAllBytesAndTasks) {
  co::StreamEngine engine({.workers = 2, .chunk_bytes = 1u << 14});
  std::vector<std::uint8_t> out((1u << 18) + 5);
  const auto rep = engine.generate({"chacha20-bs64", 11}, out);
  EXPECT_EQ(rep.bytes, out.size());
  EXPECT_EQ(rep.per_worker.size(), 2u);
  std::uint64_t bytes = 0;
  std::size_t tasks = 0;
  for (const auto& w : rep.per_worker) {
    bytes += w.bytes;
    tasks += w.tasks;
  }
  EXPECT_EQ(bytes, out.size());
  EXPECT_GT(tasks, 0u);
  EXPECT_GE(rep.sum_worker_seconds, rep.max_worker_seconds);
  EXPECT_GE(rep.modeled_speedup(), 1.0 - 1e-9);
}

TEST(StreamEngine, PartitionKindsMatchListing) {
  // The listing's partition column is the spec actually built.
  for (const auto& a : co::list_algorithms()) {
    const auto spec = co::partition_spec(a.name, 1);
    EXPECT_EQ(static_cast<int>(spec.kind), static_cast<int>(a.partition))
        << a.name;
    EXPECT_TRUE(spec.make != nullptr) << a.name;  // fallback always present
  }
}

// ---------------------------------------------------------------------------
// generate_at — the offset-addressable span API bsrngd's session resume is
// built on.  Tail-equivalence law: generate_at(offset, n) must equal the
// last n bytes of a fresh offset+n byte fill, for every partition kind,
// worker count, and unaligned offset.
// ---------------------------------------------------------------------------

namespace {

// One representative per partition kind plus the odd-block cipher: counter
// (16B blocks), counter (64B blocks), lane-slice, and sequential.
const char* const kOffsetAlgos[] = {"aes-ctr-bs64", "chacha20-bs32",
                                    "mickey-bs64", "grain-bs32", "mt19937"};

}  // namespace

TEST(StreamEngineGenerateAt, TailEquivalenceAtUnalignedOffsets) {
  for (const char* name : kOffsetAlgos) {
    const std::size_t n = 8191;
    // Offsets straddle block (16/64) and row (W/8 per step) boundaries.
    for (const std::size_t offset : {1u, 15u, 16u, 63u, 64u, 257u, 4095u}) {
      std::vector<std::uint8_t> reference(offset + n);
      co::make_generator(name, kSeed)->fill(reference);
      for (const std::size_t workers : {1u, 3u}) {
        co::StreamEngine engine({.workers = workers, .chunk_bytes = 1u << 10});
        std::vector<std::uint8_t> out(n, 0xAA);
        const auto rep = engine.generate({name, kSeed, {}, offset}, out);
        ASSERT_TRUE(std::equal(out.begin(), out.end(),
                               reference.begin() +
                                   static_cast<std::ptrdiff_t>(offset)))
            << name << " offset " << offset << " workers " << workers;
        EXPECT_EQ(rep.bytes, n) << name;
      }
    }
  }
}

TEST(StreamEngineGenerateAt, ZeroLengthSpansAreTrivialAtAnyOffset) {
  co::StreamEngine engine({.workers = 2});
  for (const char* name : kOffsetAlgos) {
    for (const std::uint64_t offset :
         {std::uint64_t{0}, std::uint64_t{13}, std::uint64_t{1} << 41}) {
      const auto rep = engine.generate({name, kSeed, {}, offset}, {});
      EXPECT_EQ(rep.bytes, 0u) << name << " offset " << offset;
    }
  }
}

TEST(StreamEngineGenerateAt, HugeCounterOffsetsSeekInConstantTime) {
  // Counter-partition ciphers must serve offsets beyond 2^40 instantly (the
  // O(1) make_at_block seek); the reference comes from the spec's own block
  // factory so the test does not need to generate a terabyte.
  for (const char* name : {"aes-ctr-bs64", "chacha20-bs32", "philox"}) {
    const auto spec = co::partition_spec(name, kSeed);
    ASSERT_EQ(spec.kind, co::PartitionKind::kCounter) << name;
    const std::uint64_t offset = (std::uint64_t{1} << 42) + 11;  // unaligned
    const std::size_t n = 5000;
    const std::uint64_t bb = spec.block_bytes;
    const std::size_t lead = static_cast<std::size_t>(offset % bb);
    std::vector<std::uint8_t> reference(lead + n);
    spec.make_at_block(offset / bb)->fill(reference);

    for (const std::size_t workers : {1u, 4u}) {
      co::StreamEngine engine({.workers = workers, .chunk_bytes = 1u << 10});
      std::vector<std::uint8_t> out(n, 0x55);
      engine.generate({name, kSeed, {}, offset}, out);
      ASSERT_TRUE(std::equal(out.begin(), out.end(),
                             reference.begin() +
                                 static_cast<std::ptrdiff_t>(lead)))
          << name << " workers " << workers;
    }
  }
}

TEST(StreamEngineGenerateAt, OverflowingSpansAreRejected) {
  // offset + out.size() wrapping past 2^64 would undersize the lane-slice
  // scratch envelope (an out-of-bounds read) and corrupt counter/sequential
  // arithmetic; generate_at must reject it before any work, for every
  // partition kind.
  co::StreamEngine engine({.workers = 2});
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  for (const char* name : kOffsetAlgos) {
    std::vector<std::uint8_t> out(64);
    EXPECT_THROW(engine.generate({name, kSeed, {}, max - 10}, out),
                 std::invalid_argument)
        << name;
    // One byte past the largest representable end offset.
    EXPECT_THROW(
        engine.generate({name, kSeed, {}, max - out.size() + 1}, out),
        std::invalid_argument)
        << name;
    // Empty spans stay trivially valid even at the very top of the space.
    EXPECT_NO_THROW(engine.generate({name, kSeed, {}, max}, {})) << name;
  }
}

TEST(StreamEngineGenerateAt, BackToBackSpansFromInterleavedSessionsAreSeamless) {
  // Two tenant streams served in alternating spans — exactly what bsrngd's
  // per-connection batching produces — must each concatenate to the same
  // bytes as one contiguous generate.
  struct Tenant {
    const char* algo;
    std::uint64_t seed;
    std::uint64_t cursor = 0;
    std::vector<std::uint8_t> got;
  };
  const std::size_t total = 40000;
  for (auto [a, b] : {std::pair<const char*, const char*>{
                          "aes-ctr-bs64", "mickey-bs32"},
                      {"trivium-bs64", "chacha20-bs64"}}) {
    Tenant t[2] = {{a, 101, 0, {}}, {b, 202, 0, {}}};
    co::StreamEngine engine({.workers = 3, .chunk_bytes = 1u << 12});
    const std::size_t spans[] = {313, 4096, 77, 8191, 1024};
    std::size_t si = 0;
    while (t[0].got.size() < total || t[1].got.size() < total) {
      Tenant& cur = t[si % 2];
      if (cur.got.size() < total) {
        const std::size_t n =
            std::min(spans[si % 5], total - cur.got.size());
        std::vector<std::uint8_t> out(n);
        engine.generate({cur.algo, cur.seed, {}, cur.cursor}, out);
        cur.got.insert(cur.got.end(), out.begin(), out.end());
        cur.cursor += n;
      }
      ++si;
    }
    for (const Tenant& tt : t) {
      std::vector<std::uint8_t> reference(total);
      co::make_generator(tt.algo, tt.seed)->fill(reference);
      ASSERT_EQ(tt.got, reference) << tt.algo;
    }
  }
}
