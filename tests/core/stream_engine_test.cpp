// stream_engine_test.cpp — the tentpole determinism property: for EVERY
// registered algorithm, StreamEngine output is byte-identical to a direct
// single-generator Generator::fill, for every worker count and for odd span
// sizes that straddle block/row boundaries.  This is the paper's §5.4
// reconstruction claim ("the same output sequence ... generated identically
// in a single GPU sequentially") generalized from 2 algorithms to the whole
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace co = bsrng::core;

namespace {

constexpr std::uint64_t kSeed = 0xB5126'2024ull;

// The big span deliberately ends 7 bytes short of 1 MiB so it is not a
// multiple of any block (16, 64) or row (W/8) size.  The TSan CI leg
// shrinks it via BSRNG_STREAM_TEST_BIG to keep instrumented runtime sane.
std::size_t big_size() {
  if (const char* env = std::getenv("BSRNG_STREAM_TEST_BIG")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return (1u << 20) - 7;
}

std::vector<std::size_t> span_sizes() { return {1, 31, 4095, big_size()}; }

class StreamEngineDeterminism : public ::testing::TestWithParam<std::string> {
};

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& a : co::list_algorithms()) names.push_back(a.name);
  return names;
}

}  // namespace

TEST_P(StreamEngineDeterminism, MatchesDirectFillForEveryWorkerCount) {
  const std::string name = GetParam();
  const std::size_t big = big_size();

  // One canonical stream per algorithm, generated the trusted way.
  std::vector<std::uint8_t> reference(big);
  co::make_generator(name, kSeed)->fill(reference);

  for (const std::size_t workers : {1u, 2u, 3u, 8u}) {
    co::StreamEngine engine({.workers = workers});
    for (const std::size_t n : span_sizes()) {
      std::vector<std::uint8_t> out(n, 0xAA);
      const auto rep = engine.generate(name, kSeed, out);
      ASSERT_TRUE(std::equal(out.begin(), out.end(), reference.begin()))
          << name << " diverges from the direct stream with " << workers
          << " workers at span size " << n;
      EXPECT_EQ(rep.workers, workers);
      EXPECT_EQ(rep.bytes, n) << name;
    }
  }
}

TEST_P(StreamEngineDeterminism, InlineModeAndContiguousChunksAgree) {
  // chunk_bytes == 0 (one contiguous chunk per worker, the multi-device
  // layout) and parallel == false (inline execution) must both reproduce
  // the canonical stream too.
  const std::string name = GetParam();
  const std::size_t n = 65536 - 3;
  std::vector<std::uint8_t> reference(n);
  co::make_generator(name, kSeed)->fill(reference);

  co::StreamEngine contiguous({.workers = 3, .chunk_bytes = 0});
  co::StreamEngine inline_eng(
      {.workers = 3, .chunk_bytes = 1u << 12, .parallel = false});
  std::vector<std::uint8_t> a(n), b(n);
  contiguous.generate(name, kSeed, a);
  inline_eng.generate(name, kSeed, b);
  EXPECT_EQ(a, reference) << name;
  EXPECT_EQ(b, reference) << name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StreamEngineDeterminism,
                         ::testing::ValuesIn(all_names()),
                         [](const auto& pinfo) {
                           std::string s = pinfo.param;
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(StreamEngine, UnknownAlgorithmThrows) {
  co::StreamEngine engine({.workers = 2});
  std::vector<std::uint8_t> out(16);
  EXPECT_THROW(engine.generate("not-a-generator", 1, out),
               std::invalid_argument);
  EXPECT_THROW(co::partition_spec("not-a-generator", 1),
               std::invalid_argument);
}

TEST(StreamEngine, EmptySpanIsTrivial) {
  co::StreamEngine engine({.workers = 4});
  const auto rep = engine.generate("aes-ctr-bs32", 7, {});
  EXPECT_EQ(rep.bytes, 0u);
  EXPECT_EQ(rep.workers, 4u);
}

TEST(StreamEngine, ReportAccountsAllBytesAndTasks) {
  co::StreamEngine engine({.workers = 2, .chunk_bytes = 1u << 14});
  std::vector<std::uint8_t> out((1u << 18) + 5);
  const auto rep = engine.generate("chacha20-bs64", 11, out);
  EXPECT_EQ(rep.bytes, out.size());
  EXPECT_EQ(rep.per_worker.size(), 2u);
  std::uint64_t bytes = 0;
  std::size_t tasks = 0;
  for (const auto& w : rep.per_worker) {
    bytes += w.bytes;
    tasks += w.tasks;
  }
  EXPECT_EQ(bytes, out.size());
  EXPECT_GT(tasks, 0u);
  EXPECT_GE(rep.sum_worker_seconds, rep.max_worker_seconds);
  EXPECT_GE(rep.modeled_speedup(), 1.0 - 1e-9);
}

TEST(StreamEngine, PartitionKindsMatchListing) {
  // The listing's partition column is the spec actually built.
  for (const auto& a : co::list_algorithms()) {
    const auto spec = co::partition_spec(a.name, 1);
    EXPECT_EQ(static_cast<int>(spec.kind), static_cast<int>(a.partition))
        << a.name;
    EXPECT_TRUE(spec.make != nullptr) << a.name;  // fallback always present
  }
}
