// Core public API: factory, generator semantics, gate counting, throughput
// meter, and the §5.4 multi-device determinism property.
#include <gtest/gtest.h>

#include <set>

#include "core/multi_device.hpp"
#include "core/registry.hpp"
#include "core/throughput.hpp"
#include "lfsr/polynomial.hpp"

namespace co = bsrng::core;

TEST(Registry, ListsAllFamilies) {
  const auto algos = co::list_algorithms();
  // 6 ciphers x 5 widths + 6 references + 9 baselines = 45.
  EXPECT_EQ(algos.size(), 45u);
  std::size_t bitsliced = 0, reference = 0, baseline = 0;
  for (const auto& a : algos) {
    if (a.family == "bitsliced") {
      ++bitsliced;
      EXPECT_GT(a.gate_ops_per_bit, 0.0) << a.name;
      // All bitsliced engines except the historical A5/1 are CSPRNGs.
      EXPECT_EQ(a.cryptographic, a.name.find("a51") == std::string::npos)
          << a.name;
    } else if (a.family == "reference") {
      ++reference;
    } else {
      ++baseline;
    }
  }
  EXPECT_EQ(bitsliced, 30u);
  EXPECT_EQ(reference, 6u);
  EXPECT_EQ(baseline, 9u);
}

TEST(Registry, EveryListedAlgorithmIsConstructibleAndDeterministic) {
  for (const auto& a : co::list_algorithms()) {
    auto g1 = co::make_generator(a.name, 12345);
    auto g2 = co::make_generator(a.name, 12345);
    ASSERT_NE(g1, nullptr) << a.name;
    EXPECT_EQ(g1->name(), a.name);
    EXPECT_EQ(g1->lanes(), a.lanes) << a.name;
    std::vector<std::uint8_t> b1(257), b2(257);
    g1->fill(b1);
    g2->fill(b2);
    EXPECT_EQ(b1, b2) << a.name << " must be deterministic per seed";
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(co::make_generator("not-a-generator", 1), std::invalid_argument);
}

TEST(Registry, SeedsChangeTheStream) {
  for (const char* name : {"mickey-bs64", "aes-ctr-bs32", "mt19937"}) {
    auto g1 = co::make_generator(name, 1);
    auto g2 = co::make_generator(name, 2);
    std::vector<std::uint8_t> b1(64), b2(64);
    g1->fill(b1);
    g2->fill(b2);
    EXPECT_NE(b1, b2) << name;
  }
}

TEST(Registry, FillIsStreamContinuous) {
  // fill(a); fill(b) must equal one fill(a+b) — chunking can't change bytes.
  for (const char* name :
       {"mickey-bs32", "grain-bs128", "trivium-bs512", "aes-ctr-bs64",
        "a51-bs64", "chacha20-bs32", "mickey-ref", "chacha20-ref", "rc4",
        "pcg32", "xoshiro256pp", "mt19937"}) {
    auto g1 = co::make_generator(name, 777);
    auto g2 = co::make_generator(name, 777);
    std::vector<std::uint8_t> whole(301);
    g1->fill(whole);
    std::vector<std::uint8_t> parts(301);
    g2->fill(std::span(parts.data(), 13));
    g2->fill(std::span(parts.data() + 13, 200));
    g2->fill(std::span(parts.data() + 213, 88));
    EXPECT_EQ(parts, whole) << name;
  }
}

TEST(Registry, BitslicedWidthsAgreePerLaneCost) {
  // gate_ops_per_bit must scale exactly as 1/width within a cipher family.
  const auto algos = co::list_algorithms();
  const auto find = [&](const std::string& n) {
    for (const auto& a : algos)
      if (a.name == n) return a.gate_ops_per_bit;
    ADD_FAILURE() << n;
    return 0.0;
  };
  EXPECT_NEAR(find("mickey-bs32") / 16.0, find("mickey-bs512"), 1e-12);
  EXPECT_NEAR(find("grain-bs64") / 2.0, find("grain-bs128"), 1e-12);
}

TEST(GateCount, MatchesPaperStructuralClaims) {
  // The bitsliced LFSR costs exactly k XORs per step (§4.3, Fig. 8).
  const auto poly20 = bsrng::lfsr::primitive_polynomial(20);
  EXPECT_EQ(co::gate_ops_per_step("lfsr20"),
            static_cast<double>(poly20.tap_count()));
  // Stream ciphers are hundreds of gates per step; AES blocks are far
  // costlier per bit (the §5.2 "AES is limited by the bitsliced S-box").
  const double mickey = co::gate_ops_per_step("mickey");
  const double grain = co::gate_ops_per_step("grain");
  const double trivium = co::gate_ops_per_step("trivium");
  const double aes_block = co::gate_ops_per_step("aes-ctr");
  EXPECT_GT(mickey, 100.0);
  EXPECT_LT(mickey, 2000.0);
  EXPECT_LT(trivium, grain);  // Trivium is famously cheap
  EXPECT_GT(aes_block / 128.0, mickey) << "AES per-bit must exceed MICKEY";
}

TEST(GateCount, UnknownCipherThrows) {
  EXPECT_THROW(co::gate_ops_per_step("des"), std::invalid_argument);
}

TEST(Generator, ConvenienceDrawsAreWellFormed) {
  auto g = co::make_generator("philox", 99);
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 100; ++i) {
    const double d = g->next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    vals.insert(g->next_u64());
  }
  EXPECT_EQ(vals.size(), 100u);
}

TEST(Throughput, MeasuresAndScales) {
  auto g = co::make_generator("xorwow", 5);
  const auto r = co::measure_throughput(*g, 1 << 22);
  EXPECT_EQ(r.bytes, std::uint64_t{1} << 22);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.gbps(), 0.0);
}

// --- §5.4 multi-device -------------------------------------------------------

TEST(MultiDevice, AesCtrIsDeviceCountInvariant) {
  std::vector<std::uint8_t> key(16, 0x42), nonce(12, 0x17);
  std::vector<std::uint8_t> one(100000), two(100000), four(100000),
      seven(100000);
  co::multi_device_aes_ctr(key, nonce, 1, one);
  co::multi_device_aes_ctr(key, nonce, 2, two);
  co::multi_device_aes_ctr(key, nonce, 4, four, /*parallel=*/false);
  co::multi_device_aes_ctr(key, nonce, 7, seven);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, seven);
}

TEST(MultiDevice, MickeyIsParallelismInvariant) {
  std::vector<std::uint8_t> par(65536), seq(65536);
  co::multi_device_mickey(2024, 2, par, /*parallel=*/true);
  co::multi_device_mickey(2024, 2, seq, /*parallel=*/false);
  EXPECT_EQ(par, seq);
}

TEST(MultiDevice, ReportAccountsWork) {
  std::vector<std::uint8_t> key(16, 1), nonce(12, 2);
  std::vector<std::uint8_t> out(1 << 20);
  const auto rep = co::multi_device_aes_ctr(key, nonce, 2, out);
  EXPECT_EQ(rep.workers, 2u);
  EXPECT_GT(rep.sum_worker_seconds, 0.0);
  EXPECT_GE(rep.sum_worker_seconds, rep.max_worker_seconds);
  // With balanced chunks the modeled speedup approaches D (the paper reports
  // 1.92x on 2 GPUs); allow generous slack on a loaded host.
  EXPECT_GT(rep.modeled_speedup(), 1.5);
  EXPECT_LE(rep.modeled_speedup(), 2.01);
}

TEST(MultiDevice, ZeroDevicesRejected) {
  std::vector<std::uint8_t> key(16, 1), nonce(12, 2), out(16);
  EXPECT_THROW(co::multi_device_aes_ctr(key, nonce, 0, out),
               std::invalid_argument);
  EXPECT_THROW(co::multi_device_mickey(1, 0, out), std::invalid_argument);
}
