// Registry probe API: try_make_generator / algorithm_exists /
// find_algorithm, the throwing make_generator wrapper, and the
// AlgorithmInfo::partition_spec law (spec kind matches the advertised
// partition and shards reproduce the canonical stream).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/registry.hpp"
#include "core/stream_engine.hpp"

namespace co = bsrng::core;

namespace {

TEST(RegistryApi, TryMakeGeneratorKnownName) {
  auto gen = co::try_make_generator("mickey-bs512", 1);
  ASSERT_NE(gen, nullptr);
  EXPECT_EQ(gen->name(), "mickey-bs512");
  EXPECT_EQ(gen->lanes(), 512u);
}

TEST(RegistryApi, TryMakeGeneratorUnknownNameReturnsNull) {
  EXPECT_EQ(co::try_make_generator("no-such-rng", 1), nullptr);
  EXPECT_EQ(co::try_make_generator("", 1), nullptr);
  EXPECT_EQ(co::try_make_generator("mickey-bs513", 1), nullptr);
}

TEST(RegistryApi, MakeGeneratorThrowsOnUnknownName) {
  EXPECT_THROW(co::make_generator("no-such-rng", 1), std::invalid_argument);
}

TEST(RegistryApi, TryAndThrowingAgreeOnStreams) {
  auto a = co::try_make_generator("grain-bs64", 42);
  auto b = co::make_generator("grain-bs64", 42);
  ASSERT_NE(a, nullptr);
  std::vector<std::uint8_t> x(256), y(256);
  a->fill(x);
  b->fill(y);
  EXPECT_EQ(x, y);
}

TEST(RegistryApi, AlgorithmExists) {
  EXPECT_TRUE(co::algorithm_exists("mickey-bs512"));
  EXPECT_TRUE(co::algorithm_exists("mt19937"));
  EXPECT_FALSE(co::algorithm_exists("no-such-rng"));
  EXPECT_FALSE(co::algorithm_exists(""));
  // Consistent with the listing for every registered name.
  for (const auto& a : co::list_algorithms())
    EXPECT_TRUE(co::algorithm_exists(a.name)) << a.name;
}

TEST(RegistryApi, FindAlgorithm) {
  const auto info = co::find_algorithm("aes-ctr-bs256");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->name, "aes-ctr-bs256");
  EXPECT_EQ(info->lanes, 256u);
  EXPECT_EQ(info->family, "bitsliced");
  EXPECT_TRUE(info->cryptographic);
  EXPECT_FALSE(co::find_algorithm("no-such-rng").has_value());
}

TEST(RegistryApi, InfoPartitionSpecKindMatchesAdvertisedPartition) {
  for (const auto& a : co::list_algorithms()) {
    const auto spec = a.partition_spec(7);
    EXPECT_EQ(spec.kind, a.partition) << a.name;
    ASSERT_TRUE(static_cast<bool>(spec.make)) << a.name;
  }
}

TEST(RegistryApi, InfoPartitionSpecMakeMatchesMakeGenerator) {
  for (const char* name : {"mickey-bs32", "aes-ctr-bs64", "xorwow"}) {
    const auto info = co::find_algorithm(name);
    ASSERT_TRUE(info.has_value());
    auto from_spec = info->partition_spec(99).make();
    auto direct = co::make_generator(name, 99);
    std::vector<std::uint8_t> x(512), y(512);
    from_spec->fill(x);
    direct->fill(y);
    EXPECT_EQ(x, y) << name;
  }
}

// The spec obtained through AlgorithmInfo shards byte-identically to the
// direct stream (one kCounter and one kLaneSlice representative).
TEST(RegistryApi, InfoPartitionSpecShardsReproduceStream) {
  for (const char* name : {"aes-ctr-bs32", "trivium-bs32"}) {
    const auto info = co::find_algorithm(name);
    ASSERT_TRUE(info.has_value());
    co::StreamEngine engine({.workers = 3, .chunk_bytes = 1024});
    std::vector<std::uint8_t> sharded(16384), direct(16384);
    engine.generate(info->partition_spec(5), 0, sharded);
    co::make_generator(name, 5)->fill(direct);
    EXPECT_EQ(sharded, direct) << name;
  }
}

}  // namespace
