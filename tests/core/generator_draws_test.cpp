// Generator convenience draws (next_u32/next_u64/next_double): byte-order
// agreement with fill(), value ranges, and 53-bit double granularity.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/registry.hpp"

namespace co = bsrng::core;

namespace {

const char* kAlgos[] = {"mickey-bs32", "aes-ctr-bs512", "chacha20-bs64",
                        "mt19937", "philox"};

TEST(GeneratorDraws, NextU32IsLittleEndianOfFill) {
  for (const char* algo : kAlgos) {
    auto a = co::make_generator(algo, 123);
    auto b = co::make_generator(algo, 123);
    std::uint8_t bytes[8];
    a->fill(bytes);
    const std::uint32_t expect0 =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    const std::uint32_t expect1 =
        static_cast<std::uint32_t>(bytes[4]) |
        (static_cast<std::uint32_t>(bytes[5]) << 8) |
        (static_cast<std::uint32_t>(bytes[6]) << 16) |
        (static_cast<std::uint32_t>(bytes[7]) << 24);
    EXPECT_EQ(b->next_u32(), expect0) << algo;
    EXPECT_EQ(b->next_u32(), expect1) << algo << " (stream continues)";
  }
}

TEST(GeneratorDraws, NextU64IsLittleEndianOfFill) {
  for (const char* algo : kAlgos) {
    auto a = co::make_generator(algo, 77);
    auto b = co::make_generator(algo, 77);
    std::uint8_t bytes[8];
    a->fill(bytes);
    std::uint64_t expect = 0;
    for (int i = 0; i < 8; ++i)
      expect |= std::uint64_t{bytes[i]} << (8 * i);
    EXPECT_EQ(b->next_u64(), expect) << algo;
  }
}

TEST(GeneratorDraws, NextU64IsTwoU32sInStreamOrder) {
  auto a = co::make_generator("mickey-bs32", 5);
  auto b = co::make_generator("mickey-bs32", 5);
  const std::uint64_t v = a->next_u64();
  const std::uint32_t lo = b->next_u32();
  const std::uint32_t hi = b->next_u32();
  EXPECT_EQ(v, (std::uint64_t{hi} << 32) | lo);
}

TEST(GeneratorDraws, NextDoubleRangeAndGranularity) {
  for (const char* algo : kAlgos) {
    auto gen = co::make_generator(algo, 9);
    auto mirror = co::make_generator(algo, 9);
    for (int i = 0; i < 100; ++i) {
      const double d = gen->next_double();
      EXPECT_GE(d, 0.0) << algo;
      EXPECT_LT(d, 1.0) << algo;
      // Exactly (u64 >> 11) * 2^-53: scaling back up yields an integer that
      // fits in 53 bits.
      const double scaled = d * 0x1.0p53;
      EXPECT_EQ(scaled, std::floor(scaled)) << algo;
      EXPECT_EQ(scaled, static_cast<double>(mirror->next_u64() >> 11)) << algo;
    }
  }
}

TEST(GeneratorDraws, DoublesAreRoughlyUniform) {
  auto gen = co::make_generator("chacha20-bs512", 31);
  constexpr int kN = 20000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += gen->next_double();
  // Mean of U[0,1) is 0.5 with sd ~ 1/sqrt(12 kN) ~ 0.002; 10 sigma margin.
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

}  // namespace
